#!/usr/bin/env python
"""Quickstart: store a diagonal sparse matrix in CRSD and run SpMV.

Builds a small diagonal matrix with an idle section and a scatter
point, stores it in CRSD through the ``repro`` facade, prints the
structural description the format derives (diagonal patterns, scatter
rows, fill), runs the generated kernel on the simulated Tesla C2050,
verifies the result, and compares against the DIA/ELL/CSR baselines --
all via ``repro.build`` / ``repro.spmv``.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def build_matrix(n=4096, rng=None):
    """Tridiagonal + two far diagonals, one of them broken by a long
    idle section, plus a couple of isolated scatter points."""
    rng = rng or np.random.default_rng(42)
    rows_l, cols_l = [], []
    for off in (-1, 0, 1, 64):
        r = np.arange(max(0, -off), min(n, n - off))
        rows_l.append(r)
        cols_l.append(r + off)
    # a -64 diagonal living only in the first and last quarter (idle
    # section in between -> CRSD breaks it instead of zero-filling)
    r = np.concatenate([np.arange(64, n // 4), np.arange(3 * n // 4, n)])
    rows_l.append(r)
    cols_l.append(r - 64)
    # isolated scatter points
    rows_l.append(np.array([n // 2, n // 2 + 7]))
    cols_l.append(np.array([13, n - 5]))
    rows = np.concatenate(rows_l)
    cols = np.concatenate(cols_l)
    vals = rng.standard_normal(rows.size)
    return repro.COOMatrix(rows, cols, vals, (n, n))


def main():
    rng = np.random.default_rng(42)
    coo = build_matrix(rng=rng)
    print(f"matrix: {coo.nrows} x {coo.ncols}, nnz = {coo.nnz:,}")

    # ---- store in CRSD -------------------------------------------------
    crsd = repro.CRSDMatrix.from_coo(coo, mrows=128)
    print(f"\nCRSD structure:")
    print(f"  diagonal patterns : {crsd.num_dia_patterns}")
    print(f"  pattern regions   : {len(crsd.regions)}")
    print(f"  scatter rows      : {crsd.num_scatter_rows} "
          f"(width {crsd.num_scatter_width})")
    print(f"  fill zeros        : {crsd.fill_zeros:,} "
          f"({100 * crsd.fill_zeros / crsd.dia_val.size:.1f}% of slab)")
    print(f"  AD slot fraction  : {crsd.adjacent_slot_fraction:.2f}")

    # ---- run on the simulated GPU via the facade -----------------------
    x = rng.standard_normal(coo.ncols)
    reference = coo.matvec(x)

    runs = {
        "CRSD (generated codelets)": repro.spmv(crsd, x),
        "DIA": repro.spmv(coo, x, format="dia"),
        "ELL": repro.spmv(coo, x, format="ell"),
        "CSR (vector)": repro.spmv(coo, x, format="csr"),
    }
    print(f"\n{'kernel':<28} {'max err':>10} {'modelled':>10} {'GFLOPS':>8}")
    for name, run in runs.items():
        err = np.abs(run.y - reference).max()
        m = run.metrics
        print(f"{name:<28} {err:>10.2e} {m['seconds'] * 1e6:>8.1f}us "
              f"{m['achieved_gflops']:>8.2f}")

    picked = repro.auto_format(coo)
    print(f"\nAll kernels verified against the reference SpMV.")
    print(f"repro.auto_format picks {picked!r} for this matrix "
          f"(fewest analytic bytes per SpMV).")


if __name__ == "__main__":
    main()

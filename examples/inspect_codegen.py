#!/usr/bin/env python
"""Inspect the runtime code generator on the paper's worked example.

Rebuilds the Fig. 2 matrix, prints the CRSD storage in the Fig. 4
notation, the Table II/III quantities each codelet bakes in, and both
renderings of the generated kernel: the OpenCL C a real GPU would
compile (Fig. 6) and the Python codelets the simulator executes.

Run:  python examples/inspect_codegen.py
"""

import numpy as np

from repro.codegen import build_plan, generate_opencl_source
from repro.codegen.python_codelet import emit_python_source
from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix

# the Fig. 2 matrix (6 x 9): values named v<row><col> in the paper
FIG2 = {
    (0, 0): 1.0, (0, 2): 2.0, (0, 3): 3.0, (0, 5): 4.0, (0, 7): 5.0,
    (1, 1): 6.0, (1, 3): 7.0, (1, 4): 8.0, (1, 6): 9.0, (1, 8): 10.0,
    (2, 0): 11.0, (2, 1): 12.0, (2, 3): 13.0,
    (3, 1): 14.0, (3, 2): 15.0, (3, 4): 16.0,
    (4, 2): 17.0, (4, 5): 18.0,
    (5, 3): 19.0, (5, 4): 20.0, (5, 5): 21.0, (5, 6): 22.0,
}


def banner(title):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def main():
    rows, cols = zip(*FIG2)
    coo = COOMatrix(np.array(rows), np.array(cols),
                    np.array(list(FIG2.values())), (6, 9))
    crsd = CRSDMatrix.from_coo(coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)

    banner("CRSD storage (the paper's Fig. 4 notation, mrows=2)")
    print(crsd.fig4_dump())

    banner("Per-pattern information (Table II/III)")
    for p, r in enumerate(crsd.regions):
        print(f"pattern p={p}: {r.pattern}  NRS={r.nrs}  NNzRS={r.nnz_per_segment}"
              f"  SR={r.start_row}  NDias={r.ndiags}  Colv={r.colv}")

    plan = build_plan(crsd)
    banner("Generated OpenCL C kernel (Fig. 6)")
    print(generate_opencl_source(plan, precision="double"))

    banner("Generated Python codelets (what the simulator executes)")
    print(emit_python_source(plan))

    banner("Static analysis (repro analyze)")
    from repro.analyze import analyze_matrix, predict_trace, build_model

    report = analyze_matrix(crsd)
    print(report.summary())

    banner("Verification")
    rng = np.random.default_rng(0)
    x = rng.standard_normal(9)
    from repro.gpu_kernels import CrsdSpMV
    from repro.ocl.device import TESLA_C2050

    run = CrsdSpMV(crsd, strict=True).run(x)
    err = np.abs(run.y - coo.matvec(x)).max()
    print(f"generated kernel vs reference: max abs err = {err:.2e}")
    print(f"trace: {run.trace.summary()}")

    # the analyzer's trace prediction is exact (modulo the L2 model,
    # which is execution-order-dependent and therefore out of static
    # scope): re-run on an L2-disabled device and diff the counters
    dev = TESLA_C2050.with_overrides(l2_bytes=0)
    model = build_model(plan, scatter_colval=crsd.scatter_colval,
                        scatter_rowno=crsd.scatter_rowno)
    static = predict_trace(model, dev)
    dynamic = CrsdSpMV(crsd, device=dev).run(x).trace
    same = static == dynamic
    print(f"static trace prediction == dynamic trace (L2 off): {same}")


if __name__ == "__main__":
    main()

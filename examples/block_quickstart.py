#!/usr/bin/env python
"""Block operators + symmetric CRSD: solve a 2x2 KKT system.

Builds the saddle-like SPD system

        [ H   Bt ] [x1]   [b1]
        [ B   C  ] [x2] = [b2]

from the seeded ``kkt_blocks`` generator, serves the symmetric
diagonal blocks H and C through the half-storage ``SymCrsdSpMV``
runner (the coupling band B/Bt stays a host-served COO block), solves
with Jacobi-preconditioned CG over the composed ``BlockOperator``,
prints the per-block observability breakdown, and closes with the
halved-DRAM-bytes roofline comparison of the symmetric carrier against
the full CRSD slab.

Run:  PYTHONPATH=src python examples/block_quickstart.py
"""

import numpy as np

from repro.blockop import BlockOperator
from repro.core.crsd import CRSDMatrix
from repro.core.symcrsd import SymCRSDMatrix
from repro.gpu_kernels import CrsdSpMV, SymCrsdSpMV
from repro.matrices.generators import kkt_blocks
from repro.obs.metrics import derive_metrics
from repro.obs.recorder import ProfileSession, observe
from repro.ocl.device import TESLA_C2050
from repro.perf.costmodel import predict_gpu_time
from repro.perf.roofline import render_roofline, roofline_point
from repro.solvers.preconditioned import pcg


def main():
    rng = np.random.default_rng(2011)
    n1, n2 = 512, 256

    # ---- assemble the block system ------------------------------------
    h, bt, b, c = kkt_blocks(n1, n2, rng, halfwidth=7,
                             coupling_halfwidth=2)
    sym_h = SymCRSDMatrix.from_coo(h, mrows=64)
    sym_c = SymCRSDMatrix.from_coo(c, mrows=64)
    kkt = BlockOperator([
        [SymCrsdSpMV(sym_h), bt],
        [b, SymCrsdSpMV(sym_c)],
    ])
    print(f"KKT operator: grid {kkt.grid_shape}, shape {kkt.shape}, "
          f"row sizes {kkt.row_sizes}")
    print(f"  H: {sym_h!r}")
    print(f"  C: {sym_c!r}")

    # ---- solve with preconditioned CG ---------------------------------
    rhs = rng.standard_normal(n1 + n2)
    sess = ProfileSession("kkt-pcg")
    with observe(session=sess):
        res = pcg(kkt, rhs, tol=1e-10, maxiter=500)
    print(f"\npcg: converged={res.converged} in {res.iterations} "
          f"iterations, final residual {res.history[-1]:.3e}")
    print("per-block SpMV counts:",
          {f"({i},{j})": n for (i, j), n in sorted(kkt.spmv_counts.items())})

    # ---- per-block observability breakdown ----------------------------
    per_block = {}
    for sp in sess.spans:
        if sp.name != "blockop.block":
            continue
        key = (sp.attrs["i"], sp.attrs["j"])
        cnt, tot = per_block.get(key, (0, 0.0))
        per_block[key] = (cnt + 1, tot + max(sp.duration, 0.0))
    print("\nper-block spans (count, total wall seconds):")
    for (i, j), (cnt, tot) in sorted(per_block.items()):
        print(f"  block ({i},{j}): {cnt:4d} spans, {tot * 1e3:8.2f} ms")

    # ---- halved bytes: symmetric vs full carrier on H -----------------
    full_h = CRSDMatrix.from_coo(h, mrows=64)
    x = rng.standard_normal(n1)
    run_full = CrsdSpMV(full_h).run(x)
    run_sym = SymCrsdSpMV(sym_h).run(x)
    assert np.array_equal(run_sym.y, run_full.y), "bit-identity broken!"

    device = TESLA_C2050
    m_full = derive_metrics(run_full.trace, device, nnz=h.nnz)
    m_sym = derive_metrics(run_sym.trace, device, nnz=h.nnz)
    red = 1.0 - m_sym["dram_bytes"] / m_full["dram_bytes"]
    print(f"\nDRAM bytes on H ({h.nnz:,} nnz): "
          f"full {m_full['dram_bytes']:,.0f} -> "
          f"sym {m_sym['dram_bytes']:,.0f}  ({red:.1%} fewer)")

    bd_full = predict_gpu_time(run_full.trace, device)
    bd_sym = predict_gpu_time(run_sym.trace, device)
    points = [
        roofline_point("crsd(H)", run_full.trace, bd_full.total, device,
                       useful_flops=2 * h.nnz),
        roofline_point("sym_crsd(H)", run_sym.trace, bd_sym.total, device,
                       useful_flops=2 * h.nnz),
    ]
    print()
    print(render_roofline(points))
    bw_red = 1.0 - bd_sym.bandwidth_time / bd_full.bandwidth_time
    print(f"\nbandwidth-term time: full {bd_full.bandwidth_time * 1e6:.1f} us"
          f" -> sym {bd_sym.bandwidth_time * 1e6:.1f} us "
          f"({bw_red:.1%} less DRAM pressure); the halved slab lifts the "
          f"roofline ceiling from "
          f"{points[0].ceiling_gflops():.1f} to "
          f"{points[1].ceiling_gflops():.1f} GFLOPS at this size "
          f"(binding cost-model term: full {bd_full.bound!r} -> "
          f"sym {bd_sym.bound!r}).")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Implicit 2-D heat equation driven by CRSD SpMV.

The paper motivates diagonal sparse matrices with PDE discretisations
(FDM/FVM, Section I).  This example assembles the backward-Euler system
``(I + dt * L) u_new = u_old`` for the 2-D heat equation on a regular
grid (a 5-point-stencil diagonal matrix, the ecology1/2 structure),
stores it in CRSD, and solves each time step with conjugate gradients
whose only matrix operation is the generated CRSD kernel running on the
simulated GPU.

Run:  python examples/pde_heat_solver.py
"""

import numpy as np

from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.matrices.generators import grid_stencil, stencil_offsets
from repro.perf import gflops, predict_gpu_time


def assemble_heat_matrix(nx, ny, dt=1.0):
    """I + dt * (negative 5-point Laplacian), SPD."""
    rng = np.random.default_rng(0)
    sten = grid_stencil((nx, ny), stencil_offsets((nx, ny), 1), rng)
    offs = sten.offsets_of_entries()
    vals = np.where(offs == 0, 1.0 + 4.0 * dt, -dt)
    return COOMatrix(sten.rows, sten.cols, vals, sten.shape)


def cg(apply_a, b, tol=1e-10, maxiter=1000):
    x = np.zeros_like(b)
    r = b - apply_a(x)
    p = r.copy()
    rs = r @ r
    for it in range(1, maxiter + 1):
        ap = apply_a(p)
        alpha = rs / (p @ ap)
        x += alpha * p
        r -= alpha * ap
        rs_new = r @ r
        if np.sqrt(rs_new) < tol:
            return x, it
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, maxiter


def main():
    nx = ny = 48
    n = nx * ny
    steps = 5
    a = assemble_heat_matrix(nx, ny)
    print(f"heat system: {n} unknowns, nnz = {a.nnz:,} "
          f"({a.diagonal_offsets().size} diagonals)")

    crsd = CRSDMatrix.from_coo(a, mrows=64)
    runner = CrsdSpMV(crsd)
    print(f"CRSD: {crsd.num_dia_patterns} pattern(s), "
          f"{len(crsd.regions)} region(s), fill {crsd.fill_zeros}")

    # initial condition: a hot square in the middle
    u = np.zeros((nx, ny))
    u[nx // 3 : 2 * nx // 3, ny // 3 : 2 * ny // 3] = 100.0
    u = u.ravel()
    total_heat0 = u.sum()

    spmv_count = 0

    def apply_a(v):
        nonlocal spmv_count
        spmv_count += 1
        return runner.run(v, trace=False).y

    for step in range(1, steps + 1):
        u, iters = cg(apply_a, u)
        print(f"step {step}: CG converged in {iters:3d} iterations, "
              f"peak T = {u.max():7.3f}, total heat = {u.sum():.3f}")

    # diffusion sanity: heat conserved (Neumann-free interior decay is
    # small over few steps), temperature spreading
    assert abs(u.sum() - total_heat0) / total_heat0 < 0.6
    assert u.max() < 100.0

    # one traced SpMV for the performance picture
    run = runner.run(u)
    perf = predict_gpu_time(run.trace, runner.device)
    print(
        f"\n{spmv_count} SpMV calls on the simulated GPU; one SpMV modelled at "
        f"{perf.total * 1e6:.1f}us ({gflops(a.nnz, perf.total):.2f} GFLOPS, "
        f"bound: {perf.bound})"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Astrophysics pipeline: the paper's motivating application, end to end.

The last six Table V matrices come from a core-convection simulation
(Chan, Li & Liao 2006) whose FDM/FEM coefficient matrices have the
Fig. 1 structure: a regular band plus far diagonals broken by idle
sections plus scatter points.  This example runs that workload the way
a user of this library would:

1. generate the s80_80_50-structure matrix (scaled),
2. diagonally precondition it (the raw convection operator is not
   diagonally dominant) and **autotune** CRSD's build parameters,
3. solve a time step with **BiCGSTAB** where every SpMV is the
   generated CRSD kernel on the simulated GPU,
4. report the SpMV budget and what the tuned format saved.

Run:  python examples/astro_convection.py
"""

import numpy as np

from repro.core.autotune import tune
from repro.formats.coo import COOMatrix
from repro.gpu_kernels import CrsdSpMV, EllSpMV
from repro.formats.ell import ELLMatrix
from repro.matrices.suite23 import get_spec
from repro.perf import gflops, predict_gpu_time
from repro.solvers import bicgstab

SCALE = 0.01


def make_system(scale=SCALE, seed=7):
    """A solvable convection-like system with the astro structure:
    the suite matrix's off-diagonals, re-weighted under a dominant
    diagonal (an implicit time step does exactly this)."""
    coo = get_spec("s80_80_50").generate(scale=scale, seed=seed)
    offs = coo.offsets_of_entries()
    lengths = coo.row_lengths()
    vals = np.where(offs == 0, 0.0, coo.vals * 0.2)
    base = COOMatrix(coo.rows, coo.cols, vals, coo.shape)
    # dominant diagonal: 1 + sum |off-diagonal| per row
    dom = np.zeros(coo.nrows)
    np.add.at(dom, base.rows, np.abs(base.vals))
    diag_rows = np.arange(coo.nrows)
    diag = COOMatrix(diag_rows, diag_rows, 1.0 + dom, coo.shape)
    from repro.matrices.generators import merge

    return merge(coo.shape, base, diag)


def main():
    a = make_system()
    n = a.nrows
    print(f"convection system: {n:,} unknowns, nnz = {a.nnz:,}")

    # ---- tune the storage --------------------------------------------
    result = tune(a, mrows_grid=(64, 128, 256), threshold_grid=(0, None))
    b = result.best
    print(f"autotuned CRSD: mrows={b.mrows}, idle threshold="
          f"{'mrows' if b.idle_fill_max_rows is None else b.idle_fill_max_rows}, "
          f"local memory {'on' if b.use_local_memory else 'off'} "
          f"({len(result.candidates)} candidates evaluated)")
    crsd = result.build(a)
    print(f"  patterns={crsd.num_dia_patterns}  regions={len(crsd.regions)}  "
          f"scatter rows={crsd.num_scatter_rows}  fill={crsd.fill_zeros:,}")

    runner = CrsdSpMV(crsd, use_local_memory=b.use_local_memory)

    # ---- solve a time step -------------------------------------------
    rng = np.random.default_rng(0)
    rhs = rng.standard_normal(n)
    res = bicgstab(runner, rhs, tol=1e-9)
    assert res.converged, "BiCGSTAB failed to converge"
    err = np.abs(a.matvec(res.x) - rhs).max()
    print(f"BiCGSTAB: {res.iterations} iterations, {res.spmv_count} SpMV "
          f"calls, residual {res.residual_norm:.2e}, check |Ax-b| = {err:.2e}")

    # ---- what did the format buy? -------------------------------------
    x = rng.standard_normal(n)
    t_crsd = predict_gpu_time(runner.run(x).trace, runner.device).total
    ell = EllSpMV(ELLMatrix.from_coo(a))
    t_ell = predict_gpu_time(ell.run(x).trace, ell.device).total
    print(
        f"\nper-SpMV (modelled): CRSD {t_crsd * 1e6:.1f}us "
        f"({gflops(a.nnz, t_crsd):.2f} GFLOPS) vs ELL {t_ell * 1e6:.1f}us "
        f"-> {t_ell / t_crsd:.2f}x; over the solve that is "
        f"{res.spmv_count * (t_ell - t_crsd) * 1e6:.0f}us saved"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Serving quickstart: micro-batched SpMV over a request stream.

Opens a serving session (``repro.serve_session``), submits a Poisson
stream of requests against two suite matrices, and shows what the
serving subsystem does with it: same-matrix requests coalesce into
multi-vector ``CrsdSpMM`` launches, prepared artifacts are reused
through the fingerprint-keyed plan cache, and every served ``y`` is
verified bit-identical to a per-request reference run.  A second pass
with batching disabled (``max_batch=1``) quantifies the throughput the
coalescing buys.  All timing is simulated seconds — deterministic,
no wall clock.

Run:  python examples/serving_quickstart.py
"""

import numpy as np

import repro
from repro.matrices.suite23 import get_spec

SCALE = 0.02
NREQ = 40
RATE = 4e5  # arrivals per simulated second: deep in the batching regime


def request_stream(matrices, rng):
    """A seeded open-loop Poisson stream over the working set."""
    t = 0.0
    for _ in range(NREQ):
        t += rng.exponential(1.0 / RATE)
        coo = matrices[rng.integers(len(matrices))]
        yield t, coo, rng.standard_normal(coo.ncols)


def serve(matrices, max_batch):
    """Serve one identical stream; returns (results, engine)."""
    session = repro.serve_session(max_batch=max_batch, size_scale=SCALE)
    rng = np.random.default_rng(7)  # same seed -> same stream both passes
    for at, coo, x in request_stream(matrices, rng):
        session.submit(coo, x, at=at)
    return session.run(), session


def main():
    names = ("kim1", "wang3")
    matrices = [get_spec(n).generate(scale=SCALE, seed=0) for n in names]
    for name, coo in zip(names, matrices):
        print(f"{name}: {coo.nrows} x {coo.ncols}, nnz = {coo.nnz:,}, "
              f"fingerprint {repro.fingerprint(coo)}")

    # ---- batched serving ----------------------------------------------
    results, session = serve(matrices, max_batch=8)
    stats = session.stats()
    batching = stats["batching"]
    print(f"\nserved {len(results)} requests in "
          f"{stats['clock_s'] * 1e6:.1f} simulated us")
    print(f"  launches : {batching['spmm_launches']} SpMM + "
          f"{batching['spmv_launches']} SpMV")
    print(f"  batches  : {batching['histogram']}")
    print(f"  cache    : {stats['cache']['misses']} prepares, "
          f"{stats['cache']['hits']} reuses "
          f"(hit rate {stats['cache']['hit_rate']:.0%})")

    lat = sorted(r.latency_s for r in results if r.served)
    print(f"  latency  : p50 {lat[len(lat) // 2] * 1e6:.1f} us, "
          f"max {lat[-1] * 1e6:.1f} us")

    # ---- verify: batched bits == per-request bits ---------------------
    runners = {id(c): repro.build(c) for c in matrices}
    rng = np.random.default_rng(7)
    by_id = {r.request_id: r for r in results}  # run() completion order
    checked = 0
    for rid, (_, coo, x) in enumerate(request_stream(matrices, rng)):
        result = by_id[rid]  # submit() assigned ids in stream order
        assert result.served
        assert np.array_equal(result.y, runners[id(coo)].run(x).y)
        checked += 1
    print(f"\nall {checked} served y bit-identical to per-request runs")

    # ---- the win: same stream, batching off ---------------------------
    solo_results, solo = serve(matrices, max_batch=1)
    makespan = stats["clock_s"]
    solo_makespan = solo.stats()["clock_s"]
    assert all(r.served for r in solo_results)
    print(f"unbatched pass: {solo_makespan * 1e6:.1f} us "
          f"-> batching serves the stream "
          f"{solo_makespan / makespan:.1f}x faster")


if __name__ == "__main__":
    main()

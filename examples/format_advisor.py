#!/usr/bin/env python
"""Format advisor: which storage format should a matrix use?

Loads a matrix — a Table V suite name (``kim1``, ``s3dkt3m2``, ...) or
a MatrixMarket ``.mtx`` file — prints its diagonal-structure statistics,
simulates every format's SpMV on the modelled C2050, and recommends a
format.  Reproduces in miniature the paper's Section IV narrative:
"the storage format which leads to the optimal performance varies
among different matrices".

Run:  python examples/format_advisor.py [matrix-name-or-path ...]
      (defaults to a contrasting trio: kim1, s3dkt3m2, wang3)
"""

import sys

import numpy as np

from repro.bench.runner import effective_scale, run_gpu_matrix, scaled_device
from repro.matrices.mmio import read_matrix_market
from repro.matrices.stats import compute_stats
from repro.matrices.suite23 import get_spec

SCALE = 0.02


def advise_suite_matrix(name):
    spec = get_spec(name)
    scale = effective_scale(spec, SCALE)
    coo = spec.generate(scale=scale)
    print(f"\n=== {name} (suite #{spec.number}, scale {scale:.3f}) ===")
    print(f"structure: {compute_stats(coo)}")
    records = run_gpu_matrix(spec, SCALE, "double")
    _report(records)


def advise_mtx_file(path):
    coo = read_matrix_market(path)
    print(f"\n=== {path} ===")
    print(f"structure: {compute_stats(coo)}")
    from repro.bench.runner import GPU_FORMATS, _build_runners
    from repro.perf.costmodel import predict_gpu_time
    from repro.perf.metrics import gflops

    rng = np.random.default_rng(0)
    x = rng.standard_normal(coo.ncols)
    ref = coo.matvec(x)
    rows = []
    for fmt in GPU_FORMATS:
        runner = _build_runners(coo, scaled_device(1.0), "double", [fmt], 128)[fmt]
        run = runner.run(x)
        assert np.allclose(run.y, ref, atol=1e-6)
        perf = predict_gpu_time(run.trace, runner.device)
        rows.append((fmt, gflops(coo.nnz, perf.total), perf.total))
    rows.sort(key=lambda r: -r[1])
    for fmt, gf, secs in rows:
        print(f"  {fmt:<6} {gf:8.2f} GFLOPS   ({secs * 1e6:8.1f} us)")
    print(f"recommendation: {rows[0][0].upper()}")


def _report(records):
    ok = [r for r in records if not r.oom]
    ok.sort(key=lambda r: -r.gflops)
    print(f"  {'format':<6} {'GFLOPS':>8}")
    for r in records:
        if r.oom:
            print(f"  {r.fmt:<6} {'OOM':>8}")
    for r in ok:
        print(f"  {r.fmt:<6} {r.gflops:>8.2f}")
    best = ok[0]
    print(f"  recommendation: {best.fmt.upper()}"
          + ("" if best.fmt == "crsd" else "  (CRSD is not optimal here)"))


def main(argv):
    targets = argv[1:] or ["kim1", "s3dkt3m2", "wang3"]
    for t in targets:
        if t.endswith(".mtx") or t.endswith(".mtx.gz"):
            advise_mtx_file(t)
        else:
            advise_suite_matrix(t)


if __name__ == "__main__":
    main(sys.argv)

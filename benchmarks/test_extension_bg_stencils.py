"""E15 (extension) — the Bell & Garland structured-matrix context.

SC'09's headline for structured matrices: DIA is the fastest format on
pure grid stencils (zero fill, no index traffic), with ELL close
behind and CSR last.  Running those matrices through our device model
checks the reproduction from the baseline paper's side — and locates
CRSD: on perfect stencils CRSD ~= DIA (same information content; CRSD
adds segmentation), so the paper's format *matches* rather than beats
the specialist, exactly why its contribution targets the *broken*
diagonal structures instead.
"""

import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import _build_runners, scaled_device
from repro.matrices.bg_suite import BG_SUITE
from repro.perf.costmodel import predict_gpu_time
from repro.perf.metrics import gflops

import numpy as np

SCALE = 0.005
FORMATS = ("dia", "ell", "csr", "crsd")


@pytest.fixture(scope="module")
def results():
    out = {}
    for spec in BG_SUITE:
        coo = spec.generate(scale=SCALE)
        dev = scaled_device(SCALE)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(coo.ncols)
        ref = coo.matvec(x)
        row = {}
        for fmt in FORMATS:
            runner = _build_runners(coo, dev, "double", [fmt], 128)[fmt]
            run = runner.run(x)
            assert np.allclose(run.y, ref, atol=1e-8 * max(1, np.abs(ref).max()))
            perf = predict_gpu_time(run.trace, dev, size_scale=SCALE)
            row[fmt] = (gflops(coo.nnz, perf.total), perf.total)
        out[spec.name] = (spec, row)
    return out


def test_bg_table(results, benchmark):
    lines = ["Bell & Garland structured matrices (double, GFLOPS)",
             f"{'matrix':<14} {'points':>6} " +
             " ".join(f"{f:>7}" for f in FORMATS)]
    for name, (spec, row) in results.items():
        lines.append(
            f"{name:<14} {spec.points:>6} " +
            " ".join(f"{row[f][0]:>7.2f}" for f in FORMATS)
        )
    save_table("extension_bg_stencils", "\n".join(lines))

    spec = BG_SUITE[1]
    coo = spec.generate(scale=SCALE)
    dev = scaled_device(SCALE)
    runner = _build_runners(coo, dev, "double", ["dia"], 128)["dia"]
    x = np.random.default_rng(0).standard_normal(coo.ncols)
    benchmark.pedantic(lambda: runner.run(x), rounds=1, iterations=1)


def test_dia_at_top_on_pure_stencils(results):
    """SC'09's structured-matrix finding."""
    for name, (_, row) in results.items():
        t_dia = row["dia"][1]
        assert t_dia <= row["ell"][1] * 1.05, name
        assert t_dia <= row["csr"][1], name


def test_crsd_matches_dia_on_pure_stencils(results):
    """CRSD stores the same information as DIA here; it must land
    within ~35% (its segmentation overheads) rather than lose badly."""
    for name, (_, row) in results.items():
        ratio = row["crsd"][1] / row["dia"][1]
        assert ratio < 1.35, (name, ratio)


def test_wider_stencils_raise_gflops(results):
    """More points per row amortise the y-store and launch overheads:
    27-point beats 7-point in GFLOPS for every format."""
    for fmt in FORMATS:
        g7 = results["Laplace_7pt"][1][fmt][0]
        g27 = results["Laplace_27pt"][1][fmt][0]
        assert g27 > g7, fmt

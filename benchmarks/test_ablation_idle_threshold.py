"""A3 — idle-section threshold: fill vs break (Section II-C).

Sweeping ``idle_fill_max_rows`` on an astrophysics matrix (broken ±far
diagonals, Fig. 1/3): a tiny threshold breaks every small gap into its
own pattern region (more regions/codelets, per-section segment fill),
a huge threshold zero-fills entire idle sections (DIA-like waste).
The paper's position — "it all depends on the property of matrices" —
is quantified here.
"""

import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import effective_scale, bench_scale
from repro.core.crsd import CRSDMatrix
from repro.matrices.suite23 import get_spec

SWEEP = [0, 8, 64, 128, 1024, 10**9]


@pytest.fixture(scope="module")
def sweep():
    spec = get_spec("us100_100_62")
    coo = spec.generate(scale=effective_scale(spec, bench_scale()))
    out = {}
    for thr in SWEEP:
        m = CRSDMatrix.from_coo(coo, mrows=128, idle_fill_max_rows=thr)
        out[thr] = m
    return coo, out


def test_threshold_table(sweep, benchmark):
    coo, table = sweep
    lines = [
        "idle_fill_max_rows sweep on us100_100_62",
        f"{'threshold':>10} {'regions':>8} {'patterns':>9} {'fill zeros':>11} "
        f"{'fill %':>7} {'scatter':>8}",
    ]
    for thr, m in table.items():
        fill_pct = 100 * m.fill_zeros / max(m.dia_val.size, 1)
        lines.append(
            f"{thr:>10} {len(m.regions):>8} {m.num_dia_patterns:>9} "
            f"{m.fill_zeros:>11} {fill_pct:>6.1f}% {m.num_scatter_rows:>8}"
        )
    save_table("ablation_idle_threshold", "\n".join(lines))

    benchmark.pedantic(
        lambda: CRSDMatrix.from_coo(coo, mrows=128, idle_fill_max_rows=128),
        rounds=1, iterations=1,
    )


def test_all_thresholds_correct(sweep):
    import numpy as np

    coo, table = sweep
    x = np.random.default_rng(0).standard_normal(coo.ncols)
    ref = coo.matvec(x)
    for thr, m in table.items():
        assert np.allclose(m.matvec(x), ref), thr


def test_huge_threshold_fills_like_dia(sweep):
    """Filling every gap stores (far) more explicit zeros."""
    _, table = sweep
    assert table[10**9].fill_zeros > 3 * table[64].fill_zeros


def test_zero_threshold_fragments_regions(sweep):
    _, table = sweep
    assert len(table[0].regions) >= len(table[1024].regions)


def test_moderate_threshold_minimises_slab(sweep):
    """Some finite threshold beats the fill-everything extreme on
    stored slots (the CRSD-vs-DIA argument itself)."""
    _, table = sweep
    best = min(m.dia_val.size for m in table.values())
    assert table[10**9].dia_val.size > best

"""Shared machinery for the per-figure benchmark files.

The full suite sweep (23 matrices x 5 formats, functionally simulated)
is expensive, so it runs at most once per precision per pytest session
and is shared by every experiment file.  Each experiment writes its
reproduced table/series to ``benchmarks/results/<name>.txt`` (the
paper-vs-measured index in EXPERIMENTS.md is built from these) and
registers a representative timed operation with pytest-benchmark.

Scale: ``REPRO_BENCH_SCALE`` (default 0.05) with per-matrix row floors;
the device's capacity, L2 and launch overhead scale along so ratios
match the full-size machine balance (see DESIGN.md §7).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

import numpy as np
import pytest

from repro.bench.runner import (
    CpuComparison,
    GpuSuiteResult,
    bench_scale,
    run_cpu_matrix,
    run_gpu_suite,
)
from repro.matrices.suite23 import SUITE

RESULTS_DIR = Path(__file__).parent / "results"


class SuiteCache:
    """Lazy, session-wide cache of the expensive sweeps."""

    def __init__(self):
        self._gpu: Dict[str, GpuSuiteResult] = {}
        self._cpu: Dict[str, List[CpuComparison]] = {}

    def gpu(self, precision: str) -> GpuSuiteResult:
        if precision not in self._gpu:
            self._gpu[precision] = run_gpu_suite(
                scale=bench_scale(), precision=precision
            )
        return self._gpu[precision]

    def cpu(self, precision: str) -> List[CpuComparison]:
        if precision not in self._cpu:
            self._cpu[precision] = [
                run_cpu_matrix(spec, bench_scale(), precision) for spec in SUITE
            ]
        return self._cpu[precision]


@pytest.fixture(scope="session")
def cache() -> SuiteCache:
    return SuiteCache()


def save_table(name: str, text: str) -> None:
    """Persist a reproduced table and echo it (visible with ``-s``)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] -> {path}\n{text}")


def representative_spmv(precision: str = "double"):
    """A single simulated CRSD SpMV (matrix #18 at small scale) — the
    operation pytest-benchmark times for the GPU experiments."""
    from repro.bench.runner import effective_scale, scaled_device
    from repro.core.crsd import CRSDMatrix
    from repro.gpu_kernels import CrsdSpMV
    from repro.matrices.suite23 import get_spec

    spec = get_spec(18)
    scale = effective_scale(spec, 0.005)
    coo = spec.generate(scale=scale)
    runner = CrsdSpMV(
        CRSDMatrix.from_coo(coo, mrows=128),
        device=scaled_device(scale),
        precision=precision,
    )
    x = np.random.default_rng(0).standard_normal(coo.ncols)

    def op():
        return runner.run(x)

    return op

"""E16 (extension) — reordering as a CRSD enabler.

Im & Yelick's reordering idea applied to this paper: a physically
banded operator with a scrambled numbering is hostile to every
diagonal format; RCM restores the band, and with it CRSD's (and DIA's)
advantage.  The bench quantifies the before/after across formats.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import _build_runners, scaled_device
from repro.formats.coo import COOMatrix
from repro.matrices.generators import banded
from repro.perf.costmodel import predict_gpu_time
from repro.perf.metrics import gflops
from repro.reorder import bandwidth, permute, rcm_permutation

SCALE = 0.05
N = 6000
FORMATS = ("ell", "csr", "crsd")


@pytest.fixture(scope="module")
def matrices():
    rng = np.random.default_rng(0)
    band = banded(N, 3, rng)
    sym = COOMatrix(
        np.concatenate([band.rows, band.cols]),
        np.concatenate([band.cols, band.rows]),
        np.concatenate([band.vals, band.vals]),
        band.shape,
    )
    scrambled = permute(sym, rng.permutation(N))
    recovered = permute(scrambled, rcm_permutation(scrambled))
    return {"original": sym, "scrambled": scrambled, "rcm": recovered}


def run_formats(coo):
    dev = scaled_device(SCALE)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(coo.ncols)
    ref = coo.matvec(x)
    out = {}
    for fmt in FORMATS:
        runner = _build_runners(coo, dev, "double", [fmt], 128)[fmt]
        run = runner.run(x)
        assert np.allclose(run.y, ref, atol=1e-8 * max(1, np.abs(ref).max()))
        perf = predict_gpu_time(run.trace, dev, size_scale=SCALE)
        out[fmt] = gflops(coo.nnz, perf.total)
    return out


@pytest.fixture(scope="module")
def measured(matrices):
    return {name: run_formats(coo) for name, coo in matrices.items()}


def test_reordering_table(matrices, measured, benchmark):
    lines = ["RCM reordering as a CRSD enabler (double, GFLOPS)",
             f"{'ordering':<10} {'bandwidth':>9} " +
             " ".join(f"{f:>7}" for f in FORMATS)]
    for name, coo in matrices.items():
        lines.append(
            f"{name:<10} {bandwidth(coo):>9} " +
            " ".join(f"{measured[name][f]:>7.2f}" for f in FORMATS)
        )
    save_table("extension_reordering", "\n".join(lines))
    benchmark.pedantic(lambda: rcm_permutation(matrices["scrambled"]),
                       rounds=1, iterations=1)


def test_scrambling_destroys_crsd(measured):
    assert measured["scrambled"]["crsd"] < 0.5 * measured["original"]["crsd"]


def test_rcm_restores_crsd(measured):
    assert measured["rcm"]["crsd"] > 0.8 * measured["original"]["crsd"]
    assert measured["rcm"]["crsd"] > 1.5 * measured["scrambled"]["crsd"]


def test_ell_indifferent_to_ordering(measured):
    """ELL reads explicit indices; its performance must move far less
    than CRSD's under scrambling — the flip side of baked indices."""
    ell_drop = measured["original"]["ell"] / measured["scrambled"]["ell"]
    crsd_drop = measured["original"]["crsd"] / measured["scrambled"]["crsd"]
    assert crsd_drop > 1.5 * ell_drop

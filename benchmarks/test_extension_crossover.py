"""E17 (extension) — mapping the design space: where does CRSD win?

The paper evaluates 23 fixed matrices; this bench sweeps the two
structural axes that decide the format contest and locates the
crossovers:

1. **band width** (pure dense band, fill = 1): DIA's home turf — as
   the AD group widens, CRSD's tile reuse closes on DIA while ELL's
   index stream falls behind;
2. **fill ratio** (fixed 9 diagonals, shrinking occupancy in long
   sections): DIA's cost grows linearly with fill while CRSD breaks
   the idle sections — the crossover where the paper's contribution
   starts paying.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import _build_runners, scaled_device
from repro.matrices.generators import banded, multi_diagonal
from repro.perf.costmodel import predict_gpu_time

SCALE = 0.05
N = 8192


def times_for(coo, formats=("dia", "ell", "crsd")):
    dev = scaled_device(SCALE)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(coo.ncols)
    ref = coo.matvec(x)
    out = {}
    for fmt in formats:
        runner = _build_runners(coo, dev, "double", [fmt], 128)[fmt]
        run = runner.run(x)
        assert np.allclose(run.y, ref, atol=1e-8 * max(1, np.abs(ref).max()))
        out[fmt] = predict_gpu_time(run.trace, dev, size_scale=SCALE).total
    return out


@pytest.fixture(scope="module")
def band_sweep():
    rng = np.random.default_rng(0)
    out = {}
    for hw in (1, 2, 4, 8, 16):
        out[2 * hw + 1] = times_for(banded(N, hw, rng))
    return out


@pytest.fixture(scope="module")
def fill_sweep():
    rng = np.random.default_rng(0)
    out = {}
    for occupancy in (1.0, 0.5, 0.25, 0.125):
        spec = [(off, 1.0, 1) for off in (-1, 0, 1)]
        spec += [(off, occupancy, 3) for off in (-900, -300, 300, 900, 1800)]
        coo = multi_diagonal(N, spec, rng)
        out[occupancy] = (coo, times_for(coo))
    return out


def test_crossover_tables(band_sweep, fill_sweep, benchmark):
    lines = ["band-width sweep (dense band, fill=1): time ratios vs CRSD",
             f"{'diags':>6} {'DIA/CRSD':>9} {'ELL/CRSD':>9}"]
    for nd, t in band_sweep.items():
        lines.append(f"{nd:>6} {t['dia'] / t['crsd']:>9.2f} "
                     f"{t['ell'] / t['crsd']:>9.2f}")
    lines.append("")
    lines.append("fill sweep (9 diagonals, 5 broken): time ratios vs CRSD")
    lines.append(f"{'occupancy':>9} {'DIA fill':>9} {'DIA/CRSD':>9} {'ELL/CRSD':>9}")
    for occ, (coo, t) in fill_sweep.items():
        from repro.matrices.stats import compute_stats

        fill = compute_stats(coo).dia_fill_ratio
        lines.append(f"{occ:>9.3f} {fill:>9.2f} {t['dia'] / t['crsd']:>9.2f} "
                     f"{t['ell'] / t['crsd']:>9.2f}")
    save_table("extension_crossover", "\n".join(lines))

    rng = np.random.default_rng(0)
    coo = banded(N, 4, rng)
    benchmark.pedantic(lambda: times_for(coo, formats=("crsd",)),
                       rounds=1, iterations=1)


def test_ell_gap_grows_with_band_width(band_sweep):
    """Wider AD groups amortise the x tile further while ELL pays 4
    index bytes per extra slot: the CRSD/ELL ratio must not shrink."""
    ratios = [t["ell"] / t["crsd"] for t in band_sweep.values()]
    assert ratios[-1] >= ratios[0]
    assert ratios[-1] > 1.2


def test_dia_crsd_crossover_on_band_width(band_sweep):
    """Narrow bands: DIA's zero-overhead slab wins.  Wide bands: CRSD's
    local-memory tile stops re-reading x through the L2 pipe (DIA reads
    x once per diagonal) and overtakes — a crossover the paper's
    fixed-suite evaluation cannot show."""
    assert band_sweep[3]["dia"] <= band_sweep[3]["crsd"]
    assert band_sweep[33]["dia"] > band_sweep[33]["crsd"]
    # and the trend is monotone
    ratios = [t["dia"] / t["crsd"] for t in band_sweep.values()]
    assert all(b >= a * 0.98 for a, b in zip(ratios, ratios[1:]))


def test_dia_crossover_with_fill(fill_sweep):
    """As occupancy drops, DIA's relative cost must grow monotonically
    and cross CRSD: the paper's core claim as a curve."""
    ratios = [t["dia"] / t["crsd"] for _, t in fill_sweep.values()]
    assert all(b >= a * 0.95 for a, b in zip(ratios, ratios[1:]))
    assert ratios[0] < 1.3        # full occupancy: DIA fine
    assert ratios[-1] > 1.5       # broken diagonals: CRSD clearly ahead

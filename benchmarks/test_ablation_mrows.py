"""A2 — row-segment size (mrows) sweep.

The paper prescribes ``mrows`` as a multiple of the wavefront size (32)
— that keeps every slab load of a wavefront inside one diagonal, i.e.
fully coalesced.  The sweep also exposes the two pressures on the
choice: small segments multiply work-groups (and barriers), large
segments inflate section fill at region boundaries.
"""

import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import run_gpu_matrix
from repro.matrices.suite23 import get_spec

SCALE = 0.02
SWEEP = [32, 48, 64, 128, 256]


@pytest.fixture(scope="module")
def sweep():
    spec = get_spec("s80_80_50")
    out = {}
    for mrows in SWEEP:
        rec = run_gpu_matrix(spec, SCALE, "double", formats=["crsd"],
                             mrows=mrows)[0]
        out[mrows] = rec
    return out


def test_mrows_table(sweep, benchmark):
    lines = ["mrows sweep on s80_80_50 (double)",
             f"{'mrows':>6} {'GFLOPS':>8} {'barriers':>9} {'aligned':>8}"]
    for mrows, rec in sweep.items():
        lines.append(
            f"{mrows:>6} {rec.gflops:>8.2f} {rec.extra['barriers']:>9.0f} "
            f"{'yes' if mrows % 32 == 0 else 'no':>8}"
        )
    save_table("ablation_mrows", "\n".join(lines))

    spec = get_spec("s80_80_50")
    benchmark.pedantic(
        lambda: run_gpu_matrix(spec, SCALE, "double", formats=["crsd"],
                               mrows=128),
        rounds=1, iterations=1,
    )


def test_all_mrows_correct(sweep):
    for mrows, rec in sweep.items():
        assert rec.max_abs_err < 1e-8, mrows


def test_wavefront_multiple_wins(sweep):
    """48 (1.5 wavefronts) must not beat the best aligned choice."""
    best_aligned = max(r.gflops for m, r in sweep.items() if m % 32 == 0)
    assert sweep[48].gflops <= best_aligned * 1.02


def test_smaller_segments_more_barriers(sweep):
    assert sweep[32].extra["barriers"] > sweep[256].extra["barriers"]


def test_default_is_near_optimal(sweep):
    best = max(r.gflops for r in sweep.values())
    assert sweep[128].gflops >= 0.85 * best

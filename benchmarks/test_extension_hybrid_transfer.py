"""E11 (extension) — the paper's conclusion quantified.

Section VI: (a) "The advantage will become less if we need transfer
the source vector x and destination vector y between GPU and CPU for
each SpMV operation"; (b) "we plan to divide the task for both GPU and
CPU to implement the hybrid programming."  Both statements become
measurements here.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import effective_scale, scaled_device, bench_scale
from repro.core.crsd import CRSDMatrix
from repro.cpu.kernels import CpuCsrSpMV
from repro.formats.csr import CSRMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.hybrid import HybridSpMV, spmv_time_with_transfers
from repro.hybrid.transfer import PCIeSpec
from repro.matrices.suite23 import get_spec
from repro.perf.costmodel import predict_gpu_time


@pytest.fixture(scope="module")
def measurements():
    out = {}
    for name in ("ecology1", "kim2", "nemeth21"):
        spec = get_spec(name)
        scale = effective_scale(spec, bench_scale())
        coo = spec.generate(scale=scale)
        dev = scaled_device(scale)
        # the PCIe link shrinks with the device so ratios stay full-size
        pcie = PCIeSpec("scaled PCIe 2.0 x16", bandwidth_gbs=6.0,
                        latency_us=10.0 * scale)
        x = np.random.default_rng(0).standard_normal(coo.ncols)

        gpu = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=128), device=dev)
        run = gpu.run(x)
        launches = 2 if gpu.matrix.num_scatter_rows else 1
        t_kernel = predict_gpu_time(run.trace, dev, num_launches=launches,
                                    size_scale=scale).total
        t_with_xfer = spmv_time_with_transfers(t_kernel, coo.nrows,
                                               coo.ncols, "double", pcie)
        t_cpu8 = CpuCsrSpMV(CSRMatrix.from_coo(coo), threads=8).run(x).seconds

        hybrid = HybridSpMV(coo, device=dev, size_scale=scale)
        hres = hybrid.run(x)
        assert np.allclose(hres.y, coo.matvec(x), atol=1e-8)
        out[name] = dict(kernel=t_kernel, with_xfer=t_with_xfer,
                         cpu8=t_cpu8, hybrid=hres)
    return out


def test_extension_table(measurements, benchmark):
    lines = ["conclusion-section extensions (modelled seconds)",
             f"{'matrix':<10} {'GPU kernel':>11} {'+transfers':>11} "
             f"{'CPU 8thr':>10} {'hybrid':>10} {'gpu frac':>9}"]
    for name, m in measurements.items():
        h = m["hybrid"]
        lines.append(
            f"{name:<10} {m['kernel']:>11.3e} {m['with_xfer']:>11.3e} "
            f"{m['cpu8']:>10.3e} {h.total_seconds:>10.3e} "
            f"{h.gpu_fraction:>8.0%}"
        )
    save_table("extension_hybrid_transfer", "\n".join(lines))

    spec = get_spec("ecology1")
    scale = effective_scale(spec, bench_scale())
    coo = spec.generate(scale=scale)
    hybrid = HybridSpMV(coo, gpu_fraction=0.8, device=scaled_device(scale),
                        size_scale=scale)
    x = np.random.default_rng(0).standard_normal(coo.ncols)
    benchmark.pedantic(lambda: hybrid.run(x), rounds=1, iterations=1)


def test_transfers_erode_gpu_advantage(measurements):
    """Claim (a): per-SpMV transfers cut the CPU-vs-GPU speedup
    substantially (x and y are ~2 vector passes over a ~3-pass kernel)."""
    for name, m in measurements.items():
        adv_resident = m["cpu8"] / m["kernel"]
        adv_transfer = m["cpu8"] / m["with_xfer"]
        assert adv_transfer < 0.8 * adv_resident, name
        assert adv_transfer > 0.5, name  # but the GPU is not useless


def test_hybrid_beats_cpu_alone(measurements):
    for name, m in measurements.items():
        assert m["hybrid"].total_seconds < m["cpu8"], name


def test_hybrid_roughly_matches_gpu_alone(measurements):
    """Claim (b), measured honestly: the CPU's extra bandwidth helps
    where it is competitive (ecology1: ~8x gap) and is near-neutral
    where the GPU dominates — the split CPU part still gathers across
    the full x, so its cost does not shrink linearly with rows."""
    for name, m in measurements.items():
        assert m["hybrid"].total_seconds <= m["kernel"] * 1.15, name
    assert (
        measurements["ecology1"]["hybrid"].total_seconds
        < measurements["ecology1"]["kernel"]
    )

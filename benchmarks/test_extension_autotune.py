"""E13 (extension) — OSKI-style autotuning of CRSD parameters.

Section V credits OSKI with runtime parameter selection; this bench
applies the same idea to CRSD's knobs and measures what tuning buys
over the fixed defaults across structurally different matrices.
"""

import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import bench_scale, effective_scale, scaled_device
from repro.core.autotune import tune
from repro.matrices.suite23 import get_spec

MATRICES = ("ecology1", "nemeth21", "us80_80_50")


@pytest.fixture(scope="module")
def tuned():
    out = {}
    for name in MATRICES:
        spec = get_spec(name)
        scale = effective_scale(spec, bench_scale())
        coo = spec.generate(scale=scale)
        dev = scaled_device(scale)
        res = tune(coo, mrows_grid=(64, 128, 256),
                   threshold_grid=(0, None),
                   device=dev, size_scale=scale)
        default = next(
            c for c in res.candidates
            if c.mrows == 128 and c.idle_fill_max_rows is None
            and c.use_local_memory
        )
        out[name] = (res, default)
    return out


def test_autotune_table(tuned, benchmark):
    lines = ["CRSD autotuning vs fixed defaults",
             f"{'matrix':<12} {'default(s)':>11} {'tuned(s)':>11} {'gain':>6} "
             f"{'mrows':>6} {'thr':>6} {'lmem':>5}"]
    for name, (res, default) in tuned.items():
        b = res.best
        thr = "auto" if b.idle_fill_max_rows is None else str(b.idle_fill_max_rows)
        lines.append(
            f"{name:<12} {default.seconds:>11.3e} {b.seconds:>11.3e} "
            f"{default.seconds / b.seconds:>5.2f}x {b.mrows:>6} {thr:>6} "
            f"{'on' if b.use_local_memory else 'off':>5}"
        )
    save_table("extension_autotune", "\n".join(lines))

    spec = get_spec("ecology1")
    scale = effective_scale(spec, bench_scale())
    coo = spec.generate(scale=scale)
    benchmark.pedantic(
        lambda: tune(coo, mrows_grid=(64, 128), threshold_grid=(None,),
                     fast=True),
        rounds=1, iterations=1,
    )


def test_tuned_never_worse_than_default(tuned):
    for name, (res, default) in tuned.items():
        assert res.best.seconds <= default.seconds, name


def test_tuning_finds_different_optima(tuned):
    """The structural point: no single configuration wins everywhere
    (ecology wants staging off, nemeth wants it on)."""
    configs = {
        (res.best.use_local_memory,)
        for res in (r for r, _ in tuned.values())
    }
    assert len(configs) > 1

"""E8 — Table III + Fig. 6: the generated kernel for the Fig. 2 matrix.

Reproduces the inferred per-pattern information of Table III and the
shape of the Fig. 6 kernel (switch over patterns, unrolled multiply-
adds with literal indices, ELL scatter part), and benchmarks the
runtime code generation itself — the step a real deployment pays once
per matrix before handing the source to ``clBuildProgram``.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.codegen import build_plan, generate_opencl_source, generate_python_kernel
from repro.codegen.validator import validate_opencl_source
from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from tests.conftest import FIG2_ENTRIES, FIG2_SHAPE


@pytest.fixture(scope="module")
def crsd():
    rows, cols = zip(*FIG2_ENTRIES)
    coo = COOMatrix(np.array(rows), np.array(cols),
                    np.array(list(FIG2_ENTRIES.values())), FIG2_SHAPE)
    return CRSDMatrix.from_coo(coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)


def test_table3(crsd, benchmark):
    lines = ["Table III reproduction (mrows=2)",
             "token        p=0   p=1    (paper: p=0 / p=1)"]
    r0, r1 = crsd.regions
    rowsfmt = [
        ("NRS", r0.nrs, r1.nrs, "1 / 2"),
        ("NNzRS", r0.nnz_per_segment, r1.nnz_per_segment, "10 / 6"),
        ("SR", r0.start_row, r1.start_row, "0 / 2"),
        ("NDias", r0.ndiags, r1.ndiags, "5 / 3"),
    ]
    for tok, a, b, paper in rowsfmt:
        lines.append(f"{tok:<12} {a:<5} {b:<6} ({paper})")
    save_table("table3_inferred_info", "\n".join(lines))

    assert (r0.nrs, r0.nnz_per_segment, r0.start_row, r0.ndiags) == (1, 10, 0, 5)
    assert (r1.nrs, r1.nnz_per_segment, r1.start_row, r1.ndiags) == (2, 6, 2, 3)

    plan = build_plan(crsd)
    benchmark.pedantic(lambda: generate_python_kernel(plan), rounds=5,
                       iterations=1)


def test_fig6_kernel_shape(crsd):
    src = generate_opencl_source(build_plan(crsd))
    save_table("fig6_generated_kernel", src)
    names = validate_opencl_source(src)
    assert names == ["crsd_dia_spmv", "crsd_scatter_spmv"]
    # the Fig. 6 structure: one case per pattern, loop-unrolled bodies
    assert src.count("case ") == 2
    assert "switch (p)" in src
    # pattern 0 has 5 diagonals -> 5 multiply-adds in case 0
    case0 = src.split("case 0:")[1].split("case 1:")[0]
    assert case0.count("acc +=") == 5


def test_generated_and_reference_agree(crsd):
    from repro.gpu_kernels import CrsdSpMV

    rng = np.random.default_rng(1)
    x = rng.standard_normal(9)
    run = CrsdSpMV(crsd).run(x)
    assert np.allclose(run.y, crsd.matvec(x))


def test_codegen_scales_to_many_patterns(benchmark):
    """Generation cost for a realistic matrix (hundreds of regions)."""
    from repro.matrices.suite23 import get_spec

    coo = get_spec("s80_80_50").generate(scale=0.02)
    crsd = CRSDMatrix.from_coo(coo, mrows=128)
    plan = build_plan(crsd)
    compiled = benchmark.pedantic(
        lambda: generate_python_kernel(plan), rounds=3, iterations=1
    )
    assert compiled.dia_kernel is not None

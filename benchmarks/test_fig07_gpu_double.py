"""E1 — Fig. 7: GFLOPS per format, double precision, GPU.

Regenerates the figure's 23 x 5 GFLOPS table on the simulated C2050
and checks the paper's qualitative claims for the double-precision
comparison:

- DIA collapses on s3dkt3m2/s3dkq4m2 (655 sparse diagonals) and runs
  out of device memory on af_*_k101;
- ELL is the strongest baseline on the DIA-hostile matrices;
- CRSD delivers the best (or within-few-percent) performance on every
  matrix except wang3/wang4, where ELL wins (Section IV-A).
"""

import pytest

from benchmarks.conftest import representative_spmv, save_table
from repro.bench import shapes
from repro.bench.report import gflops_table

FORMATS = ["dia", "ell", "csr", "hyb", "crsd"]


@pytest.fixture(scope="module")
def result(cache):
    return cache.gpu("double")


def test_fig07_table(result, benchmark):
    from benchmarks.conftest import RESULTS_DIR
    from repro.bench.figures import suite_chart, write_csv

    save_table("fig07_gpu_double_gflops", gflops_table(result, FORMATS))
    save_table("fig07_chart", suite_chart(result, FORMATS))
    RESULTS_DIR.mkdir(exist_ok=True)
    write_csv(result, RESULTS_DIR / "fig07_gpu_double.csv", FORMATS)
    benchmark.pedantic(representative_spmv("double"), rounds=1, iterations=1)
    assert len(result.records) == 23 * len(FORMATS)


def test_dia_collapses_on_s3dk(result):
    for num in (3, 4):
        shapes.crsd_beats(result, num, "dia", at_least=3.0)


def test_dia_oom_on_af_double(result):
    for num in (11, 12, 13):
        assert shapes.is_oom(result, num, "dia"), f"matrix {num} DIA should be OOM"


def test_only_af_is_oom(result):
    for num in range(1, 24):
        if num not in (11, 12, 13):
            assert not shapes.is_oom(result, num, "dia"), num


def test_ell_beats_crsd_on_wang(result):
    for num in (7, 8):
        adv = shapes.baseline_beats_crsd(result, num, "ell")
        shapes.assert_band(adv, 1.0, 3.0, f"ELL advantage on matrix {num}")


def test_crsd_wins_or_close_elsewhere(result):
    """CRSD within 35% of the best baseline everywhere but wang, and the
    outright best on a majority of the suite."""
    wins = 0
    for num in range(1, 24):
        if num in (7, 8):
            continue
        best = result.best_baseline(num)
        crsd = result.by_matrix(num)["crsd"]
        ratio = best.seconds / crsd.seconds
        assert ratio > 0.65, (num, ratio)
        if ratio >= 1.0:
            wins += 1
    assert wins >= 12


def test_crsd_over_best_baseline_band(result):
    """The headline: the best CRSD-over-best-of-four speedup lands in
    the paper's band (1.52 reported; generous tolerance)."""
    ratios = []
    for num in range(1, 24):
        best = result.best_baseline(num)
        crsd = result.by_matrix(num)["crsd"]
        if best and not crsd.oom:
            ratios.append(best.seconds / crsd.seconds)
    shapes.assert_band(max(ratios), 1.2, 2.6, "max CRSD/best-of-four (double)")

"""E12 (extension) — OpenCL portability across device models.

The paper's conclusion: "For the reason that we use the OpenCL
programming, we will do more evaluations on different platforms, such
as Cell and AMD devices."  The generated kernels are device-agnostic
(only ``mrows``' wavefront alignment is device-facing), so the same
matrices run unmodified on the AMD Cypress and GTX 285 models.
"""

import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import run_gpu_matrix
from repro.matrices.suite23 import get_spec
from repro.ocl.device import AMD_CYPRESS, GTX_285, TESLA_C2050

SCALE = 0.02
DEVICES = {"C2050": TESLA_C2050, "Cypress": AMD_CYPRESS, "GTX285": GTX_285}
MATRICES = ("kim1", "s3dkt3m2", "s80_80_50")


@pytest.fixture(scope="module")
def grid():
    out = {}
    for dev_name, dev in DEVICES.items():
        for mat in MATRICES:
            # Cypress wavefront is 64: keep mrows a wavefront multiple
            recs = run_gpu_matrix(get_spec(mat), SCALE, "double",
                                  formats=["ell", "crsd"], device=dev,
                                  mrows=128)
            out[(dev_name, mat)] = {r.fmt: r for r in recs}
    return out


def test_platform_table(grid, benchmark):
    lines = ["CRSD vs ELL across device models (double, GFLOPS)",
             f"{'device':<9} {'matrix':<11} {'ELL':>7} {'CRSD':>7} {'CRSD/ELL':>9}"]
    for (dev, mat), recs in grid.items():
        lines.append(
            f"{dev:<9} {mat:<11} {recs['ell'].gflops:>7.2f} "
            f"{recs['crsd'].gflops:>7.2f} "
            f"{recs['ell'].seconds / recs['crsd'].seconds:>8.2f}x"
        )
    save_table("extension_platforms", "\n".join(lines))

    benchmark.pedantic(
        lambda: run_gpu_matrix(get_spec("kim1"), SCALE, "double",
                               formats=["crsd"], device=AMD_CYPRESS,
                               mrows=128),
        rounds=1, iterations=1,
    )


def test_results_correct_on_every_device(grid):
    for key, recs in grid.items():
        for r in recs.values():
            assert r.max_abs_err < 1e-8, key


def test_crsd_advantage_portable(grid):
    """CRSD's byte advantage over ELL is structural, not
    device-specific: it must hold on every modelled platform."""
    for (dev, mat), recs in grid.items():
        speedup = recs["ell"].seconds / recs["crsd"].seconds
        assert speedup > 0.9, (dev, mat, speedup)


def test_uncached_devices_amplify_index_savings(grid):
    """Without a general-purpose cache (Cypress/GT200), every ELL index
    read is raw DRAM traffic — CRSD's advantage there is at least as
    large as on Fermi for the cache-friendly kim1."""
    fermi = (grid[("C2050", "kim1")]["ell"].seconds
             / grid[("C2050", "kim1")]["crsd"].seconds)
    gt200 = (grid[("GTX285", "kim1")]["ell"].seconds
             / grid[("GTX285", "kim1")]["crsd"].seconds)
    assert gt200 >= 0.9 * fermi

"""E5 — Fig. 11: CRSD (GPU) speedups over the CPU baselines, double.

Series reproduced: CRSD/CSR-CPU (1 thread), CRSD/CSR-CPU (8 threads),
CRSD/DIA-CPU (serial).  Paper: DIA-CPU speedups reach ~199.63 on the
five pathological matrices (s3dk*, af_*); elsewhere up to 15.27
(12.34 avg).
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.bench import shapes

PATHOLOGICAL = {3, 4, 11, 12, 13}


@pytest.fixture(scope="module")
def rows(cache):
    return cache.cpu("double")


def _table(rows, title):
    lines = [title,
             f"{'#':<3}  {'matrix':<14}  {'/CSR 1thr':>10}  {'/CSR 8thr':>10}  {'/DIA 1thr':>10}"]
    for c in rows:
        lines.append(
            f"{c.matrix_number:<3}  {c.matrix_name:<14}  "
            f"{c.speedup_vs_csr_1thr:>10.2f}  {c.speedup_vs_csr_8thr:>10.2f}  "
            f"{c.speedup_vs_dia_1thr:>10.2f}"
        )
    return "\n".join(lines)


def test_fig11_table(rows, benchmark):
    save_table("fig11_cpu_double", _table(rows, "CRSD(GPU) vs CPU, double"))

    from repro.cpu.kernels import CpuCsrSpMV
    from repro.formats.csr import CSRMatrix
    from repro.matrices.suite23 import get_spec

    coo = get_spec(5).generate(scale=0.01)
    kern = CpuCsrSpMV(CSRMatrix.from_coo(coo), threads=8)
    x = np.random.default_rng(0).standard_normal(coo.ncols)
    benchmark.pedantic(lambda: kern.run(x), rounds=1, iterations=1)


def test_dia_cpu_collapses_on_pathological(rows):
    for c in rows:
        if c.matrix_number in PATHOLOGICAL:
            shapes.assert_band(c.speedup_vs_dia_1thr, 50.0, 400.0,
                               f"CRSD/DIA-CPU on {c.matrix_name}")


def test_dia_cpu_moderate_elsewhere(rows):
    others = [c.speedup_vs_dia_1thr for c in rows
              if c.matrix_number not in PATHOLOGICAL]
    assert max(others) < 150.0


def test_gpu_always_beats_cpu(rows):
    for c in rows:
        assert c.speedup_vs_csr_8thr > 1.0, c.matrix_name
        assert c.speedup_vs_csr_1thr > c.speedup_vs_csr_8thr, c.matrix_name

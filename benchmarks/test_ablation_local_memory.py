"""A1 — local-memory staging of x on/off.

The design trade-off behind the wang3/wang4 result (Section IV-A): the
AD x-tile replaces the member diagonals' repeated x reads (which hit
the L2 at finite bandwidth) with one cooperative load plus cheap local
memory — but costs a barrier per AD group per work-group.  The paper:
"the performance will improve significantly when the number of
nonzeros in adjacent groups occupy a large proportion"; conversely a
small AD share leaves only the barrier.

nemeth21 (one 63-diagonal AD band) must gain; ecology1 (a 2-wide AD
group over 3 diagonals) and wang3 (3 of ~7) must not.
"""

import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import run_gpu_matrix
from repro.matrices.suite23 import get_spec

SCALE = 0.02


def crsd_record(spec_name, use_local):
    spec = get_spec(spec_name)
    return run_gpu_matrix(spec, SCALE, "double", formats=["crsd"],
                          use_local_memory=use_local)[0]


@pytest.fixture(scope="module")
def table():
    rows = {}
    for name in ("nemeth21", "kim2", "ecology1", "wang3"):
        rows[name] = (crsd_record(name, True), crsd_record(name, False))
    return rows


def test_ablation_table(table, benchmark):
    lines = ["CRSD local-memory staging ablation (seconds, lower is better)",
             f"{'matrix':<12} {'with lmem':>12} {'without':>12} {'gain':>7} {'barriers':>9}"]
    for name, (w, wo) in table.items():
        lines.append(
            f"{name:<12} {w.seconds:>12.3e} {wo.seconds:>12.3e} "
            f"{wo.seconds / w.seconds:>6.2f}x {w.extra['barriers']:>9.0f}"
        )
    save_table("ablation_local_memory", "\n".join(lines))

    spec = get_spec("nemeth21")
    benchmark.pedantic(
        lambda: run_gpu_matrix(spec, SCALE, "double", formats=["crsd"]),
        rounds=1, iterations=1,
    )


def test_staging_helps_wide_ad_bands(table):
    """nemeth21: one AD group of ~63 diagonals — the tile is reused 63
    times, far outweighing its barrier."""
    w, wo = table["nemeth21"]
    assert w.seconds < wo.seconds


def test_staging_costs_barriers_when_ad_narrow(table):
    """ecology1's AD group is 2 diagonals wide: one reuse cannot pay
    for a barrier per work-group — staging must lose there (this is
    the wang3/wang4 mechanism)."""
    w, wo = table["ecology1"]
    assert wo.seconds < w.seconds
    w, wo = table["wang3"]
    assert wo.seconds <= w.seconds * 1.02


def test_without_staging_no_barriers(table):
    for name, (w, wo) in table.items():
        assert wo.extra["barriers"] == 0
        assert w.extra["barriers"] > 0, name


def test_both_variants_verified(table):
    for name, (w, wo) in table.items():
        assert w.max_abs_err < 1e-8 and wo.max_abs_err < 1e-8, name

"""E6 — Fig. 12: CRSD (GPU) speedups over the CPU baselines, single.

(The paper's Fig. 12 caption repeats "Double Precision" — an obvious
typo; Section IV's text makes clear it is the single-precision CPU
comparison, with DIA-CPU speedups up to ~202.23.)
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.bench import shapes

PATHOLOGICAL = {3, 4, 11, 12, 13}


@pytest.fixture(scope="module")
def rows(cache):
    return cache.cpu("single")


def test_fig12_table(rows, benchmark):
    lines = [
        "CRSD(GPU) vs CPU, single",
        f"{'#':<3}  {'matrix':<14}  {'/CSR 1thr':>10}  {'/CSR 8thr':>10}  {'/DIA 1thr':>10}",
    ]
    for c in rows:
        lines.append(
            f"{c.matrix_number:<3}  {c.matrix_name:<14}  "
            f"{c.speedup_vs_csr_1thr:>10.2f}  {c.speedup_vs_csr_8thr:>10.2f}  "
            f"{c.speedup_vs_dia_1thr:>10.2f}"
        )
    save_table("fig12_cpu_single", "\n".join(lines))

    from repro.cpu.kernels import CpuCsrSpMV
    from repro.formats.csr import CSRMatrix
    from repro.matrices.suite23 import get_spec

    coo = get_spec(5).generate(scale=0.01)
    kern = CpuCsrSpMV(CSRMatrix.from_coo(coo), precision="single", threads=8)
    x = np.random.default_rng(0).standard_normal(coo.ncols)
    benchmark.pedantic(lambda: kern.run(x), rounds=1, iterations=1)


def test_dia_cpu_collapses_on_pathological(rows):
    for c in rows:
        if c.matrix_number in PATHOLOGICAL:
            shapes.assert_band(c.speedup_vs_dia_1thr, 40.0, 400.0,
                               f"CRSD/DIA-CPU single on {c.matrix_name}")


def test_gpu_always_beats_cpu(rows):
    for c in rows:
        assert c.speedup_vs_csr_8thr > 1.0, c.matrix_name

"""E-FUSED — wall-clock speedup of the analyzer-verified fused engine.

The fused engine replaces the batched engine's per-segment grid with
one whole-matrix expression per launch, entered only when the PR 2
provers certify the plan.  This experiment measures what that buys in
*host* wall time for warm-cache serving: the loadgen arrival trace of
the serving acceptance test, drained by :class:`ServeEngine` with a
shared :class:`PlanCache` (plans, codelets and fused state prepared
once), timed over :meth:`ServeEngine.run` only.  The cold path —
pattern analysis, codegen, certification — is identical under every
executor and is excluded, exactly as the plan-cache economics intend.

Measured ~20x on the development machine; the gate is 5x so slower
hosts pass while any real regression (fused silently falling back to
batched, certification in the hot loop) still fails.
"""

import hashlib
import time

import numpy as np

from benchmarks.conftest import save_table
from repro.ocl.executor import EXECUTOR_ENV
from repro.serve.cache import PlanCache
from repro.serve.engine import ServeEngine
from repro.serve.loadgen import LoadConfig, _arrival_times, _resolve_specs

#: required end-to-end serving advantage of the fused engine
MIN_SPEEDUP = 5.0

CFG = LoadConfig(seed=7, num_requests=64, scale=0.05)


def build_workload():
    """The exact arrival trace ``run_loadgen(CFG)`` would serve."""
    specs = _resolve_specs(CFG.matrices)
    rng = np.random.default_rng(CFG.seed)
    matrices = [spec.generate(scale=CFG.scale, seed=CFG.seed)
                for spec in specs]
    times = _arrival_times(CFG, rng)
    picks = rng.integers(0, len(matrices), size=CFG.num_requests)
    xs = [np.asarray(rng.standard_normal(matrices[j].ncols))
          for j in picks]
    return matrices, times, picks, xs


def checksum(results):
    digest = hashlib.sha256()
    for r in sorted(results, key=lambda r: r.request_id):
        if r.served and r.y is not None:
            digest.update(np.ascontiguousarray(r.y).tobytes())
    return digest.hexdigest()[:16]


def drain_seconds(mode, workload, setenv, repeats=3):
    """Best warm-cache drain time of ``repeats`` (plus one untimed
    warm-up that populates the cache), and the served-y checksum."""
    setenv(EXECUTOR_ENV, mode)
    matrices, times, picks, xs = workload
    cache = PlanCache(capacity=32)
    best, digest = float("inf"), None
    for i in range(repeats + 1):
        engine = ServeEngine(
            device=CFG.device, precision=CFG.precision, mrows=CFG.mrows,
            cache=cache, size_scale=CFG.scale)
        for at, j, x in zip(times, picks, xs):
            engine.submit(matrices[j], x, at=float(at))
        t0 = time.perf_counter()
        results = engine.run()
        elapsed = time.perf_counter() - t0
        assert len([r for r in results if r.served]) == CFG.num_requests
        d = checksum(results)
        assert digest is None or d == digest
        digest = d
        if i > 0:  # first drain warms the cache, off the clock
            best = min(best, elapsed)
    return best, digest


def test_fused_engine_serving_speedup(monkeypatch):
    workload = build_workload()
    t_batched, sum_batched = drain_seconds("batched", workload,
                                           monkeypatch.setenv)
    t_fused, sum_fused = drain_seconds("fused", workload,
                                       monkeypatch.setenv)
    speedup = t_batched / t_fused

    lines = [
        f"fused vs batched engine, warm-cache serving drain "
        f"({CFG.num_requests} requests, {len(CFG.matrices)} suite "
        f"matrices, scale={CFG.scale})",
        f"{'engine':<10} {'drain':>12}",
        f"{'batched':<10} {t_batched * 1e3:>10.1f}ms",
        f"{'fused':<10} {t_fused * 1e3:>10.1f}ms",
        f"{'speedup':<10} {speedup:>11.1f}x",
    ]
    save_table("fused_speedup", "\n".join(lines))

    # same bits served — the speedup is free, not approximate
    assert sum_fused == sum_batched
    assert speedup >= MIN_SPEEDUP, (
        f"fused engine only {speedup:.1f}x faster than batched "
        f"(need >= {MIN_SPEEDUP}x)"
    )

"""E18 (extension) — multi-vector SpMM: amortising the matrix traffic.

Blocked Krylov methods and multiple-right-hand-side solves apply the
same matrix to k vectors; the generated SpMM codelets load each slab
value once per k columns, so GFLOPS grow with k until the x-column
traffic dominates.  This bench sweeps k and reports the scaling curve
— a capability the paper's runtime-codegen design gets almost for free
(nvec is just another baked constant).
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import effective_scale, scaled_device, bench_scale
from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels.crsd_runner import CrsdSpMM
from repro.matrices.suite23 import get_spec
from repro.perf.costmodel import predict_gpu_time
from repro.perf.metrics import gflops

KS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def sweep():
    spec = get_spec("kim1")
    scale = effective_scale(spec, bench_scale())
    coo = spec.generate(scale=scale)
    dev = scaled_device(scale)
    crsd = CRSDMatrix.from_coo(coo, mrows=128)
    rng = np.random.default_rng(0)
    ref_dense = None
    out = {}
    for k in KS:
        x = rng.standard_normal((coo.ncols, k))
        runner = CrsdSpMM(crsd, nvec=k, device=dev)
        run = runner.run(x)
        assert np.allclose(run.y, coo.matmat(x), atol=1e-8)
        launches = 2 if crsd.num_scatter_rows else 1
        secs = predict_gpu_time(run.trace, dev, num_launches=launches,
                                size_scale=scale).total
        out[k] = (secs, gflops(k * coo.nnz, secs))
    return out


def test_spmm_table(sweep, benchmark):
    lines = ["multi-vector SpMM scaling on kim1 (double)",
             f"{'k':>3} {'seconds':>11} {'GFLOPS':>8} {'per-vector cost':>16}"]
    base = sweep[1][0]
    for k, (secs, gf) in sweep.items():
        lines.append(f"{k:>3} {secs:>11.3e} {gf:>8.2f} "
                     f"{secs / k / base:>15.2f}x")
    save_table("extension_spmm", "\n".join(lines))

    spec = get_spec("kim1")
    scale = effective_scale(spec, bench_scale())
    coo = spec.generate(scale=scale)
    crsd = CRSDMatrix.from_coo(coo, mrows=128)
    runner = CrsdSpMM(crsd, nvec=4, device=scaled_device(scale))
    x = np.random.default_rng(0).standard_normal((coo.ncols, 4))
    benchmark.pedantic(lambda: runner.run(x), rounds=1, iterations=1)


def test_gflops_grow_with_k(sweep):
    gfs = [sweep[k][1] for k in KS]
    assert all(b > a for a, b in zip(gfs, gfs[1:]))


def test_per_vector_cost_drops(sweep):
    """k vectors must cost well under k single-vector SpMVs."""
    assert sweep[8][0] < 0.7 * 8 * sweep[1][0]

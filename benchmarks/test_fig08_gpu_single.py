"""E2 — Fig. 8: GFLOPS per format, single precision, GPU.

Single-precision variant of Fig. 7.  The paper's extra observation:
DIA for af_*_k101 "even works on GPU" at single precision (half the
value bytes fit the 3 GB), so the OOM bars disappear.
"""

import pytest

from benchmarks.conftest import representative_spmv, save_table
from repro.bench import shapes
from repro.bench.report import gflops_table

FORMATS = ["dia", "ell", "csr", "hyb", "crsd"]


@pytest.fixture(scope="module")
def result(cache):
    return cache.gpu("single")


def test_fig08_table(result, benchmark):
    from benchmarks.conftest import RESULTS_DIR
    from repro.bench.figures import write_csv

    save_table("fig08_gpu_single_gflops", gflops_table(result, FORMATS))
    RESULTS_DIR.mkdir(exist_ok=True)
    write_csv(result, RESULTS_DIR / "fig08_gpu_single.csv", FORMATS)
    benchmark.pedantic(representative_spmv("single"), rounds=1, iterations=1)
    assert len(result.records) == 23 * len(FORMATS)


def test_af_dia_fits_at_single(result):
    for num in (11, 12, 13):
        assert not shapes.is_oom(result, num, "dia"), num
        # and CRSD still thrashes it (the paper prints 1.31 here, which
        # is inconsistent with af's own diagonal count — see
        # EXPERIMENTS.md; we assert the direction only)
        shapes.crsd_beats(result, num, "dia", at_least=1.2)


def test_single_faster_than_double(result, cache):
    """Halving value bytes must raise GFLOPS across the board."""
    double = cache.gpu("double")
    for num in range(1, 24):
        s = result.by_matrix(num)["crsd"]
        d = double.by_matrix(num)["crsd"]
        assert s.gflops > d.gflops, num


def test_ell_still_beats_crsd_on_wang(result):
    for num in (7, 8):
        shapes.baseline_beats_crsd(result, num, "ell")


def test_crsd_strongest_overall(result):
    wins = sum(
        1
        for num in range(1, 24)
        if num not in (7, 8)
        and result.best_baseline(num).seconds
        >= result.by_matrix(num)["crsd"].seconds
    )
    assert wins >= 14

"""E-EXEC — wall-clock speedup of the segment-batched engine.

Unlike the modelled-time experiments, this one measures *host* wall
time: how long the functional simulation itself takes per SpMV under
the batched engine vs the sequential per-group oracle.  The workload is
the acceptance case from the engine's introduction: a 20k-row
pentadiagonal matrix at ``mrows=128`` (157 work-groups of one uniform
region), where per-group execution pays ~157 Python round trips per
kernel and the batched engine pays one.
"""

import time
import timeit

import numpy as np

from benchmarks.conftest import save_table
from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.ocl.executor import EXECUTOR_ENV

N_ROWS = 20_000
OFFSETS = (-2, -1, 0, 1, 2)

#: required advantage of the batched engine (untraced); the measured
#: ratio on the development machine is ~6x, so 5x leaves headroom for
#: slower hosts while still failing on any real regression
MIN_SPEEDUP = 5.0


def pentadiagonal(n=N_ROWS):
    rows_l, cols_l = [], []
    for off in OFFSETS:
        lo, hi = max(0, -off), min(n, n - off)
        r = np.arange(lo, hi)
        rows_l.append(r)
        cols_l.append(r + off)
    rows = np.concatenate(rows_l)
    cols = np.concatenate(cols_l)
    vals = np.ones(rows.size) + 0.01 * np.arange(rows.size)
    return COOMatrix(rows, cols, vals, (n, n))


def best_of(fn, repeats=5):
    """Best wall time of ``repeats`` single runs (noise-robust floor)."""
    return min(timeit.repeat(fn, number=1, repeat=repeats))


def measure(monkeypatch_env):
    coo = pentadiagonal()
    crsd = CRSDMatrix.from_coo(coo, mrows=128)
    x = np.random.default_rng(0).standard_normal(N_ROWS)
    times = {}
    for mode in ("pergroup", "batched"):
        monkeypatch_env(EXECUTOR_ENV, mode)
        runner = CrsdSpMV(crsd)
        runner.run(x)  # warm up: codegen + buffer setup outside the clock
        times[mode, "untraced"] = best_of(lambda: runner.run(x, trace=False))
        times[mode, "traced"] = best_of(lambda: runner.run(x, trace=True))
    return times


def test_batched_engine_speedup(monkeypatch, benchmark):
    times = measure(monkeypatch.setenv)
    untraced = times["pergroup", "untraced"] / times["batched", "untraced"]
    traced = times["pergroup", "traced"] / times["batched", "traced"]

    lines = [
        f"segment-batched vs per-group engine, host wall time per SpMV "
        f"({N_ROWS} rows, {len(OFFSETS)} diagonals, mrows=128)",
        f"{'engine':<10} {'untraced':>12} {'traced':>12}",
    ]
    for mode in ("pergroup", "batched"):
        lines.append(
            f"{mode:<10} {times[mode, 'untraced'] * 1e3:>10.2f}ms "
            f"{times[mode, 'traced'] * 1e3:>10.2f}ms"
        )
    lines.append(f"{'speedup':<10} {untraced:>11.1f}x {traced:>11.1f}x")
    save_table("executor_speedup", "\n".join(lines))

    assert untraced >= MIN_SPEEDUP, (
        f"batched engine only {untraced:.1f}x faster untraced "
        f"(need >= {MIN_SPEEDUP}x)"
    )
    assert traced > 1.0, f"batched engine slower when tracing ({traced:.2f}x)"

    monkeypatch.setenv(EXECUTOR_ENV, "batched")
    coo = pentadiagonal()
    runner = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=128))
    x = np.random.default_rng(0).standard_normal(N_ROWS)
    runner.run(x)
    benchmark.pedantic(lambda: runner.run(x, trace=False),
                       rounds=3, iterations=1)


def test_absolute_untraced_latency(monkeypatch):
    """The acceptance bar in absolute terms: one untraced 20k-row SpMV
    under the batched engine finishes in single-digit milliseconds
    (the per-group engine took ~12-18 ms on the same hosts)."""
    monkeypatch.setenv(EXECUTOR_ENV, "batched")
    coo = pentadiagonal()
    runner = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=128))
    x = np.random.default_rng(0).standard_normal(N_ROWS)
    runner.run(x)
    t0 = time.perf_counter()
    runner.run(x, trace=False)
    elapsed = time.perf_counter() - t0
    assert elapsed < 0.010, f"untraced batched SpMV took {elapsed * 1e3:.1f}ms"

"""E4 — Fig. 10: CRSD speedups, single precision.

Paper: vs DIA max 11.24 / avg 1.92; vs ELL max 1.94 / avg 1.50; vs CSR
max 9.14 / avg 4.59.  The structural claim on top of Fig. 9: index
bytes weigh *more* at 4-byte values, so CRSD's baked-index advantage
over ELL grows relative to double precision.
"""

import pytest

from benchmarks.conftest import representative_spmv, save_table
from repro.bench import shapes
from repro.bench.report import speedup_series, speedup_table, summarize_series

BASELINES = ["dia", "ell", "csr", "hyb"]


@pytest.fixture(scope="module")
def result(cache):
    return cache.gpu("single")


def test_fig10_table(result, benchmark):
    save_table("fig10_speedup_single", speedup_table(result, BASELINES))
    lines = ["paper (single): DIA 11.24/1.92  ELL 1.94/1.50  CSR 9.14/4.59"]
    for b in BASELINES:
        s = summarize_series(speedup_series(result, b))
        lines.append(f"measured CRSD/{b.upper()}: max {s['max']:.2f}  avg {s['avg']:.2f}")
    save_table("fig10_summary", "\n".join(lines))
    benchmark.pedantic(representative_spmv("single"), rounds=1, iterations=1)


def test_vs_ell_band(result):
    s = summarize_series(speedup_series(result, "ell"))
    shapes.assert_band(s["max"], 1.4, 3.0, "CRSD/ELL max (single)")
    shapes.assert_band(s["avg"], 1.15, 2.0, "CRSD/ELL avg (single)")


def test_vs_csr_band(result):
    s = summarize_series(speedup_series(result, "csr"))
    shapes.assert_band(s["avg"], 2.5, 8.0, "CRSD/CSR avg (single)")


def test_single_ell_advantage_exceeds_double(result, cache):
    """The crossover claim: CRSD/ELL average grows from double to
    single because the (fixed-size) column indices are a larger share
    of ELL's traffic."""
    d = summarize_series(speedup_series(cache.gpu("double"), "ell"))
    s = summarize_series(speedup_series(result, "ell"))
    assert s["avg"] > d["avg"]
    assert s["max"] > d["max"]


def test_single_csr_advantage_exceeds_double(result, cache):
    d = summarize_series(speedup_series(cache.gpu("double"), "csr"))
    s = summarize_series(speedup_series(result, "csr"))
    assert s["avg"] > d["avg"]

"""A4 — baked-index codelets vs an interpreted CRSD kernel.

The paper's central GPU argument: because OpenCL compiles at run time,
the kernel can carry every index constant in its text, so at SpMV time
only the value slabs are read.  The counterfactual — an interpreted
kernel reading ``matrix``/``crsd_dia_index`` from global memory — pays
per-(work-group, diagonal) index loads.  We inflate the measured trace
with exactly those loads and compare the modelled times.
"""

import copy

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import effective_scale, scaled_device, bench_scale
from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.matrices.suite23 import get_spec
from repro.perf.costmodel import predict_gpu_time


def interpreted_trace(trace, crsd, itemsize=4):
    """Add the index traffic an interpreted kernel would issue: per
    work-group it walks ``crsd_dia_index`` for its region (SR, NRS and
    one column value per diagonal) plus the pattern descriptor."""
    t = copy.deepcopy(trace)
    extra_requests = 0
    extra_transactions = 0
    extra_bytes = 0
    for region in crsd.regions:
        per_group_ints = 2 + region.ndiags + 2 * len(region.pattern.groups)
        # one wavefront broadcast-loads the ints; segments of 32 ints/txn
        txn = -(-per_group_ints * itemsize // 128)
        extra_requests += region.num_segments * per_group_ints
        extra_transactions += region.num_segments * txn
        extra_bytes += region.num_segments * per_group_ints * itemsize
    t.global_load_requests += extra_requests
    t.global_load_transactions += extra_transactions
    t.global_load_bytes_useful += extra_bytes
    return t


@pytest.fixture(scope="module")
def comparison():
    out = {}
    for name in ("s3dkt3m2", "s80_80_50", "kim1"):
        spec = get_spec(name)
        scale = effective_scale(spec, bench_scale())
        coo = spec.generate(scale=scale)
        dev = scaled_device(scale)
        runner = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=128), device=dev)
        run = runner.run(np.random.default_rng(0).standard_normal(coo.ncols))
        t_gen = predict_gpu_time(run.trace, dev, size_scale=scale).total
        t_int = predict_gpu_time(
            interpreted_trace(run.trace, runner.matrix), dev, size_scale=scale
        ).total
        out[name] = (t_gen, t_int, runner.matrix)
    return out


def test_codegen_table(comparison, benchmark):
    lines = ["generated codelets vs interpreted CRSD kernel (modelled seconds)",
             f"{'matrix':<12} {'codelet':>12} {'interpreted':>12} {'saving':>8}"]
    for name, (t_gen, t_int, _) in comparison.items():
        lines.append(
            f"{name:<12} {t_gen:>12.3e} {t_int:>12.3e} {t_int / t_gen:>7.2f}x"
        )
    save_table("ablation_codegen", "\n".join(lines))

    spec = get_spec("kim1")
    scale = effective_scale(spec, bench_scale())
    coo = spec.generate(scale=scale)
    crsd = CRSDMatrix.from_coo(coo, mrows=128)
    x = np.random.default_rng(0).standard_normal(coo.ncols)
    runner = CrsdSpMV(crsd, device=scaled_device(scale))
    benchmark.pedantic(lambda: runner.run(x), rounds=1, iterations=1)


def test_codelets_never_slower(comparison):
    for name, (t_gen, t_int, _) in comparison.items():
        assert t_gen <= t_int, name


def test_index_traffic_is_per_segment_metadata(comparison):
    """The honest magnitude of this ablation: CRSD's interpreted index
    traffic is ~NDias ints per (segment x NDias x mrows) nonzeros, i.e.
    about 1/mrows index loads per nonzero — small for any pattern
    count.  Baking it in buys ~1%; CRSD's *big* index win (no
    per-nonzero column indices at all, unlike ELL's 4 B/slot) is
    already measured in the CRSD-vs-ELL figures."""
    for name, (_, _, m) in comparison.items():
        total = sum(
            r.num_segments * (2 + r.ndiags + 2 * len(r.pattern.groups))
            for r in m.regions
        )
        per_nnz = total / m.nnz
        assert 0 < per_nnz < 3.0 / m.mrows, (name, per_nnz)

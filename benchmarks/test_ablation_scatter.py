"""A5 — scatter-point extraction on/off (Section II-C).

With detection off, every isolated nonzero keeps its whole diagonal
section alive inside the slab — segment-granular fill, exactly the DIA
pathology in miniature.  With detection on, the isolated nonzeros move
to the (tiny) scatter ELL and the slab stays compact.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import effective_scale, scaled_device, bench_scale
from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.matrices.suite23 import get_spec
from repro.perf.costmodel import predict_gpu_time


@pytest.fixture(scope="module")
def comparison():
    out = {}
    for name in ("us80_80_50", "wang3", "nemeth21"):
        spec = get_spec(name)
        scale = effective_scale(spec, bench_scale())
        coo = spec.generate(scale=scale)
        dev = scaled_device(scale)
        x = np.random.default_rng(0).standard_normal(coo.ncols)
        row = {}
        for detect in (True, False):
            crsd = CRSDMatrix.from_coo(coo, mrows=128, detect_scatter=detect)
            runner = CrsdSpMV(crsd, device=dev)
            run = runner.run(x)
            launches = 2 if crsd.num_scatter_rows else 1
            secs = predict_gpu_time(run.trace, dev, num_launches=launches,
                                    size_scale=scale).total
            row[detect] = (secs, crsd)
        out[name] = row
    return out


def test_scatter_table(comparison, benchmark):
    lines = ["scatter extraction ablation",
             f"{'matrix':<12} {'with (s)':>11} {'slab':>9} {'without (s)':>12} "
             f"{'slab':>9} {'gain':>6}"]
    for name, row in comparison.items():
        on_s, on_m = row[True]
        off_s, off_m = row[False]
        lines.append(
            f"{name:<12} {on_s:>11.3e} {on_m.dia_val.size:>9} "
            f"{off_s:>12.3e} {off_m.dia_val.size:>9} {off_s / on_s:>5.2f}x"
        )
    save_table("ablation_scatter", "\n".join(lines))

    spec = get_spec("us80_80_50")
    scale = effective_scale(spec, bench_scale())
    coo = spec.generate(scale=scale)
    benchmark.pedantic(
        lambda: CRSDMatrix.from_coo(coo, mrows=128, detect_scatter=True),
        rounds=1, iterations=1,
    )


def test_extraction_shrinks_slab_on_scattered_matrices(comparison):
    for name in ("us80_80_50", "wang3"):
        on = comparison[name][True][1]
        off = comparison[name][False][1]
        assert on.dia_val.size < off.dia_val.size, name


def test_extraction_not_slower_where_scatter_exists(comparison):
    for name in ("us80_80_50",):
        on_s = comparison[name][True][0]
        off_s = comparison[name][False][0]
        assert on_s <= off_s * 1.05, name


def test_both_variants_correct(comparison):
    """Correctness is independent of the toggle (verified in units);
    structural invariant here: nnz preserved."""
    for name, row in comparison.items():
        assert row[True][1].nnz == row[False][1].nnz, name

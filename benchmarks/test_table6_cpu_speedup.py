"""E7 — Table VI: CRSD (GPU) vs MKL-like CSR (CPU), max and average.

Paper values:

    precision  serial(max/avg)    8 threads(max/avg)
    double     25.06 / 14.76      11.93 / 6.63
    single     39.81 / 24.25      12.79 / 7.18
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.bench import shapes


def summarize(rows, attr):
    vals = [getattr(c, attr) for c in rows]
    return max(vals), sum(vals) / len(vals)


@pytest.fixture(scope="module")
def both(cache):
    return {"double": cache.cpu("double"), "single": cache.cpu("single")}


def test_table6(both, benchmark):
    lines = ["Table VI reproduction (CRSD GPU vs CSR CPU)",
             "precision  serial max/avg      8thr max/avg      (paper)"]
    paper = {
        "double": "25.06/14.76, 11.93/6.63",
        "single": "39.81/24.25, 12.79/7.18",
    }
    for prec, rows in both.items():
        m1, a1 = summarize(rows, "speedup_vs_csr_1thr")
        m8, a8 = summarize(rows, "speedup_vs_csr_8thr")
        lines.append(
            f"{prec:<9}  {m1:6.2f}/{a1:6.2f}     {m8:6.2f}/{a8:6.2f}"
            f"     ({paper[prec]})"
        )
    save_table("table6_cpu_speedup", "\n".join(lines))

    from repro.core.crsd import CRSDMatrix
    from repro.cpu.kernels import CpuCrsdSpMV
    from repro.matrices.suite23 import get_spec

    coo = get_spec(9).generate(scale=0.02)
    kern = CpuCrsdSpMV(CRSDMatrix.from_coo(coo, mrows=64))
    x = np.random.default_rng(0).standard_normal(coo.ncols)
    benchmark.pedantic(lambda: kern.run(x), rounds=1, iterations=1)


def test_double_bands(both):
    rows = both["double"]
    m1, a1 = summarize(rows, "speedup_vs_csr_1thr")
    m8, a8 = summarize(rows, "speedup_vs_csr_8thr")
    shapes.assert_band(a1, 8.0, 40.0, "serial avg (double)")
    shapes.assert_band(a8, 3.0, 10.0, "8-thread avg (double)")
    shapes.assert_band(m8, 5.0, 14.0, "8-thread max (double)")


def test_single_bands(both):
    rows = both["single"]
    _, a1 = summarize(rows, "speedup_vs_csr_1thr")
    m8, a8 = summarize(rows, "speedup_vs_csr_8thr")
    shapes.assert_band(a8, 3.5, 11.0, "8-thread avg (single)")


def test_thread_scaling_consistent(both):
    """8 threads close most, but never all, of the CPU-GPU gap."""
    for rows in both.values():
        for c in rows:
            assert 1.0 < c.speedup_vs_csr_8thr < c.speedup_vs_csr_1thr

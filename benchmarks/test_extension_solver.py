"""E14 (extension) — whole-solve comparison: does the SpMV advantage
survive the full Krylov iteration?

The paper evaluates a single SpMV; a user runs a solver.  A CG
iteration adds two dot products and three axpy-class updates (5 vector
passes) on top of the SpMV, which dilutes any SpMV-format speedup.
This bench runs fully device-resident CG with CRSD and ELL SpMV on the
same SPD system and reports both the per-SpMV and per-solve ratios.
"""

import numpy as np
import pytest

from benchmarks.conftest import save_table
from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from repro.formats.ell import ELLMatrix
from repro.gpu_kernels import CrsdSpMV, EllSpMV
from repro.matrices.generators import grid_stencil, stencil_offsets
from repro.perf.costmodel import predict_gpu_time
from repro.solvers.gpu_cg import gpu_cg


@pytest.fixture(scope="module")
def system():
    """An SPD 5x5-box-stencil system (kim-like: 25 diagonals, AD-rich)."""
    rng = np.random.default_rng(0)
    sten = grid_stencil((56, 56), stencil_offsets((56, 56), 2, cross=False),
                        rng)
    offs = sten.offsets_of_entries()
    vals = np.where(offs == 0, 30.0, -1.0)
    return COOMatrix(sten.rows, sten.cols, vals, sten.shape)


@pytest.fixture(scope="module")
def solves(system):
    rng = np.random.default_rng(1)
    b = rng.standard_normal(system.nrows)
    out = {}
    for name, runner in (
        ("crsd", CrsdSpMV(CRSDMatrix.from_coo(system, mrows=128))),
        ("ell", EllSpMV(ELLMatrix.from_coo(system))),
    ):
        res = gpu_cg(runner, b, tol=1e-8)
        assert res.converged
        assert np.allclose(system.matvec(res.x), b, atol=1e-5)
        solve_time = predict_gpu_time(res.trace, runner.device,
                                      num_launches=res.kernel_launches).total
        spmv_time = predict_gpu_time(runner.run(b).trace,
                                     runner.device).total
        out[name] = (res, solve_time, spmv_time)
    return out


def test_solver_table(solves, benchmark, system):
    lines = ["device-resident CG: per-SpMV vs per-solve (modelled)",
             f"{'kernel':<6} {'iters':>6} {'SpMV(us)':>9} {'solve(us)':>10}"]
    for name, (res, t_solve, t_spmv) in solves.items():
        lines.append(f"{name:<6} {res.iterations:>6} {t_spmv * 1e6:>9.1f} "
                     f"{t_solve * 1e6:>10.1f}")
    c, e = solves["crsd"], solves["ell"]
    lines.append(f"SpMV speedup {e[2] / c[2]:.2f}x -> solve speedup "
                 f"{e[1] / c[1]:.2f}x")
    save_table("extension_solver", "\n".join(lines))

    runner = CrsdSpMV(CRSDMatrix.from_coo(system, mrows=128))
    b = np.random.default_rng(1).standard_normal(system.nrows)
    benchmark.pedantic(lambda: gpu_cg(runner, b, tol=1e-8, maxiter=5),
                       rounds=1, iterations=1)


def test_same_iteration_count(solves):
    """CG's trajectory is kernel-independent (both compute A @ x)."""
    assert solves["crsd"][0].iterations == solves["ell"][0].iterations


def test_spmv_advantage_survives_but_dilutes(solves):
    c, e = solves["crsd"], solves["ell"]
    spmv_speedup = e[2] / c[2]
    solve_speedup = e[1] / c[1]
    assert spmv_speedup > 1.05                    # CRSD wins the kernel
    assert 1.0 < solve_speedup <= spmv_speedup * 1.02  # and still the solve,
    # but the BLAS-1 passes dilute the margin

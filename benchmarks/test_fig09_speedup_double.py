"""E3 — Fig. 9: CRSD speedup over DIA/ELL/CSR/HYB, double precision.

Paper headline numbers for this figure: vs DIA max 11.13 / avg 2.05;
vs ELL max 1.52 / avg 1.24; vs CSR max 9.01 / avg 4.57; HYB within the
ELL..CSR band.  Absolute factors depend on the testbed; the bands
asserted here are generous but directional.
"""

import pytest

from benchmarks.conftest import representative_spmv, save_table
from repro.bench import shapes
from repro.bench.report import speedup_series, speedup_table, summarize_series

BASELINES = ["dia", "ell", "csr", "hyb"]


@pytest.fixture(scope="module")
def result(cache):
    return cache.gpu("double")


def test_fig09_table(result, benchmark):
    save_table("fig09_speedup_double", speedup_table(result, BASELINES))
    lines = ["paper (double): DIA 11.13/2.05  ELL 1.52/1.24  CSR 9.01/4.57"]
    for b in BASELINES:
        s = summarize_series(speedup_series(result, b))
        lines.append(f"measured CRSD/{b.upper()}: max {s['max']:.2f}  avg {s['avg']:.2f}")
    save_table("fig09_summary", "\n".join(lines))
    benchmark.pedantic(representative_spmv("double"), rounds=1, iterations=1)


def test_vs_dia_band(result):
    s = summarize_series(speedup_series(result, "dia"))
    shapes.assert_band(s["max"], 3.0, 15.0, "CRSD/DIA max (double)")
    shapes.assert_band(s["avg"], 1.2, 4.0, "CRSD/DIA avg (double)")


def test_vs_ell_band(result):
    s = summarize_series(speedup_series(result, "ell"))
    shapes.assert_band(s["max"], 1.2, 2.3, "CRSD/ELL max (double)")
    shapes.assert_band(s["avg"], 1.0, 1.7, "CRSD/ELL avg (double)")


def test_vs_csr_band(result):
    s = summarize_series(speedup_series(result, "csr"))
    shapes.assert_band(s["max"], 4.0, 14.0, "CRSD/CSR max (double)")
    shapes.assert_band(s["avg"], 2.0, 7.0, "CRSD/CSR avg (double)")


def test_vs_hyb_band(result):
    s = summarize_series(speedup_series(result, "hyb"))
    shapes.assert_band(s["avg"], 0.95, 1.8, "CRSD/HYB avg (double)")


def test_hyb_tail_helps_on_long_row_matrices(result):
    """Matrices 15-23 split a COO tail; there HYB must beat plain ELL."""
    for num in (15, 16, 17):
        recs = result.by_matrix(num)
        assert recs["hyb"].seconds < recs["ell"].seconds, num

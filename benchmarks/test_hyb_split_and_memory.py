"""E10 — Section IV-A side observations:

1. the HYB default split keeps matrices 1-14 entirely in ELL and puts
   a small fraction (paper: 0.2%-2.1%) of nonzeros of matrices 15-23
   into the COO tail;
2. DIA in double precision exceeds the C2050's 3 GB device memory for
   af_1/2/3_k101 — and only for those — while single precision fits.
"""

import pytest

from benchmarks.conftest import save_table
from repro.bench.runner import dia_oom_at_full_size, effective_scale
from repro.formats.hyb import HYBMatrix
from repro.matrices.stats import estimate_dia_bytes
from repro.matrices.suite23 import SUITE

#: the split is a *structural* property, not a timing one, and the
#: synthetic recipes' row-length histograms around the cusp threshold
#: are calibrated at the original 2% scale — at other scales the
#: heuristic can flip K' by one and (dis)solve a tail entirely — so
#: this experiment pins its own scale instead of following
#: REPRO_BENCH_SCALE
SPLIT_SCALE = 0.02


@pytest.fixture(scope="module")
def splits():
    out = {}
    for spec in SUITE:
        coo = spec.generate(scale=effective_scale(spec, SPLIT_SCALE))
        out[spec.number] = HYBMatrix.from_coo(coo)
    return out


def test_hyb_split_table(splits, benchmark):
    lines = ["HYB default split (cusp heuristic)",
             f"{'#':<3}  {'matrix':<14}  {'K-prime':>7}  {'COO tail %':>10}"]
    for spec in SUITE:
        h = splits[spec.number]
        lines.append(
            f"{spec.number:<3}  {spec.name:<14}  {h.ell.width:>7}  "
            f"{h.coo_fraction * 100:>10.3f}"
        )
    save_table("hyb_split", "\n".join(lines))

    spec = SUITE[17]
    coo = spec.generate(scale=effective_scale(spec, SPLIT_SCALE))
    benchmark.pedantic(lambda: HYBMatrix.from_coo(coo), rounds=1, iterations=1)


def test_matrices_1_to_14_entirely_ell(splits):
    for num in range(1, 15):
        assert splits[num].coo_fraction == 0.0, num


def test_matrices_15_to_23_have_small_tails(splits):
    for num in range(15, 24):
        frac = splits[num].coo_fraction
        assert 0.0 < frac <= 0.05, (num, frac)


def test_dia_memory_wall():
    lines = ["Full-size DIA device footprint vs the C2050's 3 GB",
             f"{'matrix':<14}  {'double':>14}  {'single':>14}  verdict"]
    for spec in SUITE:
        if spec.full_diagonals is None:
            continue
        d = estimate_dia_bytes(spec.paper_rows, spec.full_diagonals, "double")
        s = estimate_dia_bytes(spec.paper_rows, spec.full_diagonals, "single")
        verdict = "OOM@double" if dia_oom_at_full_size(spec, "double") else "fits"
        lines.append(f"{spec.name:<14}  {d:>14,}  {s:>14,}  {verdict}")
    save_table("dia_memory_wall", "\n".join(lines))

    oom_double = {s.name for s in SUITE if dia_oom_at_full_size(s, "double")}
    oom_single = {s.name for s in SUITE if dia_oom_at_full_size(s, "single")}
    assert oom_double == {"af_1_k101", "af_2_k101", "af_3_k101"}
    assert oom_single == set()

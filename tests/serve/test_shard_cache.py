"""PlanCache.shard_certificate: pattern-keyed certificate memoisation.

The shard provers never read matrix *values*, so certificates are
cached under the pattern fingerprint: the serving steady state — the
same sparsity structure arriving with fresh values — inherits the
certified plan without re-proving.  Declined certificates are cached
too, and eviction prunes certificates whose pattern no longer has a
resident entry.
"""

import numpy as np
import pytest

import repro
from repro.formats.coo import COOMatrix
from repro.serve.cache import PlanCache, reset_default_cache
from tests.conftest import random_diagonal_matrix


def matrices(n, size=64):
    return [random_diagonal_matrix(np.random.default_rng(100 + i), n=size)
            for i in range(n)]


def revalued(coo, factor=2.0):
    return COOMatrix(coo.rows, coo.cols, coo.vals * factor, coo.shape)


@pytest.fixture
def coo():
    return matrices(1)[0]


@pytest.fixture(autouse=True)
def fresh_default_cache():
    reset_default_cache()
    yield
    reset_default_cache()


class TestMemoisation:
    def test_second_lookup_is_a_hit(self, coo):
        cache = PlanCache()
        a = cache.shard_certificate(coo, 2, mrows=32)
        b = cache.shard_certificate(coo, 2, mrows=32)
        assert a is b
        assert a.ok
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_config_is_part_of_the_key(self, coo):
        cache = PlanCache()
        a = cache.shard_certificate(coo, 2, mrows=32)
        b = cache.shard_certificate(coo, 4, mrows=32)
        c = cache.shard_certificate(coo, 2, mrows=32, precision="single")
        assert a is not b and a is not c
        assert cache.stats.misses == 3 and cache.stats.hits == 0

    def test_same_pattern_new_values_inherits_certificate(self, coo):
        """The steady-state serving case: value-only updates keep the
        pattern fingerprint, so no re-proving happens."""
        cache = PlanCache()
        donor = cache.shard_certificate(coo, 4, mrows=32)
        twin = cache.shard_certificate(revalued(coo), 4, mrows=32)
        assert twin is donor
        assert cache.stats.hits == 1

    def test_ladder_input_certified_via_crsd_build(self, coo):
        """The cache certifies its own CRSD build, so a DIA-rung input
        still yields a usable certificate (unlike direct
        ``certify_shard_plan`` on the DIA matrix, which declines)."""
        from repro.formats.dia import DIAMatrix

        cache = PlanCache()
        cert = cache.shard_certificate(DIAMatrix.from_coo(coo), 2,
                                       mrows=32)
        assert cert.ok
        assert cert.shard_plan.format == "crsd"

    def test_declined_certificate_is_cached(self, coo, monkeypatch):
        """Re-asking cannot make an unprovable plan provable, so a
        decline is memoised exactly like a pass."""
        import repro.analyze.sharding as sharding
        from repro.analyze.sharding import ShardCertificate

        declined = ShardCertificate(ok=False, num_shards=2)
        monkeypatch.setattr(sharding, "certify_shard_plan",
                            lambda *a, **k: declined)
        cache = PlanCache()
        a = cache.shard_certificate(coo, 2, mrows=32)
        b = cache.shard_certificate(coo, 2, mrows=32)
        assert a is declined and a is b
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_certificate_executes(self, coo):
        from repro.core.crsd import CRSDMatrix
        from repro.shard.executor import ShardedSpMV

        cache = PlanCache()
        cert = cache.shard_certificate(coo, 2, mrows=32)
        crsd = cache.entry(coo)._crsd[32]
        assert isinstance(crsd, CRSDMatrix)
        x = np.random.default_rng(0).standard_normal(coo.ncols)
        run = ShardedSpMV(crsd, cert).run(x)
        assert np.allclose(run.y, coo.todense() @ x)


class TestEviction:
    def test_evicting_the_pattern_drops_the_certificate(self):
        a, b = matrices(2)
        cache = PlanCache(capacity=1)
        cache.shard_certificate(a, 2, mrows=32)
        cache.entry(b)  # evicts a's entry -> a's pattern is gone
        cache.shard_certificate(a, 2, mrows=32)
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_surviving_pattern_keeps_the_certificate(self, coo):
        cache = PlanCache(capacity=2)
        cache.shard_certificate(coo, 2, mrows=32)
        # the revalued twin shares the pattern; inserting it must not
        # orphan the certificate even as other entries churn
        cache.shard_certificate(revalued(coo), 2, mrows=32)
        cache.entry(matrices(1, size=48)[0])  # evicts the LRU entry
        cache.shard_certificate(revalued(coo, 3.0), 2, mrows=32)
        assert cache.stats.hits == 2


class TestObsIntegration:
    def test_shard_plan_events_emitted(self, coo):
        cache = PlanCache()
        with repro.observe() as sess:
            cache.shard_certificate(coo, 2, mrows=32)
            cache.shard_certificate(coo, 2, mrows=32)
        names = [s.name for s in sess.spans]
        assert "plan_cache.miss.shard_plan" in names
        assert "plan_cache.hit.shard_plan" in names

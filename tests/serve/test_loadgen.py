"""Load generation: determinism, throughput win, trajectory files."""

import json

import pytest

from repro.serve import BatchConfig
from repro.serve.loadgen import (
    DEFAULT_MATRICES,
    REPORT_SCHEMA,
    TRAJECTORY_SCHEMA,
    LoadConfig,
    LoadReport,
    append_serve_trajectory,
    report_json,
    run_loadgen,
)

#: small, fast config reused across tests (two structural families)
FAST = dict(scale=0.02, num_requests=24, matrices=("kim1", "wang3"))


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        a = run_loadgen(LoadConfig(seed=3, **FAST))
        b = run_loadgen(LoadConfig(seed=3, **FAST))
        assert report_json(a) == report_json(b)

    def test_different_seed_different_traffic(self):
        a = run_loadgen(LoadConfig(seed=3, **FAST))
        b = run_loadgen(LoadConfig(seed=4, **FAST))
        assert a.y_checksum != b.y_checksum

    def test_checksum_covers_served_bits(self):
        """The checksum folds every served y, so it certifies results,
        not just summary statistics."""
        report = run_loadgen(LoadConfig(seed=3, **FAST))
        assert report.y_checksum
        assert all(r.y is None for r in report.results)  # folded + freed

    def test_report_shape(self):
        # max_batch=4 forces repeated batch widths, so the prepared
        # nvec=4 codelets are reused and the cache hit rate is visible
        report = run_loadgen(LoadConfig(seed=0, **FAST),
                             batch=BatchConfig(max_batch=4))
        payload = json.loads(report_json(report))
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["requests"]["submitted"] == FAST["num_requests"]
        assert set(payload["latency_s"]) == {"p50", "p95", "p99", "mean",
                                             "max"}
        assert payload["throughput_rps"] > 0
        assert payload["cache"]["hit_rate"] > 0
        assert payload["batching"]["histogram"]

    def test_burst_pattern(self):
        cfg = LoadConfig(seed=1, pattern="burst", burst_size=6, **FAST)
        report = run_loadgen(cfg)
        # synchronized groups of one matrix coalesce aggressively: at
        # least one multi-request SpMM launch must have formed
        hist = report.stats["batching"]["histogram"]
        assert any(int(k) >= 2 for k in hist)
        assert report_json(report) == report_json(run_loadgen(cfg))

    def test_config_validated(self):
        with pytest.raises(ValueError):
            LoadConfig(pattern="thundering-herd")
        with pytest.raises(ValueError):
            LoadConfig(num_requests=0)
        with pytest.raises(ValueError):
            LoadConfig(rate_rps=0)
        with pytest.raises(ValueError):
            run_loadgen(LoadConfig(matrices=("not-a-matrix",)))


class TestThroughput:
    def test_batching_doubles_throughput_over_suite(self):
        """The headline acceptance criterion: over >= 8 suite matrices,
        micro-batching sustains >= 2x the unbatched engine's throughput
        on the same arrival trace, with every request still served."""
        assert len(DEFAULT_MATRICES) >= 8
        cfg = LoadConfig(seed=7, num_requests=64, scale=0.02)
        batched = run_loadgen(cfg, batch=BatchConfig(max_batch=16))
        unbatched = run_loadgen(cfg, batch=BatchConfig(max_batch=1))
        assert batched.throughput_rps >= 2.0 * unbatched.throughput_rps
        assert len(batched.served) == cfg.num_requests
        assert len(unbatched.served) == cfg.num_requests

    def test_batched_results_identical_to_unbatched(self):
        """Same arrival trace, same bits served — batching only changes
        the timing, never the numbers."""
        cfg = LoadConfig(seed=7, **FAST)
        batched = run_loadgen(cfg, batch=BatchConfig(max_batch=16))
        unbatched = run_loadgen(cfg, batch=BatchConfig(max_batch=1))
        assert batched.y_checksum == unbatched.y_checksum

    def test_latency_percentiles_ordered(self):
        report = run_loadgen(LoadConfig(seed=0, **FAST))
        p50, p95, p99 = (report.percentile(p) for p in (50, 95, 99))
        assert 0 < p50 <= p95 <= p99 <= report.percentile(100)


def synthetic_report(latencies):
    """A LoadReport whose served latencies are exactly ``latencies``."""
    from repro.serve.engine import ServedResult

    results = [
        ServedResult(request_id=i, fingerprint="fp", status="served",
                     arrival_s=0.0, finish_s=lat, latency_s=lat)
        for i, lat in enumerate(latencies)
    ]
    return LoadReport(config=LoadConfig(**FAST), results=results,
                      stats={}, y_checksum="")


class TestPercentileEdgeCases:
    """Nearest-rank percentile is total: no input may raise or index
    out of range (the p=100 rank-off-by-one and empty-run crashes)."""

    def test_empty_run_returns_zero(self):
        report = synthetic_report([])
        for p in (0, 50, 100):
            assert report.percentile(p) == 0.0

    def test_single_sample_any_p(self):
        report = synthetic_report([0.25])
        for p in (0, 1, 50, 99, 100):
            assert report.percentile(p) == 0.25

    def test_p100_is_max_not_index_error(self):
        report = synthetic_report([3.0, 1.0, 2.0])
        assert report.percentile(100) == 3.0

    def test_p0_is_min(self):
        report = synthetic_report([3.0, 1.0, 2.0])
        assert report.percentile(0) == 1.0

    def test_out_of_range_p_clamped(self):
        report = synthetic_report([3.0, 1.0, 2.0])
        assert report.percentile(150) == 3.0
        assert report.percentile(-5) == 1.0

    def test_nearest_rank_exact(self):
        # 10 samples: p50 -> rank 5 -> 5.0, p95 -> rank 10 -> 10.0
        report = synthetic_report([float(i) for i in range(1, 11)])
        assert report.percentile(50) == 5.0
        assert report.percentile(95) == 10.0
        assert report.percentile(10) == 1.0


class TestFusedExecutor:
    def test_fused_report_bytes_equal_batched(self, monkeypatch):
        """The fused engine changes wall-clock only: the *simulated*
        loadgen report — served bits, latencies, counters — is
        byte-identical under either executor."""
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        batched = run_loadgen(LoadConfig(seed=3, **FAST))
        monkeypatch.setenv("REPRO_EXECUTOR", "fused")
        fused = run_loadgen(LoadConfig(seed=3, **FAST))
        assert report_json(fused) == report_json(batched)

    def test_shared_cache_reuses_prepared_runners(self, monkeypatch):
        """A warm PlanCache carries prepared plans (and fused state)
        across runs; the report contents stay cache-independent."""
        from repro.serve.cache import PlanCache

        monkeypatch.setenv("REPRO_EXECUTOR", "fused")
        cache = PlanCache(capacity=32)
        cold = run_loadgen(LoadConfig(seed=3, **FAST), cache=cache)
        warm = run_loadgen(LoadConfig(seed=3, **FAST), cache=cache)
        # served bits and simulated timing are cache-independent; only
        # the (cumulative) cache counters in the report move
        assert warm.y_checksum == cold.y_checksum
        assert warm.to_dict()["latency_s"] == cold.to_dict()["latency_s"]
        assert cache.stats.hits > cold.stats["cache"]["hits"]


class TestTrajectory:
    def test_append_creates_envelope(self, tmp_path):
        report = run_loadgen(LoadConfig(seed=0, **FAST))
        path = tmp_path / "BENCH_serve.json"
        append_serve_trajectory(report, path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == TRAJECTORY_SCHEMA
        assert len(payload["entries"]) == 1
        entry = payload["entries"][0]
        assert entry["schema"] == TRAJECTORY_SCHEMA
        assert "timestamp" in entry
        assert entry["y_checksum"] == report.y_checksum

    def test_append_accumulates(self, tmp_path):
        report = run_loadgen(LoadConfig(seed=0, **FAST))
        path = tmp_path / "BENCH_serve.json"
        append_serve_trajectory(report, path)
        append_serve_trajectory(report, path)
        assert len(json.loads(path.read_text())["entries"]) == 2

    def test_corrupt_file_recovered(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text("{not json")
        report = run_loadgen(LoadConfig(seed=0, **FAST))
        append_serve_trajectory(report, path)
        assert len(json.loads(path.read_text())["entries"]) == 1

"""Load generation: determinism, throughput win, trajectory files."""

import json

import pytest

from repro.serve import BatchConfig
from repro.serve.loadgen import (
    DEFAULT_MATRICES,
    REPORT_SCHEMA,
    TRAJECTORY_SCHEMA,
    LoadConfig,
    append_serve_trajectory,
    report_json,
    run_loadgen,
)

#: small, fast config reused across tests (two structural families)
FAST = dict(scale=0.02, num_requests=24, matrices=("kim1", "wang3"))


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        a = run_loadgen(LoadConfig(seed=3, **FAST))
        b = run_loadgen(LoadConfig(seed=3, **FAST))
        assert report_json(a) == report_json(b)

    def test_different_seed_different_traffic(self):
        a = run_loadgen(LoadConfig(seed=3, **FAST))
        b = run_loadgen(LoadConfig(seed=4, **FAST))
        assert a.y_checksum != b.y_checksum

    def test_checksum_covers_served_bits(self):
        """The checksum folds every served y, so it certifies results,
        not just summary statistics."""
        report = run_loadgen(LoadConfig(seed=3, **FAST))
        assert report.y_checksum
        assert all(r.y is None for r in report.results)  # folded + freed

    def test_report_shape(self):
        # max_batch=4 forces repeated batch widths, so the prepared
        # nvec=4 codelets are reused and the cache hit rate is visible
        report = run_loadgen(LoadConfig(seed=0, **FAST),
                             batch=BatchConfig(max_batch=4))
        payload = json.loads(report_json(report))
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["requests"]["submitted"] == FAST["num_requests"]
        assert set(payload["latency_s"]) == {"p50", "p95", "p99", "mean",
                                             "max"}
        assert payload["throughput_rps"] > 0
        assert payload["cache"]["hit_rate"] > 0
        assert payload["batching"]["histogram"]

    def test_burst_pattern(self):
        cfg = LoadConfig(seed=1, pattern="burst", burst_size=6, **FAST)
        report = run_loadgen(cfg)
        # synchronized groups of one matrix coalesce aggressively: at
        # least one multi-request SpMM launch must have formed
        hist = report.stats["batching"]["histogram"]
        assert any(int(k) >= 2 for k in hist)
        assert report_json(report) == report_json(run_loadgen(cfg))

    def test_config_validated(self):
        with pytest.raises(ValueError):
            LoadConfig(pattern="thundering-herd")
        with pytest.raises(ValueError):
            LoadConfig(num_requests=0)
        with pytest.raises(ValueError):
            LoadConfig(rate_rps=0)
        with pytest.raises(ValueError):
            run_loadgen(LoadConfig(matrices=("not-a-matrix",)))


class TestThroughput:
    def test_batching_doubles_throughput_over_suite(self):
        """The headline acceptance criterion: over >= 8 suite matrices,
        micro-batching sustains >= 2x the unbatched engine's throughput
        on the same arrival trace, with every request still served."""
        assert len(DEFAULT_MATRICES) >= 8
        cfg = LoadConfig(seed=7, num_requests=64, scale=0.02)
        batched = run_loadgen(cfg, batch=BatchConfig(max_batch=16))
        unbatched = run_loadgen(cfg, batch=BatchConfig(max_batch=1))
        assert batched.throughput_rps >= 2.0 * unbatched.throughput_rps
        assert len(batched.served) == cfg.num_requests
        assert len(unbatched.served) == cfg.num_requests

    def test_batched_results_identical_to_unbatched(self):
        """Same arrival trace, same bits served — batching only changes
        the timing, never the numbers."""
        cfg = LoadConfig(seed=7, **FAST)
        batched = run_loadgen(cfg, batch=BatchConfig(max_batch=16))
        unbatched = run_loadgen(cfg, batch=BatchConfig(max_batch=1))
        assert batched.y_checksum == unbatched.y_checksum

    def test_latency_percentiles_ordered(self):
        report = run_loadgen(LoadConfig(seed=0, **FAST))
        p50, p95, p99 = (report.percentile(p) for p in (50, 95, 99))
        assert 0 < p50 <= p95 <= p99 <= report.percentile(100)


class TestTrajectory:
    def test_append_creates_envelope(self, tmp_path):
        report = run_loadgen(LoadConfig(seed=0, **FAST))
        path = tmp_path / "BENCH_serve.json"
        append_serve_trajectory(report, path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == TRAJECTORY_SCHEMA
        assert len(payload["entries"]) == 1
        entry = payload["entries"][0]
        assert entry["schema"] == TRAJECTORY_SCHEMA
        assert "timestamp" in entry
        assert entry["y_checksum"] == report.y_checksum

    def test_append_accumulates(self, tmp_path):
        report = run_loadgen(LoadConfig(seed=0, **FAST))
        path = tmp_path / "BENCH_serve.json"
        append_serve_trajectory(report, path)
        append_serve_trajectory(report, path)
        assert len(json.loads(path.read_text())["entries"]) == 2

    def test_corrupt_file_recovered(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text("{not json")
        report = run_loadgen(LoadConfig(seed=0, **FAST))
        append_serve_trajectory(report, path)
        assert len(json.loads(path.read_text())["entries"]) == 1

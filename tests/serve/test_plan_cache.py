"""PlanCache: memoisation, LRU bounds, counters, obs integration."""

import numpy as np
import pytest

import repro
from repro.core.serialize import fingerprint
from repro.serve.cache import PlanCache, default_cache, reset_default_cache
from tests.conftest import random_diagonal_matrix


def matrices(n, size=64):
    return [random_diagonal_matrix(np.random.default_rng(100 + i), n=size)
            for i in range(n)]


@pytest.fixture
def coo():
    return matrices(1)[0]


@pytest.fixture(autouse=True)
def fresh_default_cache():
    reset_default_cache()
    yield
    reset_default_cache()


class TestRunnerMemoisation:
    def test_second_lookup_is_a_hit(self, coo):
        cache = PlanCache()
        r1 = cache.runner(coo, mrows=32)
        r2 = cache.runner(coo, mrows=32)
        assert r1 is r2
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_prepared_runner_returned(self, coo):
        cache = PlanCache()
        runner = cache.runner(coo, mrows=32)
        x = np.random.default_rng(0).standard_normal(coo.ncols)
        assert np.allclose(runner.run(x).y, coo.matvec(x))

    def test_config_is_part_of_the_key(self, coo):
        cache = PlanCache()
        a = cache.runner(coo, mrows=32, precision="double")
        b = cache.runner(coo, mrows=32, precision="single")
        c = cache.runner(coo, mrows=32, nvec=4)
        assert a is not b and a is not c
        assert cache.stats.misses == 3

    def test_crsd_build_shared_across_runners(self, coo):
        """Different runner configs at one mrows share the CRSD build."""
        cache = PlanCache()
        a = cache.runner(coo, mrows=32)
        b = cache.runner(coo, mrows=32, nvec=2)
        assert a.matrix is b.matrix

    def test_passed_crsd_is_adopted(self, coo):
        from repro.core.crsd import CRSDMatrix

        cache = PlanCache()
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        runner = cache.runner(crsd, mrows=32)
        assert runner.matrix is crsd

    def test_nvec_none_vs_one_are_distinct(self, coo):
        from repro.gpu_kernels.crsd_runner import CrsdSpMM, CrsdSpMV

        cache = PlanCache()
        assert isinstance(cache.runner(coo, mrows=32), CrsdSpMV)
        assert isinstance(cache.runner(coo, mrows=32, nvec=1), CrsdSpMM)


class TestPatternReuse:
    """Same-pattern, different-values matrices adopt the donor's plan
    and codelets instead of re-running pattern analysis and codegen."""

    @staticmethod
    def revalued(coo, factor=2.0):
        from repro.formats.coo import COOMatrix

        return COOMatrix(coo.rows, coo.cols, coo.vals * factor,
                         coo.shape)

    def test_same_pattern_adopts_plan(self, coo):
        cache = PlanCache()
        donor = cache.runner(coo, mrows=32)
        twin = cache.runner(self.revalued(coo), mrows=32)
        assert twin is not donor
        assert twin.plan is donor.plan
        assert twin.kernel is donor.kernel
        assert cache.stats.pattern_reuses == 1
        assert cache.stats.misses == 2  # still a runner miss

    def test_adopted_runner_computes_its_own_values(self, coo):
        cache = PlanCache()
        coo2 = self.revalued(coo)
        cache.runner(coo, mrows=32)
        twin = cache.runner(coo2, mrows=32)
        x = np.random.default_rng(5).standard_normal(coo.ncols)
        assert np.allclose(twin.run(x).y, coo2.todense() @ x)

    def test_different_pattern_not_adopted(self, coo):
        cache = PlanCache()
        other = random_diagonal_matrix(np.random.default_rng(200),
                                       n=coo.ncols)
        cache.runner(coo, mrows=32)
        r2 = cache.runner(other, mrows=32)
        assert r2.plan is not cache.runner(coo, mrows=32).plan
        assert cache.stats.pattern_reuses == 0

    def test_duplicate_submission_reuses_pattern(self, coo):
        """A value-only update arriving with explicit duplicate COO
        entries still lands on the canonical pattern fingerprint and
        adopts the donor's plan — pattern_reuses counts it."""
        from repro.formats.coo import COOMatrix

        cache = PlanCache()
        donor = cache.runner(coo, mrows=32)
        dup = COOMatrix(np.concatenate([coo.rows, coo.rows]),
                        np.concatenate([coo.cols, coo.cols]),
                        np.concatenate([coo.vals, coo.vals]),  # sums to 2v
                        coo.shape)
        twin = cache.runner(dup, mrows=32)
        assert twin is not donor
        assert twin.plan is donor.plan
        assert cache.stats.pattern_reuses == 1
        x = np.random.default_rng(7).standard_normal(coo.ncols)
        assert np.allclose(twin.run(x).y, 2.0 * (coo.todense() @ x))

    def test_config_is_part_of_the_pattern_key(self, coo):
        cache = PlanCache()
        cache.runner(coo, mrows=32)
        twin = cache.runner(self.revalued(coo), mrows=64)
        assert cache.stats.pattern_reuses == 0
        assert twin.plan.mrows == 64

    def test_eviction_drops_pattern_donor(self, coo):
        cache = PlanCache(capacity=1)
        cache.runner(coo, mrows=32)
        filler = random_diagonal_matrix(np.random.default_rng(300),
                                        n=48)
        cache.runner(filler, mrows=32)  # evicts coo's entry
        cache.runner(self.revalued(coo), mrows=32)
        assert cache.stats.pattern_reuses == 0

    def test_counter_in_stats_dict(self, coo):
        cache = PlanCache()
        cache.runner(coo, mrows=32)
        cache.runner(self.revalued(coo), mrows=32)
        assert cache.stats.to_dict()["pattern_reuses"] == 1


class TestLRU:
    def test_eviction_beyond_capacity(self):
        ms = matrices(3, size=48)
        cache = PlanCache(capacity=2)
        for m in ms:
            cache.entry(m)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert fingerprint(ms[0]) not in cache
        assert fingerprint(ms[2]) in cache

    def test_touch_refreshes_recency(self):
        ms = matrices(3, size=48)
        cache = PlanCache(capacity=2)
        cache.entry(ms[0])
        cache.entry(ms[1])
        cache.entry(ms[0])          # ms[0] now most recent
        cache.entry(ms[2])          # evicts ms[1]
        assert fingerprint(ms[0]) in cache
        assert fingerprint(ms[1]) not in cache

    def test_eviction_drops_prepared_artifacts(self):
        ms = matrices(2, size=48)
        cache = PlanCache(capacity=1)
        cache.runner(ms[0], mrows=32)
        cache.runner(ms[1], mrows=32)
        cache.runner(ms[0], mrows=32)  # re-prepared after eviction
        assert cache.stats.misses == 3 and cache.stats.hits == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=0)

    def test_hit_rate(self, coo):
        cache = PlanCache()
        assert cache.stats.hit_rate == 0.0
        cache.runner(coo, mrows=32)
        cache.runner(coo, mrows=32)
        cache.runner(coo, mrows=32)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)


class TestTuneMemo:
    def test_tune_memoised(self, coo, monkeypatch):
        import repro.core.autotune as autotune

        calls = []
        real = autotune.tune

        def counting(*a, **kw):
            calls.append(1)
            return real(*a, **kw)

        monkeypatch.setattr(autotune, "tune", counting)
        cache = PlanCache()
        r1 = cache.tune(coo, fast=True)
        r2 = cache.tune(coo, fast=True)
        assert r1 is r2
        assert len(calls) == 1

    def test_distinct_kwargs_tune_separately(self, coo):
        cache = PlanCache()
        cache.tune(coo, fast=True)
        cache.tune(coo, fast=True, mrows_grid=(64, 128))
        assert cache.stats.misses == 2


class TestAutoFormatMemo:
    def test_facade_consults_default_cache(self, coo):
        fmt1 = repro.auto_format(coo)
        assert default_cache().stats.misses == 1
        fmt2 = repro.auto_format(coo)
        assert fmt1 == fmt2
        assert default_cache().stats.hits == 1

    def test_decision_matches_uncached(self, coo):
        from repro.api import _auto_format_impl

        assert repro.auto_format(coo) == _auto_format_impl(coo)

    def test_reset_default_cache(self, coo):
        repro.auto_format(coo)
        first = default_cache()
        reset_default_cache()
        assert default_cache() is not first
        assert default_cache().stats.lookups == 0


class TestObsIntegration:
    def test_events_emitted_under_session(self, coo):
        cache = PlanCache(capacity=1)
        with repro.observe() as sess:
            cache.runner(coo, mrows=32)
            cache.runner(coo, mrows=32)
            cache.entry(matrices(1, size=48)[0])  # evicts coo's entry
        names = [s.name for s in sess.spans]
        assert "plan_cache.miss.runner" in names
        assert "plan_cache.hit.runner" in names
        assert "plan_cache.evict" in names

    def test_no_session_no_events(self, coo):
        cache = PlanCache()
        cache.runner(coo, mrows=32)  # must not raise without a session
        assert cache.stats.misses == 1

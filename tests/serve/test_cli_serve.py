"""CLI: ``repro serve`` / ``repro loadgen`` and the cached ``tune``."""

import json

import pytest

from repro.cli import main
from repro.serve.cache import default_cache, reset_default_cache


@pytest.fixture(autouse=True)
def fresh_default_cache():
    reset_default_cache()
    yield
    reset_default_cache()


class TestServeCommand:
    def test_serve_runs(self, capsys):
        assert main(["serve", "kim1", "--scale", "0.02",
                     "--requests", "8"]) == 0
        out = capsys.readouterr().out
        assert "served 8/8" in out
        assert "latency p50" in out

    def test_serve_json(self, capsys):
        assert main(["serve", "kim1", "--scale", "0.02",
                     "--requests", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["served"] == 8
        assert payload["batching"]["spmm_launches"] >= 1

    def test_serve_all_at_once(self, capsys):
        assert main(["serve", "kim1", "--scale", "0.02", "--requests",
                     "6", "--rate", "0", "--max-batch", "3"]) == 0
        assert "served 6/6" in capsys.readouterr().out


class TestLoadgenCommand:
    ARGS = ["loadgen", "--scale", "0.02", "--requests", "16",
            "--matrices", "kim1,wang3"]

    def test_byte_reproducible_across_runs(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(self.ARGS + ["-o", str(a)]) == 0
        assert main(self.ARGS + ["-o", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_stdout_report(self, capsys):
        assert main(self.ARGS) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-serve-report/v1"
        assert payload["requests"]["submitted"] == 16

    def test_trajectory_flag(self, tmp_path, capsys):
        traj = tmp_path / "BENCH_serve.json"
        assert main(self.ARGS + ["--trajectory", str(traj)]) == 0
        payload = json.loads(traj.read_text())
        assert payload["schema"] == "repro-serve-trajectory/v1"
        assert len(payload["entries"]) == 1

    def test_trajectory_env(self, tmp_path, capsys, monkeypatch):
        traj = tmp_path / "BENCH_serve.json"
        monkeypatch.setenv("REPRO_SERVE_TRAJECTORY", str(traj))
        assert main(self.ARGS) == 0
        assert traj.exists()


class TestTuneThroughCache:
    def test_repeated_tune_hits_plan_cache(self, capsys):
        args = ["tune", "kim1", "--scale", "0.01", "--fast"]
        assert main(args) == 0
        assert default_cache().stats.misses == 1
        assert main(args) == 0
        assert default_cache().stats.hits == 1
        outs = capsys.readouterr().out.strip().splitlines()
        assert outs[0] == outs[1]  # cached result prints identically


class TestExecutorEnvSurfacing:
    """A bad REPRO_EXECUTOR fails at command startup with the env var
    named, instead of surfacing as a per-request crash mid-stream
    (cmd_bench already had this guard; serve and loadgen lacked it)."""

    def test_serve_surfaces_bad_executor(self, monkeypatch):
        from repro.ocl.errors import LaunchError

        monkeypatch.setenv("REPRO_EXECUTOR", "warp-speed")
        with pytest.raises(LaunchError, match="REPRO_EXECUTOR"):
            main(["serve", "kim1", "--scale", "0.02", "--requests", "4"])

    def test_loadgen_surfaces_bad_executor(self, monkeypatch):
        from repro.ocl.errors import LaunchError

        monkeypatch.setenv("REPRO_EXECUTOR", "warp-speed")
        with pytest.raises(LaunchError, match="REPRO_EXECUTOR"):
            main(TestLoadgenCommand.ARGS)

    @pytest.mark.parametrize("mode", ["batched", "pergroup", "fused"])
    def test_valid_modes_accepted(self, monkeypatch, mode, capsys):
        monkeypatch.setenv("REPRO_EXECUTOR", mode)
        assert main(["serve", "kim1", "--scale", "0.02",
                     "--requests", "4"]) == 0

"""Drop-oldest × deadline expiry: disjoint counters, conserved arrivals.

A queued request can reach two terminal fates at nearly the same
instant — shed by a drop-oldest arrival, or expired because its
deadline passed while it waited.  These tests pin that each request
gets exactly one fate, the admission counters stay disjoint (a shed
victim is never *also* counted expired), and all counters sum back to
the arrival count.
"""

import numpy as np

from repro.matrices.suite23 import get_spec
from repro.serve import serve_session

SCALE = 0.01
PREPARE = 1e-3  # long first launch: keeps later arrivals queued


def _pair(seed=0):
    coo = get_spec("kim1").generate(scale=SCALE, seed=0)
    rng = np.random.default_rng(seed)
    return coo, rng.standard_normal(coo.ncols)


def _engine():
    return serve_session(max_batch=1, max_queue_depth=1,
                         overflow="drop-oldest", size_scale=SCALE,
                         prepare_cost_s=PREPARE)


class TestDropOldestDeadlineExpiry:
    def test_shed_victim_not_double_counted_as_expired(self):
        """An expired-in-queue request shed by a drop-oldest arrival
        counts once — shed — even though its deadline had already
        passed when the verdict landed."""
        coo, x = _pair()
        engine = _engine()
        engine.submit(coo, x, at=0.0)               # occupies the device
        victim = engine.submit(coo, x, at=1e-6, deadline_s=2e-6)
        engine.submit(coo, x, at=1e-5)              # full queue: sheds
        by_rid = {r.request_id: r for r in engine.run()}

        assert by_rid[victim].status == "shed"
        counters = engine.controller.to_dict()
        assert counters["shed"] == 1
        assert counters["expired"] == 0
        assert counters["rejected"] == 0
        assert counters["accepted"] == 3

    def test_unshed_expired_request_counts_expired(self):
        """Without the shedding arrival the same victim expires —
        the two counters cover the two fates, never both."""
        coo, x = _pair()
        engine = _engine()
        engine.submit(coo, x, at=0.0)
        victim = engine.submit(coo, x, at=1e-6, deadline_s=2e-6)
        by_rid = {r.request_id: r for r in engine.run()}

        assert by_rid[victim].status == "expired"
        counters = engine.controller.to_dict()
        assert counters["expired"] == 1
        assert counters["shed"] == 0
        assert counters["accepted"] == 2

    def test_counters_disjoint_and_sum_to_arrivals(self):
        """Under a mixed stream every arrival lands in exactly one of
        served / shed / expired / rejected, results carry one terminal
        record per request, and the controller's counters reconcile."""
        coo, x = _pair()
        engine = serve_session(max_batch=1, max_queue_depth=2,
                               overflow="drop-oldest", size_scale=SCALE,
                               prepare_cost_s=PREPARE)
        n = 10
        rids = [engine.submit(coo, x, at=i * 2e-6,
                              deadline_s=(5e-6 if i % 3 == 0 else None))
                for i in range(n)]
        results = engine.run()

        assert sorted(r.request_id for r in results) == sorted(rids)
        by_status = {}
        for r in results:
            by_status[r.status] = by_status.get(r.status, 0) + 1
        assert sum(by_status.values()) == n
        assert set(by_status) <= {"served", "shed", "expired",
                                  "rejected"}
        assert by_status.get("shed", 0) > 0
        assert by_status.get("expired", 0) > 0

        counters = engine.controller.to_dict()
        assert counters["accepted"] + counters["rejected"] == n
        assert counters["shed"] == by_status.get("shed", 0)
        assert counters["expired"] == by_status.get("expired", 0)
        assert counters["rejected"] == by_status.get("rejected", 0)
        assert counters["accepted"] == \
            by_status.get("served", 0) + counters["shed"] \
            + counters["expired"]

"""Service-time accounting: the simulated seconds a launch is billed.

Regression tests for the cost/latency bugs the fused fast path
exposed: resilient requests on scatter matrices were billed as a
single launch (``PlanEntry.crsd`` returned ``None`` because the
resilient path builds its own runners), and the batched-vs-sequential
makespan ordering is pinned at the engine level, not just through
loadgen.
"""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels.crsd_runner import CrsdSpMM, CrsdSpMV
from repro.perf.costmodel import predict_gpu_time
from repro.serve import BatchConfig
from repro.serve.engine import ServeEngine
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def coo(rng):
    return random_diagonal_matrix(rng, n=96, scatter=3)


class TestSpmmCostScaling:
    def test_spmm_costs_more_than_spmv_and_grows_with_nvec(self, coo):
        """One SpMM launch moves nvec times the x/y traffic, so its
        predicted service time must exceed one SpMV's and be monotone
        in nvec — the under-billing that made batching look free."""
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        spmv = CrsdSpMV(crsd)
        x = np.ones(96)
        t1 = predict_gpu_time(spmv.run(x).trace, spmv.device,
                              "double", num_launches=2).total
        costs = [t1]
        for nvec in (2, 4, 8):
            runner = CrsdSpMM(crsd, nvec=nvec)
            X = np.ones((96, nvec))
            costs.append(predict_gpu_time(
                runner.run(X).trace, runner.device, "double",
                num_launches=2).total)
        assert all(a < b for a, b in zip(costs, costs[1:]))
        # ...but one 8-wide SpMM still beats 8 SpMVs (the batching win)
        assert costs[-1] < 8 * t1


class TestEngineMakespan:
    def test_batched_makespan_below_sequential(self, coo, rng):
        """Same arrival trace, same served bits: the micro-batched
        engine must finish strictly earlier than one-at-a-time serving
        once service time is billed correctly."""
        xs = [rng.standard_normal(96) for _ in range(16)]

        def drain(max_batch):
            engine = ServeEngine(mrows=32,
                                 batch=BatchConfig(max_batch=max_batch))
            for x in xs:
                engine.submit(coo, x, at=0.0)
            results = engine.run()
            assert len(results) == len(xs)
            ys = {r.request_id: r.y for r in results}
            return engine.clock.now, ys

        t_batched, y_batched = drain(16)
        t_seq, y_seq = drain(1)
        assert t_batched < t_seq
        for rid, y in y_seq.items():
            assert np.array_equal(y_batched[rid], y)


class TestResilientLaunchBilling:
    def test_scatter_matrix_billed_two_launches(self, coo, rng):
        """A resilient request served at the CRSD rung on a scatter
        matrix pays both the diagonal and the scatter launch overhead
        (it was billed one launch when the CRSD build was absent from
        the cache entry)."""
        x = rng.standard_normal(96)
        engine = ServeEngine(mrows=32)
        engine.submit(coo, x, at=0.0, resilience=True)
        result = engine.run()[0]
        report = result.resilience
        assert report is not None and report.served_rung == "crsd"
        assert report.total_backoff_s == 0.0
        # reference trace: the same matrix through the plain runner
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        assert crsd.num_scatter_rows > 0
        trace = CrsdSpMV(crsd).run(x).trace
        two = predict_gpu_time(trace, engine.device, "double",
                               num_launches=2).total
        one = predict_gpu_time(trace, engine.device, "double",
                               num_launches=1).total
        assert result.latency_s == pytest.approx(two)
        assert result.latency_s != pytest.approx(one)

    def test_dia_only_matrix_billed_one_launch(self, rng):
        coo = random_diagonal_matrix(rng, n=96, scatter=0)
        x = rng.standard_normal(96)
        engine = ServeEngine(mrows=32)
        engine.submit(coo, x, at=0.0, resilience=True)
        result = engine.run()[0]
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        assert crsd.num_scatter_rows == 0
        trace = CrsdSpMV(crsd).run(x).trace
        one = predict_gpu_time(trace, engine.device, "double",
                               num_launches=1).total
        assert result.latency_s == pytest.approx(one)


class TestFusedDemotionSurfacing:
    def test_incident_reaches_served_result(self, coo, rng,
                                            monkeypatch):
        """A fused certification crash during serving surfaces on the
        ServedResult, exactly like ladder incidents do."""
        from repro.gpu_kernels.crsd_runner import FUSED_RUNG
        from repro.resilience.faults import (
            FaultInjector,
            FaultSpec,
            inject,
        )

        monkeypatch.setenv("REPRO_EXECUTOR", "fused")
        x = rng.standard_normal(96)
        engine = ServeEngine(mrows=32)
        engine.submit(coo, x, at=0.0)
        spec = FaultSpec(site="phase:*.fused_certify", kind="launch",
                         at_calls=(0,))
        with inject(FaultInjector(seed=3, specs=[spec])):
            result = engine.run()[0]
        assert result.status == "served"
        report = result.resilience
        assert report is not None
        assert report.requested == FUSED_RUNG
        # and the served y matches the batched engine bit-for-bit
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        ref = ServeEngine(mrows=32)
        ref.submit(coo, x, at=0.0)
        assert np.array_equal(result.y, ref.run()[0].y)

"""Content fingerprints: stability, carrier-invariance, surfacing."""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.core.serialize import (
    FINGERPRINT_LEN,
    fingerprint,
    fingerprints,
    pattern_fingerprint,
    value_fingerprint,
)
from repro.formats.coo import COOMatrix
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def coo():
    rng = np.random.default_rng(11)
    return random_diagonal_matrix(rng, n=96, scatter=3)


class TestStability:
    def test_deterministic(self, coo):
        assert fingerprint(coo) == fingerprint(coo)

    def test_hex_and_length(self, coo):
        fp = fingerprint(coo)
        assert len(fp) == FINGERPRINT_LEN
        int(fp, 16)  # hex digits only

    def test_distinct_matrices_distinct_fingerprints(self, coo):
        other = random_diagonal_matrix(np.random.default_rng(12), n=96)
        assert fingerprint(coo) != fingerprint(other)

    def test_value_change_changes_fingerprint(self, coo):
        vals = coo.vals.copy()
        vals[0] += 1.0
        bumped = COOMatrix(coo.rows, coo.cols, vals, coo.shape)
        assert fingerprint(bumped) != fingerprint(coo)

    def test_shape_is_part_of_identity(self):
        a = COOMatrix(np.array([0]), np.array([0]), np.array([1.0]), (2, 2))
        b = COOMatrix(np.array([0]), np.array([0]), np.array([1.0]), (3, 3))
        assert fingerprint(a) != fingerprint(b)


class TestCanonicalisation:
    def test_entry_order_invariance(self, coo):
        perm = np.random.default_rng(0).permutation(coo.nnz)
        shuffled = COOMatrix(coo.rows[perm], coo.cols[perm],
                             coo.vals[perm], coo.shape)
        assert fingerprint(shuffled) == fingerprint(coo)

    def test_duplicate_entry_order_invariance(self):
        """COO duplicates sum in any submission order to the same
        fingerprint — the satellite's canonicalisation requirement."""
        rows = np.array([0, 1, 0, 1, 0])
        cols = np.array([0, 1, 0, 1, 2])
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        a = COOMatrix(rows, cols, vals, (2, 3))
        perm = [4, 2, 0, 3, 1]
        b = COOMatrix(rows[perm], cols[perm], vals[perm], (2, 3))
        assert fingerprint(a) == fingerprint(b)

    def test_carrier_invariance(self, coo):
        """The same mathematical matrix fingerprinted as COO, CRSD or
        dense lands on the same identity."""
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        assert fingerprint(crsd) == fingerprint(coo)
        assert fingerprint(coo.todense()) == fingerprint(coo)


class TestSplitFingerprints:
    """Pattern/value split: same sparsity structure with new values
    keeps the pattern hash (so prepared plans can be adopted) while
    the value and combined hashes move."""

    def test_combined_matches_legacy_fingerprint(self, coo):
        """``fingerprints().combined`` is byte-for-byte the historical
        :func:`fingerprint` — cache keys and trajectory files written
        before the split stay valid."""
        fps = fingerprints(coo)
        assert fps.combined == fingerprint(coo)

    def test_same_pattern_new_values(self, coo):
        scaled = COOMatrix(coo.rows, coo.cols, coo.vals * 2.0 + 1.0,
                           coo.shape)
        assert pattern_fingerprint(scaled) == pattern_fingerprint(coo)
        assert value_fingerprint(scaled) != value_fingerprint(coo)
        assert fingerprint(scaled) != fingerprint(coo)

    def test_same_values_different_pattern(self, coo):
        # shift every column right by one (wraps): values identical in
        # canonical order only if the sort order is preserved — use a
        # diagonal shift that keeps per-entry values attached
        moved = COOMatrix(coo.rows, (coo.cols + 1) % coo.ncols,
                          coo.vals, coo.shape)
        assert pattern_fingerprint(moved) != pattern_fingerprint(coo)
        assert fingerprint(moved) != fingerprint(coo)

    def test_all_three_distinct_domains(self, coo):
        fps = fingerprints(coo)
        assert len({fps.combined, fps.pattern, fps.values}) == 3
        for fp in (fps.combined, fps.pattern, fps.values):
            assert len(fp) == FINGERPRINT_LEN
            int(fp, 16)

    def test_split_hashes_carrier_invariant(self, coo):
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        assert fingerprints(crsd) == fingerprints(coo)
        assert fingerprints(coo.todense()) == fingerprints(coo)

    def test_split_hashes_entry_order_invariant(self, coo):
        perm = np.random.default_rng(0).permutation(coo.nnz)
        shuffled = COOMatrix(coo.rows[perm], coo.cols[perm],
                             coo.vals[perm], coo.shape)
        assert fingerprints(shuffled) == fingerprints(coo)

    def test_shape_is_part_of_pattern(self):
        a = COOMatrix(np.array([0]), np.array([0]), np.array([1.0]), (2, 2))
        b = COOMatrix(np.array([0]), np.array([0]), np.array([1.0]), (3, 3))
        assert pattern_fingerprint(a) != pattern_fingerprint(b)
        assert value_fingerprint(a) == value_fingerprint(b)


class TestSplitEdgeCases:
    """Pattern/value split behaviour on the canonicalisation edges:
    duplicate submissions and empty matrices."""

    def test_duplicate_submission_lands_on_canonical_split(self):
        """Explicit duplicates that sum to a plain matrix's entries
        produce the *same* pattern and value hashes as the plain
        submission — the split sees canonical triplets only."""
        rows = np.array([0, 1, 2])
        cols = np.array([1, 0, 2])
        vals = np.array([4.0, 6.0, 8.0])
        plain = COOMatrix(rows, cols, vals, (3, 3))
        dup = COOMatrix(np.concatenate([rows, rows]),
                        np.concatenate([cols, cols]),
                        np.concatenate([vals * 0.5, vals * 0.5]), (3, 3))
        a, b = fingerprints(plain), fingerprints(dup)
        assert a.pattern == b.pattern
        assert a.values == b.values
        assert a.combined == b.combined

    def test_duplicate_value_change_keeps_pattern(self):
        """Changing only the duplicates' values moves the value hash
        but not the pattern hash (what certificate/pattern caches key
        on)."""
        rows = np.array([0, 0, 1])
        cols = np.array([2, 2, 1])
        a = COOMatrix(rows, cols, np.array([1.0, 2.0, 3.0]), (2, 3))
        b = COOMatrix(rows, cols, np.array([2.0, 4.0, 3.0]), (2, 3))
        assert pattern_fingerprint(a) == pattern_fingerprint(b)
        assert value_fingerprint(a) != value_fingerprint(b)
        assert fingerprint(a) != fingerprint(b)

    def test_empty_matrix_split_is_stable(self):
        empty = COOMatrix.empty((64, 64))
        fps = fingerprints(empty)
        for fp in (fps.combined, fps.pattern, fps.values):
            assert len(fp) == FINGERPRINT_LEN
            int(fp, 16)
        again = fingerprints(COOMatrix.empty((64, 64)))
        assert (fps.combined, fps.pattern, fps.values) == \
            (again.combined, again.pattern, again.values)

    def test_empty_matrix_shape_distinguishes_pattern(self):
        a = fingerprints(COOMatrix.empty((64, 64)))
        b = fingerprints(COOMatrix.empty((64, 96)))
        assert a.pattern != b.pattern
        assert a.combined != b.combined

    def test_empty_differs_from_nonempty(self, coo):
        empty = COOMatrix.empty(coo.shape)
        assert fingerprints(empty).pattern != fingerprints(coo).pattern


class TestSurfacing:
    def test_crsd_repr_carries_fingerprint(self, coo):
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        assert f"fp={fingerprint(coo)}" in repr(crsd)
        assert crsd.fingerprint == fingerprint(coo)

    def test_profile_meta_carries_fingerprint(self, coo):
        from repro.obs.profiler import profile_matrix

        report = profile_matrix(coo, "fp-test", executors=("batched",))
        assert report.meta["fingerprint"] == fingerprint(coo)

"""Batched serving is bit-identical to per-request execution.

The acceptance bar of the serving subsystem: interleaved same-matrix
requests coalesced through the MicroBatcher into CrsdSpMM launches
produce *bit-identical* ``y`` (``np.array_equal``, not allclose) to
serving each request alone through CrsdSpMV — across suite matrices,
both execution engines, and both precisions.  The unbatched engine
(``max_batch=1``) additionally reproduces the sequential path's summed
trace counters exactly, and a batched launch's trace equals a directly
constructed CrsdSpMM run's.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.gpu_kernels.crsd_runner import CrsdSpMM, CrsdSpMV
from repro.matrices.suite23 import get_spec
from repro.serve import serve_session

#: representative structural families: clustered diagonals, row-banded
#: diagonals, 5-point stencil, 3-D stencil, 25-diagonal box stencil,
#: dense band + long rows, broken diagonals + scatter (Fig. 1), and the
#: heavier-scatter unstructured variant
MATRICES = ("crystk03", "s3dkt3m2", "ecology2", "wang3", "kim1",
            "nemeth22", "s80_80_50", "us110_110_68")

SCALE = 0.01
MROWS = 128
NREQ = 5  # rhs per matrix: forces a partial batch (max_batch=4)


def _suite_coo(name):
    return get_spec(name).generate(scale=SCALE, seed=0)


def _vectors(coo, n=NREQ, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(coo.ncols) for _ in range(n)]


def _sequential(coo, xs, precision):
    """The reference: one prepared CrsdSpMV, one run per request."""
    crsd = CRSDMatrix.from_coo(coo, mrows=MROWS,
                               wavefront_size=compatible_wavefront(MROWS))
    runner = CrsdSpMV(crsd, precision=precision).prepare()
    runs = [runner.run(x, trace=True) for x in xs]
    totals = {}
    for run in runs:
        for k, v in dataclasses.asdict(run.trace).items():
            totals[k] = totals.get(k, 0) + v
    return [run.y for run in runs], totals


def _serve(coo, xs, precision, max_batch):
    session = serve_session(precision=precision, mrows=MROWS,
                            max_batch=max_batch, max_delay_s=1.0)
    ids = [session.submit(coo, x) for x in xs]
    by_id = {r.request_id: r for r in session.run()}
    assert all(by_id[i].served for i in ids)
    return [by_id[i].y for i in ids], session


@pytest.mark.parametrize("executor", ["batched", "pergroup"])
@pytest.mark.parametrize("precision", ["double", "single"])
@pytest.mark.parametrize("name", MATRICES)
class TestBitIdentity:
    def test_batched_y_bit_identical(self, name, precision, executor,
                                     monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", executor)
        coo = _suite_coo(name)
        xs = _vectors(coo)
        refs, _ = _sequential(coo, xs, precision)
        ys, session = _serve(coo, xs, precision, max_batch=4)
        assert session.spmm_launches >= 1  # batching actually happened
        for y, ref in zip(ys, refs):
            assert y.dtype == ref.dtype
            assert np.array_equal(y, ref)


@pytest.mark.parametrize("name", ["kim1", "s80_80_50"])
class TestUnbatchedCounterIdentity:
    def test_max_batch_1_matches_sequential_counters(self, name):
        """The unbatched engine is the sequential path: same bits, same
        summed trace counters."""
        coo = _suite_coo(name)
        xs = _vectors(coo)
        refs, totals = _sequential(coo, xs, "double")
        ys, session = _serve(coo, xs, "double", max_batch=1)
        assert session.spmm_launches == 0
        assert session.spmv_launches == len(xs)
        for y, ref in zip(ys, refs):
            assert np.array_equal(y, ref)
        assert session.counter_totals == totals


class TestBatchedTraceIdentity:
    def test_batched_trace_equals_direct_spmm(self):
        """A full batch's counters equal a directly constructed
        CrsdSpMM run on the stacked X."""
        coo = _suite_coo("kim1")
        xs = _vectors(coo, n=4)
        crsd = CRSDMatrix.from_coo(
            coo, mrows=MROWS, wavefront_size=compatible_wavefront(MROWS))
        direct = CrsdSpMM(crsd, nvec=4).run(
            np.ascontiguousarray(np.stack(xs, axis=1)), trace=True)
        _, session = _serve(coo, xs, "double", max_batch=4)
        assert session.batch_histogram == {4: 1}
        assert session.counter_totals == dataclasses.asdict(direct.trace)

    def test_interleaved_matrices_stay_separated(self):
        """Requests against different matrices interleave in arrival
        order but never share a launch, and every y stays bit-exact."""
        a = _suite_coo("kim1")
        b = _suite_coo("wang3")
        xa, xb = _vectors(a, n=3, seed=1), _vectors(b, n=3, seed=2)
        session = serve_session(max_batch=4, max_delay_s=1.0)
        ids = []
        for x_a, x_b in zip(xa, xb):
            ids.append(session.submit(a, x_a))
            ids.append(session.submit(b, x_b))
        by_id = {r.request_id: r for r in session.run()}
        refs_a, _ = _sequential(a, xa, "double")
        refs_b, _ = _sequential(b, xb, "double")
        for i, ref in zip(ids[0::2], refs_a):
            assert np.array_equal(by_id[i].y, ref)
        for i, ref in zip(ids[1::2], refs_b):
            assert np.array_equal(by_id[i].y, ref)
        # two fingerprints -> at least two launches, none mixed
        sizes = sorted(r.batch_size for r in by_id.values())
        assert max(sizes) <= 3

"""Admission control, micro-batching decisions, the simulated clock."""

import numpy as np
import pytest

import repro
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    BatchConfig,
    MicroBatcher,
    Request,
    ServeOverloaded,
    SimulatedClock,
    serve_session,
)
from repro.serve.clock import FOREVER
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def coo():
    return random_diagonal_matrix(np.random.default_rng(5), n=64)


def req(i, at=0.0, key=("fp", "double"), deadline=None, batchable=True):
    return Request(id=i, key=key, entry=None, x=None, arrival_s=at,
                   deadline_s=deadline, batchable=batchable)


class TestClock:
    def test_starts_at_zero_and_advances(self):
        clock = SimulatedClock()
        assert clock.now == 0.0
        clock.advance_to(1.5)
        clock.advance_by(0.5)
        assert clock.now == 2.0

    def test_never_runs_backwards(self):
        clock = SimulatedClock()
        clock.advance_to(1.0)
        with pytest.raises(ValueError):
            clock.advance_to(0.5)


class TestAdmissionController:
    def test_accepts_below_bound(self):
        c = AdmissionController(AdmissionPolicy(max_queue_depth=2))
        assert c.admit(depth=1) == "accept"
        assert c.accepted == 1

    def test_reject_new_at_bound(self):
        c = AdmissionController(AdmissionPolicy(max_queue_depth=2))
        assert c.admit(depth=2) == "reject"
        assert c.rejected == 1

    def test_drop_oldest_at_bound(self):
        c = AdmissionController(
            AdmissionPolicy(max_queue_depth=2, overflow="drop-oldest"))
        assert c.admit(depth=2) == "shed-oldest"
        assert c.shed == 1 and c.accepted == 1

    def test_typed_overload_error(self):
        c = AdmissionController(AdmissionPolicy(max_queue_depth=4))
        err = c.overloaded_error(depth=4)
        assert isinstance(err, ServeOverloaded)
        assert isinstance(err, RuntimeError)
        assert err.depth == 4 and err.max_depth == 4

    def test_policy_validated(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionPolicy(overflow="panic")


class TestMicroBatcher:
    def test_waits_until_full_or_impatient(self):
        b = MicroBatcher(BatchConfig(max_batch=3, max_delay_s=1.0))
        b.push(req(0, at=0.0))
        b.push(req(1, at=0.1))
        assert b.form_batch(now=0.2) is None          # keep filling
        b.push(req(2, at=0.3))
        group = b.form_batch(now=0.3)                 # full
        assert [r.id for r in group] == [0, 1, 2]
        assert b.depth == 0

    def test_head_patience_forces_launch(self):
        b = MicroBatcher(BatchConfig(max_batch=8, max_delay_s=0.5))
        b.push(req(0, at=0.0))
        assert b.form_batch(now=0.4) is None
        assert b.next_forced_launch_s() == pytest.approx(0.5)
        group = b.form_batch(now=0.5)
        assert [r.id for r in group] == [0]

    def test_flush_launches_partial_batches(self):
        b = MicroBatcher(BatchConfig(max_batch=8, max_delay_s=10.0))
        b.push(req(0))
        b.push(req(1))
        assert b.form_batch(now=0.0) is None
        assert len(b.form_batch(now=0.0, flush=True)) == 2

    def test_only_same_key_coalesces(self):
        b = MicroBatcher(BatchConfig(max_batch=8))
        b.push(req(0, key=("a", "double")))
        b.push(req(1, key=("b", "double")))
        b.push(req(2, key=("a", "double")))
        group = b.form_batch(now=0.0, flush=True)
        assert [r.id for r in group] == [0, 2]
        assert b.depth == 1                           # b's request waits

    def test_non_batchable_head_runs_solo(self):
        b = MicroBatcher(BatchConfig(max_batch=8))
        b.push(req(0, batchable=False))
        b.push(req(1))
        assert b.next_forced_launch_s() == 0.0
        group = b.form_batch(now=0.0)
        assert [r.id for r in group] == [0]
        assert b.depth == 1

    def test_drain_expired(self):
        b = MicroBatcher(BatchConfig())
        b.push(req(0, deadline=0.5))
        b.push(req(1, deadline=2.0))
        b.push(req(2))
        dead = b.drain_expired(now=1.0)
        assert [r.id for r in dead] == [0]
        assert b.depth == 2

    def test_empty_queue_never_forces(self):
        b = MicroBatcher(BatchConfig())
        assert b.next_forced_launch_s() is FOREVER
        assert b.form_batch(now=0.0, flush=True) is None

    def test_config_validated(self):
        with pytest.raises(ValueError):
            BatchConfig(max_batch=0)
        with pytest.raises(ValueError):
            BatchConfig(max_delay_s=-1.0)
        with pytest.raises(ValueError):
            BatchConfig(min_spmm=1)


class TestEnginePolicies:
    def test_reject_new_overflow(self, coo):
        session = serve_session(max_queue_depth=4, max_delay_s=1.0)
        rng = np.random.default_rng(0)
        for _ in range(8):  # all arrive at t=0, device busy from launch 1
            session.submit(coo, rng.standard_normal(coo.ncols))
        results = session.run()
        by_status = {}
        for r in results:
            by_status.setdefault(r.status, []).append(r)
        assert len(by_status.get("rejected", [])) == 4
        assert len(by_status.get("served", [])) == 4
        assert session.controller.rejected == 4

    def test_drop_oldest_overflow(self, coo):
        session = serve_session(max_queue_depth=4, overflow="drop-oldest",
                                max_delay_s=1.0)
        rng = np.random.default_rng(0)
        for _ in range(8):
            session.submit(coo, rng.standard_normal(coo.ncols))
        results = session.run()
        shed = [r for r in results if r.status == "shed"]
        served = [r for r in results if r.served]
        assert len(shed) == 4 and len(served) == 4
        # freshest-work-wins: the *oldest* submissions were shed
        assert sorted(r.request_id for r in shed) == [0, 1, 2, 3]

    def test_expired_requests_never_launch(self, coo):
        session = serve_session(max_batch=2, min_spmm=2, max_delay_s=0.0)
        rng = np.random.default_rng(0)
        session.submit(coo, rng.standard_normal(coo.ncols))  # occupies device
        # arrives while the device is busy, with a deadline far shorter
        # than the remaining service time of the first launch
        session.submit(coo, rng.standard_normal(coo.ncols), at=1e-9,
                       deadline_s=1e-12)
        results = session.run()
        statuses = {r.request_id: r.status for r in results}
        assert statuses[0] == "served"
        assert statuses[1] == "expired"
        assert session.controller.expired == 1

    def test_deadline_miss_accounting(self, coo):
        session = serve_session()
        rng = np.random.default_rng(0)
        session.submit(coo, rng.standard_normal(coo.ncols), deadline_s=10.0)
        ok = session.run()[0]
        assert ok.deadline_met is True
        assert session.controller.deadline_misses == 0

    def test_resilient_request_served_solo(self, coo):
        session = serve_session(max_batch=8, max_delay_s=1.0)
        rng = np.random.default_rng(0)
        for _ in range(3):
            session.submit(coo, rng.standard_normal(coo.ncols))
        x_res = rng.standard_normal(coo.ncols)
        session.submit(coo, x_res, resilience=repro.Policy())
        results = session.run()
        resilient = [r for r in results if r.resilience is not None]
        assert len(resilient) == 1
        assert resilient[0].batched is False
        assert resilient[0].resilience.served_rung == "crsd"
        assert np.allclose(resilient[0].y, coo.matvec(x_res))
        assert all(r.served for r in results)

"""MatrixMarket I/O."""

import gzip

import numpy as np
import pytest

from repro.formats.base import FormatError
from repro.matrices.mmio import read_matrix_market, write_matrix_market


def test_write_read_roundtrip(tmp_path, fig2_coo):
    p = tmp_path / "m.mtx"
    write_matrix_market(fig2_coo, p)
    back = read_matrix_market(p)
    assert back.equals(fig2_coo, tol=1e-12)


def test_roundtrip_any_format(tmp_path, fig2_coo):
    from repro.formats.csr import CSRMatrix

    p = tmp_path / "m.mtx"
    write_matrix_market(CSRMatrix.from_coo(fig2_coo), p)
    assert read_matrix_market(p).equals(fig2_coo, tol=1e-12)


def test_reads_gzip(tmp_path, fig2_coo):
    p = tmp_path / "m.mtx"
    write_matrix_market(fig2_coo, p)
    gz = tmp_path / "m.mtx.gz"
    gz.write_bytes(gzip.compress(p.read_bytes()))
    assert read_matrix_market(gz).equals(fig2_coo, tol=1e-12)


def test_symmetric_mirrored(tmp_path):
    p = tmp_path / "s.mtx"
    p.write_text(
        "%%MatrixMarket matrix coordinate real symmetric\n"
        "3 3 3\n"
        "1 1 2.0\n"
        "2 1 5.0\n"
        "3 3 1.0\n"
    )
    m = read_matrix_market(p)
    d = m.todense()
    assert d[1, 0] == 5.0 and d[0, 1] == 5.0
    assert m.nnz == 4


def test_skew_symmetric(tmp_path):
    p = tmp_path / "s.mtx"
    p.write_text(
        "%%MatrixMarket matrix coordinate real skew-symmetric\n"
        "2 2 1\n"
        "2 1 3.0\n"
    )
    d = read_matrix_market(p).todense()
    assert d[1, 0] == 3.0 and d[0, 1] == -3.0


def test_pattern_field(tmp_path):
    p = tmp_path / "p.mtx"
    p.write_text(
        "%%MatrixMarket matrix coordinate pattern general\n"
        "2 2 2\n"
        "1 1\n"
        "2 2\n"
    )
    m = read_matrix_market(p)
    assert m.nnz == 2
    assert np.all(m.vals == 1.0)


def test_comments_skipped(tmp_path):
    p = tmp_path / "c.mtx"
    p.write_text(
        "%%MatrixMarket matrix coordinate real general\n"
        "% a comment\n"
        "% another\n"
        "1 1 1\n"
        "1 1 4.5\n"
    )
    assert read_matrix_market(p).todense()[0, 0] == 4.5


@pytest.mark.parametrize(
    "header",
    [
        "not a matrix market file\n1 1 1\n1 1 1.0\n",
        "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
        "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
    ],
)
def test_bad_headers_rejected(tmp_path, header):
    p = tmp_path / "bad.mtx"
    p.write_text(header)
    with pytest.raises(FormatError):
        read_matrix_market(p)


def test_truncated_file(tmp_path):
    p = tmp_path / "t.mtx"
    p.write_text("%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n")
    with pytest.raises(FormatError):
        read_matrix_market(p)


def test_malformed_size_line(tmp_path):
    p = tmp_path / "t.mtx"
    p.write_text("%%MatrixMarket matrix coordinate real general\nnope\n")
    with pytest.raises(FormatError):
        read_matrix_market(p)

"""Synthetic generators: exact structural properties."""

import numpy as np
import pytest

from repro.matrices import generators as gen
from repro.matrices.stats import compute_stats


@pytest.fixture
def nprng():
    return np.random.default_rng(7)


class TestGridStencil:
    def test_5point_2d(self, nprng):
        m = gen.grid_stencil((6, 7), gen.stencil_offsets((6, 7), 1, cross=True), nprng)
        assert m.shape == (42, 42)
        # interior cells have 5 entries
        assert m.row_lengths().max() == 5
        # corner has 3
        assert m.row_lengths().min() == 3
        # exact count: 5*42 - 2*(6+7) boundary omissions
        assert m.nnz == 5 * 42 - 2 * (6 + 7)

    def test_no_wraparound(self, nprng):
        m = gen.grid_stencil((3, 4), [(0, 1)], nprng)
        dense = m.todense()
        # last column of each grid row has no +1 neighbour
        for r in range(3):
            assert dense[r * 4 + 3].sum() == 0

    def test_upper_only(self, nprng):
        m = gen.grid_stencil((4, 4), gen.stencil_offsets((4, 4), 1), nprng,
                             upper_only=True)
        assert (m.cols >= m.rows).all()

    def test_box_stencil_25_point(self, nprng):
        offs = gen.stencil_offsets((20, 21), 2, cross=False)
        assert len(offs) == 25
        m = gen.grid_stencil((20, 21), offs, nprng)
        assert m.diagonal_offsets().size == 25

    def test_7point_3d(self, nprng):
        offs = gen.stencil_offsets((4, 5, 6), 1)
        assert len(offs) == 7
        m = gen.grid_stencil((4, 5, 6), offs, nprng)
        assert m.shape == (120, 120)
        assert sorted(m.diagonal_offsets().tolist()) == [-30, -6, -1, 0, 1, 6, 30]

    def test_rank_mismatch_rejected(self, nprng):
        with pytest.raises(ValueError):
            gen.grid_stencil((4, 4), [(0, 1, 0)], nprng)


class TestBanded:
    def test_full_band(self, nprng):
        m = gen.banded(10, 2, nprng)
        assert m.diagonal_offsets().tolist() == [-2, -1, 0, 1, 2]
        assert m.nnz == 5 * 10 - 2 * (1 + 2)

    def test_all_values_nonzero(self, nprng):
        m = gen.banded(10, 2, nprng)
        assert np.all(m.vals != 0)


class TestMultiDiagonal:
    def test_full_occupancy(self, nprng):
        m = gen.multi_diagonal(20, [(0, 1.0, 1), (3, 1.0, 1)], nprng)
        assert m.nnz == 20 + 17

    def test_partial_sections(self, nprng):
        m = gen.multi_diagonal(100, [(0, 0.5, 2)], nprng)
        assert 40 <= m.nnz <= 60
        rows = np.sort(m.rows)
        gaps = np.diff(rows)
        assert gaps.max() > 1  # an idle section exists between sections

    def test_invalid_occupancy(self, nprng):
        with pytest.raises(ValueError):
            gen.multi_diagonal(10, [(0, 0.0, 1)], nprng)
        with pytest.raises(ValueError):
            gen.multi_diagonal(10, [(0, 0.5, 0)], nprng)

    def test_out_of_matrix_diagonal_skipped(self, nprng):
        m = gen.multi_diagonal(10, [(0, 1.0, 1), (50, 1.0, 1)], nprng)
        assert m.diagonal_offsets().tolist() == [0]


class TestJitter:
    def test_jittered_stays_in_window(self, nprng):
        m = gen.jittered_diagonal(100, 10, 3, nprng)
        offs = m.offsets_of_entries()
        assert offs.min() >= 7 and offs.max() <= 13

    def test_blocked_jitter_constant_within_block(self, nprng):
        m = gen.blocked_jitter_diagonal(100, 10, 3, block_len=25, rng=nprng)
        offs = m.offsets_of_entries()
        rows = m.rows.astype(int)
        for b in range(4):
            sel = (rows >= b * 25) & (rows < (b + 1) * 25)
            assert np.unique(offs[sel]).size <= 1 or np.unique(offs[sel]).size == 1

    def test_valid_rows_respected(self, nprng):
        m = gen.jittered_diagonal(100, 5, 2, nprng, valid_rows=np.array([3, 50]))
        assert set(m.rows.tolist()) <= {3, 50}


class TestBandedPatterns:
    def test_band_structure(self, nprng):
        m = gen.banded_patterns(4096, num_bands=4, clusters_per_band=3,
                                cluster_width=3, cluster_pool=[64, -64, 128, -128, 256, -256],
                                rng=nprng, align=128)
        st = compute_stats(m)
        # 3 clusters x 3 diagonals active per band
        assert st.max_nnz_per_row <= 9
        assert st.num_diagonals > 9  # different bands use different clusters

    def test_main_cluster_always_present(self, nprng):
        m = gen.banded_patterns(1024, 2, 2, 3, [100, -100], nprng)
        dense_diag = np.abs(m.todense().diagonal())
        assert (dense_diag > 0).mean() > 0.95


class TestPerturbations:
    def test_inject_dense_rows(self, nprng):
        base = gen.banded(200, 2, nprng)
        m = gen.inject_dense_rows(base, 0.05, 10, nprng, max_offset=20)
        lengths = m.row_lengths()
        assert lengths.max() > 5
        assert np.abs(m.offsets_of_entries()).max() <= 20

    def test_sprinkle_scatter(self, nprng):
        base = gen.banded(100, 1, nprng)
        m = gen.sprinkle_scatter(base, 5, nprng)
        assert m.nnz >= base.nnz + 1  # collisions may merge a few

    def test_merge_sums_duplicates(self, nprng):
        a = gen.banded(10, 0, nprng)
        b = gen.banded(10, 0, nprng)
        m = gen.merge((10, 10), a, b)
        assert m.nnz == 10
        assert np.allclose(m.vals, a.vals + b.vals)


class TestSymmetricGenerators:
    def test_symmetric_diagonals_exact_mirror(self, nprng):
        m = gen.symmetric_diagonals(128, [1, 4, 9], nprng)
        assert m.is_symmetric(tol=0.0)
        dense = m.todense()
        # stored offsets only: +/-1, +/-4, +/-9 and the main diagonal
        offs = {int(o) for o in np.unique(m.cols - m.rows)}
        assert offs == {-9, -4, -1, 0, 1, 4, 9}
        # bit-equal mirrors, not merely close
        assert np.array_equal(dense, dense.T)

    def test_symmetric_diagonals_spd(self, nprng):
        m = gen.symmetric_diagonals(96, [2, 5], nprng)
        dense = m.todense()
        offdiag = np.abs(dense - np.diag(np.diag(dense))).sum(axis=1)
        assert (np.diag(dense) > offdiag).all()  # strict dominance

    def test_symmetric_diagonals_indefinite(self, nprng):
        m = gen.symmetric_diagonals(96, [2, 5], nprng, spd=False)
        assert m.is_symmetric(tol=0.0)

    def test_symmetric_banded(self, nprng):
        m = gen.symmetric_banded(128, 7, nprng)
        assert m.is_symmetric(tol=0.0)
        assert np.abs(m.cols - m.rows).max() == 7
        assert m.nnz == 128 * 15 - 2 * sum(range(1, 8))

    def test_symmetric_deterministic(self):
        a = gen.symmetric_banded(64, 3, np.random.default_rng(9))
        b = gen.symmetric_banded(64, 3, np.random.default_rng(9))
        assert np.array_equal(a.vals, b.vals)

    def test_kkt_blocks(self, nprng):
        h, bt, b, c = gen.kkt_blocks(96, 48, nprng)
        assert h.shape == (96, 96) and c.shape == (48, 48)
        assert b.shape == (48, 96) and bt.shape == (96, 48)
        assert h.is_symmetric(tol=0.0) and c.is_symmetric(tol=0.0)
        # the coupling blocks are exact transposes of each other
        assert np.array_equal(bt.todense(), b.todense().T)
        # the assembled KKT system is symmetric positive definite
        kkt = np.block([[h.todense(), bt.todense()],
                        [b.todense(), c.todense()]])
        assert np.array_equal(kkt, kkt.T)
        assert np.linalg.eigvalsh(kkt).min() > 0

"""Text spy plots."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.matrices.spyplot import spy
from tests.conftest import random_diagonal_matrix


def test_small_matrix_exact_cells(fig2_coo):
    out = spy(fig2_coo, width=9)
    grid = [l for l in out.splitlines() if l.startswith("  |") or l.startswith("> |")]
    assert len(grid) == 6
    # row 0 has nonzeros at columns 0,2,3,5,7
    row0 = grid[0][3:-1]
    assert row0[0] != " " and row0[1] == " " and row0[2] != " "


def test_diagonal_shows_as_diagonal(rng):
    n = 64
    m = COOMatrix(np.arange(n), np.arange(n), np.ones(n), (n, n))
    out = spy(m, width=16, height=16)
    grid = [l[3:-1] for l in out.splitlines()
            if l.startswith("  |") or l.startswith("> |")]
    for i in range(16):
        assert grid[i][i] != " "
        assert all(grid[i][j] == " " for j in range(16) if j != i)


def test_downsampling_large_matrix(rng):
    m = random_diagonal_matrix(rng, n=5000)
    out = spy(m, width=40)
    assert "5000 x 5000" in out
    grid = [l for l in out.splitlines() if l.startswith("  |")]
    assert 0 < len(grid) <= 40


def test_scatter_rows_marked(fig2_coo):
    out = spy(fig2_coo, width=9, scatter_rows=np.array([5]))
    lines = out.splitlines()
    assert lines[-2].startswith("> ")
    assert sum(1 for l in lines if l.startswith("> ")) == 1


def test_density_glyphs_vary(rng):
    dense_block = np.zeros((64, 64))
    dense_block[:32, :32] = 1.0
    dense_block[40, 40] = 1.0
    m = COOMatrix.from_dense(dense_block)
    out = spy(m, width=8, height=8)
    assert "#" in out  # the dense quadrant
    assert out.count("#") >= 4


def test_empty_matrix():
    out = spy(COOMatrix.empty((10, 10)), width=5)
    assert "nnz = 0" in out


def test_invalid_width():
    with pytest.raises(ValueError):
        spy(COOMatrix.empty((4, 4)), width=0)

"""Full-scale fidelity: Table V numbers for the affordable matrices.

The suite normally runs scaled; these tests generate the *small* Table
V matrices at scale=1.0 and check dimensions exactly and nnz within a
band — the strongest structural-fidelity statement the synthetic
recipes can make.  (The >300k-row matrices are exercised at scale
elsewhere; their dimension arithmetic is pinned here without
generating.)
"""

import numpy as np
import pytest

from repro.matrices.stats import compute_stats
from repro.matrices.suite23 import get_spec

#: name -> (relative nnz tolerance) for full-size generation
AFFORDABLE = {
    "crystk02": 0.12,
    "wang3": 0.12,
    "wang4": 0.12,
    "nemeth21": 0.10,
    "nemeth22": 0.10,
    "nemeth23": 0.10,
    "kim1": 0.06,
}


@pytest.fixture(scope="module")
def full():
    return {
        name: get_spec(name).generate(scale=1.0) for name in AFFORDABLE
    }


@pytest.mark.parametrize("name", sorted(AFFORDABLE))
def test_dimensions_exact(full, name):
    spec = get_spec(name)
    m = full[name]
    # grid-based recipes may deviate by the factorisation; within 1%
    assert abs(m.nrows - spec.paper_rows) <= max(1, spec.paper_rows // 100), (
        m.nrows, spec.paper_rows
    )


@pytest.mark.parametrize("name", sorted(AFFORDABLE))
def test_nnz_in_band(full, name):
    spec = get_spec(name)
    tol = AFFORDABLE[name]
    got = full[name].nnz
    assert abs(got - spec.paper_nnz) <= tol * spec.paper_nnz, (
        name, got, spec.paper_nnz
    )


def test_kim1_exact_structure(full):
    """kim1: exactly 25 diagonals (the paper's statement) on a 195x197
    grid — 38415 rows exactly."""
    st = compute_stats(full["kim1"])
    assert full["kim1"].nrows == 38415
    assert st.num_diagonals == 25

def test_nemeth_band_structure(full):
    """nemeth21: halfwidth-31 band -> 63 nnz on interior rows."""
    st = compute_stats(full["nemeth21"])
    assert full["nemeth21"].nrows == 9506
    lengths = full["nemeth21"].row_lengths()
    interior = lengths[40:-40]
    assert np.median(interior) == 63


def test_wang3_dia_hostility_at_full_scale(full):
    """wang3's wandering couplings must spread over dozens of exact
    diagonals (DIA 'very poor') while keeping ~6.8 nnz/row."""
    st = compute_stats(full["wang3"])
    assert st.num_diagonals > 40
    assert st.dia_fill_ratio > 5.0
    assert 6.0 < st.mean_nnz_per_row < 7.5


def test_large_matrix_dimension_arithmetic():
    """The unaffordable matrices' full sizes are pure arithmetic —
    checked without generating."""
    for name, rows in [
        ("ecology1", 1_000_000), ("kim2", 456_976),
        ("s80_80_50", 320_000), ("s100_100_62", 620_000),
        ("s110_110_68", 822_800), ("af_1_k101", 503_625),
    ]:
        assert get_spec(name).paper_rows == rows
    # the astro grids factor exactly
    assert 80 * 80 * 50 == 320_000
    assert 100 * 100 * 62 == 620_000
    assert 110 * 110 * 68 == 822_800
    assert 676 * 676 == 456_976

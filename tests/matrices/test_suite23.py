"""The 23-matrix suite reproduces each Table V row's documented structure."""

import pytest

from repro.matrices.stats import compute_stats, estimate_dia_bytes
from repro.matrices.suite23 import SUITE, generate, get_spec

SCALE = 0.02


@pytest.fixture(scope="module")
def generated():
    """Generate the whole suite once, at the same per-spec effective
    scale the bench harness uses (structure constants like band counts
    need a minimum row count to hold)."""
    from repro.bench.runner import effective_scale

    return {
        s.number: s.generate(scale=effective_scale(s, SCALE), seed=0)
        for s in SUITE
    }


@pytest.fixture(scope="module")
def stats(generated):
    return {k: compute_stats(v) for k, v in generated.items()}


class TestCatalogue:
    def test_23_matrices(self):
        assert len(SUITE) == 23
        assert [s.number for s in SUITE] == list(range(1, 24))

    def test_lookup_by_number_and_name(self):
        assert get_spec(9).name == "kim1"
        assert get_spec("kim1").number == 9
        with pytest.raises(KeyError):
            get_spec(0)
        with pytest.raises(KeyError):
            get_spec("nope")

    def test_paper_sizes_recorded(self):
        s = get_spec("ecology1")
        assert s.paper_rows == 1_000_000
        assert s.paper_nnz == 2_998_000

    def test_generate_validates_scale(self):
        with pytest.raises(ValueError):
            generate(1, scale=0.0)
        with pytest.raises(ValueError):
            generate(1, scale=1.5)

    def test_deterministic_per_seed(self):
        a = generate(5, scale=SCALE, seed=3)
        b = generate(5, scale=SCALE, seed=3)
        assert a.equals(b)
        c = generate(5, scale=SCALE, seed=4)
        assert not a.equals(c)


class TestStructure:
    def test_all_generate_nonempty(self, generated):
        for num, m in generated.items():
            assert m.nnz > 0, num
            assert m.nrows == m.ncols

    def test_nnz_per_row_tracks_paper(self, stats):
        """mean nnz/row within 40% of the paper's value."""
        for s in SUITE:
            target = s.paper_nnz / s.paper_rows
            got = stats[s.number].mean_nnz_per_row
            assert 0.6 * target <= got <= 1.5 * target, (s.name, got, target)

    def test_kim_has_25_diagonals(self, stats):
        assert stats[9].num_diagonals == 25
        assert stats[10].num_diagonals == 25

    def test_ecology_three_diagonals(self, stats):
        assert stats[5].num_diagonals == 3
        assert stats[6].num_diagonals == 3

    def test_dia_hostile_matrices_have_high_fill(self, stats):
        for s in SUITE:
            if s.dia_hostile:
                assert stats[s.number].dia_fill_ratio > 3.0, s.name

    def test_stencils_have_low_dia_fill(self, stats):
        for num in (5, 6, 9, 10, 14):
            assert stats[num].dia_fill_ratio < 1.5, num

    def test_nemeth_band_with_long_rows(self, stats):
        st = stats[15]
        assert st.max_nnz_per_row > st.mean_nnz_per_row * 1.2

    def test_astro_has_idle_sections(self, generated):
        """The ±far diagonals of the astrophysics matrices are broken."""
        from repro.core.analysis import analyze_structure

        m = generated[18]
        a = analyze_structure(m, mrows=64)
        assert a.idle_broken_gaps > 0

    def test_astro_has_scatter_points(self, generated):
        from repro.core.analysis import analyze_structure

        a = analyze_structure(generated[21], mrows=64)
        assert a.num_scatter_points > 0

    def test_unstructured_variants_more_broken(self, generated):
        from repro.core.analysis import analyze_structure

        s = analyze_structure(generated[19], mrows=64)
        us = analyze_structure(generated[22], mrows=64)
        assert us.idle_broken_gaps >= s.idle_broken_gaps


class TestFullSizeFootprint:
    def test_af_dia_double_exceeds_c2050(self):
        """E10: 900 diagonals x 503625 rows x 8 B > 3 GB."""
        s = get_spec("af_1_k101")
        need = estimate_dia_bytes(s.paper_rows, s.full_diagonals, "double")
        assert need > 3 * 1024**3

    def test_af_dia_single_fits(self):
        s = get_spec("af_1_k101")
        need = estimate_dia_bytes(s.paper_rows, s.full_diagonals, "single")
        assert need < 3 * 1024**3

    def test_s3dk_dia_fits_both(self):
        s = get_spec("s3dkt3m2")
        for p in ("double", "single"):
            assert estimate_dia_bytes(s.paper_rows, s.full_diagonals, p) < 3 * 1024**3


class TestScaling:
    @pytest.mark.parametrize("num", [5, 9, 18])
    def test_structure_survives_scaling(self, num):
        small = compute_stats(generate(num, scale=0.01))
        large = compute_stats(generate(num, scale=0.03))
        # nnz/row is a structural constant
        assert small.mean_nnz_per_row == pytest.approx(
            large.mean_nnz_per_row, rel=0.25
        )

    def test_scale_one_dimensions(self):
        # check a small paper-size matrix exactly (nemeth21 is 9506 rows)
        m = generate(15, scale=1.0)
        assert m.nrows == 9506

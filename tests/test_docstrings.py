"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) requires doc comments on every public item; this
meta-test enforces it mechanically over the whole package — modules,
public classes, public functions and public methods.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (obj.__doc__ and obj.__doc__.strip()):
            missing.append(name)
            continue
        if inspect.isclass(obj):
            for mname, meth in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(meth):
                    continue
                if meth.__doc__ and meth.__doc__.strip():
                    continue
                # an override inherits its contract from a documented
                # base-class method
                inherited = any(
                    (base_m := getattr(base, mname, None)) is not None
                    and base_m.__doc__
                    for base in obj.__mro__[1:]
                )
                if not inherited:
                    missing.append(f"{name}.{mname}")
    assert not missing, f"{module.__name__}: undocumented public items: {missing}"

"""Structure analysis: sectioning, scatter detection, region formation."""

import numpy as np
import pytest

from repro.core.analysis import analyze_structure
from repro.formats.coo import COOMatrix


def diag_matrix(n, entries):
    rows, cols = zip(*entries)
    return COOMatrix(np.array(rows), np.array(cols), np.ones(len(entries)), (n, n))


class TestScatterDetection:
    def test_isolated_nonzero_is_scatter(self):
        # main diagonal occupied at rows 0,1 then an isolated entry at 10
        m = diag_matrix(12, [(0, 0), (1, 1), (10, 10)])
        a = analyze_structure(m, mrows=2, idle_fill_max_rows=1)
        assert a.num_scatter_points == 1
        assert a.scatter_rows.tolist() == [10]

    def test_pair_is_not_scatter(self):
        m = diag_matrix(12, [(0, 0), (1, 1), (9, 9), (10, 10)])
        a = analyze_structure(m, mrows=2, idle_fill_max_rows=1)
        assert a.num_scatter_points == 0

    def test_detect_scatter_off(self):
        m = diag_matrix(12, [(0, 0), (1, 1), (10, 10)])
        a = analyze_structure(m, mrows=2, idle_fill_max_rows=1, detect_scatter=False)
        assert a.num_scatter_points == 0
        # the lone entry keeps its diagonal alive in its segment
        assert a.region_of_row(10) is not None

    def test_fig2_v55_is_the_only_scatter(self, fig2_coo):
        a = analyze_structure(fig2_coo, mrows=2, idle_fill_max_rows=1)
        assert a.num_scatter_points == 1
        assert a.scatter_rows.tolist() == [5]
        idx = list(zip(fig2_coo.rows.tolist(), fig2_coo.cols.tolist()))
        assert idx[int(np.flatnonzero(a.scatter_mask)[0])] == (5, 5)

    def test_scatter_entry_per_diagonal_section(self):
        # two isolated entries on the same diagonal, far apart
        m = diag_matrix(40, [(0, 0), (1, 1), (20, 20), (35, 35)])
        a = analyze_structure(m, mrows=2, idle_fill_max_rows=2)
        assert a.num_scatter_points == 2
        assert a.scatter_rows.tolist() == [20, 35]


class TestIdleSections:
    def test_short_gap_filled(self):
        # gap of 1 row (v43-style) stays one section
        m = diag_matrix(8, [(0, 0), (1, 1), (3, 3), (4, 4)])
        a = analyze_structure(m, mrows=2, idle_fill_max_rows=1)
        assert a.idle_broken_gaps == 0
        assert a.num_sections == 1
        assert a.presence[0].tolist() == [True, True, True, False]

    def test_long_gap_breaks(self):
        m = diag_matrix(16, [(0, 0), (1, 1), (10, 10), (11, 11)])
        a = analyze_structure(m, mrows=2, idle_fill_max_rows=2)
        assert a.idle_broken_gaps == 1
        assert a.num_sections == 2
        # segments 1..4 idle
        assert a.presence[0].tolist() == [True, False, False, False, False,
                                          True, False, False]

    def test_threshold_zero_never_fills(self):
        m = diag_matrix(8, [(0, 0), (2, 2), (4, 4), (6, 6)])
        a = analyze_structure(m, mrows=8, idle_fill_max_rows=0,
                              detect_scatter=False)
        assert a.idle_broken_gaps == 3

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            analyze_structure(diag_matrix(4, [(0, 0)]), mrows=2,
                              idle_fill_max_rows=-1)

    def test_default_threshold_is_mrows(self):
        # gap of exactly mrows rows is filled by default
        m = diag_matrix(16, [(0, 0), (5, 5)])
        a = analyze_structure(m, mrows=4)
        assert a.idle_broken_gaps == 0


class TestRegions:
    def test_fig2_two_regions(self, fig2_coo):
        a = analyze_structure(fig2_coo, mrows=2, idle_fill_max_rows=1)
        assert a.num_regions == 2
        r1, r2 = a.regions
        assert str(r1.pattern) == "{(NAD,1),(AD,2),(NAD,2)}"
        assert (r1.start_row, r1.num_segments) == (0, 1)
        assert str(r2.pattern) == "{(AD,2),(NAD,1)}"
        assert (r2.start_row, r2.num_segments) == (2, 2)

    def test_uniform_matrix_single_region(self):
        n = 32
        entries = [(i, i) for i in range(n)] + [(i, i + 2) for i in range(n - 2)]
        a = analyze_structure(diag_matrix(n, entries), mrows=4)
        assert a.num_regions == 1
        assert a.regions[0].num_segments == 8

    def test_empty_segments_uncovered(self):
        # entries only in the last segment
        m = diag_matrix(16, [(12, 12), (13, 13), (14, 14), (15, 15)])
        a = analyze_structure(m, mrows=4)
        assert a.num_regions == 1
        assert a.regions[0].start_row == 12
        assert a.region_of_row(0) is None

    def test_empty_matrix(self):
        a = analyze_structure(COOMatrix.empty((8, 8)), mrows=2)
        assert a.num_regions == 0
        assert a.num_scatter_points == 0

    def test_regions_cover_all_non_scatter_entries(self, rng):
        from tests.conftest import random_diagonal_matrix

        m = random_diagonal_matrix(rng, n=96, density=0.7)
        a = analyze_structure(m, mrows=8, idle_fill_max_rows=4)
        offs = m.offsets_of_entries()
        for i in range(m.nnz):
            if a.scatter_mask[i]:
                continue
            region = a.region_of_row(int(m.rows[i]))
            assert region is not None, f"entry {i} in no region"
            assert int(offs[i]) in region.pattern.offsets

    def test_scatter_entries_have_scatter_rows(self, rng):
        from tests.conftest import random_diagonal_matrix

        m = random_diagonal_matrix(rng, n=96, density=0.5, scatter=5)
        a = analyze_structure(m, mrows=8)
        rows_with_scatter = set(m.rows[a.scatter_mask].tolist())
        assert rows_with_scatter == set(a.scatter_rows.tolist())

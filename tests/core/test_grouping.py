"""AD/NAD grouping (Section II-B)."""

import pytest

from repro.core.grouping import Group, GroupKind, flatten_groups, group_offsets


def sig(groups):
    return [(g.kind.value, g.ndiags) for g in groups]


class TestPaperExamples:
    def test_fig2_first_pattern(self):
        """Offsets {0,2,3,5,7} -> {(NAD,1),(AD,2),(NAD,2)}."""
        groups = group_offsets([0, 2, 3, 5, 7])
        assert sig(groups) == [("NAD", 1), ("AD", 2), ("NAD", 2)]
        assert groups[1].offsets == (2, 3)
        assert groups[2].offsets == (5, 7)

    def test_fig2_second_pattern(self):
        """Offsets {-2,-1,1} -> {(AD,2),(NAD,1)}."""
        groups = group_offsets([-2, -1, 1])
        assert sig(groups) == [("AD", 2), ("NAD", 1)]


class TestGrouping:
    def test_empty(self):
        assert group_offsets([]) == []

    def test_single_offset_is_nad(self):
        assert sig(group_offsets([4])) == [("NAD", 1)]

    def test_all_adjacent_one_ad(self):
        groups = group_offsets([-1, 0, 1, 2])
        assert sig(groups) == [("AD", 4)]

    def test_all_isolated_one_nad(self):
        assert sig(group_offsets([-10, 0, 10])) == [("NAD", 3)]

    def test_ad_breaks_nad_pieces(self):
        # {-5, -3 | -1,0 | 2, 4} -> NAD(2), AD(2), NAD(2)
        groups = group_offsets([-5, -3, -1, 0, 2, 4])
        assert sig(groups) == [("NAD", 2), ("AD", 2), ("NAD", 2)]

    def test_two_ad_runs(self):
        groups = group_offsets([0, 1, 5, 6, 7])
        assert sig(groups) == [("AD", 2), ("AD", 3)]

    def test_leading_and_trailing_nad(self):
        groups = group_offsets([-9, -1, 0, 9])
        assert sig(groups) == [("NAD", 1), ("AD", 2), ("NAD", 1)]

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            group_offsets([3, 1])

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            group_offsets([1, 1])

    def test_flatten_preserves_order(self):
        groups = group_offsets([-5, -3, -1, 0, 2, 4])
        assert flatten_groups(groups) == [-5, -3, -1, 0, 2, 4]

    def test_every_offset_in_exactly_one_group(self):
        offs = [-7, -6, -4, -1, 0, 1, 3, 8, 9]
        groups = group_offsets(offs)
        assert sorted(flatten_groups(groups)) == offs


class TestGroupValidation:
    def test_ad_needs_two(self):
        with pytest.raises(ValueError):
            Group(GroupKind.AD, (3,))

    def test_ad_must_be_consecutive(self):
        with pytest.raises(ValueError):
            Group(GroupKind.AD, (1, 3))

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            Group(GroupKind.NAD, ())

    def test_decreasing_rejected(self):
        with pytest.raises(ValueError):
            Group(GroupKind.NAD, (3, 1))

    def test_signature_and_str(self):
        g = Group(GroupKind.AD, (2, 3))
        assert g.signature == ("AD", 2)
        assert str(g) == "(AD,2)"

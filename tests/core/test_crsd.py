"""CRSD storage format: construction, SpMV, round-trips, statistics."""

import numpy as np
import pytest

from repro.core.crsd import CRSDBuildParams, CRSDMatrix, compatible_wavefront
from repro.formats.base import FormatError
from repro.formats.coo import COOMatrix
from tests.conftest import random_diagonal_matrix


class TestBuildParams:
    def test_defaults(self):
        p = CRSDBuildParams()
        assert p.mrows == 64
        assert p.detect_scatter

    def test_invalid_mrows(self):
        with pytest.raises(ValueError):
            CRSDBuildParams(mrows=0)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            CRSDBuildParams(idle_fill_max_rows=-2)

    def test_params_xor_kwargs(self, fig2_coo):
        with pytest.raises(TypeError):
            CRSDMatrix.from_coo(fig2_coo, CRSDBuildParams(), mrows=2, wavefront_size=2)


class TestConstruction:
    def test_fig2_build(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        assert m.nnz == 22
        assert m.num_dia_patterns == 2
        assert m.num_scatter_rows == 1
        assert m.num_scatter_width == 4
        assert m.mrows == 2

    def test_slab_size_matches_regions(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        assert m.dia_val.size == sum(r.stored_slots for r in m.regions)
        # pattern 1: 1 seg x 5 diags x 2 + pattern 2: 2 segs x 3 diags x 2
        assert m.dia_val.size == 10 + 12

    def test_fill_zeros_fig2(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        # v43 position is the only fill slot (v55 moved to scatter but its
        # slot was never part of the diagonal structure)
        assert m.fill_zeros == 1

    def test_empty_matrix(self):
        m = CRSDMatrix.from_coo(COOMatrix.empty((8, 8)), mrows=4, wavefront_size=4)
        assert m.nnz == 0
        assert m.dia_val.size == 0
        assert np.array_equal(m.matvec(np.ones(8)), np.zeros(8))

    def test_region_slab_view(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        slab = m.region_slab(1)
        assert slab.shape == (2, 3, 2)
        # first segment, AD diagonal -2: rows 2,3 -> v20, v31
        assert slab[0, 0, 0] == 11.0
        assert slab[0, 0, 1] == 14.0

    def test_mismatched_slab_rejected(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        with pytest.raises(FormatError):
            CRSDMatrix(
                m.shape, m.params, m.regions, m.dia_val[:-1],
                m.scatter_rowno, m.scatter_colval, m.scatter_val,
                m.scatter_occupancy, m.nnz,
            )


class TestMatvec:
    def test_fig2(self, fig2_coo, fig2_dense, rng):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        x = rng.standard_normal(9)
        assert np.allclose(m.matvec(x), fig2_dense @ x)

    @pytest.mark.parametrize("mrows", [1, 2, 3, 4, 8, 16, 64, 128])
    def test_any_mrows(self, rng, mrows):
        m0 = random_diagonal_matrix(rng, n=50)
        dense = m0.todense()
        x = rng.standard_normal(50)
        m = CRSDMatrix.from_coo(
            m0, mrows=mrows, wavefront_size=compatible_wavefront(mrows)
        )
        assert np.allclose(m.matvec(x), dense @ x), mrows

    @pytest.mark.parametrize("thr", [0, 1, 2, 8, 1000])
    def test_any_fill_threshold(self, rng, thr):
        m0 = random_diagonal_matrix(rng, n=60, density=0.5)
        dense = m0.todense()
        x = rng.standard_normal(60)
        m = CRSDMatrix.from_coo(m0, mrows=4, wavefront_size=4, idle_fill_max_rows=thr)
        assert np.allclose(m.matvec(x), dense @ x), thr

    def test_scatter_disabled(self, rng):
        m0 = random_diagonal_matrix(rng, n=50, scatter=6)
        x = rng.standard_normal(50)
        m = CRSDMatrix.from_coo(m0, mrows=4, wavefront_size=4, detect_scatter=False)
        assert m.num_scatter_rows == 0
        assert np.allclose(m.matvec(x), m0.todense() @ x)

    def test_rows_not_multiple_of_mrows(self, rng):
        m0 = random_diagonal_matrix(rng, n=53)
        x = rng.standard_normal(53)
        m = CRSDMatrix.from_coo(m0, mrows=8, wavefront_size=8)
        assert np.allclose(m.matvec(x), m0.todense() @ x)

    def test_out_parameter(self, fig2_coo, rng):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        x = rng.standard_normal(9)
        out = np.full(6, 5.0)
        y = m.matvec(x, out=out)
        assert y is out
        assert np.allclose(out, fig2_coo.todense() @ x)

    def test_matrix_with_only_scatter(self):
        entries = [(1, 7), (9, 2), (20, 15)]
        rows, cols = zip(*entries)
        coo = COOMatrix(np.array(rows), np.array(cols), np.arange(1.0, 4.0), (24, 24))
        m = CRSDMatrix.from_coo(coo, mrows=4, wavefront_size=4, idle_fill_max_rows=1)
        assert m.num_scatter_rows == 3
        assert len(m.regions) == 0
        x = np.arange(24, dtype=float)
        assert np.allclose(m.matvec(x), coo.todense() @ x)


class TestRoundtrip:
    def test_fig2(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        assert m.to_coo().equals(fig2_coo)

    @pytest.mark.parametrize("seed", range(6))
    def test_random(self, seed):
        rng = np.random.default_rng(seed)
        m0 = random_diagonal_matrix(rng, n=70, density=0.6, scatter=3)
        m = CRSDMatrix.from_coo(m0, mrows=8, wavefront_size=8)
        assert m.to_coo().equals(m0)


class TestStats:
    def test_adjacent_slot_fraction_fig2(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        # region 1: 2 of 5 diagonals AD; region 2: 2 of 3 AD over 2 segments
        expected = (2 * 2 + 2 * 2 * 2) / (5 * 2 + 3 * 2 * 2)
        assert m.adjacent_slot_fraction == pytest.approx(expected)

    def test_crsd_dia_index_fig2(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        # {R0, 1, C0, C2, C5, C7 | R2, 2, C0, C3}
        assert m.crsd_dia_index().tolist() == [0, 1, 0, 2, 5, 7, 2, 2, 0, 3]

    def test_inventory_is_value_arrays_only(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        assert set(m.array_inventory()) == {
            "crsd_dia_val", "scatter_rowno", "scatter_colval", "scatter_val",
        }

    def test_stored_elements(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        assert m.stored_elements == 22 + 4  # slab + scatter ELL

    def test_fig4_dump_contains_header(self, fig2_coo):
        m = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        dump = m.fig4_dump()
        assert "num_scatter_rows = 1;" in dump
        assert "num_dia_patterns = 2;" in dump
        assert "num_scatter_width = 4;" in dump
        assert "{(NAD,1),(AD,2),(NAD,2)}" in dump
        assert "scatter_rowno = {R5}" in dump

"""Work-item-level interpreted SpMV vs. the vectorised reference."""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.core.spmv import (
    index_trace,
    region_of_group,
    spmv_interpreted,
    spmv_work_item,
    total_work_groups,
)
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def crsd(fig2_coo):
    return CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)


class TestGroupMapping:
    def test_total_groups(self, crsd):
        assert total_work_groups(crsd) == 3  # 1 + 2 segments

    def test_region_of_group(self, crsd):
        assert region_of_group(crsd, 0) == (0, 0)
        assert region_of_group(crsd, 1) == (1, 0)
        assert region_of_group(crsd, 2) == (1, 1)

    def test_out_of_range(self, crsd):
        with pytest.raises(IndexError):
            region_of_group(crsd, 3)


class TestWorkItem:
    def test_row_mapping(self, crsd):
        for gid, lid, row in [(0, 0, 0), (0, 1, 1), (1, 0, 2), (2, 1, 5)]:
            r, _ = spmv_work_item(crsd, np.zeros(9), gid, lid)
            assert r == row

    def test_local_id_checked(self, crsd):
        with pytest.raises(IndexError):
            spmv_work_item(crsd, np.zeros(9), 0, 2)

    def test_single_item_value(self, crsd, fig2_dense, rng):
        x = rng.standard_normal(9)
        row, acc = spmv_work_item(crsd, x, 1, 0)  # row 2, no scatter
        assert acc == pytest.approx(fig2_dense[2] @ x)


class TestFullInterpretation:
    def test_fig2(self, crsd, fig2_dense, rng):
        x = rng.standard_normal(9)
        assert np.allclose(spmv_interpreted(crsd, x), fig2_dense @ x)

    @pytest.mark.parametrize("mrows", [2, 4, 8])
    def test_matches_vectorised(self, rng, mrows):
        m0 = random_diagonal_matrix(rng, n=40, scatter=3)
        m = CRSDMatrix.from_coo(
            m0, mrows=mrows, wavefront_size=compatible_wavefront(mrows)
        )
        x = rng.standard_normal(40)
        assert np.allclose(spmv_interpreted(m, x), m.matvec(x))


class TestIndexTrace:
    def test_slab_indices_are_dense_and_disjoint(self, crsd):
        """Every slab slot is touched exactly once across all work items."""
        seen = []
        for gid in range(total_work_groups(crsd)):
            for lid in range(crsd.mrows):
                for e in index_trace(crsd, gid, lid):
                    seen.append(e["slab_index"])
        assert sorted(seen) == list(range(crsd.dia_val.size))

    def test_x_index_equals_row_plus_offset(self, crsd):
        for gid in range(total_work_groups(crsd)):
            for lid in range(crsd.mrows):
                row, _ = spmv_work_item(crsd, np.zeros(9), gid, lid)
                for e in index_trace(crsd, gid, lid):
                    assert e["x_index"] == row + e["offset"]

"""Diagonal patterns and pattern regions."""

import pytest

from repro.core.pattern import (
    DiagonalPattern,
    PatternRegion,
    distinct_patterns,
    matrix_signature,
)


@pytest.fixture
def p1():
    return DiagonalPattern.from_offsets([0, 2, 3, 5, 7])


@pytest.fixture
def p2():
    return DiagonalPattern.from_offsets([-2, -1, 1])


class TestPattern:
    def test_signature(self, p1):
        assert p1.signature == (("NAD", 1), ("AD", 2), ("NAD", 2))

    def test_str_is_paper_notation(self, p1, p2):
        assert str(p1) == "{(NAD,1),(AD,2),(NAD,2)}"
        assert str(p2) == "{(AD,2),(NAD,1)}"

    def test_offsets_in_storage_order(self, p1):
        assert p1.offsets == (0, 2, 3, 5, 7)

    def test_ndiags(self, p1, p2):
        assert p1.ndiags == 5
        assert p2.ndiags == 3

    def test_n_adjacent(self, p1, p2):
        assert p1.n_adjacent_diags == 2
        assert p2.n_adjacent_diags == 2

    def test_max_ad_width(self, p1):
        assert p1.max_ad_width == 2
        assert DiagonalPattern.from_offsets([1, 5, 9]).max_ad_width == 0
        assert DiagonalPattern.from_offsets([0, 1, 2, 3]).max_ad_width == 4

    def test_hashable_and_equal(self, p1):
        same = DiagonalPattern.from_offsets([0, 2, 3, 5, 7])
        assert p1 == same
        assert hash(p1) == hash(same)


class TestRegion:
    def make(self, start=2, nrs=2, mrows=2, ncols=9, offsets=(-2, -1, 1)):
        return PatternRegion(
            pattern=DiagonalPattern.from_offsets(list(offsets)),
            start_row=start, num_segments=nrs, mrows=mrows, ncols=ncols,
        )

    def test_table2_quantities(self):
        r = self.make()
        assert r.nrs == 2
        assert r.ndiags == 3
        assert r.nnz_per_segment == 6  # NDias x mrows
        assert r.stored_slots == 12

    def test_colv_is_start_row_plus_offset(self):
        r = self.make()
        assert r.colv == (0, 1, 3)

    def test_colv_can_go_negative(self):
        r = self.make(start=0)
        assert r.colv == (-2, -1, 1)

    def test_row_membership(self):
        r = self.make()
        assert r.contains_row(2) and r.contains_row(5)
        assert not r.contains_row(1) and not r.contains_row(6)
        assert r.segment_of_row(4) == 1
        with pytest.raises(ValueError):
            r.segment_of_row(0)

    def test_start_row_must_align_to_mrows(self):
        with pytest.raises(ValueError):
            self.make(start=3)

    def test_positive_segments_required(self):
        with pytest.raises(ValueError):
            self.make(nrs=0)

    def test_end_row(self):
        assert self.make().end_row == 6


class TestHelpers:
    def test_matrix_signature(self, p1, p2):
        r1 = PatternRegion(p1, 0, 1, 2, 9)
        r2 = PatternRegion(p2, 2, 2, 2, 9)
        assert (
            matrix_signature([r1, r2])
            == "{{(NAD,1),(AD,2),(NAD,2)}, {(AD,2),(NAD,1)}}"
        )

    def test_distinct_patterns_dedups_by_offsets(self, p2):
        a = PatternRegion(p2, 0, 1, 2, 9)
        b = PatternRegion(p2, 4, 1, 2, 9)
        assert len(distinct_patterns([a, b])) == 1

    def test_distinct_patterns_same_signature_different_offsets(self):
        a = PatternRegion(DiagonalPattern.from_offsets([0]), 0, 1, 2, 9)
        b = PatternRegion(DiagonalPattern.from_offsets([3]), 2, 1, 2, 9)
        assert len(distinct_patterns([a, b])) == 2

"""CRSD save/load round-trips."""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.core.serialize import load_crsd, save_crsd
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def crsd(fig2_coo):
    return CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)


def test_roundtrip_preserves_matrix(crsd, tmp_path, fig2_coo):
    p = tmp_path / "m.npz"
    save_crsd(crsd, p)
    back = load_crsd(p)
    assert back.shape == crsd.shape
    assert back.nnz == crsd.nnz
    assert back.to_coo().equals(fig2_coo)


def test_roundtrip_preserves_structure(crsd, tmp_path):
    p = tmp_path / "m.npz"
    save_crsd(crsd, p)
    back = load_crsd(p)
    assert back.matrix_signature == crsd.matrix_signature
    assert back.crsd_dia_index().tolist() == crsd.crsd_dia_index().tolist()
    assert np.array_equal(back.dia_val, crsd.dia_val)
    assert back.params == crsd.params


def test_loaded_matrix_generates_identical_kernel(crsd, tmp_path):
    from repro.codegen import build_plan, generate_opencl_source

    p = tmp_path / "m.npz"
    save_crsd(crsd, p)
    back = load_crsd(p)
    assert generate_opencl_source(build_plan(back)) == generate_opencl_source(
        build_plan(crsd)
    )


def test_loaded_matrix_runs_on_device(crsd, tmp_path, rng):
    from repro.gpu_kernels import CrsdSpMV

    p = tmp_path / "m.npz"
    save_crsd(crsd, p)
    back = load_crsd(p)
    x = rng.standard_normal(9)
    assert np.allclose(CrsdSpMV(back).run(x).y, crsd.matvec(x))


def test_random_matrix_roundtrip(tmp_path):
    rng = np.random.default_rng(5)
    coo = random_diagonal_matrix(rng, n=300, density=0.6, scatter=5)
    m = CRSDMatrix.from_coo(coo, mrows=32)
    p = tmp_path / "r.npz"
    save_crsd(m, p)
    assert load_crsd(p).to_coo().equals(coo)


def test_rejects_foreign_npz(tmp_path):
    p = tmp_path / "x.npz"
    np.savez(p, a=np.arange(3))
    with pytest.raises(ValueError, match="not a repro CRSD file"):
        load_crsd(p)


def test_rejects_wrong_version(crsd, tmp_path, monkeypatch):
    import repro.core.serialize as ser

    p = tmp_path / "m.npz"
    monkeypatch.setattr(ser, "VERSION", 999)
    save_crsd(crsd, p)
    monkeypatch.setattr(ser, "VERSION", 1)
    with pytest.raises(ValueError, match="version"):
        load_crsd(p)

"""Property-based tests of the CRSD pipeline (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.analysis import analyze_structure
from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.core.grouping import GroupKind, flatten_groups, group_offsets
from repro.formats.coo import COOMatrix


@st.composite
def diagonal_coo(draw):
    """Random diagonal-ish matrices: a few diagonals with random
    occupancy plus scatter entries."""
    n = draw(st.integers(6, 60))
    noffs = draw(st.integers(1, 6))
    offsets = draw(
        st.lists(st.integers(-(n - 1), n - 1), min_size=noffs, max_size=noffs,
                 unique=True)
    )
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    rows_l, cols_l = [], []
    for off in offsets:
        lo, hi = max(0, -off), min(n, n - off)
        if hi <= lo:
            continue
        r = np.arange(lo, hi)
        keep = rng.random(r.size) < draw(st.floats(0.1, 1.0))
        rows_l.append(r[keep])
        cols_l.append(r[keep] + off)
    n_scatter = draw(st.integers(0, 4))
    if n_scatter:
        rows_l.append(rng.integers(0, n, n_scatter))
        cols_l.append(rng.integers(0, n, n_scatter))
    rows = np.concatenate(rows_l) if rows_l else np.empty(0, dtype=int)
    cols = np.concatenate(cols_l) if cols_l else np.empty(0, dtype=int)
    vals = rng.standard_normal(rows.size)
    vals[vals == 0] = 1.0
    return COOMatrix(rows, cols, vals, (n, n))


@settings(max_examples=80, deadline=None)
@given(coo=diagonal_coo(), mrows=st.integers(1, 16),
       thr=st.integers(0, 20))
def test_crsd_matvec_equals_dense(coo, mrows, thr):
    """The fundamental invariant: any build parameters give A @ x."""
    m = CRSDMatrix.from_coo(coo, mrows=mrows, idle_fill_max_rows=thr,
                            wavefront_size=compatible_wavefront(mrows))
    x = np.linspace(-1, 1, coo.ncols)
    assert np.allclose(m.matvec(x), coo.todense() @ x, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(coo=diagonal_coo(), mrows=st.integers(1, 16))
def test_crsd_roundtrip(coo, mrows):
    m = CRSDMatrix.from_coo(coo, mrows=mrows,
                            wavefront_size=compatible_wavefront(mrows))
    assert m.to_coo().equals(coo)


@settings(max_examples=60, deadline=None)
@given(coo=diagonal_coo(), mrows=st.integers(1, 16),
       detect=st.booleans())
def test_analysis_covers_every_entry(coo, mrows, detect):
    """Every non-scatter entry lies on an active diagonal of its
    region; every scatter entry's row is a scatter row."""
    a = analyze_structure(coo, mrows=mrows, detect_scatter=detect)
    offs = coo.offsets_of_entries()
    scatter_rows = set(a.scatter_rows.tolist())
    for i in range(coo.nnz):
        row = int(coo.rows[i])
        if a.scatter_mask[i]:
            assert row in scatter_rows
        else:
            region = a.region_of_row(row)
            assert region is not None
            assert int(offs[i]) in region.pattern.offsets


@settings(max_examples=60, deadline=None)
@given(coo=diagonal_coo(), mrows=st.integers(1, 16))
def test_regions_disjoint_and_ordered(coo, mrows):
    a = analyze_structure(coo, mrows=mrows)
    prev_end = 0
    for r in a.regions:
        assert r.start_row >= prev_end
        prev_end = r.end_row


@settings(max_examples=100, deadline=None)
@given(offsets=st.lists(st.integers(-100, 100), min_size=1, max_size=30,
                        unique=True))
def test_grouping_partitions_offsets(offsets):
    """Grouping is a partition: nothing lost, nothing duplicated, AD
    groups consecutive, NAD members non-adjacent to their neighbours
    within the group."""
    offsets = sorted(offsets)
    groups = group_offsets(offsets)
    assert flatten_groups(groups) == offsets
    for g in groups:
        if g.kind is GroupKind.AD:
            assert all(b - a == 1 for a, b in zip(g.offsets, g.offsets[1:]))
        else:
            assert all(b - a > 1 for a, b in zip(g.offsets, g.offsets[1:]))


@settings(max_examples=100, deadline=None)
@given(offsets=st.lists(st.integers(-100, 100), min_size=1, max_size=30,
                        unique=True))
def test_grouping_maximal_ad_runs(offsets):
    """No two neighbouring NAD members anywhere are adjacent offsets
    (otherwise they would have formed an AD group)."""
    offsets = sorted(offsets)
    groups = group_offsets(offsets)
    nad_set = {o for g in groups if g.kind is GroupKind.NAD for o in g.offsets}
    for o in nad_set:
        assert o + 1 not in nad_set, f"adjacent offsets {o},{o + 1} both NAD"

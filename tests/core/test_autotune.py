"""CRSD parameter autotuning."""

import numpy as np
import pytest

from repro.core.autotune import TuneResult, tune
from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from tests.conftest import random_diagonal_matrix


@pytest.fixture(scope="module")
def coo():
    rng = np.random.default_rng(3)
    return random_diagonal_matrix(rng, n=600, offsets=(-2, -1, 0, 1, 2, 40),
                                  density=0.9, scatter=4)


class TestTune:
    def test_returns_best_of_candidates(self, coo):
        res = tune(coo, mrows_grid=(32, 64), threshold_grid=(0, None),
                   try_local_memory=(True, False))
        assert isinstance(res, TuneResult)
        assert len(res.candidates) == 8
        assert res.best.seconds == min(c.seconds for c in res.candidates)

    def test_build_applies_best(self, coo):
        res = tune(coo, mrows_grid=(32, 64), threshold_grid=(None,),
                   try_local_memory=(True,))
        m = res.build(coo)
        assert isinstance(m, CRSDMatrix)
        assert m.mrows == res.best.mrows
        x = np.random.default_rng(0).standard_normal(coo.ncols)
        assert np.allclose(m.matvec(x), coo.matvec(x))

    def test_fast_mode_uses_analytic_model(self, coo):
        res = tune(coo, mrows_grid=(32, 64, 128), threshold_grid=(None,),
                   fast=True)
        # fast mode has no local-memory dimension
        assert len(res.candidates) == 3
        assert res.best.seconds > 0

    def test_oversized_mrows_skipped(self):
        rng = np.random.default_rng(0)
        small = random_diagonal_matrix(rng, n=40)
        res = tune(small, mrows_grid=(16, 4096), threshold_grid=(None,),
                   try_local_memory=(True,))
        assert all(c.mrows == 16 for c in res.candidates)

    def test_all_infeasible_raises(self):
        rng = np.random.default_rng(0)
        small = random_diagonal_matrix(rng, n=4)
        with pytest.raises(ValueError):
            tune(small, mrows_grid=(4096,), threshold_grid=(None,))

    def test_empty_matrix_rejected(self):
        with pytest.raises(ValueError):
            tune(COOMatrix.empty((8, 8)))

    def test_params_roundtrip(self, coo):
        res = tune(coo, mrows_grid=(64,), threshold_grid=(32,),
                   try_local_memory=(True,))
        p = res.params
        assert p.mrows == 64
        assert p.idle_fill_max_rows == 32


class TestTuningIsMeaningful:
    def test_threshold_affects_fill(self):
        # a broken far diagonal: filling its long idle gaps is expensive
        from repro.matrices.generators import multi_diagonal

        rng = np.random.default_rng(1)
        broken = multi_diagonal(
            1200, [(0, 1.0, 1), (-1, 1.0, 1), (200, 0.25, 3)], rng
        )
        res = tune(broken, mrows_grid=(64,), threshold_grid=(0, 10**9),
                   try_local_memory=(True,))
        fills = {c.idle_fill_max_rows: c.fill_zeros for c in res.candidates}
        assert fills[10**9] > fills[0]

    def test_deterministic(self, coo):
        a = tune(coo, mrows_grid=(32, 64), threshold_grid=(None,),
                 try_local_memory=(True,), seed=1)
        b = tune(coo, mrows_grid=(32, 64), threshold_grid=(None,),
                 try_local_memory=(True,), seed=1)
        assert a.best == b.best

    def test_fast_heuristic_staging_tracks_ad_width(self):
        rng = np.random.default_rng(0)
        wide = random_diagonal_matrix(rng, n=400,
                                      offsets=tuple(range(-5, 6)),
                                      density=1.0, scatter=0)
        narrow = random_diagonal_matrix(rng, n=400, offsets=(-7, 0, 7),
                                        density=1.0, scatter=0)
        r_wide = tune(wide, mrows_grid=(64,), threshold_grid=(None,), fast=True)
        r_narrow = tune(narrow, mrows_grid=(64,), threshold_grid=(None,), fast=True)
        assert r_wide.best.use_local_memory
        assert not r_narrow.best.use_local_memory

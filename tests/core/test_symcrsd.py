"""Symmetric CRSD half carrier: bit-identity and refusal contracts.

The carrier stores only the offsets >= 0 of each region slab; every
derived artefact (host matvec, re-expanded full slab, COO round trip,
fingerprints) must be *bit-equal* to the full carrier's — not merely
close — or :class:`SymCRSDError` must refuse the matrix up front.
"""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.core.serialize import fingerprints
from repro.core.symcrsd import SymCRSDError, SymCRSDMatrix
from repro.formats.coo import COOMatrix
from repro.matrices import generators as gen


@pytest.fixture
def nprng():
    return np.random.default_rng(42)


def sym_cases(nprng):
    """The symmetric generator set shared by the differential tests."""
    return {
        "banded_k7": gen.symmetric_banded(384, 7, nprng),
        "banded_k3": gen.symmetric_banded(200, 3, nprng),
        "gapped": gen.symmetric_diagonals(320, [1, 4, 9], nprng),
        "indefinite": gen.symmetric_diagonals(256, [2, 5], nprng, spd=False),
    }


class TestBitIdentity:
    def test_host_matvec_bit_identical(self, nprng):
        for name, coo in sym_cases(nprng).items():
            full = CRSDMatrix.from_coo(coo, mrows=32)
            sym = SymCRSDMatrix.from_crsd(full, coo=coo)
            x = nprng.standard_normal(coo.shape[1])
            assert np.array_equal(sym.matvec(x), full.matvec(x)), name

    def test_to_crsd_slab_bit_equal(self, nprng):
        coo = gen.symmetric_banded(256, 5, nprng)
        full = CRSDMatrix.from_coo(coo, mrows=32)
        sym = SymCRSDMatrix.from_crsd(full, coo=coo)
        back = sym.to_crsd()
        assert np.array_equal(back.dia_val, full.dia_val)
        assert back.regions == full.regions

    def test_to_coo_round_trip(self, nprng):
        coo = gen.symmetric_diagonals(224, [1, 3, 8], nprng)
        sym = SymCRSDMatrix.from_coo(coo, mrows=32)
        assert np.array_equal(sym.to_coo().todense(), coo.todense())

    def test_diagonal(self, nprng):
        coo = gen.symmetric_banded(128, 4, nprng)
        sym = SymCRSDMatrix.from_coo(coo, mrows=32)
        assert np.array_equal(sym.diagonal(), coo.todense().diagonal())

    def test_half_storage(self, nprng):
        coo = gen.symmetric_banded(512, 7, nprng)
        full = CRSDMatrix.from_coo(coo, mrows=64)
        sym = SymCRSDMatrix.from_crsd(full, coo=coo)
        # band of halfwidth k: full slab stores 2k+1 diagonals, the
        # half carrier k+1 of them.
        assert sym.stored_elements * 2 > full.dia_val.size
        assert sym.stored_elements < 0.6 * full.dia_val.size


class TestRefusals:
    def test_rejects_asymmetric_values(self, nprng):
        coo = gen.symmetric_banded(96, 2, nprng)
        vals = coo.vals.copy()
        vals[np.flatnonzero(coo.rows != coo.cols)[0]] *= 2.0
        skew = COOMatrix(coo.rows, coo.cols, vals, coo.shape)
        with pytest.raises(SymCRSDError, match="not exactly symmetric"):
            SymCRSDMatrix.from_coo(skew, mrows=32)

    def test_rejects_scatter_rows(self, nprng):
        coo = gen.symmetric_banded(128, 2, nprng)
        # one far off-band mirror pair lands both entries in scatter
        rows = np.concatenate([coo.rows, [3, 97]])
        cols = np.concatenate([coo.cols, [97, 3]])
        vals = np.concatenate([coo.vals, [1.25, 1.25]])
        scat = COOMatrix(rows, cols, vals, coo.shape)
        full = CRSDMatrix.from_coo(scat, mrows=32)
        if full.num_scatter_rows == 0:
            pytest.skip("build absorbed the outliers into a region")
        with pytest.raises(SymCRSDError, match="scatter rows"):
            SymCRSDMatrix.from_crsd(full, coo=scat)

    def test_rejects_rectangular(self):
        coo = COOMatrix(np.array([0]), np.array([0]), np.array([1.0]),
                        (64, 65))
        full = CRSDMatrix.from_coo(coo, mrows=32)
        with pytest.raises(SymCRSDError, match="square"):
            SymCRSDMatrix.from_crsd(full)


class TestFingerprints:
    def test_sym_carrier_never_collides_with_full(self, nprng):
        """Cached plans/codelets of the half carrier are not
        interchangeable with the full pattern's, so every hash —
        including the pattern hash — must differ."""
        coo = gen.symmetric_banded(160, 3, nprng)
        full = CRSDMatrix.from_coo(coo, mrows=32)
        sym = SymCRSDMatrix.from_crsd(full, coo=coo)
        fp_full = fingerprints(full)
        fp_sym = fingerprints(sym)
        assert fp_sym.combined != fp_full.combined
        assert fp_sym.pattern != fp_full.pattern
        assert fp_sym.values != fp_full.values

    def test_sym_fingerprint_deterministic(self, nprng):
        coo = gen.symmetric_banded(160, 3, nprng)
        a = SymCRSDMatrix.from_coo(coo, mrows=32)
        b = SymCRSDMatrix.from_coo(coo, mrows=32)
        assert fingerprints(a) == fingerprints(b)

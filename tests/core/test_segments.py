"""Row-segment grid."""

import numpy as np
import pytest

from repro.core.segments import SegmentGrid


class TestGrid:
    def test_exact_division(self):
        g = SegmentGrid(nrows=8, mrows=2)
        assert g.num_segments == 4
        assert g.padded_rows == 8
        assert g.tail_padding == 0

    def test_partial_last_segment(self):
        g = SegmentGrid(nrows=10, mrows=4)
        assert g.num_segments == 3
        assert g.padded_rows == 12
        assert g.tail_padding == 2
        assert g.segment_length(2) == 2

    def test_segment_of_vectorised(self):
        g = SegmentGrid(10, 4)
        assert g.segment_of(np.array([0, 3, 4, 9])).tolist() == [0, 0, 1, 2]

    def test_rows_of(self):
        g = SegmentGrid(10, 4)
        assert g.rows_of(1).tolist() == [4, 5, 6, 7]
        assert g.rows_of(2).tolist() == [8, 9]

    def test_start_row(self):
        assert SegmentGrid(10, 4).start_row(2) == 8

    def test_bounds_checked(self):
        g = SegmentGrid(10, 4)
        with pytest.raises(IndexError):
            g.rows_of(3)
        with pytest.raises(IndexError):
            g.start_row(-1)

    def test_single_segment(self):
        g = SegmentGrid(3, 64)
        assert g.num_segments == 1
        assert g.segment_length(0) == 3

    @pytest.mark.parametrize("nrows,mrows", [(0, 2), (4, 0), (-1, 2), (4, -2)])
    def test_invalid_params(self, nrows, mrows):
        with pytest.raises(ValueError):
            SegmentGrid(nrows, mrows)

    def test_wavefront_alignment(self):
        assert SegmentGrid(100, 64).is_wavefront_aligned(32)
        assert not SegmentGrid(100, 48).is_wavefront_aligned(32)
        assert not SegmentGrid(100, 64).is_wavefront_aligned(0)

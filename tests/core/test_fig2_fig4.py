"""The paper's worked example end-to-end (Fig. 2 -> Fig. 4 / Table III).

These tests pin the whole Section II pipeline to the numbers printed in
the paper: the two diagonal patterns, the crsd_dia_index array, the
value layout including the v43 fill zero, the scatter side structure
for row 5, and the Table III per-pattern quantities.
"""

import pytest

from repro.core.crsd import CRSDMatrix
from tests.conftest import FIG2_ENTRIES


@pytest.fixture
def m(fig2_coo):
    return CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)


def test_matrix_signature(m):
    assert m.matrix_signature == "{{(NAD,1),(AD,2),(NAD,2)}, {(AD,2),(NAD,1)}}"


def test_crsd_dia_index(m):
    # Fig. 4: {R0, 1, C0, C2, C5, C7 | R2, 2, C0, C3}; the paper's figure
    # prints C4 for the second pattern's NAD column, but its own value
    # array ((v45,v56) = offset +1) implies C3 — we follow the values.
    assert m.crsd_dia_index().tolist() == [0, 1, 0, 2, 5, 7, 2, 2, 0, 3]


def test_value_layout_pattern1(m):
    v = FIG2_ENTRIES
    slab = m.region_slab(0)  # (1 segment, 5 diagonals, 2 rows)
    expected = [
        [v[(0, 0)], v[(1, 1)]],          # offset 0
        [v[(0, 2)], v[(1, 3)]],          # offset 2 (AD)
        [v[(0, 3)], v[(1, 4)]],          # offset 3 (AD)
        [v[(0, 5)], v[(1, 6)]],          # offset 5
        [v[(0, 7)], v[(1, 8)]],          # offset 7
    ]
    assert slab[0].tolist() == expected


def test_value_layout_pattern2_with_fill_zero(m):
    v = FIG2_ENTRIES
    slab = m.region_slab(1)  # (2 segments, 3 diagonals, 2 rows)
    # segment rows 2-3
    assert slab[0].tolist() == [
        [v[(2, 0)], v[(3, 1)]],          # offset -2: v20, v31
        [v[(2, 1)], v[(3, 2)]],          # offset -1: v21, v32
        [v[(2, 3)], v[(3, 4)]],          # offset +1: v23, v34
    ]
    # segment rows 4-5: the paper's (v42, v53, 0, v54), (v45, v56)
    assert slab[1].tolist() == [
        [v[(4, 2)], v[(5, 3)]],          # offset -2: v42, v53
        [0.0, v[(5, 4)]],                # offset -1: fill zero at v43, v54
        [v[(4, 5)], v[(5, 6)]],          # offset +1: v45, v56
    ]


def test_scatter_side_structure(m):
    # whole row 5 stored: columns 3,4,5,6
    assert m.scatter_rowno.tolist() == [5]
    assert m.num_scatter_width == 4
    assert m.scatter_colval[0].tolist() == [3, 4, 5, 6]
    v = FIG2_ENTRIES
    assert m.scatter_val[0].tolist() == [v[(5, 3)], v[(5, 4)], v[(5, 5)], v[(5, 6)]]


def test_table3_inferred_information(m):
    """Table III: NRS, NNzRS, SR, NDias for both patterns (mrows=2)."""
    r0, r1 = m.regions
    assert (r0.nrs, r0.nnz_per_segment, r0.start_row, r0.ndiags) == (1, 10, 0, 5)
    assert (r1.nrs, r1.nnz_per_segment, r1.start_row, r1.ndiags) == (2, 6, 2, 3)


def test_spmv_executes_scatter_after_diagonals(m, fig2_dense, rng):
    """Row 5 belongs to pattern 2 AND is a scatter row; the scatter
    overwrite must win (Section III-B: the diagonal kernel runs first)."""
    x = rng.standard_normal(9)
    y = m.matvec(x)
    assert y[5] == pytest.approx(fig2_dense[5] @ x)


def test_fig4_dump_roundtrip_values(m):
    dump = m.fig4_dump()
    assert "crsd_dia_val" in dump
    assert "(17,19,0,20)" in dump  # (v42, v53, 0, v54)
    assert "(18,22)" in dump       # (v45, v56)

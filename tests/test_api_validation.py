"""Facade input validation and the ``resilience=`` entry point."""

import numpy as np
import pytest

import repro
from repro.validation import (
    InputValidationError,
    validate_batch,
    validate_matrix,
    validate_vector,
)
from tests.conftest import random_diagonal_matrix


@pytest.fixture()
def problem():
    rng = np.random.default_rng(0)
    coo = random_diagonal_matrix(rng, n=128)
    return coo, rng.standard_normal(coo.ncols)


class TestVectorValidation:
    def test_rejects_wrong_length(self, problem):
        coo, x = problem
        with pytest.raises(InputValidationError, match="length"):
            repro.spmv(coo, x[:-3])

    def test_rejects_wrong_dtype(self, problem):
        coo, x = problem
        with pytest.raises(InputValidationError, match="dtype"):
            repro.spmv(coo, x.astype(complex))
        with pytest.raises(InputValidationError, match="dtype"):
            repro.spmv(coo, np.array(["a"] * coo.ncols))

    def test_rejects_non_contiguous(self, problem):
        coo, x = problem
        reversed_view = np.flip(np.concatenate([x, x[::-1]])[:x.size])
        assert not reversed_view.flags.c_contiguous
        with pytest.raises(InputValidationError, match="contiguous"):
            repro.spmv(coo, reversed_view)

    def test_rejects_nan_and_inf(self, problem):
        coo, x = problem
        for poison in (np.nan, np.inf, -np.inf):
            bad = x.copy()
            bad[7] = poison
            with pytest.raises(InputValidationError, match="non-finite"):
                repro.spmv(coo, bad)

    def test_rejects_2d(self, problem):
        coo, x = problem
        with pytest.raises(InputValidationError, match="1-D"):
            repro.spmv(coo, x.reshape(1, -1))

    def test_accepts_lists_and_int_vectors(self, problem):
        coo, _ = problem
        ones = [1] * coo.ncols
        run = repro.spmv(coo, ones)
        assert np.allclose(run.y, coo.matvec(np.ones(coo.ncols)))

    def test_error_is_a_value_error(self):
        assert issubclass(InputValidationError, ValueError)
        with pytest.raises(ValueError):
            validate_vector(np.zeros(3), 5)


class TestBatchValidation:
    """``validate_batch``: the multi-vector X of the SpMM/serving path."""

    def test_accepts_well_formed(self, problem):
        coo, _ = problem
        X = np.random.default_rng(1).standard_normal((coo.ncols, 3))
        assert validate_batch(X, coo.ncols) is X
        assert validate_batch(X, coo.ncols, nvec=3) is X
        # F-contiguous (column-major) batches are a legal device layout
        validate_batch(np.asfortranarray(X), coo.ncols)

    def test_rejects_wrong_rows(self, problem):
        coo, _ = problem
        with pytest.raises(InputValidationError, match="rows"):
            validate_batch(np.zeros((coo.ncols - 1, 2)), coo.ncols)

    def test_rejects_wrong_nvec(self, problem):
        coo, _ = problem
        with pytest.raises(InputValidationError, match="nvec"):
            validate_batch(np.zeros((coo.ncols, 3)), coo.ncols, nvec=2)

    def test_rejects_1d_and_zero_columns(self, problem):
        coo, _ = problem
        with pytest.raises(InputValidationError, match="2-D"):
            validate_batch(np.zeros(coo.ncols), coo.ncols)
        with pytest.raises(InputValidationError, match="zero columns"):
            validate_batch(np.zeros((coo.ncols, 0)), coo.ncols)

    def test_rejects_bad_dtype_and_non_finite(self, problem):
        coo, _ = problem
        with pytest.raises(InputValidationError, match="dtype"):
            validate_batch(np.zeros((coo.ncols, 2), dtype=complex),
                           coo.ncols)
        bad = np.ones((coo.ncols, 2))
        bad[3, 1] = np.nan
        with pytest.raises(InputValidationError, match="non-finite"):
            validate_batch(bad, coo.ncols)

    def test_rejects_strided_slice(self, problem):
        coo, _ = problem
        wide = np.ones((coo.ncols, 6))
        view = wide[:, ::2]
        assert not (view.flags.c_contiguous or view.flags.f_contiguous)
        with pytest.raises(InputValidationError, match="contiguous"):
            validate_batch(view, coo.ncols)

    def test_spmm_runner_routes_through_it(self, problem):
        from repro.core.crsd import CRSDMatrix
        from repro.gpu_kernels.crsd_runner import CrsdSpMM

        coo, _ = problem
        runner = CrsdSpMM(CRSDMatrix.from_coo(coo, mrows=32), nvec=2)
        with pytest.raises(InputValidationError, match="nvec"):
            runner.run(np.zeros((coo.ncols, 3)))
        bad = np.ones((coo.ncols, 2))
        bad[0, 0] = np.inf
        with pytest.raises(InputValidationError, match="non-finite"):
            runner.run(bad)

    def test_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            validate_batch(np.zeros((3, 1)), 5)


class TestMatrixValidation:
    def test_rejects_nan_in_sparse_values(self, problem):
        from repro.formats.coo import COOMatrix

        bad = COOMatrix(np.array([0, 1]), np.array([0, 1]),
                        np.array([1.0, np.nan]), (2, 2))
        with pytest.raises(InputValidationError, match="non-finite"):
            repro.build(bad)
        with pytest.raises(InputValidationError, match="non-finite"):
            repro.spmv(bad, np.ones(2))

    def test_rejects_inf_in_dense(self):
        dense = np.eye(4)
        dense[2, 2] = np.inf
        with pytest.raises(InputValidationError, match="non-finite"):
            repro.build(dense)

    def test_rejects_nan_in_crsd(self, problem):
        from repro.core.crsd import CRSDMatrix
        from repro.formats.coo import COOMatrix

        coo, _ = problem
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        # poison one stored slab value in place
        for arr in crsd.array_inventory().values():
            if arr.dtype.kind == "f" and arr.size:
                arr.reshape(-1)[0] = np.nan
                break
        with pytest.raises(InputValidationError, match="non-finite"):
            repro.build(crsd, "crsd")

    def test_healthy_matrix_passes(self, problem):
        coo, _ = problem
        validate_matrix(coo)  # no raise


class TestResilienceKwarg:
    def test_default_path_has_no_resilience_report(self, problem):
        coo, x = problem
        run = repro.spmv(coo, x)
        assert run.resilience is None

    def test_policy_routes_through_ladder(self, problem):
        coo, x = problem
        run = repro.spmv(coo, x, resilience=repro.Policy())
        assert run.resilience is not None
        assert run.resilience.served_rung == "crsd"
        assert run.metrics is not None

    def test_true_means_default_policy(self, problem):
        coo, x = problem
        direct = repro.spmv(coo, x)
        resilient = repro.spmv(coo, x, resilience=True)
        assert np.array_equal(direct.y, resilient.y)

    def test_resilient_path_validates_too(self, problem):
        coo, x = problem
        with pytest.raises(InputValidationError):
            repro.spmv(coo, x[:-1], resilience=True)

    def test_auto_format_resolves_before_ladder(self, problem):
        coo, x = problem
        run = repro.spmv(coo, x, "auto", resilience=repro.Policy())
        assert run.resilience.served_rung in (
            "crsd", "dia", "ell", "csr", "hyb")

    def test_exhausted_is_importable_from_root(self):
        assert issubclass(repro.ResilienceExhausted, RuntimeError)
        assert repro.FaultInjector is not None

// Auto-generated CRSD SpMV kernel.
// Storage: Compressed Row Segment with Diagonal-pattern (Sun et al., ICPP 2011).
// One work-group processes one row segment of 2 rows; the switch
// below selects the work-group's diagonal pattern, so all work-items of
// a group take the same execution path (no thread divergence).
#pragma OPENCL EXTENSION cl_khr_fp64 : enable

__kernel void crsd_dia_spmv(__global const double* restrict crsd_dia_val,
                            __global const double* restrict x,
                            __global double* restrict y)
{
    const int group_id = get_group_id(0);
    const int local_id = get_local_id(0);
    __local double xtile[3];
    double acc = (double)0;
    int row;
    int p;
    if (group_id < 1) p = 0;
    else if (group_id < 3) p = 1;
    else p = 1;
    switch (p) {
    case 0: { // pattern {(NAD,1),(AD,2),(NAD,2)}, SR=0, NRS=1
        const int seg = group_id - 0;
        // NAD group, offsets [0]
        {
            const int xi = 0 + seg * 2 + local_id;
            const double xv = (xi >= 0 && xi < 9) ? x[xi] : (double)0;
            acc += crsd_dia_val[0 + seg * 10 + 0 + local_id] * xv;
        }
        // AD group, offsets [2, 3]: stage the
        // shared x window into local memory (Fig. 5)
        {
            const int tbase = 2 + seg * 2;
            int xi = tbase + local_id;
            xtile[local_id] = (xi >= 0 && xi < 9) ? x[xi] : (double)0;
            if (local_id < 1) {
                xi = tbase + 2 + local_id;
                xtile[2 + local_id] = (xi >= 0 && xi < 9) ? x[xi] : (double)0;
            }
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        acc += crsd_dia_val[0 + seg * 10 + 2 + local_id] * xtile[local_id + 0];
        acc += crsd_dia_val[0 + seg * 10 + 4 + local_id] * xtile[local_id + 1];
        // NAD group, offsets [5, 7]
        {
            const int xi = 5 + seg * 2 + local_id;
            const double xv = (xi >= 0 && xi < 9) ? x[xi] : (double)0;
            acc += crsd_dia_val[0 + seg * 10 + 6 + local_id] * xv;
        }
        {
            const int xi = 7 + seg * 2 + local_id;
            const double xv = (xi >= 0 && xi < 9) ? x[xi] : (double)0;
            acc += crsd_dia_val[0 + seg * 10 + 8 + local_id] * xv;
        }
        row = 0 + seg * 2 + local_id;
        if (row < 6) y[row] = acc;
        break; }
    case 1: { // pattern {(AD,2),(NAD,1)}, SR=2, NRS=2
        const int seg = group_id - 1;
        // AD group, offsets [-2, -1]: stage the
        // shared x window into local memory (Fig. 5)
        {
            const int tbase = 0 + seg * 2;
            int xi = tbase + local_id;
            xtile[local_id] = (xi >= 0 && xi < 9) ? x[xi] : (double)0;
            if (local_id < 1) {
                xi = tbase + 2 + local_id;
                xtile[2 + local_id] = (xi >= 0 && xi < 9) ? x[xi] : (double)0;
            }
        }
        barrier(CLK_LOCAL_MEM_FENCE);
        acc += crsd_dia_val[10 + seg * 6 + 0 + local_id] * xtile[local_id + 0];
        acc += crsd_dia_val[10 + seg * 6 + 2 + local_id] * xtile[local_id + 1];
        // NAD group, offsets [1]
        {
            const int xi = 3 + seg * 2 + local_id;
            const double xv = (xi >= 0 && xi < 9) ? x[xi] : (double)0;
            acc += crsd_dia_val[10 + seg * 6 + 4 + local_id] * xv;
        }
        row = 2 + seg * 2 + local_id;
        if (row < 6) y[row] = acc;
        break; }
    }
}

// Scatter-row ELL kernel: executed AFTER crsd_dia_spmv; it owns its
// rows completely and overwrites y, preserving each row's sequential
// floating-point order.  Unrolled over num_scatter_width = 4.
__kernel void crsd_scatter_spmv(__global const int* restrict scatter_colval,
                                __global const double* restrict scatter_val,
                                __global const int* restrict scatter_rowno,
                                __global const double* restrict x,
                                __global double* restrict y)
{
    const int i = get_group_id(0) * 2 + get_local_id(0);
    if (i >= 1) return;
    double acc = (double)0;
    acc += scatter_val[0 + i] * x[scatter_colval[0 + i]];
    acc += scatter_val[1 + i] * x[scatter_colval[1 + i]];
    acc += scatter_val[2 + i] * x[scatter_colval[2 + i]];
    acc += scatter_val[3 + i] * x[scatter_colval[3 + i]];
    y[scatter_rowno[i]] = acc;
}

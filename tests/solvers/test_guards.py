"""Breakdown guards: passive on healthy solves, checkpointed restart on
NaN/stagnation, typed abort when the budget runs out."""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.obs.recorder import observe
from repro.solvers import bicgstab, cg, gpu_cg, pcg
from repro.solvers.guards import BreakdownGuard, GuardConfig, make_guard
from repro.solvers.operator import SpMVOperator


def spd_tridiagonal(n=200, seed=0):
    rng = np.random.default_rng(seed)
    rows, cols, vals = [], [], []
    for i in range(n):
        rows.append(i); cols.append(i); vals.append(4.0 + rng.uniform(0, 1))
        if i + 1 < n:
            rows.append(i); cols.append(i + 1); vals.append(-1.0)
            rows.append(i + 1); cols.append(i); vals.append(-1.0)
    return COOMatrix(np.array(rows), np.array(cols),
                     np.array(vals, dtype=float), (n, n))


@pytest.fixture()
def system():
    a = spd_tridiagonal()
    rng = np.random.default_rng(1)
    return a, rng.standard_normal(a.nrows)


class TestGuardUnit:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            GuardConfig(stagnation_window=0)
        with pytest.raises(ValueError):
            GuardConfig(max_restarts=-1)

    def test_make_guard_normalization(self):
        x0 = np.zeros(4)
        assert make_guard(False, x0, 1.0) is None
        assert make_guard(None, x0, 1.0) is None
        assert isinstance(make_guard(True, x0, 1.0), BreakdownGuard)
        cfg = GuardConfig(max_restarts=9)
        g = make_guard(cfg, x0, 1.0)
        assert g.config is cfg

    def test_checkpoints_best_iterate(self):
        g = BreakdownGuard(np.zeros(3), 10.0)
        best = np.array([1.0, 2.0, 3.0])
        assert g.update(best, 1.0) == "ok"
        assert g.update(np.full(3, 9.9), 5.0) == "ok"  # worse: not saved
        assert np.array_equal(g.restart_x, best)

    def test_nan_triggers_restart_then_abort(self):
        g = BreakdownGuard(np.zeros(3), 1.0,
                           GuardConfig(max_restarts=1))
        assert g.update(np.zeros(3), float("nan")) == "restart"
        assert g.update(np.zeros(3), float("inf")) == "abort"
        assert "non-finite" in g.breakdown

    def test_stagnation_window(self):
        g = BreakdownGuard(np.zeros(3), 1.0,
                           GuardConfig(stagnation_window=3, max_restarts=0))
        x = np.zeros(3)
        assert g.update(x, 0.5) == "ok"      # new best
        assert g.update(x, 0.7) == "ok"
        assert g.update(x, 0.7) == "ok"
        assert g.update(x, 0.7) == "abort"   # 3 without a new best
        assert "stagnated" in g.breakdown

    def test_breakdown_emits_obs_event(self):
        with observe("guard") as session:
            g = BreakdownGuard(np.zeros(3), 1.0)
            g.update(np.zeros(3), float("nan"))
        events = [s for s in session.spans if s.name == "solver.breakdown"]
        assert len(events) == 1
        assert events[0].category == "resilience"


class TestHealthyBitIdentity:
    """The guard must be invisible on solves that never break down."""

    @pytest.mark.parametrize("solver", [cg, bicgstab, pcg])
    def test_host_solvers(self, solver, system):
        a, b = system
        on = solver(a, b, guard=True)
        off = solver(a, b, guard=False)
        assert np.array_equal(on.x, off.x)
        assert on.iterations == off.iterations
        assert on.history == off.history
        assert on.restarts == 0 and on.breakdown is None
        assert on.converged

    def test_gpu_cg(self, system):
        a, b = system
        crsd = CRSDMatrix.from_coo(a, mrows=64)
        on = gpu_cg(CrsdSpMV(crsd), b, guard=True)
        off = gpu_cg(CrsdSpMV(crsd), b, guard=False)
        assert np.array_equal(on.x, off.x)
        assert on.kernel_launches == off.kernel_launches
        assert on.restarts == 0 and on.breakdown is None


class TestRestart:
    def test_transient_nan_recovers(self, system):
        """One poisoned SpMV mid-solve: the guard rolls back to the
        checkpoint and the solve still converges."""
        a, b = system
        n = a.nrows
        calls = {"n": 0}

        def flaky(v):
            calls["n"] += 1
            y = a.matvec(v)
            if calls["n"] == 5:
                y = y.copy()
                y[0] = np.nan
            return y

        res = cg(SpMVOperator(flaky, (n, n)), b, guard=True)
        assert res.converged and res.restarts == 1
        assert "non-finite" in res.breakdown  # the recovered incident
        assert np.allclose(a.matvec(res.x), b, atol=1e-6)

    @pytest.mark.parametrize("solver", [cg, bicgstab, pcg])
    def test_persistent_nan_aborts_with_budget(self, solver, system):
        a, b = system
        n = a.nrows
        dead = SpMVOperator(lambda v: np.full(n, np.nan), (n, n),
                            lambda: np.ones(n))
        res = solver(a=dead, b=b, guard=GuardConfig(max_restarts=2))
        assert not res.converged
        assert res.restarts == 2
        assert "non-finite" in res.breakdown

    def test_unguarded_solver_burns_maxiter_on_nan(self, system):
        """The failure mode the guard exists for: without it a NaN
        poisons x and the loop spins to maxiter."""
        a, b = system
        n = a.nrows
        dead = SpMVOperator(lambda v: np.full(n, np.nan), (n, n))
        res = cg(dead, b, maxiter=50, guard=False)
        assert not res.converged
        assert res.iterations == 50
        assert np.isnan(res.x).all()

    def test_gpu_cg_restart_path(self, system):
        """Force a restart in the device-resident solver via an
        impossible stagnation window and confirm it still converges."""
        a, b = system
        crsd = CRSDMatrix.from_coo(a, mrows=64)
        cfg = GuardConfig(stagnation_window=1, max_restarts=2)
        res = gpu_cg(CrsdSpMV(crsd), b, guard=cfg)
        # window 1 calls any non-improving iteration stagnation; CG's
        # monotone residual usually improves, so just require a valid
        # terminal state either way
        assert res.converged or res.breakdown is not None

    def test_result_fields_default(self, system):
        a, b = system
        res = cg(a, b)  # guard defaults on
        assert res.restarts == 0 and res.breakdown is None

"""Iterative solvers over the SpMV operator interface."""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.matrices.generators import grid_stencil, stencil_offsets
from repro.solvers import SpMVOperator, as_operator, bicgstab, cg, jacobi


@pytest.fixture
def poisson():
    """SPD 5-point Laplacian + 4I on a 10x10 grid."""
    rng = np.random.default_rng(0)
    sten = grid_stencil((10, 10), stencil_offsets((10, 10), 1), rng)
    vals = np.where(sten.offsets_of_entries() == 0, 8.0, -1.0)
    return COOMatrix(sten.rows, sten.cols, vals, sten.shape)


@pytest.fixture
def nonsym(poisson):
    """Non-symmetric diagonally dominant variant."""
    vals = poisson.vals.copy()
    vals[poisson.offsets_of_entries() == 1] = -0.5
    return COOMatrix(poisson.rows, poisson.cols, vals, poisson.shape)


@pytest.fixture
def b(poisson, rng):
    return rng.standard_normal(poisson.nrows)


class TestOperator:
    def test_counts_invocations(self, poisson, b):
        op = as_operator(poisson)
        op(b)
        op(b)
        assert op.spmv_count == 2
        op.reset_count()
        assert op.spmv_count == 0

    def test_adapts_all_carriers(self, poisson, b):
        carriers = [
            poisson,
            CSRMatrix.from_coo(poisson),
            CRSDMatrix.from_coo(poisson, mrows=16, wavefront_size=16),
            poisson.todense(),
            CrsdSpMV(CRSDMatrix.from_coo(poisson, mrows=16, wavefront_size=16)),
        ]
        ref = poisson.matvec(b)
        for c in carriers:
            op = as_operator(c)
            assert np.allclose(op(b), ref, atol=1e-9), type(c).__name__

    def test_operator_passthrough(self, poisson):
        op = as_operator(poisson)
        assert as_operator(op) is op

    def test_diagonal(self, poisson):
        d = as_operator(poisson).diagonal()
        assert np.all(d == 8.0)

    def test_unadaptable_rejected(self):
        with pytest.raises(TypeError):
            as_operator("nope")

    def test_missing_diagonal_raises(self, poisson, b):
        op = SpMVOperator(poisson.matvec, poisson.shape)
        with pytest.raises(ValueError):
            op.diagonal()


class TestCG:
    def test_solves_spd(self, poisson, b):
        res = cg(poisson, b)
        assert res.converged
        assert np.allclose(poisson.matvec(res.x), b, atol=1e-7)
        assert res.spmv_count == res.iterations + 1

    def test_residual_history_decreasing_overall(self, poisson, b):
        res = cg(poisson, b)
        assert res.history[-1] < res.history[0]

    def test_zero_rhs_immediate(self, poisson):
        res = cg(poisson, np.zeros(poisson.nrows))
        assert res.converged
        assert res.iterations == 0

    def test_warm_start(self, poisson, b):
        exact = cg(poisson, b).x
        res = cg(poisson, b, x0=exact)
        assert res.converged
        assert res.iterations <= 1

    def test_maxiter_reported(self, poisson, b):
        res = cg(poisson, b, maxiter=2)
        assert not res.converged
        assert res.iterations == 2

    def test_shape_validation(self, poisson):
        with pytest.raises(ValueError):
            cg(poisson, np.ones(3))
        with pytest.raises(ValueError):
            cg(poisson, np.ones(poisson.nrows), x0=np.ones(3))

    def test_non_square_rejected(self, rng):
        rect = COOMatrix([0], [1], [1.0], (2, 3))
        with pytest.raises(ValueError):
            cg(rect, np.ones(2))

    def test_through_gpu_kernel(self, poisson, b):
        runner = CrsdSpMV(CRSDMatrix.from_coo(poisson, mrows=16, wavefront_size=16))
        res = cg(runner, b, tol=1e-9)
        assert res.converged
        assert np.allclose(poisson.matvec(res.x), b, atol=1e-6)


class TestBiCGSTAB:
    def test_solves_nonsymmetric(self, nonsym, b):
        res = bicgstab(nonsym, b, tol=1e-11)
        assert res.converged
        assert np.allclose(nonsym.matvec(res.x), b, atol=1e-6)

    def test_solves_spd_too(self, poisson, b):
        res = bicgstab(poisson, b)
        assert res.converged

    def test_counts_spmv(self, nonsym, b):
        res = bicgstab(nonsym, b)
        # 1 initial + about 2 per iteration
        assert res.spmv_count >= res.iterations

    def test_zero_rhs(self, nonsym):
        res = bicgstab(nonsym, np.zeros(nonsym.nrows))
        assert res.converged and res.iterations == 0


class TestJacobi:
    def test_solves_diagonally_dominant(self, poisson, b):
        res = jacobi(poisson, b, tol=1e-9, maxiter=5000)
        assert res.converged
        assert np.allclose(poisson.matvec(res.x), b, atol=1e-5)

    def test_needs_nonzero_diagonal(self, b):
        m = COOMatrix([0, 1], [1, 0], [1.0, 1.0], (2, 2))
        with pytest.raises(ValueError):
            jacobi(m, np.ones(2))

    def test_slower_than_cg(self, poisson, b):
        r_cg = cg(poisson, b, tol=1e-8)
        r_j = jacobi(poisson, b, tol=1e-8, maxiter=20000)
        assert r_j.iterations > r_cg.iterations

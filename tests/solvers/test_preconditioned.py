"""Jacobi-preconditioned CG."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.solvers import cg
from repro.solvers.preconditioned import pcg


@pytest.fixture
def badly_scaled(rng):
    """An SPD system whose rows differ in scale by 1e4 — plain CG
    struggles, Jacobi preconditioning fixes the conditioning."""
    n = 120
    from repro.matrices.generators import grid_stencil, stencil_offsets

    sten = grid_stencil((12, 10), stencil_offsets((12, 10), 1), rng)
    scale = 10.0 ** rng.uniform(0, 4, size=n)
    offs = sten.offsets_of_entries()
    r = sten.rows.astype(int)
    c = sten.cols.astype(int)
    svals = np.where(offs == 0, 8.0, -1.0) * np.sqrt(scale[r] * scale[c])
    return COOMatrix(sten.rows, sten.cols, svals, sten.shape)


class TestPCG:
    def test_solves(self, badly_scaled, rng):
        b = rng.standard_normal(120)
        res = pcg(badly_scaled, b, tol=1e-9, maxiter=2000)
        assert res.converged
        assert np.allclose(badly_scaled.matvec(res.x), b,
                           atol=1e-5 * np.abs(b).max())

    def test_fewer_iterations_than_plain_cg(self, badly_scaled, rng):
        b = rng.standard_normal(120)
        plain = cg(badly_scaled, b, tol=1e-8, maxiter=5000)
        pre = pcg(badly_scaled, b, tol=1e-8, maxiter=5000)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_identity_preconditioner_matches_cg(self, rng):
        from tests.conftest import random_diagonal_matrix

        a0 = random_diagonal_matrix(rng, n=60, offsets=(-1, 0, 1),
                                    density=1.0, scatter=0)
        # symmetrise + dominate
        d = a0.todense()
        d = (d + d.T) / 2 + 8 * np.eye(60)
        a = COOMatrix.from_dense(d)
        b = rng.standard_normal(60)
        res_cg = cg(a, b, tol=1e-10)
        res_pcg = pcg(a, b, preconditioner=lambda r: r, tol=1e-10)
        assert res_pcg.iterations == res_cg.iterations
        assert np.allclose(res_pcg.x, res_cg.x, atol=1e-8)

    def test_nonpositive_diagonal_rejected(self):
        m = COOMatrix([0, 1], [0, 1], [1.0, -1.0], (2, 2))
        with pytest.raises(ValueError, match="positive diagonal"):
            pcg(m, np.ones(2))

    def test_shape_validation(self, badly_scaled):
        with pytest.raises(ValueError):
            pcg(badly_scaled, np.ones(3))

    def test_zero_rhs(self, badly_scaled):
        res = pcg(badly_scaled, np.zeros(120))
        assert res.converged and res.iterations == 0

    def test_spmv_count(self, badly_scaled, rng):
        res = pcg(badly_scaled, rng.standard_normal(120), tol=1e-8,
                  maxiter=3000)
        assert res.spmv_count == res.iterations + 1

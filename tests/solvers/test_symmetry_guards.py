"""Input validation on the solver surface: operand shapes and the
cg/pcg symmetry precondition."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.matrices import generators as gen
from repro.solvers.krylov import bicgstab, cg
from repro.solvers.operator import SpMVOperator, as_operator
from repro.solvers.preconditioned import pcg
from repro.validation import InputValidationError, validate_symmetric


@pytest.fixture
def nprng():
    return np.random.default_rng(11)


def skew_banded(nprng, n=64):
    """A clearly non-symmetric band matrix (still diagonally dominant
    so bicgstab converges on it)."""
    coo = gen.symmetric_banded(n, 2, nprng)
    vals = coo.vals.copy()
    vals[coo.rows > coo.cols] *= 3.0
    return COOMatrix(coo.rows, coo.cols, vals, coo.shape)


class TestShapeGuard:
    def test_operator_rejects_wrong_length(self, nprng):
        op = as_operator(gen.symmetric_banded(64, 2, nprng))
        with pytest.raises(InputValidationError, match="64"):
            op(np.zeros(63))

    def test_operator_rejects_matrix_operand(self, nprng):
        op = as_operator(gen.symmetric_banded(64, 2, nprng))
        with pytest.raises(InputValidationError, match="got"):
            op(np.zeros((64, 1)))

    def test_custom_operator_checked_too(self):
        op = SpMVOperator(lambda x: x, (8, 8))
        assert np.array_equal(op(np.ones(8)), np.ones(8))
        with pytest.raises(InputValidationError):
            op(np.ones(9))


class TestValidateSymmetric:
    def test_dense_exact(self, nprng):
        a = nprng.standard_normal((8, 8))
        validate_symmetric(a + a.T)
        with pytest.raises(InputValidationError, match="symmetric"):
            validate_symmetric(a + a.T + 1e-6 * np.eye(8, k=1))

    def test_sparse_exact(self, nprng):
        validate_symmetric(gen.symmetric_banded(64, 3, nprng))
        with pytest.raises(InputValidationError):
            validate_symmetric(skew_banded(nprng))

    def test_opaque_operator_sampled(self, nprng):
        sym = gen.symmetric_banded(64, 2, nprng)
        dense = sym.todense()
        validate_symmetric(SpMVOperator(lambda x: dense @ x, (64, 64)))
        skew = skew_banded(nprng).todense()
        with pytest.raises(InputValidationError, match="bicgstab"):
            validate_symmetric(
                SpMVOperator(lambda x: skew @ x, (64, 64)))


class TestSolverGate:
    def test_cg_rejects_asymmetric(self, nprng):
        a = skew_banded(nprng)
        b = np.ones(64)
        with pytest.raises(InputValidationError, match="check_symmetry"):
            cg(a, b)

    def test_cg_opt_out_still_runs(self, nprng):
        a = skew_banded(nprng)
        res = cg(a, np.ones(64), check_symmetry=False, maxiter=5)
        assert res.iterations >= 1

    def test_pcg_rejects_asymmetric(self, nprng):
        with pytest.raises(InputValidationError):
            pcg(skew_banded(nprng), np.ones(64))

    def test_pcg_opt_out_still_runs(self, nprng):
        res = pcg(skew_banded(nprng), np.ones(64),
                  check_symmetry=False, maxiter=5)
        assert res.iterations >= 1

    def test_bicgstab_never_gated(self, nprng):
        res = bicgstab(skew_banded(nprng), np.ones(64), tol=1e-10)
        assert res.converged

    def test_cg_accepts_symmetric_and_counts_unchanged(self, nprng):
        """Validation must not consume solver-visible SpMV
        invocations."""
        a = gen.symmetric_banded(64, 2, nprng)
        b = np.ones(64)
        gated = cg(a, b, tol=1e-10)
        ungated = cg(a, b, tol=1e-10, check_symmetry=False)
        assert gated.converged and ungated.converged
        assert gated.spmv_count == ungated.spmv_count
        assert np.array_equal(gated.x, ungated.x)

"""Consolidated edge-case coverage across modules.

Small behaviours that the feature-focused test files do not pin:
report rendering with OOM rows, runner error paths, device registry,
degenerate codegen inputs, and boundary conditions of the helpers.
"""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from tests.conftest import random_diagonal_matrix


class TestReportEdgeCases:
    @pytest.fixture
    def result_with_oom(self):
        from repro.bench.runner import BenchRecord, GpuSuiteResult

        recs = [
            BenchRecord(3, "s3dkt3m2", "crsd", "double", 100, 5.0, 4e-8),
            BenchRecord(3, "s3dkt3m2", "dia", "double", 100, None, None,
                        oom=True),
            BenchRecord(3, "s3dkt3m2", "ell", "double", 100, 4.0, 5e-8),
        ]
        return GpuSuiteResult(recs, scale=0.02, precision="double")

    def test_gflops_table_prints_oom(self, result_with_oom):
        from repro.bench.report import gflops_table

        txt = gflops_table(result_with_oom, ["dia", "ell", "crsd"])
        assert "OOM" in txt

    def test_gflops_table_missing_format_dash(self, result_with_oom):
        from repro.bench.report import gflops_table

        txt = gflops_table(result_with_oom, ["csr"])
        assert "-" in txt.splitlines()[-1]

    def test_speedup_table_skips_oom_baseline(self, result_with_oom):
        from repro.bench.report import speedup_table

        txt = speedup_table(result_with_oom, ["dia", "ell"])
        assert "OOM" in txt

    def test_speedup_series_excludes_oom(self, result_with_oom):
        from repro.bench.report import speedup_series

        assert speedup_series(result_with_oom, "dia") == {}
        assert 3 in speedup_series(result_with_oom, "ell")

    def test_summarize_empty_series(self):
        from repro.bench.report import summarize_series

        s = summarize_series({})
        assert np.isnan(s["max"]) and np.isnan(s["avg"])

    def test_best_baseline_all_oom(self):
        from repro.bench.runner import BenchRecord, GpuSuiteResult

        recs = [BenchRecord(1, "m", "dia", "double", 10, None, None, oom=True)]
        r = GpuSuiteResult(recs, 0.02, "double")
        assert r.best_baseline(1) is None


class TestDeviceRegistry:
    def test_devices_dict(self):
        from repro.ocl.device import DEVICES, TESLA_C2050

        assert DEVICES["c2050"] is TESLA_C2050
        assert {"c2050", "cypress", "gtx285"} <= set(DEVICES)

    def test_num_pes(self):
        from repro.ocl.device import TESLA_C2050

        assert TESLA_C2050.num_pes == 448  # the paper's Table IV


class TestRunnerErrorPaths:
    def test_precision_dtype_rejects_unknown(self):
        from repro.gpu_kernels.base import precision_dtype

        with pytest.raises(ValueError):
            precision_dtype("half")

    def test_groups_for_rows(self, rng):
        from repro.formats.ell import ELLMatrix
        from repro.gpu_kernels import EllSpMV

        coo = random_diagonal_matrix(rng, n=100)
        r = EllSpMV(ELLMatrix.from_coo(coo), local_size=32)
        assert r.groups_for_rows(100) == 4

    def test_prepare_idempotent(self, rng):
        from repro.formats.ell import ELLMatrix
        from repro.gpu_kernels import EllSpMV

        coo = random_diagonal_matrix(rng, n=64)
        r = EllSpMV(ELLMatrix.from_coo(coo))
        r.prepare()
        bytes_once = r.device_bytes
        r.prepare()
        assert r.device_bytes == bytes_once

    def test_unknown_bench_format(self, rng):
        from repro.bench.runner import _build_runners, scaled_device

        coo = random_diagonal_matrix(rng, n=32)
        with pytest.raises(ValueError):
            _build_runners(coo, scaled_device(1.0), "double", ["nope"], 16)


class TestCodegenDegenerate:
    def test_empty_matrix_kernel(self):
        from repro.codegen import build_plan, generate_opencl_source
        from repro.codegen.python_codelet import generate_python_kernel
        from repro.core.crsd import CRSDMatrix

        crsd = CRSDMatrix.from_coo(COOMatrix.empty((16, 16)), mrows=4, wavefront_size=4)
        plan = build_plan(crsd)
        assert plan.num_groups == 0
        compiled = generate_python_kernel(plan)
        assert compiled.scatter_kernel is None
        src = generate_opencl_source(plan)
        assert "__kernel" in src

    def test_scatter_only_matrix_kernels(self, rng):
        from repro.codegen import build_plan
        from repro.core.crsd import CRSDMatrix
        from repro.gpu_kernels import CrsdSpMV

        entries = [(2, 10), (9, 1)]
        rows, cols = zip(*entries)
        coo = COOMatrix(np.array(rows), np.array(cols), np.ones(2), (16, 16))
        crsd = CRSDMatrix.from_coo(coo, mrows=4, wavefront_size=4, idle_fill_max_rows=1)
        assert len(crsd.regions) == 0 and crsd.num_scatter_rows == 2
        x = rng.standard_normal(16)
        run = CrsdSpMV(crsd).run(x)
        assert np.allclose(run.y, coo.matvec(x))

    def test_single_row_matrix(self, rng):
        from repro.core.crsd import CRSDMatrix

        coo = COOMatrix([0, 0], [0, 3], [2.0, 3.0], (1, 5))
        crsd = CRSDMatrix.from_coo(coo, mrows=4, wavefront_size=4)
        x = rng.standard_normal(5)
        assert np.allclose(crsd.matvec(x), coo.matvec(x))


class TestTransferEdges:
    def test_zero_latency_spec(self):
        from repro.hybrid.transfer import PCIeSpec

        p = PCIeSpec("x", 10.0, 0.0)
        assert p.time(10**10) == pytest.approx(1.0)

    def test_transfer_neither_vector(self):
        from repro.hybrid.transfer import transfer_time

        assert transfer_time(100, 100, transfer_x=False, transfer_y=False) == 0.0


class TestStatsEdges:
    def test_stats_of_empty(self):
        from repro.matrices.stats import compute_stats

        st = compute_stats(COOMatrix.empty((5, 5)))
        assert st.nnz == 0 and st.dia_fill_ratio == 1.0

    def test_top10_fraction(self, rng):
        from repro.matrices.stats import compute_stats

        tri = random_diagonal_matrix(rng, n=60, offsets=(-1, 0, 1),
                                     density=1.0, scatter=0)
        st = compute_stats(tri)
        assert st.top10_diag_fraction == pytest.approx(1.0)

    def test_estimate_dia_bytes_precisions(self):
        from repro.matrices.stats import estimate_dia_bytes

        d = estimate_dia_bytes(1000, 10, "double")
        s = estimate_dia_bytes(1000, 10, "single")
        assert d == 10 * 1000 * 8 + 40
        assert s == 10 * 1000 * 4 + 40


class TestSolverOperatorEdges:
    def test_dense_operator_diagonal(self, rng):
        from repro.solvers import as_operator

        d = rng.standard_normal((6, 6))
        op = as_operator(d)
        assert np.allclose(op.diagonal(), np.diagonal(d))

    def test_runner_without_matrix_diagonal_raises(self, rng):
        from repro.solvers import as_operator

        class FakeRunner:
            nrows = ncols = 4

            def run(self, x, trace=True):
                class R:
                    y = np.zeros(4)

                return R()

        op = as_operator(FakeRunner())
        with pytest.raises(ValueError):
            op.diagonal()

"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import main
from repro.matrices.mmio import write_matrix_market
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def mtx_file(tmp_path, rng):
    coo = random_diagonal_matrix(rng, n=80)
    p = tmp_path / "demo.mtx"
    write_matrix_market(coo, p)
    return p


class TestInfo:
    def test_suite_by_name(self, capsys):
        assert main(["info", "kim1", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "kim1" in out and "regions" in out

    def test_suite_by_number(self, capsys):
        assert main(["info", "9", "--scale", "0.01"]) == 0
        assert "kim1" in capsys.readouterr().out

    def test_mtx_file(self, mtx_file, capsys):
        assert main(["info", str(mtx_file)]) == 0
        assert "demo" in capsys.readouterr().out

    def test_unknown_matrix(self):
        with pytest.raises(KeyError):
            main(["info", "nope"])


class TestBench:
    def test_bench_runs_all_formats(self, capsys):
        assert main(["bench", "wang3", "--scale", "0.01", "--mrows", "64"]) == 0
        out = capsys.readouterr().out
        for fmt in ("crsd", "ell", "dia", "csr", "hyb"):
            assert fmt in out
        assert "WRONG" not in out

    def test_bench_single_precision(self, capsys):
        assert main(["bench", "ecology1", "--scale", "0.005",
                     "--precision", "single"]) == 0
        assert "single" in capsys.readouterr().out


class TestCodegen:
    def test_prints_kernel(self, mtx_file, capsys):
        assert main(["codegen", str(mtx_file), "--mrows", "16"]) == 0
        out = capsys.readouterr().out
        assert "__kernel void crsd_dia_spmv" in out

    def test_single_precision_kernel(self, mtx_file, capsys):
        assert main(["codegen", str(mtx_file), "--mrows", "16",
                     "--precision", "single"]) == 0
        assert "float" in capsys.readouterr().out


class TestConvert:
    def test_roundtrip(self, mtx_file, tmp_path, capsys):
        out_path = tmp_path / "demo.crsd.npz"
        assert main(["convert", str(mtx_file), "--mrows", "16",
                     "-o", str(out_path)]) == 0
        assert out_path.exists()

        from repro.core.serialize import load_crsd
        from repro.matrices.mmio import read_matrix_market

        back = load_crsd(out_path)
        orig = read_matrix_market(mtx_file)
        assert back.to_coo().equals(orig, tol=1e-12)

    def test_default_output_name(self, mtx_file, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["convert", str(mtx_file), "--mrows", "16"]) == 0
        assert (tmp_path / "demo.crsd.npz").exists()


class TestTune:
    def test_fast_tune(self, mtx_file, capsys):
        assert main(["tune", str(mtx_file), "--fast"]) == 0
        out = capsys.readouterr().out
        assert "best mrows=" in out

    def test_json_output_schema(self, mtx_file, capsys):
        assert main(["tune", str(mtx_file), "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matrix"] == "demo"
        best = payload["best"]
        for key in ("mrows", "idle_fill_max_rows", "use_local_memory",
                    "seconds", "fill_zeros", "num_regions"):
            assert key in best
        assert payload["candidates"], "candidate list must not be empty"
        # the winner is the fastest candidate
        assert best["seconds"] == min(
            c["seconds"] for c in payload["candidates"])

    def test_json_is_pure(self, mtx_file, capsys):
        """--json must emit nothing but the JSON document on stdout."""
        main(["tune", str(mtx_file), "--fast", "--json"])
        out = capsys.readouterr().out
        json.loads(out)  # would raise on any stray text


class TestProfile:
    def test_text_summary(self, mtx_file, capsys):
        assert main(["profile", str(mtx_file), "--mrows", "16"]) == 0
        out = capsys.readouterr().out
        assert "crsd/batched/double" in out
        assert "crsd/pergroup/double" in out
        assert "GFLOPS" in out

    def test_json_output_schema(self, mtx_file, capsys):
        assert main(["profile", str(mtx_file), "--mrows", "16",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro-profile/v1"
        assert payload["meta"]["matrix"] == "demo"
        entries = payload["metrics"]["entries"]
        assert {e["name"] for e in entries} == {
            "crsd/batched/double", "crsd/pergroup/double"}
        for e in entries:
            assert e["verified"] is True
            assert e["counters"]["flops"] > 0
            assert 0.0 <= e["metrics"]["load_coalescing"] <= 1.0
            assert e["metrics"]["achieved_gflops"] > 0
        spans = payload["session"]["spans"]
        assert any(s["category"] == "kernel" for s in spans)

    def test_exports_artifacts(self, mtx_file, tmp_path, capsys):
        out_dir = tmp_path / "prof"
        assert main(["profile", str(mtx_file), "--mrows", "16",
                     "-o", str(out_dir)]) == 0
        files = {p.name for p in out_dir.iterdir()}
        assert files == {"profile_demo.json", "profile_demo.csv",
                         "profile_demo.trace.json"}
        trace = json.loads((out_dir / "profile_demo.trace.json").read_text())
        assert trace["traceEvents"], "chrome trace must contain events"
        assert all(ev["ph"] in ("X", "i") for ev in trace["traceEvents"])

    def test_format_and_precision_selection(self, mtx_file, capsys):
        assert main(["profile", str(mtx_file), "--mrows", "16",
                     "--formats", "crsd,dia",
                     "--executors", "batched",
                     "--precisions", "double,single",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = {e["name"] for e in payload["metrics"]["entries"]}
        assert names == {
            "crsd/batched/double", "dia/batched/double",
            "crsd/batched/single", "dia/batched/single"}

    def test_unknown_executor_fails(self, mtx_file, capsys):
        with pytest.raises(ValueError, match="unknown executor"):
            main(["profile", str(mtx_file), "--executors", "warp"])


class TestSpy:
    def test_info_spy(self, capsys):
        assert main(["info", "wang3", "--scale", "0.01", "--spy", "30"]) == 0
        out = capsys.readouterr().out
        assert "+" + "-" * 30 + "+" in out

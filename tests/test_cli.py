"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main
from repro.matrices.mmio import write_matrix_market
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def mtx_file(tmp_path, rng):
    coo = random_diagonal_matrix(rng, n=80)
    p = tmp_path / "demo.mtx"
    write_matrix_market(coo, p)
    return p


class TestInfo:
    def test_suite_by_name(self, capsys):
        assert main(["info", "kim1", "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "kim1" in out and "regions" in out

    def test_suite_by_number(self, capsys):
        assert main(["info", "9", "--scale", "0.01"]) == 0
        assert "kim1" in capsys.readouterr().out

    def test_mtx_file(self, mtx_file, capsys):
        assert main(["info", str(mtx_file)]) == 0
        assert "demo" in capsys.readouterr().out

    def test_unknown_matrix(self):
        with pytest.raises(KeyError):
            main(["info", "nope"])


class TestBench:
    def test_bench_runs_all_formats(self, capsys):
        assert main(["bench", "wang3", "--scale", "0.01", "--mrows", "64"]) == 0
        out = capsys.readouterr().out
        for fmt in ("crsd", "ell", "dia", "csr", "hyb"):
            assert fmt in out
        assert "WRONG" not in out

    def test_bench_single_precision(self, capsys):
        assert main(["bench", "ecology1", "--scale", "0.005",
                     "--precision", "single"]) == 0
        assert "single" in capsys.readouterr().out


class TestCodegen:
    def test_prints_kernel(self, mtx_file, capsys):
        assert main(["codegen", str(mtx_file), "--mrows", "16"]) == 0
        out = capsys.readouterr().out
        assert "__kernel void crsd_dia_spmv" in out

    def test_single_precision_kernel(self, mtx_file, capsys):
        assert main(["codegen", str(mtx_file), "--mrows", "16",
                     "--precision", "single"]) == 0
        assert "float" in capsys.readouterr().out


class TestConvert:
    def test_roundtrip(self, mtx_file, tmp_path, capsys):
        out_path = tmp_path / "demo.crsd.npz"
        assert main(["convert", str(mtx_file), "--mrows", "16",
                     "-o", str(out_path)]) == 0
        assert out_path.exists()

        from repro.core.serialize import load_crsd
        from repro.matrices.mmio import read_matrix_market

        back = load_crsd(out_path)
        orig = read_matrix_market(mtx_file)
        assert back.to_coo().equals(orig, tol=1e-12)

    def test_default_output_name(self, mtx_file, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["convert", str(mtx_file), "--mrows", "16"]) == 0
        assert (tmp_path / "demo.crsd.npz").exists()


class TestTune:
    def test_fast_tune(self, mtx_file, capsys):
        assert main(["tune", str(mtx_file), "--fast"]) == 0
        out = capsys.readouterr().out
        assert "best mrows=" in out


class TestSpy:
    def test_info_spy(self, capsys):
        assert main(["info", "wang3", "--scale", "0.01", "--spy", "30"]) == 0
        out = capsys.readouterr().out
        assert "+" + "-" * 30 + "+" in out

"""ASCII figure rendering and CSV export."""

import pytest

from repro.bench.figures import (
    ascii_bar_chart,
    gflops_chart,
    read_back_csv,
    suite_chart,
    write_csv,
)
from repro.bench.runner import BenchRecord, GpuSuiteResult


@pytest.fixture(scope="module")
def result():
    recs = []
    for num, name in [(5, "ecology1"), (9, "kim1")]:
        for fmt, gf in [("dia", 10.0), ("ell", 8.0), ("crsd", 12.0)]:
            recs.append(
                BenchRecord(
                    matrix_number=num, matrix_name=name, fmt=fmt,
                    precision="double", nnz=1000, gflops=gf,
                    seconds=2e-6 / gf,
                )
            )
    recs.append(
        BenchRecord(matrix_number=5, matrix_name="ecology1", fmt="hyb",
                    precision="double", nnz=1000, gflops=None, seconds=None,
                    oom=True)
    )
    return GpuSuiteResult(records=recs, scale=0.02, precision="double")


class TestAsciiChart:
    def test_bars_scale_to_max(self):
        chart = ascii_bar_chart({"a": 10.0, "b": 5.0}, width=20)
        lines = chart.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_oom_rendered(self):
        chart = ascii_bar_chart({"a": 1.0, "b": None})
        assert "(OOM)" in chart

    def test_title(self):
        assert ascii_bar_chart({"a": 1.0}, title="T").splitlines()[0] == "T"

    def test_empty(self):
        assert ascii_bar_chart({}, title="T") == "T"


class TestSuiteCharts:
    def test_gflops_chart(self, result):
        chart = gflops_chart(result, 5, ["dia", "ell", "crsd", "hyb"])
        assert "ecology1" in chart
        assert "(OOM)" in chart

    def test_unknown_matrix(self, result):
        with pytest.raises(KeyError):
            gflops_chart(result, 99, ["dia"])

    def test_suite_chart_has_all_blocks(self, result):
        chart = suite_chart(result, ["dia", "ell", "crsd"])
        assert "ecology1" in chart and "kim1" in chart


class TestCsv:
    def test_write_and_read_back(self, result, tmp_path):
        p = write_csv(result, tmp_path / "fig.csv",
                      formats=["dia", "ell", "crsd", "hyb"])
        back = read_back_csv(p)
        assert back["kim1"]["crsd"] == pytest.approx(12.0)
        assert "hyb" not in back["ecology1"]  # OOM -> empty cell

    def test_header(self, result, tmp_path):
        p = write_csv(result, tmp_path / "fig.csv", formats=["crsd"])
        header = p.read_text().splitlines()[0]
        assert header == "number,matrix,precision,crsd"

"""Bench harness: records, OOM logic, scaling, reports."""

import pytest

from repro.bench.runner import (
    dia_oom_at_full_size,
    effective_scale,
    run_cpu_matrix,
    run_gpu_matrix,
    scaled_device,
)
from repro.bench.report import (
    gflops_table,
    render_records,
    speedup_series,
    speedup_table,
    summarize_series,
)
from repro.bench.runner import GpuSuiteResult
from repro.bench import shapes
from repro.matrices.suite23 import get_spec
from repro.ocl.device import TESLA_C2050

SCALE = 0.01


@pytest.fixture(scope="module")
def ecology_records():
    return run_gpu_matrix(get_spec("ecology1"), SCALE, "double")


class TestScaling:
    def test_effective_scale_floor(self):
        spec = get_spec("nemeth21")  # 9506 rows
        assert effective_scale(spec, 0.001) == pytest.approx(4000 / 9506)
        assert effective_scale(spec, 0.9) == 0.9

    def test_spec_floor_wins(self):
        spec = get_spec("s3dkt3m2")
        assert effective_scale(spec, 0.001) == pytest.approx(16384 / 90449)

    def test_scaled_device(self):
        d = scaled_device(0.1)
        assert d.global_mem_bytes == pytest.approx(0.1 * TESLA_C2050.global_mem_bytes, rel=0.01)
        assert d.kernel_launch_us == pytest.approx(0.1 * TESLA_C2050.kernel_launch_us)
        assert d.l2_bytes == pytest.approx(0.1 * TESLA_C2050.l2_bytes, rel=0.01)


class TestOOM:
    def test_af_dia_double_oom(self):
        assert dia_oom_at_full_size(get_spec("af_1_k101"), "double")

    def test_af_dia_single_fits(self):
        assert not dia_oom_at_full_size(get_spec("af_1_k101"), "single")

    def test_other_matrices_fit(self):
        for name in ("s3dkt3m2", "ecology1", "kim2"):
            assert not dia_oom_at_full_size(get_spec(name), "double")

    def test_oom_record_emitted(self):
        recs = run_gpu_matrix(get_spec("af_1_k101"), SCALE, "double",
                              formats=["dia"])
        assert len(recs) == 1
        assert recs[0].oom
        assert recs[0].gflops is None


class TestRecords:
    def test_all_formats_present(self, ecology_records):
        assert {r.fmt for r in ecology_records} == {"dia", "ell", "csr", "hyb", "crsd"}

    def test_results_verified(self, ecology_records):
        for r in ecology_records:
            assert r.max_abs_err < 1e-8

    def test_gflops_positive(self, ecology_records):
        for r in ecology_records:
            assert r.gflops > 0

    def test_extras_recorded(self, ecology_records):
        crsd = next(r for r in ecology_records if r.fmt == "crsd")
        assert "coalescing" in crsd.extra
        assert crsd.extra["barriers"] > 0


class TestSuiteResult:
    @pytest.fixture(scope="class")
    def result(self, ecology_records):
        return GpuSuiteResult(records=list(ecology_records), scale=SCALE,
                              precision="double")

    def test_by_matrix(self, result):
        recs = result.by_matrix(5)
        assert recs["crsd"].matrix_name == "ecology1"

    def test_best_baseline_excludes_crsd(self, result):
        best = result.best_baseline(5)
        assert best.fmt != "crsd"

    def test_gflops_table_renders(self, result):
        txt = gflops_table(result, ["dia", "ell", "csr", "hyb", "crsd"])
        assert "ecology1" in txt
        assert "GFLOPS" in txt

    def test_speedup_table_renders(self, result):
        txt = speedup_table(result, ["dia", "ell"])
        assert "CRSD/DIA" in txt

    def test_series_and_summary(self, result):
        s = speedup_series(result, "csr")
        assert 5 in s
        summary = summarize_series(s)
        assert summary["max"] >= summary["avg"] > 0

    def test_render_records(self, result):
        assert "ecology1" in render_records(result.records)

    def test_shape_helpers(self, result):
        val = shapes.crsd_beats(result, 5, "csr", at_least=1.0)
        assert val > 1.0
        with pytest.raises(shapes.ShapeViolation):
            shapes.crsd_beats(result, 5, "csr", at_least=1e9)
        with pytest.raises(shapes.ShapeViolation):
            shapes.assert_band(5.0, 0.0, 1.0, "x")
        shapes.assert_band(0.5, 0.0, 1.0, "x")


class TestCpuComparison:
    def test_ecology(self):
        c = run_cpu_matrix(get_spec("ecology1"), SCALE, "double")
        assert c.speedup_vs_csr_1thr > c.speedup_vs_csr_8thr > 1.0
        assert c.speedup_vs_dia_1thr > 0

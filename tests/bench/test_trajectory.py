"""Benchmark trajectory persistence (``BENCH_spmv.json``)."""

import json

import pytest

from repro.bench.runner import (
    TRAJECTORY_ENV,
    TRAJECTORY_SCHEMA,
    append_trajectory,
    run_gpu_suite,
    trajectory_entry,
)


@pytest.fixture(scope="module")
def suite_result():
    return run_gpu_suite(scale=0.01, matrices=[1, 9], formats=["crsd", "ell"])


class TestTrajectoryEntry:
    def test_entry_shape(self, suite_result):
        entry = trajectory_entry(suite_result)
        assert entry["schema"] == TRAJECTORY_SCHEMA
        assert entry["precision"] == "double"
        assert entry["executor"] in ("batched", "pergroup")
        assert entry["scale"] == 0.01
        # ISO-8601 UTC timestamp
        assert entry["timestamp"].endswith("Z")
        assert set(entry["formats"]) == {"crsd", "ell"}
        crsd = entry["formats"]["crsd"]
        assert crsd["matrices"] == 2
        assert crsd["gflops_min"] <= crsd["gflops_mean"] <= crsd["gflops_max"]
        assert 0.0 < crsd["coalescing_mean"] <= 1.0
        assert crsd["dram_bytes_per_nnz_mean"] > 0

    def test_entry_is_json_safe(self, suite_result):
        json.dumps(trajectory_entry(suite_result))


class TestAppendTrajectory:
    def test_creates_then_appends(self, suite_result, tmp_path):
        path = tmp_path / "BENCH_spmv.json"
        append_trajectory(suite_result, path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == TRAJECTORY_SCHEMA
        assert len(payload["entries"]) == 1
        append_trajectory(suite_result, path)
        payload = json.loads(path.read_text())
        assert len(payload["entries"]) == 2

    def test_recovers_from_corrupt_file(self, suite_result, tmp_path):
        path = tmp_path / "BENCH_spmv.json"
        path.write_text("{not json")
        append_trajectory(suite_result, path)
        payload = json.loads(path.read_text())
        assert len(payload["entries"]) == 1


class TestSuiteIntegration:
    def test_explicit_path(self, tmp_path):
        path = tmp_path / "traj.json"
        run_gpu_suite(scale=0.01, matrices=[1], formats=["crsd"],
                      trajectory=path)
        payload = json.loads(path.read_text())
        (entry,) = payload["entries"]
        assert set(entry["formats"]) == {"crsd"}

    def test_env_var_default(self, tmp_path, monkeypatch):
        path = tmp_path / "traj.json"
        monkeypatch.setenv(TRAJECTORY_ENV, str(path))
        run_gpu_suite(scale=0.01, matrices=[1], formats=["crsd"])
        assert json.loads(path.read_text())["entries"]

    def test_no_persistence_by_default(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv(TRAJECTORY_ENV, raising=False)
        run_gpu_suite(scale=0.01, matrices=[1], formats=["crsd"])
        assert not list(tmp_path.iterdir())

"""Cross-module integration tests.

These exercise realistic end-to-end flows: every storage format and
every kernel agreeing on a suite matrix, a conjugate-gradient solve
driven by the CRSD GPU kernel, and the full CRSD pipeline (analysis ->
format -> codegen -> simulated execution -> performance model).
"""

import numpy as np
import pytest

from repro.bench.runner import run_gpu_matrix
from repro.core.crsd import CRSDMatrix
from repro.formats import convert
from repro.formats.coo import COOMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.matrices.suite23 import get_spec
from repro.perf.costmodel import predict_gpu_time


class TestFormatsAgreeOnSuiteMatrices:
    @pytest.mark.parametrize("name", ["ecology1", "wang3", "kim1", "nemeth21",
                                      "s80_80_50"])
    def test_all_formats_same_y(self, name, rng):
        coo = get_spec(name).generate(scale=0.005)
        x = rng.standard_normal(coo.ncols)
        ref = coo.matvec(x)
        for fmt in ("csr", "dia", "ell", "hyb", "bcsr"):
            m = convert(coo, fmt)
            assert np.allclose(m.matvec(x), ref), fmt
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        assert np.allclose(crsd.matvec(x), ref)


class TestConjugateGradient:
    def cg(self, apply_a, b, tol=1e-8, maxiter=500):
        x = np.zeros_like(b)
        r = b - apply_a(x)
        p = r.copy()
        rs = r @ r
        for _ in range(maxiter):
            ap = apply_a(p)
            alpha = rs / (p @ ap)
            x += alpha * p
            r -= alpha * ap
            rs_new = r @ r
            if np.sqrt(rs_new) < tol:
                return x, True
            p = r + (rs_new / rs) * p
            rs = rs_new
        return x, False

    @pytest.fixture
    def spd_poisson(self):
        """2-D Poisson matrix (5-point, SPD) on a 12x12 grid."""
        from repro.matrices.generators import grid_stencil, stencil_offsets

        rng = np.random.default_rng(0)
        coo = grid_stencil((12, 12), stencil_offsets((12, 12), 1), rng)
        # overwrite values to the standard Laplacian
        offs = coo.offsets_of_entries()
        vals = np.where(offs == 0, 4.0, -1.0)
        return COOMatrix(coo.rows, coo.cols, vals, coo.shape)

    def test_cg_with_crsd_reference(self, spd_poisson, rng):
        b = rng.standard_normal(spd_poisson.nrows)
        crsd = CRSDMatrix.from_coo(spd_poisson, mrows=16, wavefront_size=16)
        x, converged = self.cg(lambda v: crsd.matvec(v), b)
        assert converged
        assert np.allclose(spd_poisson.matvec(x), b, atol=1e-6)

    def test_cg_with_generated_gpu_kernel(self, spd_poisson, rng):
        b = rng.standard_normal(spd_poisson.nrows)
        runner = CrsdSpMV(CRSDMatrix.from_coo(spd_poisson, mrows=16, wavefront_size=16))
        x, converged = self.cg(lambda v: runner.run(v, trace=False).y, b)
        assert converged
        assert np.allclose(spd_poisson.matvec(x), b, atol=1e-6)


class TestFullPipeline:
    def test_trace_to_time_to_gflops(self, rng):
        coo = get_spec("kim1").generate(scale=0.01)
        crsd = CRSDMatrix.from_coo(coo, mrows=64)
        runner = CrsdSpMV(crsd)
        run = runner.run(rng.standard_normal(coo.ncols))
        perf = predict_gpu_time(run.trace, runner.device)
        assert perf.total > 0
        assert perf.bound in {"bandwidth", "latency", "compute", "local", "l2"}

    def test_bench_runner_single_matrix(self):
        recs = run_gpu_matrix(get_spec("kim1"), 0.01, "double",
                              formats=["ell", "crsd"])
        by = {r.fmt: r for r in recs}
        assert by["crsd"].gflops > by["ell"].gflops

    def test_opencl_source_for_suite_matrix_validates(self):
        from repro.codegen.validator import validate_opencl_source

        coo = get_spec("s80_80_50").generate(scale=0.005)
        runner = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=64))
        names = validate_opencl_source(runner.opencl_source)
        assert "crsd_dia_spmv" in names

    def test_mmio_to_gpu_roundtrip(self, tmp_path, rng):
        from repro.matrices.mmio import read_matrix_market, write_matrix_market

        coo = get_spec("wang3").generate(scale=0.01)
        p = tmp_path / "wang3.mtx"
        write_matrix_market(coo, p)
        back = read_matrix_market(p)
        x = rng.standard_normal(back.ncols)
        run = CrsdSpMV(CRSDMatrix.from_coo(back, mrows=32)).run(x)
        assert np.allclose(run.y, coo.matvec(x), atol=1e-8)

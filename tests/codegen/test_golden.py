"""Golden-file stability of the code generator.

The OpenCL C emitted for the paper's Fig. 2 worked example is pinned
byte-for-byte in ``tests/data/fig2_kernel_golden.cl``.  Any change to
the generator's output — intended or not — fails this test, forcing a
reviewed regeneration of the golden file (and of the paper-pinned
structure tests that guard its semantics).
"""

from pathlib import Path

import numpy as np

from repro.codegen import build_plan, generate_opencl_source
from repro.codegen.python_codelet import emit_python_source
from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from tests.conftest import FIG2_ENTRIES, FIG2_SHAPE

GOLDEN = Path(__file__).parent.parent / "data" / "fig2_kernel_golden.cl"


def fig2_crsd():
    """Build the Fig. 2 CRSD matrix (mrows=2)."""
    rows, cols = zip(*FIG2_ENTRIES)
    coo = COOMatrix(np.array(rows), np.array(cols),
                    np.array(list(FIG2_ENTRIES.values())), FIG2_SHAPE)
    return CRSDMatrix.from_coo(coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)


def test_opencl_source_matches_golden():
    src = generate_opencl_source(build_plan(fig2_crsd()))
    assert src == GOLDEN.read_text(), (
        "generated OpenCL changed; review the diff and regenerate "
        "tests/data/fig2_kernel_golden.cl if intentional"
    )


def test_generation_is_deterministic():
    a = generate_opencl_source(build_plan(fig2_crsd()))
    b = generate_opencl_source(build_plan(fig2_crsd()))
    assert a == b
    pa = emit_python_source(build_plan(fig2_crsd()))
    pb = emit_python_source(build_plan(fig2_crsd()))
    assert pa == pb


def test_golden_contains_the_paper_constants():
    """Belt and braces: the golden file itself carries the Fig. 4
    constants, so a silently regenerated golden cannot drift far."""
    src = GOLDEN.read_text()
    assert "case 0:" in src and "case 1:" in src
    assert "row = 2 + seg * 2 + local_id;" in src   # SR=2, mrows=2
    assert "crsd_dia_val[10 + seg * 6" in src       # slab base 10, NNzRS 6
    assert "__local double xtile[3];" in src        # AD tile of 3

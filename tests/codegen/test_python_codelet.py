"""Generated Python codelets: source structure + compiled correctness."""

import numpy as np
import pytest

from repro.codegen.plan import build_plan
from repro.codegen.python_codelet import emit_python_source, generate_python_kernel
from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.gpu_kernels.crsd_runner import CrsdSpMV
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def crsd(fig2_coo):
    return CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)


class TestEmittedSource:
    def test_one_codelet_per_region(self, crsd):
        src = emit_python_source(build_plan(crsd))
        assert "def _codelet_p0(" in src
        assert "def _codelet_p1(" in src
        assert "def crsd_dia_kernel(" in src
        assert "def crsd_scatter_kernel(" in src

    def test_constants_are_baked(self, crsd):
        src = emit_python_source(build_plan(crsd))
        # region 1: slab base 10, NNzRS 6
        assert "10 + seg * 6" in src
        # region 1 destination rows: SR=2, mrows=2
        assert "row = 2 + seg * 2 + lid" in src
        # scatter kernel unrolled over width 4: column-major strides 0..3
        for k in range(4):
            assert f"ctx.gload(scol, {k * 1} + safe" in src

    def test_no_index_array_reads(self, crsd):
        """The paper's point: the kernel never reads crsd_dia_index."""
        src = emit_python_source(build_plan(crsd))
        assert "crsd_dia_index" not in src

    def test_local_memory_path(self, crsd):
        src = emit_python_source(build_plan(crsd, use_local_memory=True))
        assert "alloc_local" in src
        assert "ctx.barrier()" in src

    def test_no_local_memory_path(self, crsd):
        src = emit_python_source(build_plan(crsd, use_local_memory=False))
        assert "alloc_local" not in src
        assert "ctx.barrier()" not in src

    def test_source_compiles(self, crsd):
        compiled = generate_python_kernel(build_plan(crsd))
        assert callable(compiled.dia_kernel)
        assert callable(compiled.scatter_kernel)

    def test_no_scatter_no_kernel(self):
        import numpy as np
        from repro.formats.coo import COOMatrix

        coo = COOMatrix(np.arange(8), np.arange(8), np.ones(8), (8, 8))
        compiled = generate_python_kernel(build_plan(CRSDMatrix.from_coo(coo, mrows=4, wavefront_size=4)))
        assert compiled.scatter_kernel is None


class TestCompiledCorrectness:
    @pytest.mark.parametrize("use_local", [True, False])
    def test_fig2(self, fig2_coo, fig2_dense, rng, use_local):
        crsd = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        runner = CrsdSpMV(crsd, use_local_memory=use_local)
        x = rng.standard_normal(9)
        run = runner.run(x)
        assert np.allclose(run.y, fig2_dense @ x)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("mrows", [2, 8, 32])
    def test_random_matrices(self, seed, mrows):
        rng = np.random.default_rng(seed)
        coo = random_diagonal_matrix(rng, n=90, density=0.6, scatter=4)
        crsd = CRSDMatrix.from_coo(
            coo, mrows=mrows, wavefront_size=compatible_wavefront(mrows)
        )
        x = rng.standard_normal(90)
        run = CrsdSpMV(crsd).run(x)
        assert np.allclose(run.y, coo.todense() @ x)

    def test_single_precision(self, rng):
        coo = random_diagonal_matrix(rng, n=64)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=16)
        x = rng.standard_normal(64)
        run = CrsdSpMV(crsd, precision="single").run(x)
        assert run.y.dtype == np.float32
        assert np.allclose(run.y, coo.todense() @ x, rtol=1e-4, atol=1e-4)

    def test_local_memory_does_not_change_result(self, rng):
        coo = random_diagonal_matrix(rng, n=100, density=0.9)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        x = rng.standard_normal(100)
        y1 = CrsdSpMV(crsd, use_local_memory=True).run(x).y
        y2 = CrsdSpMV(crsd, use_local_memory=False).run(x).y
        assert np.allclose(y1, y2)

    def test_local_memory_reduces_x_traffic(self, rng):
        """With AD groups present, staging must cut global loads and add
        barriers + local traffic."""
        coo = random_diagonal_matrix(rng, n=128, offsets=(-2, -1, 0, 1, 2),
                                     density=1.0, scatter=0)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        x = rng.standard_normal(128)
        with_l = CrsdSpMV(crsd, use_local_memory=True).run(x).trace
        without = CrsdSpMV(crsd, use_local_memory=False).run(x).trace
        assert with_l.barriers > 0
        assert without.barriers == 0
        assert with_l.local_load_bytes > 0
        assert (
            with_l.global_load_requests < without.global_load_requests
        )

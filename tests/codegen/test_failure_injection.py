"""Failure injection: corrupted plans/codelets must be *caught*, not
silently produce wrong numerics.

The code generator is the riskiest component of the design (a wrong
baked constant silently corrupts results), so the defence layers —
the structural validator, the index-trace cross-check and the
functional verification in the bench runner — are themselves tested by
deliberately sabotaging a plan and asserting each layer trips.
"""

import dataclasses
import re

import numpy as np
import pytest

from repro.codegen.opencl_source import generate_opencl_source
from repro.codegen.plan import build_plan
from repro.codegen.python_codelet import generate_python_kernel
from repro.codegen.validator import OpenCLSyntaxError, validate_opencl_source
from repro.core.crsd import CRSDMatrix
from repro.core.spmv import index_trace
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def crsd(rng):
    coo = random_diagonal_matrix(rng, n=128, density=0.9, scatter=2)
    return CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=16)


def corrupt_slab_base(plan, region_idx=0, delta=1):
    """A plan whose first region points one slot off into the slab."""
    regions = list(plan.regions)
    r = regions[region_idx]
    regions[region_idx] = dataclasses.replace(r, slab_base=r.slab_base + delta)
    return dataclasses.replace(plan, regions=tuple(regions))


def corrupt_colv(plan, region_idx=0):
    """A plan whose first NAD column value is wrong by one."""
    regions = list(plan.regions)
    r = regions[region_idx]
    groups = list(r.groups)
    for i, g in enumerate(groups):
        if g.kind == "NAD":
            groups[i] = dataclasses.replace(
                g, colv=tuple(c + 1 for c in g.colv)
            )
            break
    regions[region_idx] = dataclasses.replace(r, groups=tuple(groups))
    return dataclasses.replace(plan, regions=tuple(regions))


class TestFunctionalVerificationCatches:
    def test_corrupt_slab_base_changes_result(self, crsd, rng):
        from repro.ocl.executor import Context, launch

        good = generate_python_kernel(build_plan(crsd, use_local_memory=False))
        bad = generate_python_kernel(
            corrupt_slab_base(build_plan(crsd, use_local_memory=False))
        )
        x = rng.standard_normal(crsd.ncols)
        ref = crsd.matvec(x)

        def run(kernel):
            ctx = Context()
            dv = ctx.alloc(crsd.dia_val)
            xb = ctx.alloc(x)
            yb = ctx.alloc_zeros(crsd.nrows)
            launch(kernel.dia_kernel, kernel.plan.num_groups,
                   kernel.plan.local_size, (dv, xb, yb), trace=False)
            return yb.data

        try:
            y_bad = run(bad)
        except IndexError:
            return  # the shifted base walked off the slab — caught
        assert not np.allclose(y_bad, run(good))

    def test_corrupt_colv_changes_result(self, crsd, rng):
        from repro.ocl.executor import Context, launch

        good_plan = build_plan(crsd, use_local_memory=False)
        bad = generate_python_kernel(corrupt_colv(good_plan))
        good = generate_python_kernel(good_plan)
        x = rng.standard_normal(crsd.ncols)

        def run(kernel):
            ctx = Context()
            dv = ctx.alloc(crsd.dia_val)
            xb = ctx.alloc(x)
            yb = ctx.alloc_zeros(crsd.nrows)
            launch(kernel.dia_kernel, kernel.plan.num_groups,
                   kernel.plan.local_size, (dv, xb, yb), trace=False)
            return yb.data

        assert not np.allclose(run(bad), run(good))


class TestIndexCrossCheckCatches:
    def test_corrupt_slab_base_fails_index_check(self, crsd):
        """The tests/codegen cross-check methodology: baked constants in
        the C text vs the independent index_trace formulas."""
        plan = corrupt_slab_base(build_plan(crsd, use_local_memory=False))
        src = generate_opencl_source(plan)
        pattern = re.compile(
            r"crsd_dia_val\[(\d+) \+ seg \* (\d+) \+ (\d+) \+ local_id\]"
        )
        region = plan.regions[0]
        case_src = src.split("case 0:")[1].split("case 1:")[0] \
            if "case 1:" in src else src.split("case 0:")[1]
        got = sorted(int(b) + int(d) for b, _, d in pattern.findall(case_src))
        want = sorted(e["slab_index"] for e in index_trace(crsd, region.gid_base, 0))
        assert got != want  # the corruption is visible to the checker


class TestValidatorCatchesTextCorruption:
    @pytest.mark.parametrize(
        "mutation",
        [
            lambda s: s.replace("{", "", 1),
            lambda s: s.replace("break;", "break", 1),
            lambda s: s.replace("= acc;", "= acc", 1),
            lambda s: s.replace("CLK_LOCAL_MEM_FENCE", "WRONG_FENCE", 1)
            if "CLK_LOCAL_MEM_FENCE" in s else s.replace("{", "", 1),
        ],
    )
    def test_mutated_source_rejected(self, crsd, mutation):
        src = generate_opencl_source(build_plan(crsd))
        validate_opencl_source(src)  # pristine passes
        with pytest.raises(OpenCLSyntaxError):
            validate_opencl_source(mutation(src))

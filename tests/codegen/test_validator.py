"""The structural OpenCL validator must catch generator mistakes."""

import pytest

from repro.codegen.validator import OpenCLSyntaxError, strip_comments, validate_opencl_source

GOOD = """\
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
__kernel void k(__global const double* a, __global double* y)
{
    int i = get_global_id(0);
    y[i] = a[i];
}
"""


def test_good_source_passes():
    assert validate_opencl_source(GOOD) == ["k"]


def test_unbalanced_brace():
    with pytest.raises(OpenCLSyntaxError, match="unclosed"):
        validate_opencl_source(GOOD.replace("}\n", "", 1))


def test_extra_close_paren():
    with pytest.raises(OpenCLSyntaxError):
        validate_opencl_source(GOOD.replace("a[i];", "a[i]);"))


def test_missing_kernel():
    with pytest.raises(OpenCLSyntaxError, match="__kernel"):
        validate_opencl_source("void f() { }")


def test_case_outside_switch():
    bad = GOOD.replace("y[i] = a[i];", "case 0: y[i] = a[i]; break;")
    with pytest.raises(OpenCLSyntaxError, match="switch"):
        validate_opencl_source(bad)


def test_case_without_break():
    bad = GOOD.replace(
        "y[i] = a[i];",
        "switch (i) { case 0: y[i] = a[i]; }",
    )
    with pytest.raises(OpenCLSyntaxError, match="break"):
        validate_opencl_source(bad)


def test_missing_semicolon():
    with pytest.raises(OpenCLSyntaxError, match="unterminated"):
        validate_opencl_source(GOOD.replace("y[i] = a[i];", "y[i] = a[i]"))


def test_bad_barrier_fence():
    bad = GOOD.replace("y[i] = a[i];", "barrier(SOME_FENCE);")
    with pytest.raises(OpenCLSyntaxError, match="fence"):
        validate_opencl_source(bad)


def test_double_without_pragma():
    with pytest.raises(OpenCLSyntaxError, match="fp64"):
        validate_opencl_source(GOOD.replace("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n", ""))


def test_comments_stripped():
    src = "/* hi { */ // {{{\n" + GOOD
    assert "hi" not in strip_comments(src)
    validate_opencl_source(src)

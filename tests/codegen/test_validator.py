"""The structural OpenCL validator must catch generator mistakes."""

import pytest

from repro.codegen.validator import (
    OpenCLSyntaxError,
    PythonCodeletSyntaxError,
    strip_comments,
    validate_opencl_source,
    validate_python_source,
)

GOOD = """\
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
__kernel void k(__global const double* a, __global double* y)
{
    int i = get_global_id(0);
    y[i] = a[i];
}
"""


def test_good_source_passes():
    assert validate_opencl_source(GOOD) == ["k"]


def test_unbalanced_brace():
    with pytest.raises(OpenCLSyntaxError, match="unclosed"):
        validate_opencl_source(GOOD.replace("}\n", "", 1))


def test_extra_close_paren():
    with pytest.raises(OpenCLSyntaxError):
        validate_opencl_source(GOOD.replace("a[i];", "a[i]);"))


def test_missing_kernel():
    with pytest.raises(OpenCLSyntaxError, match="__kernel"):
        validate_opencl_source("void f() { }")


def test_case_outside_switch():
    bad = GOOD.replace("y[i] = a[i];", "case 0: y[i] = a[i]; break;")
    with pytest.raises(OpenCLSyntaxError, match="switch"):
        validate_opencl_source(bad)


def test_case_without_break():
    bad = GOOD.replace(
        "y[i] = a[i];",
        "switch (i) { case 0: y[i] = a[i]; }",
    )
    with pytest.raises(OpenCLSyntaxError, match="break"):
        validate_opencl_source(bad)


def test_missing_semicolon():
    with pytest.raises(OpenCLSyntaxError, match="unterminated"):
        validate_opencl_source(GOOD.replace("y[i] = a[i];", "y[i] = a[i]"))


def test_bad_barrier_fence():
    bad = GOOD.replace("y[i] = a[i];", "barrier(SOME_FENCE);")
    with pytest.raises(OpenCLSyntaxError, match="fence"):
        validate_opencl_source(bad)


def test_double_without_pragma():
    with pytest.raises(OpenCLSyntaxError, match="fp64"):
        validate_opencl_source(GOOD.replace("#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n", ""))


def test_comments_stripped():
    src = "/* hi { */ // {{{\n" + GOOD
    assert "hi" not in strip_comments(src)
    validate_opencl_source(src)


class TestStripCommentsStringAware:
    """``strip_comments`` must not treat markers inside string literals
    as comments (and vice versa)."""

    def test_slashes_inside_string_survive(self):
        src = 'printf("a//b");\n// real comment\n'
        out = strip_comments(src)
        assert '"a//b"' in out
        assert "real comment" not in out

    def test_block_marker_inside_string_survives(self):
        src = 'char* s = "/* not a comment */"; /* gone */\n'
        out = strip_comments(src)
        assert '"/* not a comment */"' in out
        assert "gone" not in out

    def test_quote_inside_comment_does_not_open_string(self):
        src = '// it\'s fine\nint x = 1; /* "quoted" */ int y = 2;\n'
        out = strip_comments(src)
        assert "int x = 1;" in out and "int y = 2;" in out
        assert "fine" not in out and "quoted" not in out

    def test_escaped_quote_in_string(self):
        src = 'char* s = "a\\"b//c"; // tail\n'
        out = strip_comments(src)
        assert '"a\\"b//c"' in out
        assert "tail" not in out

    def test_block_comment_preserves_line_numbers(self):
        src = "int a;\n/* one\ntwo\nthree */\nint b;\n"
        out = strip_comments(src)
        assert out.count("\n") == src.count("\n")
        assert out.splitlines()[4] == "int b;"

    def test_unterminated_block_comment_consumes_rest(self):
        assert "hidden" not in strip_comments("int a; /* hidden")


class TestValidatePythonSource:
    def test_good_source(self):
        src = "def f(ctx):\n    return 1\n\ndef g(ctx):\n    return 2\n"
        assert validate_python_source(src) == ["f", "g"]

    def test_expected_names_enforced(self):
        src = "def f(ctx):\n    return 1\n"
        validate_python_source(src, expected=["f"])
        with pytest.raises(PythonCodeletSyntaxError, match="missing"):
            validate_python_source(src, expected=["f", "g"])

    def test_syntax_error(self):
        with pytest.raises(PythonCodeletSyntaxError, match="parse"):
            validate_python_source("def f(:\n")

    def test_duplicate_definition(self):
        src = "def f(ctx):\n    return 1\n\ndef f(ctx):\n    return 2\n"
        with pytest.raises(PythonCodeletSyntaxError, match="twice"):
            validate_python_source(src)

    def test_emitted_kernel_inventory(self, rng):
        from repro.codegen.plan import build_plan
        from repro.codegen.python_codelet import emit_python_source
        from repro.core.crsd import CRSDMatrix, compatible_wavefront
        from tests.conftest import random_diagonal_matrix

        coo = random_diagonal_matrix(rng, n=64, scatter=2)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        plan = build_plan(crsd)
        names = validate_python_source(emit_python_source(plan))
        assert "crsd_dia_kernel" in names
        assert "crsd_dia_kernel_batched" in names
        assert "_codelet_p0" in names

"""Cross-check the two kernel renderings against the index formulas.

The OpenCL C text and the Python codelets are generated from the same
plan; these tests verify both against the *independent* per-work-item
index arithmetic of :mod:`repro.core.spmv` (the paper's Section III-B
formulas), so a bug in the shared plan cannot hide.
"""

import re

import numpy as np
import pytest

from repro.codegen.opencl_source import generate_opencl_source
from repro.codegen.plan import build_plan
from repro.core.crsd import CRSDMatrix
from repro.core.spmv import index_trace, total_work_groups
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def crsd(rng):
    coo = random_diagonal_matrix(rng, n=120, density=0.7, scatter=3)
    return CRSDMatrix.from_coo(coo, mrows=8, wavefront_size=8)


def test_opencl_slab_expressions_match_index_trace(crsd):
    """Extract `crsd_dia_val[BASE + seg * NNZRS + DISP + local_id]` from
    the generated C and evaluate each against the formula trace."""
    src = generate_opencl_source(build_plan(crsd, use_local_memory=False))
    plan = build_plan(crsd, use_local_memory=False)
    pattern = re.compile(
        r"crsd_dia_val\[(\d+) \+ seg \* (\d+) \+ (\d+) \+ local_id\]"
    )
    cases = src.split("case ")[1:]
    assert len(cases) == len(plan.regions)
    for region, case_src in zip(plan.regions, cases):
        matches = pattern.findall(case_src)
        assert len(matches) == region.ndiags
        gid = region.gid_base  # first segment of the region
        trace = index_trace(crsd, gid, 0)
        got = sorted(int(b) + int(d) for b, _, d in matches)
        want = sorted(e["slab_index"] for e in trace)
        assert got == want


def test_every_slab_slot_loaded_exactly_once(crsd):
    """Union over all work items covers [0, slab size) bijectively."""
    seen = np.zeros(crsd.dia_val.size, dtype=int)
    for gid in range(total_work_groups(crsd)):
        for lid in range(crsd.mrows):
            for e in index_trace(crsd, gid, lid):
                seen[e["slab_index"]] += 1
    assert np.all(seen == 1)


def _expected_slab_loads(crsd):
    want = []
    for gid in range(total_work_groups(crsd)):
        for lid in range(crsd.mrows):
            want.extend(e["slab_index"] for e in index_trace(crsd, gid, lid))
    return sorted(want)


@pytest.mark.parametrize("mode", ["pergroup", "batched"])
def test_python_kernel_loads_match_trace(crsd, rng, monkeypatch, mode):
    """Instrument the simulated device and compare the set of slab
    indices the compiled kernel loads against the formula trace —
    for both execution engines."""
    from repro.gpu_kernels.crsd_runner import CrsdSpMV
    from repro.ocl.executor import BatchCtx, WorkGroupCtx

    monkeypatch.setenv("REPRO_EXECUTOR", mode)
    ctx_cls = WorkGroupCtx if mode == "pergroup" else BatchCtx
    runner = CrsdSpMV(crsd, use_local_memory=False)
    runner.prepare()
    loaded = []

    original = ctx_cls.gload

    def spy(self, buf, idx, mask=None):
        if buf.name == "crsd_dia_val":
            loaded.extend(np.asarray(idx).ravel().tolist())
        return original(self, buf, idx, mask)

    monkeypatch.setattr(ctx_cls, "gload", spy)
    runner.run(rng.standard_normal(crsd.ncols))

    assert sorted(loaded) == _expected_slab_loads(crsd)

"""Kernel plan: the baked constants must equal the Table II quantities."""

import pytest

from repro.codegen.plan import build_plan
from repro.core.crsd import CRSDMatrix


@pytest.fixture
def plan(fig2_coo):
    return build_plan(CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1))


def test_region_count(plan):
    assert len(plan.regions) == 2
    assert plan.num_groups == 3
    assert plan.local_size == 2


def test_gid_bases_are_running_nrs_sums(plan):
    assert plan.regions[0].gid_base == 0
    assert plan.regions[1].gid_base == 1


def test_slab_bases_are_running_slot_sums(plan):
    assert plan.regions[0].slab_base == 0
    assert plan.regions[1].slab_base == 10  # 1 segment x 5 diags x 2 rows


def test_group_plans_fig2(plan):
    g = plan.regions[0].groups
    assert [x.kind for x in g] == ["NAD", "AD", "NAD"]
    assert g[1].offsets == (2, 3)
    assert g[1].d_first == 1
    assert g[2].d_first == 3
    assert g[1].colv == (2, 3)  # start_row 0 + offsets

    g2 = plan.regions[1].groups
    assert g2[0].colv == (0, 1)  # start_row 2 + (-2, -1)
    assert g2[1].colv == (3,)


def test_tile_lengths(plan):
    # AD group of 2 diagonals with mrows=2 -> tile of 3
    assert plan.regions[0].max_tile_len == 3
    assert plan.max_tile_len == 3


def test_scatter_plan(plan):
    assert plan.scatter.num_rows == 1
    assert plan.scatter.width == 4


def test_local_memory_toggle(fig2_coo):
    crsd = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
    plan = build_plan(crsd, use_local_memory=False)
    assert not plan.use_local_memory


def test_nad_only_region_needs_no_tile():
    import numpy as np
    from repro.formats.coo import COOMatrix

    n = 8
    rows = np.concatenate([np.arange(n), np.arange(n - 4)])
    cols = np.concatenate([np.arange(n), np.arange(n - 4) + 4])
    coo = COOMatrix(rows, cols, np.ones(rows.size), (n, n))
    plan = build_plan(CRSDMatrix.from_coo(coo, mrows=4, wavefront_size=4))
    assert plan.max_tile_len == 0

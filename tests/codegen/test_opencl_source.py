"""OpenCL C rendering: structure, baked constants, validation."""

import re

import pytest

from repro.codegen.opencl_source import generate_opencl_source
from repro.codegen.plan import build_plan
from repro.codegen.validator import validate_opencl_source
from repro.core.crsd import CRSDMatrix


@pytest.fixture
def plan(fig2_coo):
    return build_plan(CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1))


class TestStructure:
    def test_two_kernels(self, plan):
        src = generate_opencl_source(plan)
        assert validate_opencl_source(src) == ["crsd_dia_spmv", "crsd_scatter_spmv"]

    def test_switch_over_patterns(self, plan):
        src = generate_opencl_source(plan)
        assert "switch (p)" in src
        assert "case 0:" in src and "case 1:" in src
        assert src.count("break;") >= 2

    def test_membership_condition(self, plan):
        src = generate_opencl_source(plan)
        # sum_{i<p} NRS_i boundaries: 1 then 3
        assert "if (group_id < 1) p = 0;" in src
        assert "else if (group_id < 3) p = 1;" in src

    def test_constants_baked(self, plan):
        src = generate_opencl_source(plan)
        assert "crsd_dia_val[10 + seg * 6" in src      # region 1 base/NNzRS
        assert "row = 2 + seg * 2 + local_id;" in src  # SR=2
        assert "crsd_dia_index" not in src             # nothing read at run time

    def test_local_memory_declared(self, plan):
        src = generate_opencl_source(plan)
        assert "__local double xtile[3];" in src
        assert "barrier(CLK_LOCAL_MEM_FENCE);" in src

    def test_scatter_kernel_unrolled(self, plan):
        src = generate_opencl_source(plan)
        # 4 unrolled multiply-adds over the column-major scatter arrays
        assert len(re.findall(r"acc \+= scatter_val\[\d+ \+ i\]", src)) == 4
        assert "y[scatter_rowno[i]] = acc;" in src

    def test_store_guarded_by_row_count(self, plan):
        src = generate_opencl_source(plan)
        assert "if (row < 6) y[row] = acc;" in src


class TestPrecision:
    def test_double_has_pragma(self, plan):
        src = generate_opencl_source(plan, "double")
        assert "cl_khr_fp64" in src
        assert "__global const double*" in src

    def test_single_uses_float(self, plan):
        src = generate_opencl_source(plan, "single")
        assert "__global const float*" in src
        assert "double" not in src.replace("cl_khr_fp64", "")
        validate_opencl_source(src)

    def test_unknown_precision(self, plan):
        with pytest.raises(ValueError):
            generate_opencl_source(plan, "half")


class TestNoLocalMemory:
    def test_ablation_source(self, fig2_coo):
        crsd = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        src = generate_opencl_source(build_plan(crsd, use_local_memory=False))
        assert "__local" not in src
        assert "barrier(" not in src
        validate_opencl_source(src)


class TestScaleUp:
    def test_many_regions_validate(self, rng):
        """A bigger matrix with dozens of regions still emits valid code."""
        from tests.conftest import random_diagonal_matrix

        coo = random_diagonal_matrix(rng, n=400, density=0.35, scatter=8)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=16)
        src = generate_opencl_source(build_plan(crsd))
        validate_opencl_source(src)
        assert src.count("case ") == len(crsd.regions)

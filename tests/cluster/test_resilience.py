"""Cluster resilience: replication, verified failover, hedged retries,
the cluster admission tier, and the typed guard surface."""

import numpy as np
import pytest

import repro
from repro.cluster import ClusterError, ClusterRouter, HedgePolicy
from repro.resilience.engine import Policy
from repro.serve import (
    ClusterAdmission,
    ClusterAdmissionPolicy,
    serve_session,
)
from tests.cluster.test_cluster_engine import (
    SCALE,
    _single_engine_ys,
    _traffic,
)

MATRICES = ("crystk03", "ecology2", "wang3", "kim1")


class TestReplicatedPlacement:
    def test_replicas_land_on_distinct_ring_successors(self):
        pairs = _traffic(MATRICES, "double")
        cluster = serve_session(cluster=4, size_scale=SCALE, replicas=2)
        for coo, x in pairs:
            cluster.submit(coo, x, at=0.0)
        cluster.run()
        table = cluster.placement_table()
        assert len(table) == len(MATRICES)
        for row in table:
            assert len(row["devices"]) == 2
            assert len(set(row["devices"])) == 2
            assert row["home"] == row["devices"][0]
            # replicas are the ring successors of the home
            expected = cluster.router.successors(row["pattern"], 2)
            assert tuple(row["devices"]) == tuple(expected)
        assert cluster.stats()["cluster"]["replicas"] == 2

    def test_value_updates_fan_out_to_all_replicas(self):
        """Every pattern's values are pushed to each replica once, so
        a read landing on a replica never finds it cold."""
        pairs = _traffic(MATRICES, "double")
        cluster = serve_session(cluster=4, size_scale=SCALE, replicas=3)
        for coo, x in pairs:
            cluster.submit(coo, x, at=0.0)
        cluster.run()
        res = cluster.stats()["cluster"]["resilience"]
        # replicas-1 fan-outs per distinct matrix identity
        assert res["value_fanouts"] == len(MATRICES) * 2
        for row in cluster.placement_table():
            for dev in row["devices"]:
                # every replica holds a prepared plan — never cold
                assert len(cluster.devices[dev].engine.cache) > 0

    def test_reads_load_balance_deterministically(self):
        """Same-matrix reads alternate across the live replica set by
        request id — both replicas serve, and a rerun routes every
        request identically."""
        pairs = _traffic(("kim1",), "double")

        def run_once():
            cluster = serve_session(cluster=4, size_scale=SCALE,
                                    replicas=2)
            at = 0.0
            for _ in range(6):
                cluster.submit(*pairs[0], at=at)
                at += 2e-4
            cluster.run()
            served = {row["device"]: row["served"]
                      for row in cluster.load_table()}
            replicas = tuple(cluster.placement_table()[0]["devices"])
            return served, replicas

        served_a, replicas_a = run_once()
        served_b, replicas_b = run_once()
        assert served_a == served_b and replicas_a == replicas_b
        assert served_a[replicas_a[0]] == 3
        assert served_a[replicas_a[1]] == 3

    def test_replicated_serving_bit_identical(self):
        pairs = _traffic(MATRICES, "double")
        expected = _single_engine_ys(pairs, "double")
        cluster = serve_session(cluster=3, size_scale=SCALE, replicas=2)
        rids = [cluster.submit(coo, x, at=0.0) for coo, x in pairs]
        by_rid = {r.request_id: r for r in cluster.run()}
        for rid, ref in zip(rids, expected):
            assert by_rid[rid].served
            assert np.array_equal(by_rid[rid].y, ref)

    def test_replicas_validated(self):
        with pytest.raises(ValueError, match="replicas"):
            serve_session(cluster=2, replicas=0)
        with pytest.raises(ValueError, match="cluster"):
            serve_session(replicas=2)


class TestVerifiedFailover:
    def test_failover_bit_identity_events_reconcile(self):
        """Killing a home device mid-run serves everything from the
        replicas, bit-identical — and the obs event stream reconciles
        exactly with the resilience counters."""
        pairs = _traffic(MATRICES, "double")
        expected = _single_engine_ys(pairs * 3, "double")
        cluster = serve_session(cluster=3, size_scale=SCALE, replicas=2)
        rids = []
        at = 0.0
        for _ in range(3):
            for coo, x in pairs:
                rids.append(cluster.submit(coo, x, at=at))
                at += 1e-4
        cluster.fail_device(0, at_s=5e-4, kind="device_oom")
        with repro.observe() as sess:
            by_rid = {r.request_id: r for r in cluster.run()}

        assert len(by_rid) == len(rids)
        for rid, ref in zip(rids, expected):
            assert by_rid[rid].served
            assert np.array_equal(by_rid[rid].y, ref)

        res = cluster.stats()["cluster"]["resilience"]
        events = [s for s in sess.spans if s.name == "cluster.failover"]
        assert len(events) == res["failovers"]
        assert sum(e.attrs["backoff_s"] for e in events) == \
            pytest.approx(res["failover_backoff_s"])
        for e in events:
            assert 1 <= e.attrs["attempt"] <= Policy().max_attempts

    def test_failover_backoff_lands_in_latency(self):
        """A request evacuated off a dead home keeps its *original*
        arrival in the report, so the failover backoff and downtime
        are visible in its latency (not hidden by retiming)."""
        from repro.core.serialize import fingerprints

        pairs = _traffic(("kim1",), "double")
        cluster = serve_session(cluster=2, size_scale=SCALE, replicas=2)
        rid = cluster.submit(*pairs[0], at=0.0)
        home = cluster.router.place(fingerprints(pairs[0][0]).pattern)
        cluster.fail_device(home, at_s=0.0)
        with repro.observe() as sess:
            (result,) = [r for r in cluster.run()
                         if r.request_id == rid]
        events = [s for s in sess.spans if s.name == "cluster.failover"]
        assert len(events) == 1 and events[0].attrs["request"] == rid
        backoff = events[0].attrs["backoff_s"]
        assert backoff == Policy().backoff_s(1) > 0.0
        assert result.served
        assert result.arrival_s == 0.0
        assert result.latency_s == pytest.approx(result.finish_s)
        assert result.latency_s >= backoff

    def test_failover_attempts_bounded_by_policy(self):
        res_stats = None
        pairs = _traffic(MATRICES, "double")
        cluster = serve_session(cluster=4, size_scale=SCALE, replicas=3)
        at = 0.0
        for _ in range(3):
            for coo, x in pairs:
                cluster.submit(coo, x, at=at)
                at += 1e-4
        cluster.fail_device(0, at_s=2e-4)
        cluster.fail_device(1, at_s=6e-4)
        with repro.observe() as sess:
            results = cluster.run()
        res_stats = cluster.stats()["cluster"]["resilience"]
        assert all(r.served for r in results)
        for e in (s for s in sess.spans if s.name == "cluster.failover"):
            assert e.attrs["attempt"] <= Policy().max_attempts
        assert res_stats["failovers"] == len(
            [s for s in sess.spans if s.name == "cluster.failover"])


class TestGuards:
    """Satellite: typed ClusterError on bad fail/rejoin/add targets."""

    def _cluster(self):
        return serve_session(cluster=2, size_scale=SCALE)

    def test_cluster_error_is_value_error(self):
        assert issubclass(ClusterError, ValueError)

    def test_fail_unknown_device(self):
        with pytest.raises(ClusterError, match="no such device: 7"):
            self._cluster().fail_device(7, at_s=0.0)
        with pytest.raises(ClusterError):
            self._cluster().fail_device(-1, at_s=0.0)

    def test_fail_already_dead_device(self):
        cluster = self._cluster()
        cluster.fail_device(0, at_s=0.0)
        cluster.run()
        with pytest.raises(ClusterError, match="already dead"):
            cluster.fail_device(0, at_s=1e-3)

    def test_fail_dead_device_with_pending_rejoin_ok(self):
        cluster = self._cluster()
        cluster.fail_device(0, at_s=0.0)
        cluster.run()
        cluster.rejoin_device(0, at_s=1e-3)
        cluster.fail_device(0, at_s=2e-3)  # flap again: legal

    def test_fail_unknown_kind(self):
        with pytest.raises(ValueError, match="cosmic-ray"):
            self._cluster().fail_device(0, at_s=0.0, kind="cosmic-ray")

    def test_add_alive_device(self):
        with pytest.raises(ClusterError, match="already alive"):
            self._cluster().add_device(1)

    def test_add_out_of_range_device(self):
        with pytest.raises(ClusterError, match="cannot add"):
            self._cluster().add_device(9)

    def test_rejoin_alive_device(self):
        with pytest.raises(ClusterError, match="alive"):
            self._cluster().rejoin_device(1, at_s=1e-3)

    def test_add_device_restores_dead_one(self):
        pairs = _traffic(("kim1",), "double")
        cluster = self._cluster()
        cluster.fail_device(0, at_s=0.0)
        cluster.run()
        assert cluster.devices[0].state == "dead"
        cluster.add_device(0)
        assert cluster.devices[0].state == "rejoined"
        rid = cluster.submit(*pairs[0], at=1e-3)
        by_rid = {r.request_id: r for r in cluster.run()}
        assert by_rid[rid].served

    def test_add_brand_new_device_grows_ring(self):
        cluster = self._cluster()
        new = cluster.add_device()
        assert new == 2
        assert cluster.num_devices == 3
        assert sorted(cluster.router.alive) == [0, 1, 2]


class TestHedgedRetries:
    def _hedged_run(self):
        pairs = _traffic(MATRICES, "double")
        hedge = HedgePolicy(queue_depth=1,
                            backoff=Policy(max_attempts=3))
        cluster = serve_session(cluster=4, size_scale=SCALE,
                                replicas=2, hedge=hedge)
        rids = []
        for _ in range(4):
            for coo, x in pairs:
                rids.append(cluster.submit(coo, x, at=0.0))
        with repro.observe() as sess:
            by_rid = {r.request_id: r for r in cluster.run()}
        return cluster, sess, rids, by_rid, hedge

    def test_hedges_bounded_by_policy_attempts(self):
        cluster, sess, rids, by_rid, hedge = self._hedged_run()
        events = [s for s in sess.spans if s.name == "cluster.hedge"]
        assert events, "expected hedging under a deep backlog"
        per_request = {}
        for e in events:
            per_request[e.attrs["request"]] = \
                per_request.get(e.attrs["request"], 0) + 1
            assert e.attrs["reason"] in ("slow", "timeout", "deadline",
                                         "queue")
        assert hedge.max_hedges == hedge.backoff.max_attempts - 1
        for rid, n in per_request.items():
            assert n <= hedge.max_hedges

    def test_hedge_counters_reconcile_with_events(self):
        cluster, sess, rids, by_rid, hedge = self._hedged_run()
        res = cluster.stats()["cluster"]["resilience"]
        events = [s for s in sess.spans if s.name == "cluster.hedge"]
        assert res["hedges"] == len(events)
        assert sum(e.attrs["backoff_s"] for e in events) == \
            pytest.approx(res["hedge_backoff_s"])
        # fault-free run: every hedge copy either wins, is cancelled
        # while queued, or completes wasted (and is digest-verified)
        assert res["hedge_cancelled"] + res["hedge_wasted"] \
            == res["hedges"]
        assert res["hedge_wins"] <= res["hedges"]
        assert res["hedge_verified"] <= res["hedge_wasted"]
        assert res["hedge_divergences"] == 0

    def test_hedged_serving_bit_identical_and_deterministic(self):
        pairs = _traffic(MATRICES, "double")
        expected = _single_engine_ys(pairs * 4, "double")
        _, _, rids, by_rid, _ = self._hedged_run()
        for rid, ref in zip(rids, expected):
            assert by_rid[rid].served
            assert np.array_equal(by_rid[rid].y, ref)
        cluster2, _, rids2, by_rid2, _ = self._hedged_run()
        assert [(r, by_rid[r].finish_s, by_rid[r].status)
                for r in rids] == \
            [(r, by_rid2[r].finish_s, by_rid2[r].status)
             for r in rids2]
        res2 = cluster2.stats()["cluster"]["resilience"]
        assert res2["hedge_divergences"] == 0


class TestClusterAdmissionTier:
    def test_reject_new_over_the_inflight_bound(self):
        door = ClusterAdmission(ClusterAdmissionPolicy(
            max_inflight=2, overflow="reject-new", fairness=False))
        assert door.admit("a", 0) == "accept"
        assert door.admit("a", 1) == "accept"
        assert door.admit("a", 2) == "reject"
        assert (door.accepted, door.rejected) == (2, 1)
        door.release("a")
        assert door.admit("a", 1) == "accept"

    def test_shed_to_replica_redirects_instead_of_dropping(self):
        door = ClusterAdmission(ClusterAdmissionPolicy(
            max_inflight=1, overflow="shed-to-replica", fairness=False))
        assert door.admit("a", 0) == "accept"
        assert door.admit("a", 1) == "shed-to-replica"
        assert door.shed_to_replica == 1 and door.rejected == 0

    def test_fairness_rejects_over_share_tenant(self):
        """A tenant already holding its fair share is rejected at
        overflow even under shed-to-replica; an under-share tenant is
        still shed sideways."""
        door = ClusterAdmission(ClusterAdmissionPolicy(
            max_inflight=4, overflow="shed-to-replica", fairness=True))
        for _ in range(4):
            assert door.admit("hog", 0) == "accept"
        door.admit("meek", 3)  # register the second tenant
        assert door.fair_share() == 2.0
        assert door.admit("hog", 4) == "reject"
        assert door.admit("meek", 4) == "shed-to-replica"
        t = door.to_dict()["per_tenant"]
        assert t["hog"]["rejected"] == 1
        assert t["meek"]["shed_to_replica"] == 1

    def test_front_door_on_the_cluster(self):
        """Over the cluster-wide bound, arrivals are rejected at the
        front door with a terminal result, the counters conserve
        arrivals, and obs records each shed decision."""
        pairs = _traffic(MATRICES, "double")
        cluster = serve_session(
            cluster=2, size_scale=SCALE,
            cluster_admission=ClusterAdmissionPolicy(
                max_inflight=2, overflow="reject-new", fairness=False))
        rids = []
        with repro.observe() as sess:
            for _ in range(3):
                for coo, x in pairs:
                    rids.append(cluster.submit(coo, x, at=0.0))
            by_rid = {r.request_id: r for r in cluster.run()}
        tier = cluster.stats()["cluster"]["admission_tier"]
        statuses = [by_rid[r].status for r in rids]
        assert tier["rejected"] == statuses.count("rejected") > 0
        assert tier["accepted"] == statuses.count("served")
        assert tier["accepted"] + tier["rejected"] == len(rids)
        sheds = [s for s in sess.spans if s.name == "cluster.shed"]
        assert len(sheds) == tier["rejected"]
        assert all(s.attrs["action"] == "reject" for s in sheds)

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="overflow"):
            ClusterAdmissionPolicy(overflow="drop-oldest")
        with pytest.raises(ValueError, match="max_inflight"):
            ClusterAdmissionPolicy(max_inflight=0)


class TestRouterAdd:
    def test_add_restores_exact_prior_placement(self):
        """remove(d) then add(d) is an identity on the mapping — the
        incremental invariant in both directions."""
        router = ClusterRouter(4)
        keys = [f"pat{i:03d}" for i in range(200)]
        before = {k: router.place(k) for k in keys}
        router.remove(2)
        router.add(2)
        assert {k: router.place(k) for k in keys} == before

    def test_add_new_device_moves_only_ring_adjacent_keys(self):
        router = ClusterRouter(3)
        keys = [f"pat{i:03d}" for i in range(200)]
        before = {k: router.place(k) for k in keys}
        router.add(3)
        after = {k: router.place(k) for k in keys}
        moved = {k for k in keys if before[k] != after[k]}
        assert moved, "a new device should claim some keys"
        assert all(after[k] == 3 for k in moved)

    def test_add_guards(self):
        router = ClusterRouter(2)
        with pytest.raises(ValueError, match="already alive"):
            router.add(1)
        with pytest.raises(ValueError, match=">= 0"):
            router.add(-1)

"""Multi-tenant loadgen through the cluster, CLI, and trajectories."""

import json

import pytest

from repro.cli import main
from repro.serve import serve_session
from repro.serve.loadgen import (
    CLUSTER_TRAJECTORY_SCHEMA,
    LoadConfig,
    append_serve_trajectory,
    report_json,
    run_loadgen,
)
from repro.validation import ReproDeprecationWarning

#: small, fast config reused across tests
FAST = dict(scale=0.02, num_requests=24, matrices=("kim1", "wang3"))


def _cluster(devices=3, **kwargs):
    return serve_session(cluster=devices, size_scale=FAST["scale"],
                         keep_y="digest", split_threshold_rows=1,
                         **kwargs)


class TestClusterLoadgen:
    def test_same_seed_same_bytes(self):
        """Same seed + matrix set → byte-identical report across two
        cluster runs (placement, splits, rebalancing all included)."""
        a = run_loadgen(LoadConfig(seed=3, **FAST), engine=_cluster())
        b = run_loadgen(LoadConfig(seed=3, **FAST), engine=_cluster())
        assert report_json(a) == report_json(b)

    def test_cluster_checksum_matches_single_engine(self):
        """The digest-fold checksum is engine-agnostic: a cluster run
        certifies bit-identical ys against the single-engine run."""
        cfg = LoadConfig(seed=3, **FAST)
        single = run_loadgen(cfg)
        clustered = run_loadgen(cfg, engine=_cluster())
        assert clustered.y_checksum == single.y_checksum
        assert single.schema == "repro-serve-report/v1"
        assert clustered.schema == "repro-cluster-report/v1"

    def test_device_loss_run_serves_everything(self):
        """A mid-run loss changes timing but zero answers: the
        checksum still matches the single-engine run."""
        cfg = LoadConfig(seed=3, **FAST)
        single = run_loadgen(cfg)
        engine = _cluster()
        engine.fail_device(0, at_s=3e-5)
        lossy = run_loadgen(cfg, engine=engine)
        assert lossy.y_checksum == single.y_checksum
        assert lossy.to_dict()["requests"]["served"] == FAST["num_requests"]

    def test_tenants_extend_population_but_share_patterns(self):
        cfg = LoadConfig(seed=3, tenants=3, **FAST)
        engine = _cluster()
        report = run_loadgen(cfg, engine=engine)
        assert report.y_checksum != run_loadgen(
            LoadConfig(seed=3, **FAST)).y_checksum
        # 2 suite patterns regardless of tenants: certificates are
        # pattern-keyed, so the store holds one per suite matrix
        store = engine.stats()["cluster"]["cert_store"]
        assert store["certificates"] <= len(FAST["matrices"])
        assert cfg.to_dict()["tenants"] == 3

    def test_tenants_validated(self):
        with pytest.raises(ValueError):
            LoadConfig(tenants=0)


class TestDeprecatedPositionalEngine:
    def test_positional_engine_warns_and_works(self):
        cfg = LoadConfig(seed=3, **FAST)
        keyword = run_loadgen(cfg, engine=serve_session())
        with pytest.warns(ReproDeprecationWarning):
            positional = run_loadgen(cfg, serve_session())
        assert positional.y_checksum == keyword.y_checksum

    def test_engine_passed_twice_rejected(self):
        with pytest.raises(TypeError):
            run_loadgen(LoadConfig(seed=3, **FAST), serve_session(),
                        engine=serve_session())

    def test_engine_with_construction_args_rejected(self):
        from repro.serve import BatchConfig

        with pytest.raises(TypeError):
            run_loadgen(LoadConfig(seed=3, **FAST),
                        engine=serve_session(),
                        batch=BatchConfig())


class TestClusterTrajectory:
    def test_cluster_schema_envelope(self, tmp_path):
        traj = tmp_path / "BENCH_cluster.json"
        report = run_loadgen(LoadConfig(seed=3, **FAST), engine=_cluster())
        append_serve_trajectory(report, traj,
                                schema=CLUSTER_TRAJECTORY_SCHEMA)
        payload = json.loads(traj.read_text())
        assert payload["schema"] == CLUSTER_TRAJECTORY_SCHEMA
        (entry,) = payload["entries"]
        assert entry["schema"] == CLUSTER_TRAJECTORY_SCHEMA
        assert entry["y_checksum"] == report.y_checksum
        assert entry["cluster"]["num_devices"] == 3

    def test_entries_identical_across_runs_modulo_timestamp(self, tmp_path):
        traj = tmp_path / "BENCH_cluster.json"
        for _ in range(2):
            report = run_loadgen(LoadConfig(seed=3, **FAST),
                                 engine=_cluster())
            append_serve_trajectory(report, traj,
                                    schema=CLUSTER_TRAJECTORY_SCHEMA)
        a, b = json.loads(traj.read_text())["entries"]
        a.pop("timestamp"), b.pop("timestamp")
        assert a == b


class TestClusterCli:
    LOADGEN = ["loadgen", "--scale", "0.02", "--requests", "16",
               "--matrices", "kim1,wang3", "--devices", "3",
               "--split-rows", "1", "--tenants", "2"]

    def test_loadgen_devices_byte_reproducible(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(self.LOADGEN + ["-o", str(a)]) == 0
        assert main(self.LOADGEN + ["-o", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["schema"] == "repro-cluster-report/v1"
        assert payload["cluster"]["num_devices"] == 3

    def test_loadgen_devices_trajectory_schema(self, tmp_path):
        traj = tmp_path / "BENCH_cluster.json"
        assert main(self.LOADGEN + ["--trajectory", str(traj)]) == 0
        payload = json.loads(traj.read_text())
        assert payload["schema"] == CLUSTER_TRAJECTORY_SCHEMA

    def test_loadgen_fail_device(self, tmp_path, capsys):
        out = tmp_path / "loss.json"
        assert main(self.LOADGEN + ["--fail-device", "0",
                                    "--fail-at-us", "30",
                                    "-o", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["requests"]["served"] == 16
        (reb,) = payload["cluster"]["rebalances"]
        assert reb["device"] == 0

    def test_split_rows_requires_devices(self, capsys):
        assert main(["loadgen", "--scale", "0.02", "--requests", "4",
                     "--split-rows", "1"]) == 2
        assert "--devices" in capsys.readouterr().err

    def test_serve_devices(self, capsys):
        assert main(["serve", "kim1", "--scale", "0.02", "--requests",
                     "8", "--devices", "2"]) == 0
        out = capsys.readouterr().out
        assert "served 8/8" in out
        assert "cluster 2 devices" in out

    def test_cluster_status_tables(self, capsys):
        assert main(["cluster", "status", "--devices", "3", "--requests",
                     "12", "--scale", "0.02",
                     "--matrices", "kim1,wang3"]) == 0
        out = capsys.readouterr().out
        assert "placement:" in out
        assert "load:" in out

    def test_cluster_status_json(self, capsys):
        assert main(["cluster", "status", "--devices", "3", "--requests",
                     "12", "--scale", "0.02", "--matrices", "kim1,wang3",
                     "--split-rows", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["load"]) == 3
        assert payload["placement"]
        assert payload["cluster"]["split_dispatches"] >= 1

    def test_analyze_devices_alias(self, capsys):
        assert main(["analyze", "kim1", "--scale", "0.02",
                     "--devices", "2"]) == 0
        assert "2-way row-block plan certified" in capsys.readouterr().out

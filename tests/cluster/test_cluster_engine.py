"""Cluster serving: bit-identity, certified splits, halo accounting."""

import numpy as np
import pytest

import repro
from repro.cluster.halo import shard_halo_elements
from repro.matrices.suite23 import get_spec
from repro.serve import serve_session
from repro.serve.engine import Engine, ServeEngine

#: the acceptance sweep population: eight structural families
SWEEP_MATRICES = ("crystk03", "s3dkt3m2", "ecology2", "wang3", "kim1",
                  "Lin", "nemeth22", "s80_80_50")
SCALE = 0.01


def _traffic(names, precision, seed=0):
    """Deterministic (matrix, x) request pairs, one per suite name."""
    rng = np.random.default_rng(seed)
    pairs = []
    for name in names:
        coo = get_spec(name).generate(scale=SCALE, seed=0)
        pairs.append((coo, rng.standard_normal(coo.ncols)))
    return pairs


def _single_engine_ys(pairs, precision):
    """Reference: the same traffic through one ServeEngine."""
    engine = serve_session(precision=precision, size_scale=SCALE)
    rids = [engine.submit(coo, x, at=0.0) for coo, x in pairs]
    by_rid = {r.request_id: r for r in engine.run()}
    return [by_rid[rid].y for rid in rids]


class TestBitIdentity:
    @pytest.mark.parametrize("devices", [2, 4])
    @pytest.mark.parametrize("precision", ["double", "single"])
    def test_cluster_equals_single_engine(self, devices, precision):
        """Cluster-served y is bit-for-bit the single-engine y for the
        full sweep population, on 2 and 4 devices, both precisions —
        split serving included (threshold 1 row splits everything the
        certifier accepts; declines fall back to whole-matrix home
        serving, which must be bit-identical too)."""
        pairs = _traffic(SWEEP_MATRICES, precision)
        expected = _single_engine_ys(pairs, precision)

        cluster = serve_session(cluster=devices, precision=precision,
                                size_scale=SCALE, split_threshold_rows=1)
        rids = [cluster.submit(coo, x, at=0.0) for coo, x in pairs]
        by_rid = {r.request_id: r for r in cluster.run()}
        for rid, ref in zip(rids, expected):
            got = by_rid[rid]
            assert got.served
            assert got.y.dtype == ref.dtype
            assert np.array_equal(got.y, ref)

    def test_split_requests_actually_split(self):
        cluster = serve_session(cluster=3, size_scale=SCALE,
                                split_threshold_rows=1)
        for coo, x in _traffic(("kim1", "wang3"), "double"):
            cluster.submit(coo, x, at=0.0)
        cluster.run()
        stats = cluster.stats()["cluster"]
        assert stats["split_dispatches"] >= 1
        assert stats["halo"]["total_bytes"] > 0


class TestCertificateGating:
    def test_uncertified_plan_never_activates(self, monkeypatch):
        """When every certification declines, no shard runner is built
        — requests fall back to whole-matrix serving on their home
        device and still serve correctly."""
        import repro.analyze.sharding as sharding
        from repro.analyze.sharding import ShardCertificate

        def declined(matrix, shard_plan, **kwargs):
            return ShardCertificate(ok=False,
                                    num_shards=len(shard_plan.shards))

        monkeypatch.setattr(sharding, "certify_shard_plan", declined)
        pairs = _traffic(("kim1",), "double")
        cluster = serve_session(cluster=2, size_scale=SCALE,
                                split_threshold_rows=1)
        rid = cluster.submit(*pairs[0], at=0.0)
        by_rid = {r.request_id: r for r in cluster.run()}
        stats = cluster.stats()["cluster"]
        assert stats["split_dispatches"] == 0
        assert stats["split_declines"] >= 1
        assert by_rid[rid].served
        ref = _single_engine_ys(pairs, "double")[0]
        assert np.array_equal(by_rid[rid].y, ref)

    def test_cert_store_shared_across_devices(self):
        """The certificate is proven once; every other device's
        activation is a counted cross-device reuse."""
        pairs = _traffic(("kim1",), "double")
        cluster = serve_session(cluster=3, size_scale=SCALE,
                                split_threshold_rows=1)
        for _ in range(4):
            cluster.submit(*pairs[0], at=0.0)
        cluster.run()
        store = cluster.stats()["cluster"]["cert_store"]
        assert store["certificates"] == 1
        assert store["cross_device_reuses"] >= 1


class TestHaloAccounting:
    def test_bytes_match_certificate_widths(self):
        """Shipped halo bytes are exactly the certificate's declared
        [halo_lo, halo_hi) widths minus the device-owned row block —
        per shard (obs events) and in total (stats)."""
        pairs = _traffic(("kim1",), "double")
        n_requests = 3
        cluster = serve_session(cluster=2, size_scale=SCALE,
                                split_threshold_rows=1)
        with repro.observe() as sess:
            for _ in range(n_requests):
                cluster.submit(*pairs[0], at=0.0)
            cluster.run()

        placements = cluster.placement_table()
        assert len(placements) == 1 and placements[0]["split"]
        cert = cluster._placements[placements[0]["pattern"]].cert
        per_shard = {spec.index: shard_halo_elements(spec) * 8
                     for spec in cert.shard_plan.shards if spec.num_rows}

        events = [s for s in sess.spans if s.name == "cluster.halo_exchange"]
        assert len(events) == n_requests * len(per_shard)
        for ev in events:
            assert ev.attrs["bytes"] == per_shard[ev.attrs["shard"]]

        halo = cluster.stats()["cluster"]["halo"]
        assert halo["total_bytes"] == n_requests * sum(per_shard.values())


class TestEngineProtocol:
    def test_both_engines_satisfy_protocol(self):
        assert isinstance(serve_session(), Engine)
        assert isinstance(serve_session(cluster=2), Engine)
        assert isinstance(serve_session(), ServeEngine)

    def test_facade_validation(self):
        with pytest.raises(ValueError):
            serve_session(cluster=0)
        with pytest.raises(ValueError):
            serve_session(split_threshold_rows=1)  # needs cluster=N
        with pytest.raises(ValueError):
            serve_session(cluster=2, cache=repro.PlanCache())

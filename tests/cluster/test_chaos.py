"""Multi-fault chaos: schedules, stragglers, flapping, the gate."""

import json

import pytest

import repro
from repro.resilience.chaos import (
    SCHEDULE_KINDS,
    ChaosAction,
    ChaosSchedule,
    default_cluster_schedule,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    INJECTABLE_FAULT_KINDS,
    FaultSpec,
)
from repro.serve import LoadConfig, report_json, run_loadgen, serve_session
from tests.cluster.test_cluster_engine import SCALE, _traffic

MATRICES = ("crystk03", "ecology2", "wang3", "kim1")


class TestFaultVocabulary:
    def test_cluster_kinds_recognised_but_not_injectable(self):
        assert "device_slow" in FAULT_KINDS
        assert "device_flap" in FAULT_KINDS
        assert "device_slow" not in INJECTABLE_FAULT_KINDS
        assert "device_flap" not in INJECTABLE_FAULT_KINDS

    def test_faultspec_rejects_cluster_level_kinds(self):
        for kind in ("device_slow", "device_flap"):
            with pytest.raises(ValueError, match="ChaosSchedule"):
                FaultSpec(site="launch:*", kind=kind, probability=1.0)

    def test_fail_device_accepts_flap_kind(self):
        cluster = serve_session(cluster=2, size_scale=SCALE)
        cluster.fail_device(0, at_s=0.0, kind="device_flap")
        cluster.run()
        assert cluster.devices[0].state == "dead"


class TestChaosSchedule:
    def test_action_validation_and_roundtrip(self):
        action = ChaosAction(kind="device_slow", device=1, at_s=1e-4,
                             duration_s=2e-4, factor=8.0)
        assert ChaosAction.from_dict(action.to_dict()) == action
        with pytest.raises(ValueError, match="kind"):
            ChaosAction(kind="cosmic-ray", device=0, at_s=0.0)
        schedule = ChaosSchedule(actions=(action,))
        assert ChaosSchedule.from_dict(schedule.to_dict()) == schedule

    def test_default_schedule_is_seed_deterministic(self):
        a = default_cluster_schedule(4, seed=7)
        b = default_cluster_schedule(4, seed=7)
        assert a == b
        kinds = {act.kind for act in a.actions}
        assert "device_slow" in kinds and "device_flap" in kinds
        assert "device_oom" in kinds  # >= 3 devices adds a hard kill
        assert {act.kind for act in a.actions} <= set(SCHEDULE_KINDS)
        assert default_cluster_schedule(4, seed=1) != a

    def test_default_schedule_needs_a_failover_target(self):
        with pytest.raises(ValueError):
            default_cluster_schedule(1)

    def test_apply_requires_a_cluster_engine(self):
        config = LoadConfig(seed=0, scale=SCALE, num_requests=4,
                            matrices=MATRICES)
        with pytest.raises(TypeError, match="cluster"):
            run_loadgen(config,
                        chaos=default_cluster_schedule(2, seed=0))


class TestStraggler:
    def test_slow_window_scales_service_and_recovers(self):
        pairs = _traffic(("kim1",), "double")

        def finish(slow):
            cluster = serve_session(cluster=2, size_scale=SCALE)
            if slow:
                cluster.slow_device(0, at_s=0.0, duration_s=1.0,
                                    factor=16.0)
                cluster.slow_device(1, at_s=0.0, duration_s=1.0,
                                    factor=16.0)
            rid = cluster.submit(*pairs[0], at=1e-5)
            with repro.observe() as sess:
                by_rid = {r.request_id: r for r in cluster.run()}
            return cluster, sess, by_rid[rid]

        _, _, fast = finish(slow=False)
        cluster, sess, slow = finish(slow=True)
        assert slow.served and fast.served
        assert slow.latency_s > fast.latency_s
        events = [s for s in sess.spans if s.name == "cluster.slow"]
        phases = [(e.attrs["device"], e.attrs["phase"]) for e in events]
        assert (0, "start") in phases and (0, "end") in phases
        for dev in cluster.devices:  # windows closed: scale restored
            assert dev.engine.service_scale == 1.0


class TestFlapAndRejoin:
    def test_flap_rejoins_with_ring_adjacent_moves_only(self):
        """A flapped device dies, rejoins with a fresh engine, and the
        restored ring moves only ring-adjacent patterns (the
        incremental re-placement invariant, pinned)."""
        pairs = _traffic(MATRICES, "double")
        cluster = serve_session(cluster=3, size_scale=SCALE)
        at = 0.0
        for _ in range(4):
            for coo, x in pairs:
                cluster.submit(coo, x, at=at)
                at += 1e-4
        cluster.fail_device(1, at_s=3e-4, kind="device_flap")
        cluster.rejoin_device(1, at_s=9e-4)
        with repro.observe() as sess:
            results = cluster.run()
        assert all(r.served for r in results)

        stats = cluster.stats()["cluster"]
        kinds = [r["kind"] for r in stats["rebalances"]]
        assert kinds == ["device_flap", "rejoin"]
        rejoin = stats["rebalances"][1]
        assert rejoin["ring_adjacent_only"] is True
        assert rejoin["moved_requests"] == 0
        assert sorted(stats["alive"]) == [0, 1, 2]
        assert cluster.devices[1].state == "rejoined"
        assert [s.attrs["device"] for s in sess.spans
                if s.name == "cluster.rejoin"] == [1]

    def test_rejoined_device_serves_new_traffic(self):
        pairs = _traffic(("kim1", "wang3"), "double")
        cluster = serve_session(cluster=2, size_scale=SCALE)
        cluster.fail_device(0, at_s=0.0, kind="device_flap")
        cluster.rejoin_device(0, at_s=1e-4)
        cluster.run()
        rids = [cluster.submit(coo, x, at=1e-3) for coo, x in pairs]
        by_rid = {r.request_id: r for r in cluster.run()}
        assert all(by_rid[rid].served for rid in rids)
        served = {row["device"]: row["served"]
                  for row in cluster.load_table()}
        assert sum(served.values()) == len(rids)

    def test_state_column_in_load_table(self):
        cluster = serve_session(cluster=3, size_scale=SCALE)
        cluster.fail_device(0, at_s=0.0)
        cluster.fail_device(1, at_s=0.0, kind="device_flap")
        cluster.rejoin_device(1, at_s=1e-4)
        cluster.run()
        states = {row["device"]: row["state"]
                  for row in cluster.load_table()}
        assert states == {0: "dead", 1: "rejoined", 2: "live"}


class TestChaosGate:
    def _config(self):
        return LoadConfig(seed=3, scale=0.01, num_requests=24,
                          matrices=MATRICES)

    def _chaos_report(self):
        engine = serve_session(cluster=4, size_scale=0.01,
                               keep_y="digest", replicas=2)
        return run_loadgen(self._config(), engine=engine,
                           chaos=default_cluster_schedule(
                               4, seed=3, at_s=1e-4))

    def test_zero_wrong_answers_under_multi_fault_schedule(self):
        reference = run_loadgen(self._config())
        report = self._chaos_report()
        assert len(report.served) == len(reference.served) == 24
        assert report.y_checksum == reference.y_checksum
        res = report.stats["cluster"]["resilience"]
        assert res["hedge_divergences"] == 0
        assert report.extra["chaos_schedule"] == \
            default_cluster_schedule(4, seed=3, at_s=1e-4).to_dict()

    def test_report_byte_reproducible(self):
        a = report_json(self._chaos_report())
        b = report_json(self._chaos_report())
        assert a == b
        payload = json.loads(a)
        assert payload["chaos_schedule"]["actions"]
        assert payload["cluster"]["rebalances"]


class TestChaosCli:
    def test_cluster_chaos_gate_passes_and_is_byte_stable(self, tmp_path):
        from repro.cli import main

        argv = ["cluster", "chaos", "--devices", "3", "--replicas", "2",
                "--seed", "5", "--requests", "16", "--scale", "0.01",
                "--chaos-at-us", "100",
                "--matrices", ",".join(MATRICES)]
        out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
        traj = tmp_path / "BENCH_chaos.json"
        assert main(argv + ["-o", str(out1),
                            "--trajectory", str(traj)]) == 0
        assert main(argv + ["-o", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        payload = json.loads(out1.read_text())
        gate = payload["chaos_gate"]
        assert gate["passed"] and gate["checksums_match"]
        assert payload["y_checksum"] == gate["reference_checksum"]
        history = json.loads(traj.read_text())
        assert history["schema"] == "repro-cluster-chaos-trajectory/v1"
        assert len(history["entries"]) == 1

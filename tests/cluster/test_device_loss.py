"""Device loss: rebalancing, re-certification, zero wrong answers."""

import numpy as np
import pytest

from repro.serve import serve_session
from tests.cluster.test_cluster_engine import (
    SCALE,
    _single_engine_ys,
    _traffic,
)

MATRICES = ("crystk03", "ecology2", "wang3", "kim1")


def _spread_submit(engine, pairs, repeats=3, gap_s=1e-4):
    """Submit ``repeats`` copies of each pair at spread-out arrivals so
    a mid-run loss lands between service completions."""
    rids = []
    at = 0.0
    for _ in range(repeats):
        for coo, x in pairs:
            rids.append(engine.submit(coo, x, at=at))
            at += gap_s
    return rids


class TestDeviceLoss:
    @pytest.mark.parametrize("split", [True, False])
    def test_loss_serves_bit_identical(self, split):
        """Mid-run loss of a device completes the sweep with zero
        wrong answers: every request is served and every served y is
        bit-identical to the single-engine run — for split serving
        (shard re-placement + re-certification) and whole-matrix
        homing (evacuation + re-home) alike."""
        pairs = _traffic(MATRICES, "double")
        expected = _single_engine_ys(pairs * 3, "double")

        cluster = serve_session(
            cluster=3, size_scale=SCALE,
            split_threshold_rows=1 if split else None)
        rids = _spread_submit(cluster, pairs)
        cluster.fail_device(0, at_s=5e-4, kind="device_oom")
        by_rid = {r.request_id: r for r in cluster.run()}

        assert len(by_rid) == len(rids)
        for rid, ref in zip(rids, expected):
            got = by_rid[rid]
            assert got.served
            assert np.array_equal(got.y, ref)

        stats = cluster.stats()["cluster"]
        assert stats["alive"] == [1, 2]
        (reb,) = stats["rebalances"]
        assert reb["device"] == 0
        assert reb["kind"] == "device_oom"
        assert reb["alive"] == [1, 2]

    def test_dead_device_hosts_nothing_after_loss(self):
        pairs = _traffic(MATRICES, "double")
        cluster = serve_session(cluster=3, size_scale=SCALE,
                                split_threshold_rows=1)
        _spread_submit(cluster, pairs)
        cluster.fail_device(1, at_s=5e-4)
        cluster.run()
        for row in cluster.placement_table():
            assert 1 not in row["devices"]
        load = {row["device"]: row for row in cluster.load_table()}
        assert load[1]["alive"] is False

    def test_submissions_after_loss_avoid_dead_device(self):
        pairs = _traffic(("kim1",), "double")
        cluster = serve_session(cluster=2, size_scale=SCALE)
        cluster.fail_device(0, at_s=0.0)
        rid = cluster.submit(*pairs[0], at=1e-3)
        by_rid = {r.request_id: r for r in cluster.run()}
        assert by_rid[rid].served
        assert np.array_equal(by_rid[rid].y,
                              _single_engine_ys(pairs, "double")[0])

    def test_fault_kind_validated(self):
        cluster = serve_session(cluster=2)
        with pytest.raises(ValueError):
            cluster.fail_device(0, at_s=0.0, kind="cosmic-ray")

    def test_unknown_device_rejected(self):
        cluster = serve_session(cluster=2)
        with pytest.raises(ValueError):
            cluster.fail_device(7, at_s=0.0)

"""Consistent-hash router: determinism, stability, removal behaviour."""

import pytest

from repro.cluster.router import ClusterRouter


class TestPlacementDeterminism:
    def test_same_inputs_same_placement(self):
        keys = [f"pattern{i}" for i in range(64)]
        a = ClusterRouter(4)
        b = ClusterRouter(4)
        assert [a.place(k) for k in keys] == [b.place(k) for k in keys]

    def test_placement_independent_of_query_order(self):
        keys = [f"pattern{i}" for i in range(32)]
        r = ClusterRouter(4)
        forward = {k: r.place(k) for k in keys}
        backward = {k: r.place(k) for k in reversed(keys)}
        assert forward == backward

    def test_all_devices_receive_keys(self):
        """With many keys the 64-vnode ring spreads over every device."""
        r = ClusterRouter(4)
        homes = {r.place(f"pattern{i}") for i in range(256)}
        assert homes == {0, 1, 2, 3}


class TestSuccessors:
    def test_distinct_devices_home_first(self):
        r = ClusterRouter(4)
        succ = r.successors("some-pattern", 3)
        assert len(succ) == 3
        assert len(set(succ)) == 3
        assert succ[0] == r.place("some-pattern")

    def test_count_clamped_to_alive(self):
        r = ClusterRouter(2)
        assert len(r.successors("k", 5)) == 2


class TestRemoval:
    def test_only_dead_devices_keys_move(self):
        keys = [f"pattern{i}" for i in range(128)]
        r = ClusterRouter(4)
        before = {k: r.place(k) for k in keys}
        r.remove(2)
        after = {k: r.place(k) for k in keys}
        for k in keys:
            if before[k] != 2:
                assert after[k] == before[k]
            else:
                assert after[k] != 2

    def test_remove_updates_alive(self):
        r = ClusterRouter(3)
        r.remove(1)
        assert r.alive == (0, 2)
        assert r.num_alive == 2

    def test_remove_dead_device_rejected(self):
        r = ClusterRouter(3)
        r.remove(1)
        with pytest.raises(ValueError):
            r.remove(1)

    def test_last_device_cannot_be_removed(self):
        r = ClusterRouter(1)
        with pytest.raises(RuntimeError):
            r.remove(0)

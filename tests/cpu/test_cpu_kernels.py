"""CPU baselines: correctness, byte accounting, machine model."""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.cpu.kernels import CpuCrsdSpMV, CpuCsrSpMV, CpuDiaSpMV
from repro.cpu.machine import XEON_X5550_2S
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from tests.conftest import random_diagonal_matrix


class TestMachine:
    def test_bandwidth_monotone_in_threads(self):
        bws = [XEON_X5550_2S.bandwidth_gbs(t) for t in range(1, 9)]
        assert all(b2 >= b1 for b1, b2 in zip(bws, bws[1:]))

    def test_bandwidth_saturates(self):
        assert XEON_X5550_2S.bandwidth_gbs(8) == XEON_X5550_2S.bandwidth_gbs(16)

    def test_single_thread_below_socket_ceiling(self):
        assert XEON_X5550_2S.bandwidth_gbs(1) < XEON_X5550_2S.bandwidth_gbs(8)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            XEON_X5550_2S.bandwidth_gbs(0)

    def test_peak_gflops_precision(self):
        assert XEON_X5550_2S.peak_gflops("single", 8) == pytest.approx(
            2 * XEON_X5550_2S.peak_gflops("double", 8)
        )

    def test_total_cores(self):
        assert XEON_X5550_2S.total_cores == 8


class TestCsr:
    def test_matches_dense(self, rng):
        coo = random_diagonal_matrix(rng, n=100)
        csr = CSRMatrix.from_coo(coo)
        x = rng.standard_normal(100)
        assert np.allclose(CpuCsrSpMV(csr).run(x).y, coo.todense() @ x)

    def test_more_threads_faster(self, rng):
        coo = random_diagonal_matrix(rng, n=200)
        csr = CSRMatrix.from_coo(coo)
        x = rng.standard_normal(200)
        t1 = CpuCsrSpMV(csr, threads=1).run(x).seconds
        t8 = CpuCsrSpMV(csr, threads=8).run(x).seconds
        assert t8 < t1

    def test_single_precision_fewer_bytes(self, rng):
        coo = random_diagonal_matrix(rng, n=200)
        csr = CSRMatrix.from_coo(coo)
        d = CpuCsrSpMV(csr, precision="double").bytes_per_spmv()
        s = CpuCsrSpMV(csr, precision="single").bytes_per_spmv()
        assert s < d

    def test_invalid_threads(self, rng):
        csr = CSRMatrix.from_coo(random_diagonal_matrix(rng, n=10))
        with pytest.raises(ValueError):
            CpuCsrSpMV(csr, threads=0)


class TestDia:
    def test_matches_dense(self, rng):
        coo = random_diagonal_matrix(rng, n=100)
        x = rng.standard_normal(100)
        res = CpuDiaSpMV(DIAMatrix.from_coo(coo)).run(x)
        assert np.allclose(res.y, coo.todense() @ x)

    def test_serial_only(self, rng):
        dia = DIAMatrix.from_coo(random_diagonal_matrix(rng, n=20))
        with pytest.raises(ValueError):
            CpuDiaSpMV(dia, threads=8)

    def test_fill_costs_time(self, rng):
        """An isolated far entry adds a whole diagonal of streamed fill."""
        base = random_diagonal_matrix(rng, n=4000, offsets=(-1, 0, 1),
                                      density=1.0, scatter=0)
        import numpy as np
        from repro.formats.coo import COOMatrix

        spiked = COOMatrix(
            np.concatenate([base.rows, [2000]]),
            np.concatenate([base.cols, [100]]),
            np.concatenate([base.vals, [1.0]]),
            base.shape,
        )
        x = rng.standard_normal(4000)
        t0 = CpuDiaSpMV(DIAMatrix.from_coo(base)).run(x).seconds
        t1 = CpuDiaSpMV(DIAMatrix.from_coo(spiked)).run(x).seconds
        # 4 diagonals streamed instead of 3 -> at least ~15% slower
        assert t1 > t0 * 1.15


class TestCrsdCpu:
    def test_matches_dense(self, rng):
        coo = random_diagonal_matrix(rng, n=100, scatter=3)
        crsd = CRSDMatrix.from_coo(coo, mrows=8, wavefront_size=8)
        x = rng.standard_normal(100)
        assert np.allclose(CpuCrsdSpMV(crsd).run(x).y, coo.todense() @ x)

    def test_beats_dia_on_broken_diagonals(self, rng):
        """The Fig. 11 story: CRSD's compact slab vs DIA's full fill."""
        coo = random_diagonal_matrix(rng, n=4000,
                                     offsets=(-900, -1, 0, 1, 900),
                                     density=0.2, scatter=2)
        x = rng.standard_normal(4000)
        t_dia = CpuDiaSpMV(DIAMatrix.from_coo(coo)).run(x).seconds
        t_crsd = CpuCrsdSpMV(CRSDMatrix.from_coo(coo, mrows=64)).run(x).seconds
        assert t_crsd < t_dia


class TestDcsrCpu:
    def test_matches_dense(self, rng):
        from repro.cpu.kernels import CpuDcsrSpMV
        from repro.formats.dcsr import DeltaCSRMatrix

        coo = random_diagonal_matrix(rng, n=300)
        d = DeltaCSRMatrix.from_coo(coo)
        x = rng.standard_normal(300)
        assert np.allclose(CpuDcsrSpMV(d).run(x).y, coo.todense() @ x)

    def test_compression_is_a_speedup(self, rng):
        """The DCSR thesis: fewer index bytes -> less time, same math."""
        from repro.cpu.kernels import CpuCsrSpMV, CpuDcsrSpMV
        from repro.formats.dcsr import DeltaCSRMatrix

        coo = random_diagonal_matrix(rng, n=3000, offsets=(-2, -1, 0, 1, 2),
                                     density=1.0, scatter=0)
        x = rng.standard_normal(3000)
        t_csr = CpuCsrSpMV(CSRMatrix.from_coo(coo)).run(x).seconds
        t_dcsr = CpuDcsrSpMV(DeltaCSRMatrix.from_coo(coo)).run(x).seconds
        assert t_dcsr < t_csr

    def test_value_table_compounds(self, rng):
        from repro.cpu.kernels import CpuDcsrSpMV
        from repro.formats.coo import COOMatrix
        from repro.formats.dcsr import DeltaCSRMatrix

        base = random_diagonal_matrix(rng, n=3000, offsets=(-1, 0, 1),
                                      density=1.0, scatter=0)
        vals = np.where(base.offsets_of_entries() == 0, 4.0, -1.0)
        coo = COOMatrix(base.rows, base.cols, vals, base.shape)
        x = rng.standard_normal(3000)
        plain = CpuDcsrSpMV(DeltaCSRMatrix.from_coo(coo)).run(x)
        vi = CpuDcsrSpMV(
            DeltaCSRMatrix.from_coo(coo, compress_values=True)
        ).run(x)
        assert np.allclose(vi.y, plain.y)
        assert vi.seconds < plain.seconds

    def test_type_checked(self, rng):
        from repro.cpu.kernels import CpuDcsrSpMV

        with pytest.raises(TypeError):
            CpuDcsrSpMV(CSRMatrix.from_coo(random_diagonal_matrix(rng, n=10)))

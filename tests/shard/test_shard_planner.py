"""ShardPlanner: boundary quantisation, halo intervals, validation.

The planner's outputs are pure geometry — row blocks, halo intervals,
scatter slices — so these tests check the arithmetic directly; whether
a plan is *correct* is the certifier's job (test_shard_certification).
"""

import json

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix, DEFAULT_WAVEFRONT
from repro.formats.coo import COOMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.shard.plan import ShardPlanError, ShardPlanner
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def coo(rng):
    return random_diagonal_matrix(rng, n=256)


@pytest.fixture
def crsd(coo):
    return CRSDMatrix.from_coo(coo, mrows=32)


class TestAutoBoundaries:
    def test_partition_covers_row_space(self, crsd, coo):
        for n in (1, 2, 3, 4, 8):
            plan = ShardPlanner(crsd, coo=coo).plan(n)
            assert plan.num_shards == n
            assert plan.shards[0].row_start == 0
            assert plan.shards[-1].row_end == crsd.nrows
            for a, b in zip(plan.shards, plan.shards[1:]):
                assert a.row_end == b.row_start

    def test_boundaries_are_alignment_multiples(self, crsd, coo):
        plan = ShardPlanner(crsd, coo=coo).plan(4)
        assert plan.alignment == crsd.mrows
        for spec in plan.shards[:-1]:
            assert spec.row_end % crsd.mrows == 0

    def test_halo_interval_tracks_extreme_offsets(self, crsd, coo):
        offs = coo.diagonal_offsets()
        plan = ShardPlanner(crsd, coo=coo).plan(4)
        assert plan.min_offset == int(offs.min())
        assert plan.max_offset == int(offs.max())
        for spec in plan.shards:
            assert spec.halo_lo == max(0, spec.row_start + plan.min_offset)
            assert spec.halo_lo >= 0 and spec.halo_hi <= crsd.ncols
            # the halo must at least cover the owned block's own reads
            assert spec.halo_hi >= min(
                crsd.ncols, spec.row_end + plan.max_offset)

    def test_padded_tail_widens_the_last_halo(self):
        """nrows not a multiple of mrows: the final segment is padded,
        its kernels read x for the padded rows too, and the halo says
        so."""
        n = 100  # mrows=32 -> last segment covers rows 96..128
        r = np.arange(n)
        coo = COOMatrix(r, r, np.ones(n), (n, 200))
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        plan = ShardPlanner(crsd, coo=coo).plan(2)
        last = plan.shards[-1]
        assert last.row_end == n
        assert last.halo_hi == min(200, 128 + plan.max_offset)

    def test_scatter_rows_sliced_by_block(self, rng):
        n = 128
        coo = random_diagonal_matrix(rng, n=n, scatter=6)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        plan = ShardPlanner(crsd, coo=coo).plan(4)
        rowno = np.asarray(crsd.scatter_rowno)
        total = 0
        for spec in plan.shards:
            rows = rowno[spec.scatter_start:spec.scatter_end]
            assert np.all(rows >= spec.row_start)
            assert np.all(rows < spec.row_end) or rows.size == 0
            total += rows.size
        assert total == crsd.num_scatter_rows


class TestCustomBoundaries:
    def test_accepted_when_aligned(self, crsd, coo):
        plan = ShardPlanner(crsd, coo=coo).plan(3, boundaries=[64, 192])
        assert [s.row_start for s in plan.shards] == [0, 64, 192]

    def test_empty_interior_shard(self, crsd, coo):
        plan = ShardPlanner(crsd, coo=coo).plan(3, boundaries=[128, 128])
        assert plan.shards[1].num_rows == 0
        assert plan.shards[1].halo_elements == 0

    @pytest.mark.parametrize("num_shards,boundaries,match", [
        (0, None, "num_shards"),
        (-2, None, "num_shards"),
        (3, [64], "expected 2 interior boundaries"),
        (2, [64, 128], "expected 1 interior"),
        (2, [-32], "outside"),
        (2, [512], "outside"),
        (3, [128, 64], "non-decreasing"),
        (2, [33], "not aligned"),
    ])
    def test_rejected_requests(self, crsd, coo, num_shards, boundaries,
                               match):
        planner = ShardPlanner(crsd, coo=coo)
        with pytest.raises(ShardPlanError, match=match):
            planner.plan(num_shards, boundaries=boundaries)

    def test_misaligned_boundary_names_the_wavefront(self, crsd, coo):
        with pytest.raises(ShardPlanError, match="wavefront 32"):
            ShardPlanner(crsd, coo=coo).plan(2, boundaries=[48])


class TestLadderRungs:
    """The planner covers every degradation-ladder rung — only CRSD
    plans are certifiable, but halo geometry is format-agnostic."""

    @pytest.mark.parametrize("make", [
        DIAMatrix.from_coo, ELLMatrix.from_coo, HYBMatrix.from_coo,
    ])
    def test_non_crsd_rungs_plan_with_wavefront_alignment(self, coo, make):
        matrix = make(coo)
        plan = ShardPlanner(matrix, coo=coo).plan(4)
        assert plan.format == matrix.name
        assert plan.alignment == DEFAULT_WAVEFRONT
        assert plan.shards[-1].row_end == coo.nrows

    def test_empty_matrix_has_zero_width_halo(self):
        coo = COOMatrix.empty((64, 64))
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=16)
        plan = ShardPlanner(crsd, coo=coo).plan(2)
        assert plan.min_offset == 0 and plan.max_offset == 0
        for spec in plan.shards:
            assert spec.halo_elements == spec.num_rows

    def test_alignment_override(self, crsd, coo):
        plan = ShardPlanner(crsd, coo=coo, alignment=64).plan(2)
        assert plan.alignment == 64
        assert plan.shards[0].row_end % 64 == 0
        with pytest.raises(ShardPlanError, match="positive"):
            ShardPlanner(crsd, coo=coo, alignment=0)


class TestSerialisation:
    def test_to_dict_is_json_safe(self, crsd, coo):
        plan = ShardPlanner(crsd, coo=coo).plan(4)
        payload = json.loads(json.dumps(plan.to_dict()))
        assert payload["num_shards"] == 4
        assert len(payload["shards"]) == 4
        assert payload["shards"][0]["row_start"] == 0

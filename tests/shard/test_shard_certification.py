"""The four shard provers: certification, declines, conservation.

``certify_shard_plan`` must either *prove* a row-block plan (halo
coverage, write disjointness, trace conservation, deterministic
reduction order) or decline it with a finding naming the violated
prover — never pass silently-wrong plans.  These tests pin both sides,
plus the conservation arithmetic the certificate carries.
"""

import json

import pytest

from repro.analyze.report import CHECKS
from repro.analyze.sharding import (
    INVARIANT_COUNTERS,
    build_shard_subplan,
    certify_shard_plan,
    shard_segment_range,
)
from repro.codegen.plan import build_plan
from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.shard.plan import ShardPlanner
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def coo(rng):
    return random_diagonal_matrix(rng, n=256, scatter=6)


@pytest.fixture
def crsd(coo):
    return CRSDMatrix.from_coo(coo, mrows=32)


class TestCertified:
    def test_random_matrix_certifies(self, crsd, coo):
        plan = ShardPlanner(crsd, coo=coo).plan(4)
        cert = certify_shard_plan(crsd, plan)
        assert cert.ok
        assert cert.reasons == ()
        assert cert.num_shards == 4
        assert len(cert.subplans) == 4
        assert len(cert.per_shard_traces) == 4
        assert cert.whole_trace is not None
        assert cert.halo_reread_transactions is not None

    def test_conservation_identity(self, crsd, coo):
        """sum(shards) == whole + scatter_repack + halo re-read, exact,
        auditable from the certificate's own fields."""
        plan = ShardPlanner(crsd, coo=coo).plan(4)
        cert = certify_shard_plan(crsd, plan)
        assert cert.ok
        whole, repack = cert.whole_trace, cert.scatter_repack
        for counter in INVARIANT_COUNTERS:
            total = sum(getattr(t, counter) for t in cert.per_shard_traces)
            assert total == getattr(whole, counter) \
                + repack.get(counter, 0), counter
        txn = sum(t.global_load_transactions for t in cert.per_shard_traces)
        assert txn == whole.global_load_transactions \
            + repack.get("global_load_transactions", 0) \
            + cert.halo_reread_transactions

    def test_single_shard_has_no_halo_reread(self, crsd, coo):
        plan = ShardPlanner(crsd, coo=coo).plan(1)
        cert = certify_shard_plan(crsd, plan)
        assert cert.ok
        assert cert.halo_reread_transactions == 0

    def test_empty_matrix_certifies(self):
        coo = COOMatrix.empty((64, 64))
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=16)
        plan = ShardPlanner(crsd, coo=coo).plan(4)
        cert = certify_shard_plan(crsd, plan)
        assert cert.ok

    def test_scatter_only_matrix_certifies(self, rng):
        n = 40
        coo = COOMatrix(rng.integers(0, n, 12), rng.integers(0, n, 12),
                        rng.standard_normal(12), (n, n))
        crsd = CRSDMatrix.from_coo(coo, mrows=8, wavefront_size=8,
                                   idle_fill_max_rows=1)
        plan = ShardPlanner(crsd, coo=coo).plan(2)
        cert = certify_shard_plan(crsd, plan)
        assert cert.ok


class TestDeclines:
    """Every decline names the violated prover; the check slugs are
    registered in the analyzer's CHECKS vocabulary."""

    def test_prover_checks_are_registered(self):
        for check in ("shard-halo", "shard-disjoint", "shard-trace",
                      "shard-order"):
            assert check in CHECKS

    @pytest.mark.parametrize("make", [
        DIAMatrix.from_coo, ELLMatrix.from_coo, HYBMatrix.from_coo,
    ])
    def test_non_crsd_rung_declined_by_name(self, coo, make):
        matrix = make(coo)
        plan = ShardPlanner(matrix, coo=coo).plan(2)
        cert = certify_shard_plan(matrix, plan)
        assert not cert.ok
        assert any(f.check == "shard-halo" for f in cert.findings)
        assert any("no symbolic access model" in r for r in cert.reasons)
        assert cert.per_shard_traces == ()
        assert cert.whole_trace is None

    def test_segment_straddling_boundary_declined(self, crsd, coo):
        """Wavefront-aligned but segment-cutting boundaries survive
        planning and are caught by the disjointness prover."""
        plan = ShardPlanner(crsd, coo=coo, alignment=16).plan(
            2, boundaries=[112])
        cert = certify_shard_plan(crsd, plan)
        assert not cert.ok
        assert any(f.check == "shard-disjoint" for f in cert.findings)
        assert any("straddles the boundary" in r for r in cert.reasons)

    def test_plan_for_other_matrix_declined(self, crsd, coo, rng):
        other = CRSDMatrix.from_coo(
            random_diagonal_matrix(rng, n=128), mrows=32)
        plan = ShardPlanner(other).plan(2)
        cert = certify_shard_plan(crsd, plan)
        assert not cert.ok
        assert any(f.check == "shard-disjoint" for f in cert.findings)


class TestSegmentRange:
    def test_blocks_partition_the_segments(self):
        # region of 10 segments x 32 rows starting at row 64
        edges = [0, 96, 128, 224, 384]
        ranges = [shard_segment_range(64, 10, 32, lo, hi)
                  for lo, hi in zip(edges, edges[1:])]
        assert ranges[0] == (0, 1)  # segment starting at 64
        covered = []
        for lo, hi in ranges:
            covered.extend(range(lo, hi))
        assert covered == list(range(10))

    def test_empty_block(self):
        assert shard_segment_range(0, 4, 32, 64, 64) == (2, 2)

    def test_block_outside_region(self):
        assert shard_segment_range(0, 4, 32, 256, 512) == (4, 4)
        lo, hi = shard_segment_range(256, 4, 32, 0, 128)
        assert lo == hi


class TestSubplans:
    def test_subplans_cover_the_whole_launch(self, crsd, coo):
        whole = build_plan(crsd)
        planner = ShardPlanner(crsd, coo=coo)
        plan = planner.plan(4)
        subs = [build_shard_subplan(whole, s.row_start, s.row_end,
                                    s.scatter_start, s.scatter_end)
                for s in plan.shards]
        assert sum(sp.num_groups for sp in subs) == whole.num_groups
        assert sum(sp.scatter.num_rows for sp in subs) == \
            whole.scatter.num_rows
        for sp in subs:
            assert sp.nrows == whole.nrows and sp.ncols == whole.ncols
            assert sp.local_size == whole.local_size

    def test_subplan_keeps_absolute_rows(self, crsd, coo):
        whole = build_plan(crsd)
        plan = ShardPlanner(crsd, coo=coo).plan(2)
        spec = plan.shards[1]
        sub = build_shard_subplan(whole, spec.row_start, spec.row_end,
                                  spec.scatter_start, spec.scatter_end)
        assert all(r.start_row >= spec.row_start for r in sub.regions)


class TestSerialisation:
    def test_certified_to_dict_is_json_safe(self, crsd, coo):
        plan = ShardPlanner(crsd, coo=coo).plan(2)
        cert = certify_shard_plan(crsd, plan)
        payload = json.loads(json.dumps(cert.to_dict()))
        assert payload["ok"] is True
        assert payload["plan"]["num_shards"] == 2
        assert len(payload["per_shard_traces"]) == 2
        assert isinstance(payload["halo_reread_transactions"], int)

    def test_declined_to_dict_is_json_safe(self, coo):
        dia = DIAMatrix.from_coo(coo)
        plan = ShardPlanner(dia, coo=coo).plan(2)
        cert = certify_shard_plan(dia, plan)
        payload = json.loads(json.dumps(cert.to_dict()))
        assert payload["ok"] is False
        assert payload["reasons"]
        assert payload["findings"][0]["check"] == "shard-halo"

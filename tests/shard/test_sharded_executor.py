"""Differential tests: certified shard-by-shard execution vs. the
unsharded engines.

A certified :class:`~repro.shard.plan.ShardPlan` must execute through
:class:`~repro.shard.executor.ShardedSpMV` *bit-identical* to the
unsharded run (``np.array_equal``, not allclose) — that is the whole
point of the provers.  These tests hold every suite matrix to that bar
across shard counts {2, 4, 8} and both precisions, check the six
work-invariant trace counters are conserved across the shard split,
and cover the edge shapes (scatter-only, all-zero, rectangular) plus
the three executor modes.
"""

import numpy as np
import pytest

from repro.analyze.sharding import INVARIANT_COUNTERS, certify_shard_plan
from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from repro.gpu_kernels.crsd_runner import CrsdSpMV
from repro.matrices.suite23 import SUITE
from repro.shard.executor import ShardedSpMV
from repro.shard.plan import ShardPlanError, ShardPlanner
from tests.conftest import random_diagonal_matrix
from tests.gpu_kernels.test_executor_modes import rectangular_coo
from tests.gpu_kernels.test_fused_executor import suite_crsd

SHARD_COUNTS = (2, 4, 8)


def assert_conserved(sharded_trace, whole_trace):
    """The six work-invariant counters survive the shard split exactly."""
    for counter in INVARIANT_COUNTERS:
        assert getattr(sharded_trace, counter) == \
            getattr(whole_trace, counter), counter


def certified(crsd, num_shards, coo=None, **kwargs):
    plan = ShardPlanner(crsd, coo=coo).plan(num_shards)
    cert = certify_shard_plan(crsd, plan, **kwargs)
    assert cert.ok, cert.reasons
    return cert


class TestDifferentialSuite23:
    """Sharded and unsharded agree bit-for-bit across the full bench
    suite, for every shard count, in both precisions (the CI
    ``shard-smoke`` gate runs a subset of this class)."""

    @pytest.mark.parametrize("precision", ["double", "single"])
    @pytest.mark.parametrize(
        "spec", SUITE, ids=lambda s: f"{s.number:02d}-{s.name}")
    def test_suite_matrix(self, spec, precision, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        coo, crsd, dev = suite_crsd(spec)
        x = np.random.default_rng(17).standard_normal(coo.ncols)
        whole = CrsdSpMV(crsd, device=dev, precision=precision).run(x)
        for n in SHARD_COUNTS:
            cert = certified(crsd, n, coo=coo, device=dev,
                             precision=precision)
            run = ShardedSpMV(crsd, cert, device=dev,
                              precision=precision).run(x)
            assert np.array_equal(run.y, whole.y), (spec.name, n)
            assert_conserved(run.trace, whole.trace)


class TestExecutorModes:
    """All three engines agree through the sharded runner, and with
    the unsharded oracle."""

    @pytest.mark.parametrize("mode", ["pergroup", "batched", "fused"])
    def test_mode_matches_unsharded(self, mode, rng, monkeypatch):
        coo = random_diagonal_matrix(rng, n=200, density=0.7, scatter=4)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        x = rng.standard_normal(200)
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        whole = CrsdSpMV(crsd).run(x)
        cert = certified(crsd, 4, coo=coo)
        monkeypatch.setenv("REPRO_EXECUTOR", mode)
        run = ShardedSpMV(crsd, cert).run(x)
        assert np.array_equal(run.y, whole.y)
        assert_conserved(run.trace, whole.trace)
        assert np.allclose(run.y, coo.todense() @ x)

    def test_repeated_runs_are_stable(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        coo = random_diagonal_matrix(rng, n=128)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        cert = certified(crsd, 2, coo=coo)
        runner = ShardedSpMV(crsd, cert)
        x = rng.standard_normal(128)
        a, b = runner.run(x), runner.run(x)
        assert np.array_equal(a.y, b.y)
        for counter in INVARIANT_COUNTERS:
            assert getattr(a.trace, counter) == getattr(b.trace, counter)


class TestEdgeShapes:
    def test_scatter_only_matrix(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        n = 40
        rows = rng.integers(0, n, size=12)
        cols = rng.integers(0, n, size=12)
        vals = rng.standard_normal(12)
        coo = COOMatrix(rows, cols, vals, (n, n))
        crsd = CRSDMatrix.from_coo(coo, mrows=8, wavefront_size=8,
                                   idle_fill_max_rows=1)
        x = rng.standard_normal(n)
        whole = CrsdSpMV(crsd, local_size=8).run(x)
        cert = certified(crsd, 2, coo=coo)
        run = ShardedSpMV(crsd, cert, local_size=8).run(x)
        assert np.array_equal(run.y, whole.y)
        assert_conserved(run.trace, whole.trace)

    def test_all_zero_matrix(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        coo = COOMatrix.empty((64, 64))
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=16)
        cert = certified(crsd, 4, coo=coo)
        x = np.random.default_rng(3).standard_normal(64)
        run = ShardedSpMV(crsd, cert, local_size=16).run(x)
        assert np.array_equal(run.y, np.zeros(64))

    def test_rectangular_matrix(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        coo = rectangular_coo(96, 160, (-7, 0, 3, 40), rng)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        x = rng.standard_normal(160)
        whole = CrsdSpMV(crsd).run(x)
        cert = certified(crsd, 2, coo=coo)
        run = ShardedSpMV(crsd, cert).run(x)
        assert np.array_equal(run.y, whole.y)
        assert_conserved(run.trace, whole.trace)


class TestRefusal:
    def test_uncertified_plan_is_refused(self, rng):
        coo = random_diagonal_matrix(rng, n=128)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        # alignment=16 boundaries are wavefront-aligned but can cut a
        # 32-row segment: the disjointness prover declines the plan
        plan = ShardPlanner(crsd, coo=coo, alignment=16).plan(
            2, boundaries=[112])
        cert = certify_shard_plan(crsd, plan)
        assert not cert.ok
        with pytest.raises(ShardPlanError, match="uncertified"):
            ShardedSpMV(crsd, cert)

    def test_executed_trace_matches_certificate_prediction(
            self, rng, monkeypatch):
        """The executed global-memory traffic equals the sum of the
        certificate's per-shard trace predictions, counter for
        counter — the certificate is exact, not a bound."""
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        coo = random_diagonal_matrix(rng, n=256, density=0.8, scatter=6)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        cert = certified(crsd, 4, coo=coo)
        run = ShardedSpMV(crsd, cert).run(rng.standard_normal(256))
        predicted = {"global_load_transactions": 0, "l2_hits": 0,
                     "flops": 0, "barriers": 0}
        for tr in cert.per_shard_traces:
            if tr is None:
                continue
            for counter in predicted:
                predicted[counter] += getattr(tr, counter)
        for counter, value in predicted.items():
            assert getattr(run.trace, counter) == value, counter

"""Exporter validity: JSON schema, CSV tabularity, Chrome-trace format."""

import csv
import json

import numpy as np
import pytest

from repro.obs.export import spans_to_chrome_events
from repro.obs.profiler import profile_matrix
from repro.obs.recorder import ProfileSession
from repro.obs.report import PROFILE_SCHEMA, ProfileReport
from tests.conftest import random_diagonal_matrix


@pytest.fixture(scope="module")
def report() -> ProfileReport:
    rng = np.random.default_rng(7)
    coo = random_diagonal_matrix(rng, n=96)
    return profile_matrix(coo, "demo", formats=("crsd", "ell"),
                          executors=("batched",), mrows=32)


@pytest.fixture(scope="module")
def exported(report, tmp_path_factory):
    out = tmp_path_factory.mktemp("prof")
    return report.export(out)


class TestJson:
    def test_schema_and_sections(self, exported):
        payload = json.loads(exported["json"].read_text())
        assert payload["schema"] == PROFILE_SCHEMA == "repro-profile/v1"
        assert set(payload) == {
            "schema", "meta", "metrics", "session", "skips"}
        assert payload["meta"]["matrix"] == "demo"

    def test_entries_carry_counters_and_metrics(self, exported):
        payload = json.loads(exported["json"].read_text())
        entries = payload["metrics"]["entries"]
        assert {e["name"] for e in entries} == {
            "crsd/batched/double", "ell/batched/double"}
        for e in entries:
            assert e["verified"] is True
            assert e["counters"]["global_load_transactions"] > 0
            assert e["metrics"]["achieved_gflops"] > 0


class TestCsv:
    def test_one_row_per_entry(self, report, exported):
        with exported["csv"].open(newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(report.registry)
        assert {r["name"] for r in rows} == {
            "crsd/batched/double", "ell/batched/double"}

    def test_metric_columns_parse_as_floats(self, exported):
        with exported["csv"].open(newline="") as fh:
            rows = list(csv.DictReader(fh))
        for r in rows:
            assert 0.0 <= float(r["load_coalescing"]) <= 1.0
            assert float(r["achieved_gflops"]) > 0


class TestChromeTrace:
    def test_file_is_valid_trace_json(self, exported):
        payload = json.loads(exported["chrome_trace"].read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events
        for ev in events:
            assert ev["ph"] in ("X", "i")
            assert ev["ts"] >= 0
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_kernel_events_carry_trace_args(self, exported):
        payload = json.loads(exported["chrome_trace"].read_text())
        kernels = [e for e in payload["traceEvents"] if e["cat"] == "kernel"]
        assert kernels
        for ev in kernels:
            assert ev["args"]["trace.flops"] > 0
            assert "executor" in ev["args"]

    def test_nesting_maps_to_tid_depth(self):
        s = ProfileSession("t")
        with s.span("root", "op"):
            with s.span("child", "op"):
                with s.span("grandchild", "kernel"):
                    pass
        events = {e["name"]: e for e in spans_to_chrome_events(s.spans)}
        assert events["root"]["tid"] == 0
        assert events["child"]["tid"] == 1
        assert events["grandchild"]["tid"] == 2

    def test_marker_becomes_instant_event(self):
        s = ProfileSession("t")
        s.record_event("oops", "event", reason="x")
        (ev,) = spans_to_chrome_events(s.spans)
        assert ev["ph"] == "i"
        assert ev["args"] == {"reason": "x"}

"""Profile sweeps record every combination they could not run as a
machine-readable skip — not just a log line."""

import json

import numpy as np
import pytest

from repro.obs.profiler import profile_matrix
from repro.ocl.device import TESLA_C2050
from tests.conftest import random_diagonal_matrix


@pytest.fixture()
def oom_report():
    """A sweep on a device too small for HYB (CRSD still fits)."""
    rng = np.random.default_rng(0)
    coo = random_diagonal_matrix(rng, n=512)
    from repro.formats.footprint import footprint_bytes
    from repro.formats.hyb import HYBMatrix
    from repro.core.crsd import CRSDMatrix

    crsd_b = footprint_bytes(CRSDMatrix.from_coo(coo, mrows=128), "double")
    hyb_b = footprint_bytes(HYBMatrix.from_coo(coo), "double")
    assert crsd_b < hyb_b
    vectors = 16 * (coo.nrows + coo.ncols)
    cap = (crsd_b + vectors + hyb_b) // 2
    device = TESLA_C2050.with_overrides(global_mem_bytes=int(cap))
    return profile_matrix(
        coo, "small-dev", formats=("crsd", "hyb"),
        executors=("batched", "pergroup"), precisions=("double",),
        device=device)


def test_each_oom_combo_recorded(oom_report):
    skipped = {(s["format"], s["executor"], s["precision"])
               for s in oom_report.skips}
    assert skipped == {("hyb", "batched", "double"),
                       ("hyb", "pergroup", "double")}
    for s in oom_report.skips:
        assert s["error"] == "DeviceMemoryError"
        assert "exceeds device memory" in s["reason"]
        assert s["entry"] == f"{s['format']}/{s['executor']}/{s['precision']}"


def test_skips_are_machine_readable_json(oom_report):
    payload = oom_report.to_dict()
    assert "skips" in payload
    # round-trips as plain JSON (no numpy scalars, no exceptions)
    again = json.loads(json.dumps(payload["skips"]))
    assert again == payload["skips"]


def test_legacy_oom_event_preserved(oom_report):
    """Consumers keyed on the old `.oom` event span keep working."""
    oom_events = [s for s in oom_report.session.spans
                  if s.name.endswith(".oom")]
    assert {e.name for e in oom_events} == {
        "hyb/batched/double.oom", "hyb/pergroup/double.oom"}


def test_ran_combos_not_in_skips(oom_report):
    ran = {e["name"] for e in oom_report.registry.entries}
    assert ran == {"crsd/batched/double", "crsd/pergroup/double"}
    assert not ran & {s["entry"] for s in oom_report.skips}


def test_summary_mentions_skips(oom_report):
    text = oom_report.summary()
    assert "skipped: DeviceMemoryError" in text


def test_clean_sweep_has_empty_skips():
    rng = np.random.default_rng(1)
    coo = random_diagonal_matrix(rng, n=64)
    report = profile_matrix(coo, "clean", formats=("crsd",),
                            executors=("batched",))
    assert report.skips == []
    assert report.to_dict()["skips"] == []

"""Recorder robustness: exceptions (and KeyboardInterrupt) anywhere in
a span tree must leave ``ACTIVE`` restored and the session reusable —
no poisoned parent stack, no spans stuck open."""

import pytest

from repro.obs import recorder
from repro.obs.recorder import ProfileSession, observe


class TestActiveRestored:
    def test_exception_inside_span_restores_active(self):
        with pytest.raises(RuntimeError):
            with observe("s") as session:
                with session.span("outer"):
                    raise RuntimeError("boom")
        assert recorder.ACTIVE is None

    def test_keyboard_interrupt_restores_active(self):
        """KeyboardInterrupt is a BaseException — the restore must not
        depend on ``except Exception``."""
        with pytest.raises(KeyboardInterrupt):
            with observe("s") as session:
                with session.span("outer"):
                    raise KeyboardInterrupt
        assert recorder.ACTIVE is None


class TestLeakedChildren:
    def test_parent_end_unwinds_leaked_child(self):
        """A child opened with begin() whose end() was skipped (an
        exception path) must not corrupt the stack: ending the parent
        unwinds it and stamps its duration."""
        s = ProfileSession()
        parent = s.begin("parent")
        child = s.begin("child")
        # child.end skipped — simulates an exception between begin/end
        s.end(parent)
        assert s._stack == []
        assert child.duration >= 0.0  # closed by the unwind
        assert parent.duration >= 0.0

    def test_deeply_leaked_stack_fully_unwound(self):
        s = ProfileSession()
        root = s.begin("root")
        leaked = [s.begin(f"leak{i}") for i in range(4)]
        s.end(root)
        assert s._stack == []
        assert all(sp.duration >= 0.0 for sp in leaked)

    def test_end_of_unstacked_span_only_stamps(self):
        """Ending a span its parent already unwound must not pop
        anything else off the stack."""
        s = ProfileSession()
        outer = s.begin("outer")
        inner = s.begin("inner")
        s.end(outer)            # unwinds inner too
        fresh = s.begin("fresh")
        s.end(inner)            # inner no longer on the stack
        assert s._stack == [fresh.id]
        s.end(fresh)
        assert s._stack == []


class TestReusableAfterException:
    def test_session_records_correctly_after_escape(self):
        session = ProfileSession("survivor")
        with pytest.raises(ValueError):
            with observe(session=session):
                with session.span("first"):
                    session.begin("leaked")  # never ended explicitly
                    raise ValueError("escape")
        # the span() finally closed "first", unwinding "leaked"
        assert session._stack == []
        with observe(session=session):
            with session.span("second"):
                pass
        second = [sp for sp in session.spans if sp.name == "second"]
        assert len(second) == 1
        assert second[0].parent is None  # rooted, not under stale spans
        assert all(sp.duration >= 0.0 for sp in session.spans)

    def test_interrupt_mid_kernel_spans_leaves_valid_tree(self):
        """Simulate an interrupt landing between begin/end pairs in the
        executor hot path, then confirm the report-side tree helpers
        still work."""
        session = ProfileSession()
        with pytest.raises(KeyboardInterrupt):
            with observe(session=session):
                with session.span("spmv", "op"):
                    session.begin("kernel", "kernel")
                    raise KeyboardInterrupt
        assert session._stack == []
        roots = session.children(None)
        assert [r.name for r in roots] == ["spmv"]
        payload = session.to_dict()
        assert all(sp["duration_s"] >= 0.0 for sp in payload["spans"])

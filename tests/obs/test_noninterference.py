"""Observation must not perturb the computation.

The acceptance bar for the instrumentation layer: ``y`` and every
``KernelTrace`` counter are **bit-identical** with observation on or
off — per matrix of the 23-matrix suite, per executor engine, per
precision.  Spans only *read* finished traces; these tests prove it.
"""

import dataclasses

import numpy as np
import pytest

from repro.bench.runner import bench_scale, effective_scale
from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.matrices.suite23 import SUITE
from repro.obs.recorder import observe
from tests.conftest import random_diagonal_matrix


def run_observed_and_bare(make_runner, x, trace=True):
    """One run with observation on, one with it off, on fresh state."""
    with observe("on") as session:
        observed = make_runner().run(x, trace=trace)
    bare = make_runner().run(x, trace=trace)
    return observed, bare, session


def assert_identical(a, b):
    assert np.array_equal(a.y, b.y)
    if a.trace is not None or b.trace is not None:
        assert dataclasses.asdict(a.trace) == dataclasses.asdict(b.trace)


@pytest.mark.parametrize(
    "spec", SUITE, ids=lambda s: f"{s.number:02d}-{s.name}")
@pytest.mark.parametrize("executor", ["batched", "pergroup"])
def test_suite_bit_identical_observed(spec, executor, monkeypatch):
    """Full 23-matrix suite × both executors, double precision."""
    monkeypatch.setenv("REPRO_EXECUTOR", executor)
    scale = effective_scale(spec, bench_scale())
    coo = spec.generate(scale=scale, seed=0)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(coo.ncols)
    crsd = CRSDMatrix.from_coo(coo, mrows=128)
    observed, bare, session = run_observed_and_bare(
        lambda: CrsdSpMV(crsd), x)
    assert_identical(observed, bare)
    assert session.by_category("kernel"), "observation did record spans"


@pytest.mark.parametrize("executor", ["batched", "pergroup"])
@pytest.mark.parametrize("precision", ["double", "single"])
def test_precisions_bit_identical_observed(executor, precision, monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", executor)
    rng = np.random.default_rng(2)
    coo = random_diagonal_matrix(rng, n=256)
    crsd = CRSDMatrix.from_coo(coo, mrows=64)
    x = rng.standard_normal(coo.ncols)
    observed, bare, _ = run_observed_and_bare(
        lambda: CrsdSpMV(crsd, precision=precision), x)
    assert_identical(observed, bare)


def test_trace_off_bit_identical_observed():
    rng = np.random.default_rng(3)
    coo = random_diagonal_matrix(rng, n=128)
    crsd = CRSDMatrix.from_coo(coo, mrows=32)
    x = rng.standard_normal(coo.ncols)
    observed, bare, session = run_observed_and_bare(
        lambda: CrsdSpMV(crsd), x, trace=False)
    assert_identical(observed, bare)
    # counters stay zero with tracing off — observation didn't turn it on
    assert observed.trace.flops == 0
    # kernel spans exist even without tracing (geometry + wall time),
    # but carry no counter dict
    kernels = session.by_category("kernel")
    assert kernels
    assert all("trace" not in k.attrs for k in kernels)


def test_span_attrs_are_copies_not_views():
    """Mutating recorded span attributes must not reach the run's trace
    (and vice versa) — the recorder copies counters."""
    rng = np.random.default_rng(4)
    coo = random_diagonal_matrix(rng, n=96)
    crsd = CRSDMatrix.from_coo(coo, mrows=32)
    x = rng.standard_normal(coo.ncols)
    with observe("t") as session:
        run = CrsdSpMV(crsd).run(x)
    kernel = session.by_category("kernel")[0]
    before = dataclasses.asdict(run.trace)
    kernel.attrs["trace"]["flops"] = -1
    assert dataclasses.asdict(run.trace) == before


def test_profiler_sweep_leaves_no_active_session():
    from repro.obs import recorder
    from repro.obs.profiler import profile_matrix

    rng = np.random.default_rng(5)
    coo = random_diagonal_matrix(rng, n=96)
    profile_matrix(coo, "t", mrows=32)
    assert recorder.ACTIVE is None


def test_profiler_restores_executor_env(monkeypatch):
    import os

    from repro.obs.profiler import profile_matrix
    from repro.ocl.executor import EXECUTOR_ENV

    monkeypatch.setenv(EXECUTOR_ENV, "pergroup")
    rng = np.random.default_rng(6)
    coo = random_diagonal_matrix(rng, n=96)
    profile_matrix(coo, "t", mrows=32, executors=("batched",))
    assert os.environ[EXECUTOR_ENV] == "pergroup"

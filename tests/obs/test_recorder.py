"""The span recorder: session semantics and the zero-cost-off contract."""

import contextlib

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.obs import recorder
from repro.obs.recorder import ProfileSession, current, maybe_span, observe
from tests.conftest import random_diagonal_matrix


class TestSession:
    def test_span_tree(self):
        s = ProfileSession("t")
        with s.span("outer", "op"):
            with s.span("inner", "kernel"):
                pass
            with s.span("inner2", "kernel"):
                pass
        assert [sp.name for sp in s.spans] == ["outer", "inner", "inner2"]
        outer = s.spans[0]
        assert outer.parent is None
        assert all(sp.parent == outer.id for sp in s.spans[1:])
        assert all(sp.duration >= 0 for sp in s.spans)
        assert s.children(outer.id) == s.spans[1:]

    def test_span_closed_on_exception(self):
        s = ProfileSession("t")
        with pytest.raises(RuntimeError):
            with s.span("boom", "op"):
                raise RuntimeError("x")
        assert s.spans[0].duration >= 0
        # the stack unwound: a new span is a root again
        with s.span("after", "op"):
            pass
        assert s.spans[1].parent is None

    def test_record_event_is_zero_duration(self):
        s = ProfileSession("t")
        ev = s.record_event("marker", "event", reason="test")
        assert ev.duration == 0.0
        assert ev.attrs == {"reason": "test"}

    def test_record_kernel_copies_trace(self):
        from repro.ocl.trace import KernelTrace

        s = ProfileSession("t")
        t = KernelTrace()
        t.flops = 7
        span = s.record_kernel("k", work_groups=4, local_size=32,
                               executor="batched", wall_s=0.5, trace=t)
        assert span.category == "kernel"
        assert span.attrs["trace"]["flops"] == 7
        t.flops = 99  # mutating the trace must not reach the span
        assert span.attrs["trace"]["flops"] == 7

    def test_by_category(self):
        s = ProfileSession("t")
        with s.span("a", "op"):
            pass
        s.record_event("b", "event")
        assert [sp.name for sp in s.by_category("op")] == ["a"]
        assert [sp.name for sp in s.by_category("event")] == ["b"]

    def test_to_dict_roundtrips_json(self):
        import json

        s = ProfileSession("t")
        with s.span("a", "op", answer=42):
            pass
        d = json.loads(json.dumps(s.to_dict()))
        assert d["name"] == "t"
        assert d["spans"][0]["attrs"] == {"answer": 42}


class TestObserve:
    def test_off_by_default(self):
        assert current() is None

    def test_activates_and_restores(self):
        assert recorder.ACTIVE is None
        with observe("outer") as sess:
            assert current() is sess
            with observe("inner") as inner:
                assert current() is inner
            assert current() is sess
        assert recorder.ACTIVE is None

    def test_restores_on_exception(self):
        with pytest.raises(ValueError):
            with observe("x"):
                raise ValueError("boom")
        assert recorder.ACTIVE is None

    def test_accumulates_into_passed_session(self):
        sess = ProfileSession("acc")
        with observe(session=sess):
            with maybe_span("a", "op"):
                pass
        with observe(session=sess):
            with maybe_span("b", "op"):
                pass
        assert [sp.name for sp in sess.spans] == ["a", "b"]


class TestZeroCostDisabled:
    def test_maybe_span_returns_shared_nullcontext(self):
        assert current() is None
        cm = maybe_span("anything", "op", big=list(range(100)))
        assert cm is recorder._NULL
        assert isinstance(cm, contextlib.nullcontext)
        # same object every time: no allocation on the disabled path
        assert maybe_span("other") is cm

    def test_disabled_path_never_touches_the_clock(self, monkeypatch):
        """With observation off, a full SpMV (prepare + run, both
        kernel launches) must never consult the recorder's clock."""
        def forbidden():
            raise AssertionError(
                "perf_counter called while observation is disabled")

        monkeypatch.setattr(recorder, "perf_counter", forbidden)
        rng = np.random.default_rng(0)
        coo = random_diagonal_matrix(rng, n=96)
        runner = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=32))
        run = runner.run(rng.standard_normal(coo.ncols))
        assert run.y.shape == (coo.nrows,)

    def test_enabled_path_records_kernels(self):
        rng = np.random.default_rng(0)
        coo = random_diagonal_matrix(rng, n=96)
        runner = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=32))
        x = rng.standard_normal(coo.ncols)
        with observe("run") as sess:
            runner.run(x)
        kernels = sess.by_category("kernel")
        assert kernels, "kernel launches must be recorded when observing"
        for k in kernels:
            assert k.attrs["executor"] in ("batched", "pergroup")
            assert k.attrs["work_groups"] > 0
            assert k.attrs["trace"]["flops"] > 0
        # kernel spans nest under the crsd.spmv op span
        op = [s for s in sess.spans if s.name == "crsd.spmv"]
        assert len(op) == 1
        assert all(k.parent == op[0].id for k in kernels)

"""Derived-metric formulas and the metric registry."""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.obs.metrics import MetricRegistry, derive_metrics, trace_counters
from repro.ocl.device import TESLA_C2050
from repro.ocl.trace import KernelTrace
from tests.conftest import random_diagonal_matrix


def synthetic_trace(**overrides):
    t = KernelTrace()
    t.global_load_requests = 10
    t.global_load_transactions = 20
    t.global_load_bytes_useful = 1024
    t.global_store_requests = 4
    t.global_store_transactions = 4
    t.global_store_bytes_useful = 512
    t.l2_hits = 5
    t.flops = 2000
    t.lanes_issued = 128
    t.lanes_useful = 96
    t.barriers = 3
    for k, v in overrides.items():
        setattr(t, k, v)
    return t


class TestFormulas:
    def test_dram_and_useful_bytes(self):
        t = synthetic_trace()
        m = derive_metrics(t)
        tb = TESLA_C2050.transaction_bytes
        assert m["dram_bytes"] == (20 + 4) * tb
        assert m["useful_bytes"] == 1024 + 512

    def test_coalescing_matches_trace_properties(self):
        t = synthetic_trace()
        m = derive_metrics(t)
        tb = TESLA_C2050.transaction_bytes
        assert m["load_coalescing"] == pytest.approx(1024 / (20 * tb))
        assert m["store_coalescing"] == pytest.approx(512 / (4 * tb))

    def test_l2_hit_rate(self):
        m = derive_metrics(synthetic_trace())
        assert m["l2_hit_rate"] == pytest.approx(5 / (5 + 20))
        # no traffic at all -> defined as 0, not NaN
        assert derive_metrics(KernelTrace())["l2_hit_rate"] == 0.0

    def test_divergence_efficiency(self):
        m = derive_metrics(synthetic_trace())
        assert m["divergence_efficiency"] == pytest.approx(96 / 128)

    def test_per_nnz_normalisations(self):
        m = derive_metrics(synthetic_trace(), nnz=100)
        tb = TESLA_C2050.transaction_bytes
        assert m["transactions_per_nnz"] == pytest.approx(24 / 100)
        assert m["dram_bytes_per_nnz"] == pytest.approx(24 * tb / 100)
        assert "transactions_per_nnz" not in derive_metrics(synthetic_trace())

    def test_throughput_block_needs_seconds(self):
        m = derive_metrics(synthetic_trace(), nnz=100)
        assert "achieved_gflops" not in m
        m = derive_metrics(synthetic_trace(), nnz=100, seconds=1e-6)
        # paper convention: 2 flops per stored nonzero
        assert m["achieved_gflops"] == pytest.approx(2 * 100 / 1e-6 / 1e9)
        assert m["effective_bandwidth_gbs"] == pytest.approx(
            (1024 + 512) / 1e-6 / 1e9)
        assert 0.0 < m["roofline_efficiency"]
        assert m["memory_bound"] in (0.0, 1.0)

    def test_roofline_ties_to_perf_module(self):
        from repro.perf.roofline import roofline_point

        t = synthetic_trace()
        m = derive_metrics(t, nnz=100, seconds=1e-6)
        point = roofline_point("ref", t, 1e-6, TESLA_C2050,
                               useful_flops=200)
        assert m["arithmetic_intensity"] == pytest.approx(
            point.arithmetic_intensity)
        assert m["roofline_ceiling_gflops"] == pytest.approx(
            point.ceiling_gflops("double"))

    def test_trace_counters_is_a_copy(self):
        t = synthetic_trace()
        c = trace_counters(t)
        assert c["flops"] == 2000
        t.flops = 1
        assert c["flops"] == 2000

    def test_real_run_metrics_are_consistent(self):
        rng = np.random.default_rng(0)
        coo = random_diagonal_matrix(rng, n=128)
        run = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=32)).run(
            rng.standard_normal(coo.ncols))
        m = derive_metrics(run.trace, nnz=coo.nnz, seconds=1e-5)
        assert 0.0 < m["load_coalescing"] <= 1.0
        assert 0.0 < m["store_coalescing"] <= 1.0
        assert 0.0 <= m["l2_hit_rate"] <= 1.0
        assert 0.0 < m["divergence_efficiency"] <= 1.0
        # transactions count DRAM traffic only (L2 hits are filtered),
        # so useful bytes may exceed DRAM bytes — but never the total
        # bytes served from DRAM plus L2
        tb = TESLA_C2050.transaction_bytes
        served = m["dram_bytes"] + run.trace.l2_hits * tb
        assert served >= m["useful_bytes"]
        assert m["flops_executed"] >= 2 * coo.nnz


class TestRegistry:
    def test_record_and_get(self):
        reg = MetricRegistry()
        e = reg.record("a/b/c", synthetic_trace(), nnz=50, seconds=1e-6,
                       format="a", executor="b")
        assert len(reg) == 1
        assert e["name"] == "a/b/c"
        got = reg.get("a/b/c")
        assert got["name"] == "a/b/c"
        assert got["nnz"] == 50
        assert got["format"] == "a" and got["executor"] == "b"
        with pytest.raises(KeyError):
            reg.get("missing")

    def test_rows_are_flat(self):
        reg = MetricRegistry()
        reg.record("x", synthetic_trace(), nnz=10, seconds=1e-6)
        (row,) = reg.rows()
        assert row["name"] == "x"
        assert "achieved_gflops" in row
        assert all(not isinstance(v, dict) for v in row.values())

    def test_to_dict_json_safe(self):
        import json

        reg = MetricRegistry()
        reg.record("x", synthetic_trace())
        json.dumps(reg.to_dict())

"""The ``repro`` package facade: spmv / build / profile / auto_format."""

import numpy as np
import pytest

import repro
from repro.core.crsd import CRSDMatrix
from repro.formats.dia import DIAMatrix
from repro.gpu_kernels.base import SpMVRun
from repro.ocl.trace import KernelTrace
from tests.conftest import random_diagonal_matrix


@pytest.fixture(scope="module")
def coo():
    return random_diagonal_matrix(np.random.default_rng(11), n=160)


@pytest.fixture(scope="module")
def x(coo):
    return np.random.default_rng(12).standard_normal(coo.ncols)


class TestRootExports:
    def test_key_classes_reexported(self):
        assert repro.CRSDMatrix is CRSDMatrix
        assert repro.SpMVRun is SpMVRun
        from repro.gpu_kernels import CrsdSpMV
        from repro.ocl.device import DeviceSpec

        assert repro.CrsdSpMV is CrsdSpMV
        assert repro.DeviceSpec is DeviceSpec

    def test_import_repro_is_lazy(self):
        """``import repro`` must not pull in the heavy submodules."""
        import subprocess
        import sys

        code = (
            "import sys, repro; "
            "heavy = [m for m in ('repro.api', 'repro.gpu_kernels', "
            "'repro.ocl.executor', 'repro.bench.runner') "
            "if m in sys.modules]; "
            "sys.exit(1 if heavy else 0)"
        )
        proc = subprocess.run([sys.executable, "-c", code])
        assert proc.returncode == 0

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist


class TestSpmv:
    def test_default_crsd(self, coo, x):
        run = repro.spmv(coo, x)
        assert np.allclose(run.y, coo.matvec(x))
        assert isinstance(run.trace, KernelTrace)
        assert run.metrics["achieved_gflops"] > 0
        assert run.metrics["transactions_per_nnz"] > 0

    def test_explicit_formats_agree(self, coo, x):
        ref = coo.matvec(x)
        for fmt in ("dia", "ell", "csr", "hyb"):
            run = repro.spmv(coo, x, format=fmt)
            assert np.allclose(run.y, ref), fmt

    def test_accepts_crsd_matrix(self, coo, x):
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        run = repro.spmv(crsd, x)
        assert np.allclose(run.y, coo.matvec(x))

    def test_accepts_other_sparse_format(self, coo, x):
        run = repro.spmv(DIAMatrix.from_coo(coo), x)
        assert np.allclose(run.y, coo.matvec(x))

    def test_accepts_dense(self, x):
        dense = np.diag(np.arange(1.0, 33.0))
        xd = x[:32]
        run = repro.spmv(dense, xd)
        assert np.allclose(run.y, dense @ xd)
        assert run.metrics is not None

    def test_trace_off_skips_metrics(self, coo, x):
        run = repro.spmv(coo, x, trace=False)
        assert run.metrics is None
        assert np.allclose(run.y, coo.matvec(x))

    def test_rejects_unknown_format(self, coo, x):
        with pytest.raises(ValueError, match="unknown format"):
            repro.spmv(coo, x, format="bogus")

    def test_rejects_non_matrix(self, x):
        with pytest.raises(TypeError, match="cannot interpret"):
            repro.spmv("not a matrix", x)


class TestBuild:
    def test_returns_prepared_reusable_runner(self, coo, x):
        runner = repro.build(coo, format="crsd")
        r1 = runner.run(x)
        r2 = runner.run(2 * x)
        assert np.allclose(r2.y, 2 * r1.y)

    def test_crsd_matrix_used_as_is(self, coo):
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        runner = repro.build(crsd, format="crsd")
        assert runner.matrix is crsd

    def test_single_precision(self, coo, x):
        runner = repro.build(coo, format="crsd", precision="single")
        run = runner.run(x)
        assert np.allclose(run.y, coo.matvec(x), atol=1e-3)


class TestAutoFormat:
    def test_pick_is_analytic_argmin(self, coo):
        from repro.core.crsd import compatible_wavefront
        from repro.formats.csr import CSRMatrix
        from repro.formats.ell import ELLMatrix
        from repro.perf.analytic import estimate_traffic

        totals = {}
        for fmt, m in [
            ("crsd", CRSDMatrix.from_coo(
                coo, mrows=128,
                wavefront_size=compatible_wavefront(128))),
            ("dia", DIAMatrix.from_coo(coo)),
            ("ell", ELLMatrix.from_coo(coo)),
            ("csr", CSRMatrix.from_coo(coo)),
        ]:
            est = estimate_traffic(m, "double")
            totals[fmt] = est.load_bytes + est.store_bytes
        assert repro.auto_format(coo) == min(totals, key=totals.get)

    def test_dense_diagonals_prefer_diagonal_storage(self):
        """Fully-occupied diagonals (the paper's target class): the
        per-nnz column index makes CSR strictly worse."""
        n = 2048
        rows_l, cols_l = [], []
        for off in (-1, 0, 1):
            lo, hi = max(0, -off), min(n, n - off)
            r = np.arange(lo, hi)
            rows_l.append(r)
            cols_l.append(r + off)
        rows = np.concatenate(rows_l)
        cols = np.concatenate(cols_l)
        coo = repro.COOMatrix(
            rows, cols, np.ones(rows.size), (n, n))
        assert repro.auto_format(coo) in ("crsd", "dia", "ell")

    def test_spmv_auto_is_correct(self, coo, x):
        run = repro.spmv(coo, x, format="auto")
        assert np.allclose(run.y, coo.matvec(x))

    def test_scattered_matrix_avoids_dia(self):
        rng = np.random.default_rng(13)
        n = 200
        rows = rng.integers(0, n, size=800)
        cols = rng.integers(0, n, size=800)
        coo = repro.COOMatrix(rows, cols, rng.standard_normal(800), (n, n))
        # fully random sparsity: any dense-diagonal storage would
        # materialise ~n distinct diagonals
        assert repro.auto_format(coo) in ("csr", "crsd")


class TestProfileFacade:
    def test_returns_report(self, coo):
        report = repro.profile(coo, "facade", executors=("batched",))
        assert report.meta["matrix"] == "facade"
        assert len(report.registry) == 1
        entry = report.registry.get("crsd/batched/double")
        assert entry["verified"] is True


class TestSpMVRunCompat:
    def test_positional_two_field_construction(self):
        """The pre-facade ``SpMVRun(y, trace)`` shape keeps working."""
        y = np.zeros(3)
        t = KernelTrace()
        run = SpMVRun(y, t)
        assert run.y is y and run.trace is t
        assert run.metrics is None

    def test_metrics_excluded_from_equality(self):
        y = np.ones(2)
        t = KernelTrace()
        a = SpMVRun(y, t)
        b = SpMVRun(y, t, metrics={"anything": 1.0})
        assert a == b

"""Span coverage of the compound operations: solvers and hybrid SpMV."""

import numpy as np

from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.hybrid.split import HybridSpMV
from repro.obs.recorder import observe
from repro.solvers.gpu_cg import gpu_cg
from repro.solvers.krylov import bicgstab, cg
from repro.solvers.stationary import jacobi
from tests.conftest import random_diagonal_matrix


def spd_system(n=64, seed=21):
    rng = np.random.default_rng(seed)
    d = np.abs(rng.standard_normal(n)) + n
    a = np.diag(d)
    off = rng.standard_normal(n - 1) * 0.1
    a += np.diag(off, 1) + np.diag(off, -1)
    return a, rng.standard_normal(n)


class TestSolverSpans:
    def test_cg_records_solve_and_matvecs(self):
        a, b = spd_system()
        with observe("solve") as sess:
            res = cg(a, b, tol=1e-8)
        assert res.converged
        (solve,) = [s for s in sess.spans if s.name == "cg.solve"]
        assert solve.category == "solver"
        matvecs = [s for s in sess.spans if s.name == "operator.matvec"]
        assert len(matvecs) == res.spmv_count
        assert all(m.parent == solve.id for m in matvecs)

    def test_bicgstab_and_jacobi_record_solve_spans(self):
        a, b = spd_system()
        with observe() as sess:
            bicgstab(a, b, tol=1e-8)
            jacobi(a, b, tol=1e-8, maxiter=2000)
        names = {s.name for s in sess.by_category("solver")}
        assert {"bicgstab.solve", "jacobi.solve"} <= names

    def test_gpu_cg_iteration_spans(self):
        rng = np.random.default_rng(22)
        n = 128
        rows = np.concatenate([np.arange(n), np.arange(n - 1),
                               np.arange(1, n)])
        cols = np.concatenate([np.arange(n), np.arange(1, n),
                               np.arange(n - 1)])
        vals = np.concatenate([np.full(n, 4.0), np.full(n - 1, -1.0),
                               np.full(n - 1, -1.0)])
        from repro.formats.coo import COOMatrix

        coo = COOMatrix(rows, cols, vals, (n, n))
        runner = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=32))
        b = rng.standard_normal(n)
        with observe() as sess:
            res = gpu_cg(runner, b, tol=1e-8)
        assert res.converged
        (solve,) = [s for s in sess.spans if s.name == "gpu_cg.solve"]
        iters = [s for s in sess.spans if s.name == "gpu_cg.iteration"]
        assert len(iters) == res.iterations
        assert all(s.parent == solve.id for s in iters)
        # kernel launches nest inside the iterations
        assert sess.by_category("kernel")


class TestHybridSpans:
    def test_hybrid_halves_recorded(self):
        rng = np.random.default_rng(23)
        coo = random_diagonal_matrix(rng, n=512)
        hybrid = HybridSpMV(coo, gpu_fraction=0.5, mrows=64)
        x = rng.standard_normal(coo.ncols)
        with observe() as sess:
            result = hybrid.run(x)
        assert np.allclose(result.y, coo.matvec(x))
        (top,) = [s for s in sess.spans if s.name == "hybrid.spmv"]
        names = {s.name for s in sess.spans if s.parent == top.id}
        assert "hybrid.gpu_half" in names
        assert "hybrid.cpu_half" in names
        assert 0.0 < top.attrs["gpu_fraction"] < 1.0

"""Footprint accounting tests (feeds the DIA out-of-memory check)."""

import numpy as np
import pytest

from repro.formats import from_dense
from repro.formats.footprint import (
    FootprintReport,
    fits_in_device,
    footprint_bytes,
    footprint_report,
    value_itemsize,
)


def test_value_itemsize():
    assert value_itemsize("double") == 8
    assert value_itemsize("single") == 4
    assert value_itemsize("FP64") == 8
    with pytest.raises(ValueError):
        value_itemsize("half")


@pytest.fixture
def csr(rng):
    d = (rng.random((8, 8)) < 0.4) * rng.standard_normal((8, 8))
    return from_dense(d, "csr")


def test_footprint_double_vs_single(csr):
    d = footprint_bytes(csr, "double")
    s = footprint_bytes(csr, "single")
    # single halves only the value array
    assert d - s == 4 * csr.nnz


def test_report_total_matches(csr):
    rep = footprint_report(csr, "double")
    assert isinstance(rep, FootprintReport)
    assert rep.total == footprint_bytes(csr, "double")
    assert set(rep.per_array) == {"indptr", "indices", "data"}


def test_fits_in_device(csr):
    need = footprint_bytes(csr, "double") + (csr.nrows + csr.ncols) * 8
    assert fits_in_device(csr, need, "double")
    assert not fits_in_device(csr, need - 1, "double")


def test_dia_single_fits_where_double_does_not(rng):
    """The af_*_k101 scenario in miniature: capacity between the single
    and double DIA footprints."""
    n = 64
    d = np.zeros((n, n))
    for off in range(-20, 21):
        idx = np.arange(max(0, -off), min(n, n - off))
        d[idx[::7], idx[::7] + off] = 1.0
    dia = from_dense(d, "dia")
    capacity = (footprint_bytes(dia, "double") + footprint_bytes(dia, "single")) // 2
    assert fits_in_device(dia, capacity, "single", vector_len=0)
    assert not fits_in_device(dia, capacity, "double", vector_len=0)

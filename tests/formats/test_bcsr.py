"""Unit tests for BCSR."""

import numpy as np
import pytest

from repro.formats.base import FormatError
from repro.formats.bcsr import BCSRMatrix
from repro.formats.coo import COOMatrix


@pytest.fixture
def block_dense():
    """8x8 with two dense 2x2 blocks and one partial block."""
    d = np.zeros((8, 8))
    d[0:2, 0:2] = [[1, 2], [3, 4]]
    d[4:6, 6:8] = [[5, 6], [7, 8]]
    d[7, 3] = 9.0  # partial block at (3, 1)
    return d


class TestConstruction:
    def test_block_count(self, block_dense):
        m = BCSRMatrix.from_dense(block_dense, (2, 2))
        assert m.nblocks == 3
        assert m.nnz == 9
        assert m.stored_elements == 3 * 4

    def test_fill_ratio_counts_padding(self, block_dense):
        m = BCSRMatrix.from_dense(block_dense, (2, 2))
        assert m.fill_ratio == pytest.approx(12 / 9)

    def test_non_divisible_shape_padded(self):
        d = np.zeros((5, 5))
        d[4, 4] = 1.0
        m = BCSRMatrix.from_dense(d, (2, 2))
        assert m.nblocks == 1
        assert np.allclose(m.todense(), d)

    @pytest.mark.parametrize("bs", [(0, 2), (2, 0), (-1, 1)])
    def test_bad_block_shape(self, bs):
        with pytest.raises(FormatError):
            BCSRMatrix.from_coo(COOMatrix.empty((4, 4)), bs)

    def test_bad_indptr(self):
        with pytest.raises(FormatError):
            BCSRMatrix([0, 1], [0], np.zeros((1, 2, 2)), (4, 4), (2, 2))

    def test_block_col_out_of_range(self):
        with pytest.raises(FormatError):
            BCSRMatrix([0, 1, 1], [9], np.zeros((1, 2, 2)), (4, 4), (2, 2))

    def test_blocks_shape_checked(self):
        with pytest.raises(FormatError):
            BCSRMatrix([0, 1, 1], [0], np.zeros((1, 3, 3)), (4, 4), (2, 2))


class TestMatvec:
    @pytest.mark.parametrize("bs", [(1, 1), (2, 2), (3, 2), (2, 3), (4, 4)])
    def test_matches_dense(self, block_dense, rng, bs):
        x = rng.standard_normal(8)
        m = BCSRMatrix.from_dense(block_dense, bs)
        assert np.allclose(m.matvec(x), block_dense @ x)

    def test_random_rect(self, rng):
        d = (rng.random((7, 11)) < 0.3) * rng.standard_normal((7, 11))
        x = rng.standard_normal(11)
        m = BCSRMatrix.from_dense(d, (2, 3))
        assert np.allclose(m.matvec(x), d @ x)

    def test_empty(self):
        m = BCSRMatrix.from_coo(COOMatrix.empty((4, 6)), (2, 2))
        assert m.nblocks == 0
        assert np.array_equal(m.matvec(np.ones(6)), np.zeros(4))


class TestRoundtrip:
    def test_to_coo(self, fig2_coo):
        assert BCSRMatrix.from_coo(fig2_coo, (2, 2)).to_coo().equals(fig2_coo)

    def test_one_by_one_blocks_equal_csr_structure(self, fig2_coo):
        m = BCSRMatrix.from_coo(fig2_coo, (1, 1))
        assert m.nblocks == fig2_coo.nnz
        assert m.fill_ratio == 1.0

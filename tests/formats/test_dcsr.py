"""Delta-compressed CSR (related-work index/value compression)."""

import numpy as np
import pytest

from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dcsr import DeltaCSRMatrix
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def small(fig2_coo):
    return DeltaCSRMatrix.from_coo(fig2_coo)


class TestEncoding:
    def test_roundtrip_indices(self, small, fig2_coo):
        csr = CSRMatrix.from_coo(fig2_coo)
        assert np.array_equal(small.decode_indices(), csr.indices.astype(np.int64))

    def test_roundtrip_matrix(self, small, fig2_coo):
        assert small.to_coo().equals(fig2_coo)

    def test_matvec(self, small, fig2_coo, rng):
        x = rng.standard_normal(9)
        assert np.allclose(small.matvec(x), fig2_coo.matvec(x))

    def test_nnz(self, small, fig2_coo):
        assert small.nnz == fig2_coo.nnz

    def test_empty_rows(self):
        m = COOMatrix([0, 3], [1, 2], [1.0, 2.0], (5, 4))
        d = DeltaCSRMatrix.from_coo(m)
        assert d.to_coo().equals(m)

    def test_empty_matrix(self):
        d = DeltaCSRMatrix.from_coo(COOMatrix.empty((4, 4)))
        assert d.nnz == 0
        assert np.array_equal(d.matvec(np.ones(4)), np.zeros(4))

    def test_wide_deltas_use_wider_width(self):
        # deltas of 300 need 2-byte encoding; 70000 needs 4-byte
        m = COOMatrix([0, 0, 1, 1], [0, 300, 0, 70000], np.ones(4), (2, 70001))
        d = DeltaCSRMatrix.from_coo(m)
        assert d.to_coo().equals(m)
        widths = {int(d.stream[d.unit_offsets[i]]) for i in range(2)}
        assert widths == {2, 4}

    def test_random_roundtrips(self):
        for seed in range(5):
            rng = np.random.default_rng(seed)
            coo = random_diagonal_matrix(rng, n=120, density=0.5, scatter=4)
            d = DeltaCSRMatrix.from_coo(coo)
            assert d.to_coo().equals(coo)
            x = rng.standard_normal(120)
            assert np.allclose(d.matvec(x), coo.matvec(x))


class TestCompression:
    def test_banded_matrix_compresses(self, rng):
        """Small deltas -> ~1 byte per index vs CSR's 4."""
        coo = random_diagonal_matrix(rng, n=2000, offsets=(-2, -1, 0, 1, 2),
                                     density=1.0, scatter=0)
        d = DeltaCSRMatrix.from_coo(coo)
        assert d.compression_ratio > 2.0
        csr = CSRMatrix.from_coo(coo)
        assert d.nbytes(8, 4) < csr.nbytes(8, 4)

    def test_footprint_counts_stream_as_bytes(self, small):
        nb = small.nbytes(8, 4)
        assert nb == small.stream.size + small.indptr.size * 4 + small.nnz * 8


class TestValueTable:
    def test_csr_vi_constant_coefficients(self, rng):
        """FD matrices with few distinct values compress their data."""
        coo0 = random_diagonal_matrix(rng, n=500, offsets=(-1, 0, 1),
                                      density=1.0, scatter=0)
        vals = np.where(coo0.offsets_of_entries() == 0, 4.0, -1.0)
        coo = COOMatrix(coo0.rows, coo0.cols, vals, coo0.shape)
        d = DeltaCSRMatrix.from_coo(coo, compress_values=True)
        assert d.value_table is not None
        assert d.value_table.size == 2
        assert d.to_coo().equals(coo)
        assert d.nbytes(8, 4) < DeltaCSRMatrix.from_coo(coo).nbytes(8, 4)

    def test_table_skipped_when_values_diverse(self, rng):
        coo = random_diagonal_matrix(rng, n=300, density=1.0, scatter=0)
        d = DeltaCSRMatrix.from_coo(coo, compress_values=True,
                                    value_table_max=10)
        assert d.value_table is None

    def test_matvec_through_table(self, rng):
        coo0 = random_diagonal_matrix(rng, n=200, offsets=(0, 3), density=1.0,
                                      scatter=0)
        vals = np.sign(coo0.vals) * 2.0
        coo = COOMatrix(coo0.rows, coo0.cols, vals, coo0.shape)
        d = DeltaCSRMatrix.from_coo(coo, compress_values=True)
        x = rng.standard_normal(200)
        assert np.allclose(d.matvec(x), coo.matvec(x))

"""Unit tests for the canonical COO format."""

import numpy as np
import pytest

from repro.formats.base import FormatError
from repro.formats.coo import COOMatrix


class TestConstruction:
    def test_basic_triplets(self):
        m = COOMatrix([0, 1], [1, 2], [3.0, 4.0], (2, 3))
        assert m.shape == (2, 3)
        assert m.nnz == 2
        assert m.vals.dtype == np.float64

    def test_triplets_are_sorted_row_major(self):
        m = COOMatrix([1, 0, 0], [0, 2, 1], [1.0, 2.0, 3.0], (2, 3))
        assert m.rows.tolist() == [0, 0, 1]
        assert m.cols.tolist() == [1, 2, 0]
        assert m.vals.tolist() == [3.0, 2.0, 1.0]

    def test_duplicates_are_summed(self):
        m = COOMatrix([0, 0, 0], [1, 1, 2], [1.0, 2.0, 5.0], (1, 3))
        assert m.nnz == 2
        assert m.vals.tolist() == [3.0, 5.0]

    def test_explicit_zeros_dropped_by_default(self):
        m = COOMatrix([0, 0], [0, 1], [0.0, 1.0], (1, 2))
        assert m.nnz == 1

    def test_explicit_zeros_kept_on_request(self):
        m = COOMatrix([0, 0], [0, 1], [0.0, 1.0], (1, 2), keep_explicit_zeros=True)
        assert m.nnz == 2

    def test_duplicates_cancelling_to_zero_dropped(self):
        m = COOMatrix([0, 0], [1, 1], [2.0, -2.0], (1, 3))
        assert m.nnz == 0

    def test_empty(self):
        m = COOMatrix.empty((4, 5))
        assert m.nnz == 0
        assert m.todense().shape == (4, 5)

    def test_from_dense(self):
        d = np.array([[1.0, 0.0], [0.0, 2.0]])
        m = COOMatrix.from_dense(d)
        assert m.nnz == 2
        assert np.array_equal(m.todense(), d)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(FormatError):
            COOMatrix.from_dense(np.ones(3))

    @pytest.mark.parametrize("shape", [(0, 3), (3, 0), (-1, 2), (2,)])
    def test_bad_shape_rejected(self, shape):
        with pytest.raises(FormatError):
            COOMatrix.empty(shape)

    def test_row_out_of_range(self):
        with pytest.raises(FormatError):
            COOMatrix([5], [0], [1.0], (2, 3))

    def test_col_out_of_range(self):
        with pytest.raises(FormatError):
            COOMatrix([0], [3], [1.0], (2, 3))

    def test_negative_index_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix([-1], [0], [1.0], (2, 3))

    def test_length_mismatch_rejected(self):
        with pytest.raises(FormatError):
            COOMatrix([0, 1], [0], [1.0], (2, 3))


class TestMatvec:
    def test_matches_dense(self, rng):
        d = (rng.random((7, 11)) < 0.3) * rng.standard_normal((7, 11))
        m = COOMatrix.from_dense(d)
        x = rng.standard_normal(11)
        assert np.allclose(m.matvec(x), d @ x)

    def test_matmul_operator(self, fig2_coo, fig2_dense, rng):
        x = rng.standard_normal(9)
        assert np.allclose(fig2_coo @ x, fig2_dense @ x)

    def test_out_parameter(self, fig2_coo, rng):
        x = rng.standard_normal(9)
        out = np.full(6, 99.0)
        y = fig2_coo.matvec(x, out=out)
        assert y is out
        assert np.allclose(out, fig2_coo.todense() @ x)

    def test_duplicate_coordinates_accumulate(self):
        m = COOMatrix([0, 0], [0, 0], [1.0, 2.0], (1, 1))
        assert m.matvec(np.array([2.0]))[0] == pytest.approx(6.0)

    def test_wrong_x_length(self, fig2_coo):
        with pytest.raises(FormatError):
            fig2_coo.matvec(np.ones(5))

    def test_x_2d_rejected(self, fig2_coo):
        with pytest.raises(FormatError):
            fig2_coo.matvec(np.ones((9, 1)))

    def test_empty_matrix_gives_zero(self):
        m = COOMatrix.empty((3, 4))
        assert np.array_equal(m.matvec(np.ones(4)), np.zeros(3))


class TestQueries:
    def test_row_lengths(self, fig2_coo):
        assert fig2_coo.row_lengths().tolist() == [5, 5, 3, 3, 2, 4]

    def test_diagonal_offsets(self):
        m = COOMatrix([0, 1, 2], [2, 1, 0], [1.0, 1.0, 1.0], (3, 3))
        assert m.diagonal_offsets().tolist() == [-2, 0, 2]

    def test_offsets_of_entries(self):
        m = COOMatrix([0, 1], [1, 0], [1.0, 1.0], (2, 2))
        assert sorted(m.offsets_of_entries().tolist()) == [-1, 1]

    def test_equals_exact(self, fig2_coo):
        other = COOMatrix(fig2_coo.rows, fig2_coo.cols, fig2_coo.vals, fig2_coo.shape)
        assert fig2_coo.equals(other)

    def test_equals_detects_value_change(self, fig2_coo):
        vals = fig2_coo.vals.copy()
        vals[0] += 1e-3
        other = COOMatrix(fig2_coo.rows, fig2_coo.cols, vals, fig2_coo.shape)
        assert not fig2_coo.equals(other)
        assert fig2_coo.equals(other, tol=1e-2)

    def test_equals_detects_shape_change(self, fig2_coo):
        other = COOMatrix(fig2_coo.rows, fig2_coo.cols, fig2_coo.vals, (6, 10))
        assert not fig2_coo.equals(other)

    def test_stored_elements_equals_nnz(self, fig2_coo):
        assert fig2_coo.stored_elements == fig2_coo.nnz
        assert fig2_coo.fill_ratio == 1.0

    def test_to_coo_is_identity(self, fig2_coo):
        assert fig2_coo.to_coo() is fig2_coo

    def test_array_inventory_names(self, fig2_coo):
        assert set(fig2_coo.array_inventory()) == {"rows", "cols", "vals"}

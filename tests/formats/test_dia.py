"""Unit tests for DIA."""

import numpy as np
import pytest

from repro.formats.base import FormatError
from repro.formats.coo import COOMatrix
from repro.formats.dia import DIAMatrix


@pytest.fixture
def tri():
    """5x5 tridiagonal."""
    n = 5
    d = np.zeros((n, n))
    for off in (-1, 0, 1):
        idx = np.arange(max(0, -off), min(n, n - off))
        d[idx, idx + off] = off + 2.0
    return d


class TestConstruction:
    def test_from_dense_tridiagonal(self, tri):
        m = DIAMatrix.from_dense(tri)
        assert m.offsets.tolist() == [-1, 0, 1]
        assert m.ndiags == 3
        assert m.nnz == 13
        assert m.stored_elements == 15  # 3 diagonals x 5 rows

    def test_fill_ratio(self, tri):
        m = DIAMatrix.from_dense(tri)
        assert m.fill_ratio == pytest.approx(15 / 13)

    def test_in_matrix_elements(self, tri):
        m = DIAMatrix.from_dense(tri)
        # offsets -1 and +1 have 4 in-matrix slots each, 0 has 5
        assert m.in_matrix_elements == 13

    def test_offsets_must_increase(self):
        with pytest.raises(FormatError):
            DIAMatrix([1, 0], np.zeros((2, 3)), (3, 3))

    def test_offset_out_of_matrix(self):
        with pytest.raises(FormatError):
            DIAMatrix([5], np.zeros((1, 3)), (3, 3))

    def test_data_shape_checked(self):
        with pytest.raises(FormatError):
            DIAMatrix([0], np.zeros((2, 3)), (3, 3))

    def test_value_outside_extent_rejected(self):
        data = np.ones((1, 3))  # offset +2 on a 3x3: only row 0 valid
        with pytest.raises(FormatError):
            DIAMatrix([2], data, (3, 3))

    def test_rectangular(self):
        d = np.zeros((3, 6))
        d[np.arange(3), np.arange(3) + 2] = 1.0
        m = DIAMatrix.from_dense(d)
        assert m.offsets.tolist() == [2]
        assert np.allclose(m.todense(), d)


class TestMatvec:
    def test_matches_dense(self, tri, rng):
        x = rng.standard_normal(5)
        assert np.allclose(DIAMatrix.from_dense(tri).matvec(x), tri @ x)

    def test_scatter_point_costs_whole_diagonal(self):
        """The paper's core motivation: one isolated nonzero forces DIA
        to store (and compute over) the entire diagonal."""
        d = np.zeros((100, 100))
        d[50, 10] = 1.0  # offset -40
        m = DIAMatrix.from_dense(d)
        assert m.nnz == 1
        assert m.stored_elements == 100
        assert m.in_matrix_elements == 60

    def test_random_against_dense(self, rng):
        for _ in range(5):
            d = (rng.random((12, 15)) < 0.2) * rng.standard_normal((12, 15))
            x = rng.standard_normal(15)
            assert np.allclose(DIAMatrix.from_dense(d).matvec(x), d @ x)

    def test_empty(self):
        m = DIAMatrix.from_coo(COOMatrix.empty((4, 4)))
        assert m.ndiags == 0
        assert np.array_equal(m.matvec(np.ones(4)), np.zeros(4))


class TestRoundtrip:
    def test_to_coo(self, fig2_coo):
        assert DIAMatrix.from_coo(fig2_coo).to_coo().equals(fig2_coo)

    def test_inventory(self, tri):
        inv = DIAMatrix.from_dense(tri).array_inventory()
        assert set(inv) == {"offsets", "data"}

    def test_nbytes_counts_padding(self, tri):
        m = DIAMatrix.from_dense(tri)
        assert m.nbytes(8, 4) == 15 * 8 + 3 * 4

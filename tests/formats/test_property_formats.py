"""Property-based tests over the format lattice (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.formats import convert, from_dense
from repro.formats.convert import FORMATS
from repro.formats.coo import COOMatrix


@st.composite
def sparse_dense(draw, max_dim=24):
    nrows = draw(st.integers(1, max_dim))
    ncols = draw(st.integers(1, max_dim))
    dense = draw(
        hnp.arrays(
            np.float64,
            (nrows, ncols),
            elements=st.one_of(
                st.just(0.0),
                st.just(0.0),
                st.floats(-100, 100, allow_nan=False).filter(lambda v: v != 0),
            ),
        )
    )
    return dense


@settings(max_examples=60, deadline=None)
@given(dense=sparse_dense(), fmt=st.sampled_from(sorted(FORMATS)))
def test_matvec_equals_dense(dense, fmt):
    m = from_dense(dense, fmt)
    x = np.linspace(-1.0, 1.0, dense.shape[1])
    assert np.allclose(m.matvec(x), dense @ x, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(dense=sparse_dense(), fmt=st.sampled_from(sorted(FORMATS)))
def test_roundtrip_through_coo(dense, fmt):
    m = from_dense(dense, fmt)
    assert np.allclose(m.to_coo().todense(), dense)


@settings(max_examples=40, deadline=None)
@given(dense=sparse_dense(), src=st.sampled_from(sorted(FORMATS)),
       dst=st.sampled_from(sorted(FORMATS)))
def test_conversion_composes(dense, src, dst):
    a = from_dense(dense, src)
    b = convert(a, dst)
    assert b.nnz == a.nnz
    assert np.allclose(b.todense(), dense)


@settings(max_examples=60, deadline=None)
@given(dense=sparse_dense())
def test_matvec_linearity(dense):
    """A(ax + by) == a*Ax + b*Ay for the COO reference."""
    m = COOMatrix.from_dense(dense)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(dense.shape[1])
    y = rng.standard_normal(dense.shape[1])
    lhs = m.matvec(2.5 * x - 1.5 * y)
    rhs = 2.5 * m.matvec(x) - 1.5 * m.matvec(y)
    assert np.allclose(lhs, rhs, atol=1e-8)


@settings(max_examples=60, deadline=None)
@given(dense=sparse_dense())
def test_dedup_idempotent(dense):
    """Re-wrapping canonical triplets changes nothing."""
    a = COOMatrix.from_dense(dense)
    b = COOMatrix(a.rows, a.cols, a.vals, a.shape)
    assert a.equals(b)


@settings(max_examples=40, deadline=None)
@given(dense=sparse_dense(), fmt=st.sampled_from(sorted(FORMATS)))
def test_stored_elements_at_least_nnz(dense, fmt):
    m = from_dense(dense, fmt)
    assert m.stored_elements >= m.nnz
    assert m.fill_ratio >= 1.0 or m.nnz == 0

"""Conversion lattice: every format -> every format preserves the matrix."""

import numpy as np
import pytest

from repro.formats import convert, from_dense, to_dense
from repro.formats.base import FormatError
from repro.formats.convert import FORMATS

ALL = sorted(FORMATS)


@pytest.fixture
def dense(rng):
    d = (rng.random((10, 13)) < 0.3) * rng.standard_normal((10, 13))
    d[3, 3] = 7.0  # guarantee at least one entry
    return d


@pytest.mark.parametrize("src", ALL)
@pytest.mark.parametrize("dst", ALL)
def test_every_conversion_preserves_matrix(dense, src, dst):
    a = from_dense(dense, src)
    b = convert(a, dst)
    assert b.name == dst
    assert np.allclose(to_dense(b), dense)


@pytest.mark.parametrize("fmt", ALL)
def test_matvec_agrees_after_conversion(dense, rng, fmt):
    x = rng.standard_normal(13)
    m = from_dense(dense, fmt)
    assert np.allclose(m.matvec(x), dense @ x)


@pytest.mark.parametrize("fmt", ALL)
def test_nnz_preserved(dense, fmt):
    nnz = int(np.count_nonzero(dense))
    assert from_dense(dense, fmt).nnz == nnz


def test_unknown_format_rejected(dense):
    with pytest.raises(FormatError):
        from_dense(dense, "banana")


def test_convert_by_class(dense):
    from repro.formats.csr import CSRMatrix

    m = convert(from_dense(dense, "coo"), CSRMatrix)
    assert isinstance(m, CSRMatrix)


def test_convert_kwargs_forwarded(dense):
    m = convert(from_dense(dense, "coo"), "bcsr", block_shape=(5, 5))
    assert m.block_shape == (5, 5)

"""Unit tests for CSR."""

import numpy as np
import pytest

from repro.formats.base import FormatError
from repro.formats.csr import CSRMatrix


@pytest.fixture
def small():
    # [[1 0 2], [0 0 0], [3 4 0]]
    return CSRMatrix([0, 2, 2, 4], [0, 2, 0, 1], [1.0, 2.0, 3.0, 4.0], (3, 3))


class TestConstruction:
    def test_basic(self, small):
        assert small.nnz == 4
        assert small.row_lengths().tolist() == [2, 0, 2]

    def test_indptr_wrong_length(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 1], [0], [1.0], (3, 3))

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(FormatError):
            CSRMatrix([1, 1, 1, 2], [0], [1.0], (3, 3))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 2, 1, 2], [0, 1], [1.0, 2.0], (3, 3))

    def test_indices_length_mismatch(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 1, 1, 2], [0, 1, 2], [1.0, 2.0, 3.0], (3, 3))

    def test_column_out_of_range(self):
        with pytest.raises(FormatError):
            CSRMatrix([0, 1, 1, 1], [7], [1.0], (3, 3))

    def test_from_coo_roundtrip(self, fig2_coo):
        csr = CSRMatrix.from_coo(fig2_coo)
        assert csr.to_coo().equals(fig2_coo)

    def test_from_dense(self, rng):
        d = (rng.random((6, 8)) < 0.4) * rng.standard_normal((6, 8))
        csr = CSRMatrix.from_dense(d)
        assert np.allclose(csr.todense(), d)


class TestMatvec:
    def test_matches_dense(self, small, rng):
        x = rng.standard_normal(3)
        dense = np.array([[1, 0, 2], [0, 0, 0], [3, 4, 0]], dtype=float)
        assert np.allclose(small.matvec(x), dense @ x)

    def test_empty_rows_produce_zero(self, small):
        y = small.matvec(np.ones(3))
        assert y[1] == 0.0

    def test_all_rows_empty(self):
        m = CSRMatrix([0, 0, 0], [], [], (2, 5))
        assert np.array_equal(m.matvec(np.ones(5)), np.zeros(2))

    def test_first_row_empty(self):
        m = CSRMatrix([0, 0, 1], [2], [5.0], (2, 3))
        y = m.matvec(np.array([1.0, 1.0, 2.0]))
        assert y.tolist() == [0.0, 10.0]

    def test_last_row_empty(self):
        m = CSRMatrix([0, 1, 1], [0], [5.0], (2, 3))
        y = m.matvec(np.ones(3))
        assert y.tolist() == [5.0, 0.0]

    def test_out_parameter_zeroed(self, small):
        out = np.full(3, 7.0)
        small.matvec(np.zeros(3), out=out)
        assert np.array_equal(out, np.zeros(3))

    def test_random_against_dense(self, rng):
        for _ in range(5):
            d = (rng.random((20, 17)) < 0.25) * rng.standard_normal((20, 17))
            x = rng.standard_normal(17)
            assert np.allclose(CSRMatrix.from_dense(d).matvec(x), d @ x)


class TestQueries:
    def test_row_slice(self, small):
        cols, vals = small.row_slice(2)
        assert cols.tolist() == [0, 1]
        assert vals.tolist() == [3.0, 4.0]

    def test_row_slice_empty_row(self, small):
        cols, vals = small.row_slice(1)
        assert cols.size == 0 and vals.size == 0

    def test_inventory(self, small):
        inv = small.array_inventory()
        assert set(inv) == {"indptr", "indices", "data"}
        assert inv["indptr"].size == 4

    def test_nbytes_double_vs_single(self, small):
        # 4 values + 4 indices + 4 indptr entries
        assert small.nbytes(8, 4) == 4 * 8 + 8 * 4
        assert small.nbytes(4, 4) == 4 * 4 + 8 * 4

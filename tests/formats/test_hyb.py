"""Unit tests for HYB and its split heuristic."""

import numpy as np
import pytest

from repro.formats.base import FormatError
from repro.formats.coo import COOMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix, compute_hyb_width


class TestWidthHeuristic:
    def test_uniform_rows_go_entirely_ell(self):
        lengths = np.full(10000, 7)
        assert compute_hyb_width(lengths) == 7

    def test_empty(self):
        assert compute_hyb_width(np.array([], dtype=int)) == 0

    def test_few_long_rows_overflow(self):
        # 100k short rows and 100 very long rows: the slab must not be
        # sized by the outliers
        lengths = np.concatenate([np.full(100_000, 4), np.full(100, 64)])
        k = compute_hyb_width(lengths)
        assert 4 <= k < 64

    def test_outlier_rows_truncated(self):
        # 10 outlier rows must not widen the slab by 10x
        lengths = np.concatenate([np.full(1000, 3), np.full(10, 30)])
        assert compute_hyb_width(lengths) == 3

    def test_relative_speed_extreme(self):
        lengths = np.concatenate([np.full(100_000, 4), np.full(30_000, 10)])
        wide = compute_hyb_width(lengths, relative_speed=1e9, breakeven_rows=0)
        narrow = compute_hyb_width(lengths, relative_speed=1.0, breakeven_rows=0)
        assert wide >= narrow


class TestSplit:
    def test_explicit_width_split(self, fig2_coo):
        m = HYBMatrix.from_coo(fig2_coo, width=3)
        assert m.ell.width == 3
        assert m.ell.nnz + m.coo.nnz == fig2_coo.nnz
        # rows 0/1 overflow by 2 each, row 5 (4 entries) by 1
        assert m.coo.nnz == 5

    def test_ell_keeps_first_entries_of_each_row(self, fig2_coo):
        m = HYBMatrix.from_coo(fig2_coo, width=3)
        # row 0 columns 0,2,3 in ELL; 5,7 overflow
        assert set(m.coo.cols[m.coo.rows == 0].tolist()) == {5, 7}

    def test_zero_width(self, fig2_coo):
        m = HYBMatrix.from_coo(fig2_coo, width=0)
        assert m.ell.nnz == 0
        assert m.coo.nnz == fig2_coo.nnz

    def test_full_width_no_tail(self, fig2_coo):
        m = HYBMatrix.from_coo(fig2_coo, width=5)
        assert m.coo.nnz == 0
        assert m.coo_fraction == 0.0

    def test_coo_fraction(self, fig2_coo):
        m = HYBMatrix.from_coo(fig2_coo, width=3)
        assert m.coo_fraction == pytest.approx(5 / 22)

    def test_shape_mismatch_rejected(self, fig2_coo):
        ell = ELLMatrix.from_coo(fig2_coo)
        with pytest.raises(FormatError):
            HYBMatrix(ell, COOMatrix.empty((5, 5)))

    def test_empty_matrix(self):
        m = HYBMatrix.from_coo(COOMatrix.empty((4, 4)))
        assert m.nnz == 0
        assert np.array_equal(m.matvec(np.ones(4)), np.zeros(4))


class TestMatvec:
    @pytest.mark.parametrize("width", [0, 1, 3, 5])
    def test_matches_dense_any_split(self, fig2_coo, fig2_dense, rng, width):
        x = rng.standard_normal(9)
        m = HYBMatrix.from_coo(fig2_coo, width=width)
        assert np.allclose(m.matvec(x), fig2_dense @ x)

    def test_default_heuristic_correct(self, rng):
        d = (rng.random((50, 50)) < 0.15) * rng.standard_normal((50, 50))
        x = rng.standard_normal(50)
        assert np.allclose(HYBMatrix.from_dense(d).matvec(x), d @ x)

    def test_roundtrip(self, fig2_coo):
        assert HYBMatrix.from_coo(fig2_coo, width=3).to_coo().equals(fig2_coo)

    def test_inventory_prefixes(self, fig2_coo):
        inv = HYBMatrix.from_coo(fig2_coo, width=3).array_inventory()
        assert any(k.startswith("ell_") for k in inv)
        assert any(k.startswith("coo_") for k in inv)

    def test_stored_elements(self, fig2_coo):
        m = HYBMatrix.from_coo(fig2_coo, width=3)
        assert m.stored_elements == 6 * 3 + 5

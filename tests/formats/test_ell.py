"""Unit tests for ELL."""

import numpy as np
import pytest

from repro.formats.base import FormatError
from repro.formats.coo import COOMatrix
from repro.formats.ell import ELLMatrix


class TestConstruction:
    def test_width_is_max_row_length(self, fig2_coo):
        m = ELLMatrix.from_coo(fig2_coo)
        assert m.width == 5
        assert m.stored_elements == 6 * 5
        assert m.nnz == fig2_coo.nnz

    def test_explicit_wider_width(self, fig2_coo):
        m = ELLMatrix.from_coo(fig2_coo, width=8)
        assert m.width == 8
        assert m.nnz == fig2_coo.nnz

    def test_width_too_small_rejected(self, fig2_coo):
        with pytest.raises(FormatError):
            ELLMatrix.from_coo(fig2_coo, width=3)

    def test_padding_slots_hold_zero(self, fig2_coo):
        m = ELLMatrix.from_coo(fig2_coo)
        assert np.all(m.data[~m.occupancy] == 0.0)

    def test_occupancy_shape_checked(self):
        with pytest.raises(FormatError):
            ELLMatrix(np.zeros((2, 2), dtype=int), np.zeros((2, 2)), (2, 3),
                      occupancy=np.ones((2, 3), dtype=bool))

    def test_nonzero_padding_rejected(self):
        data = np.array([[1.0, 2.0]])
        occ = np.array([[True, False]])
        with pytest.raises(FormatError):
            ELLMatrix(np.zeros((1, 2), dtype=int), data, (1, 3), occ)

    def test_column_out_of_range(self):
        with pytest.raises(FormatError):
            ELLMatrix(np.array([[5]]), np.array([[1.0]]), (1, 3))

    def test_stored_zero_value_with_occupancy(self):
        """A mathematical zero can be stored as a real slot."""
        idx = np.array([[1]])
        data = np.array([[0.0]])
        occ = np.array([[True]])
        m = ELLMatrix(idx, data, (1, 3), occ)
        assert m.nnz == 1

    def test_empty_matrix(self):
        m = ELLMatrix.from_coo(COOMatrix.empty((3, 3)))
        assert m.width == 0
        assert np.array_equal(m.matvec(np.ones(3)), np.zeros(3))


class TestMatvec:
    def test_matches_dense(self, fig2_coo, fig2_dense, rng):
        x = rng.standard_normal(9)
        assert np.allclose(ELLMatrix.from_coo(fig2_coo).matvec(x), fig2_dense @ x)

    def test_random_against_dense(self, rng):
        for _ in range(5):
            d = (rng.random((9, 14)) < 0.3) * rng.standard_normal((9, 14))
            x = rng.standard_normal(14)
            assert np.allclose(ELLMatrix.from_dense(d).matvec(x), d @ x)

    def test_varying_row_lengths(self, rng):
        d = np.zeros((4, 4))
        d[0, :] = 1.0   # full row
        d[2, 1] = 3.0   # single entry
        x = rng.standard_normal(4)
        assert np.allclose(ELLMatrix.from_dense(d).matvec(x), d @ x)


class TestLayout:
    def test_column_major_view_shapes(self, fig2_coo):
        m = ELLMatrix.from_coo(fig2_coo)
        idx, data = m.column_major_view()
        assert idx.shape == (5, 6)
        assert data.shape == (5, 6)
        assert np.array_equal(idx.T, m.indices)

    def test_roundtrip(self, fig2_coo):
        assert ELLMatrix.from_coo(fig2_coo).to_coo().equals(fig2_coo)

    def test_inventory_excludes_occupancy(self, fig2_coo):
        inv = ELLMatrix.from_coo(fig2_coo).array_inventory()
        assert set(inv) == {"indices", "data"}

    def test_fill_ratio(self, fig2_coo):
        m = ELLMatrix.from_coo(fig2_coo)
        assert m.fill_ratio == pytest.approx(30 / 22)

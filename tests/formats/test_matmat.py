"""Multi-vector SpMM across the format lattice."""

import numpy as np
import pytest

from repro.formats import from_dense
from repro.formats.base import FormatError
from repro.formats.convert import FORMATS
from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix

ALL = sorted(FORMATS)


@pytest.fixture
def dense(rng):
    d = (rng.random((12, 15)) < 0.3) * rng.standard_normal((12, 15))
    d[0, 0] = 1.0
    return d


@pytest.mark.parametrize("fmt", ALL)
def test_matmat_matches_dense(dense, rng, fmt):
    m = from_dense(dense, fmt)
    x = rng.standard_normal((15, 4))
    assert np.allclose(m.matmat(x), dense @ x)


@pytest.mark.parametrize("fmt", ["csr", "coo"])
def test_matmul_operator_dispatches_on_ndim(dense, rng, fmt):
    m = from_dense(dense, fmt)
    x1 = rng.standard_normal(15)
    x2 = rng.standard_normal((15, 3))
    assert (m @ x1).shape == (12,)
    assert (m @ x2).shape == (12, 3)
    assert np.allclose(m @ x2, dense @ x2)


def test_csr_blocked_path_equals_looped(dense, rng):
    from repro.formats.base import SparseFormat

    m = from_dense(dense, "csr")
    x = rng.standard_normal((15, 5))
    blocked = m.matmat(x)
    looped = SparseFormat.matmat(m, x)
    assert np.allclose(blocked, looped)


def test_csr_matmat_with_empty_rows(rng):
    from repro.formats.csr import CSRMatrix

    m = CSRMatrix([0, 2, 2, 3], [0, 1, 2], [1.0, 2.0, 3.0], (3, 3))
    x = rng.standard_normal((3, 2))
    dense = m.todense()
    assert np.allclose(m.matmat(x), dense @ x)


def test_crsd_matmat(dense, rng):
    sq = (rng.random((20, 20)) < 0.2) * rng.standard_normal((20, 20))
    coo = COOMatrix.from_dense(sq)
    m = CRSDMatrix.from_coo(coo, mrows=4, wavefront_size=4)
    x = rng.standard_normal((20, 3))
    assert np.allclose(m.matmat(x), sq @ x)


def test_shape_validation(dense, rng):
    m = from_dense(dense, "csr")
    with pytest.raises(FormatError):
        m.matmat(rng.standard_normal((14, 3)))
    with pytest.raises(FormatError):
        m.matmat(rng.standard_normal(15))
    with pytest.raises(FormatError):
        m.matmat(rng.standard_normal((15, 3)), out=np.zeros((12, 4)))


def test_out_parameter(dense, rng):
    m = from_dense(dense, "csr")
    x = rng.standard_normal((15, 2))
    out = np.full((12, 2), 9.0)
    y = m.matmat(x, out=out)
    assert y is out
    assert np.allclose(out, dense @ x)


def test_single_column_consistent_with_matvec(dense, rng):
    m = from_dense(dense, "dia")
    x = rng.standard_normal(15)
    assert np.allclose(m.matmat(x[:, None])[:, 0], m.matvec(x))

"""Reverse Cuthill-McKee reordering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.formats.coo import COOMatrix
from repro.reorder import bandwidth, permute, profile, rcm_permutation
from repro.reorder.rcm import permute_vector, unpermute_vector
from tests.conftest import random_diagonal_matrix


def shuffled_band(rng, n=200, halfwidth=2):
    """A band matrix whose rows were relabelled randomly — large
    bandwidth, band structure recoverable."""
    from repro.matrices.generators import banded

    band = banded(n, halfwidth, rng)
    # make it structurally symmetric so RCM can fully recover the band
    sym = COOMatrix(
        np.concatenate([band.rows, band.cols]),
        np.concatenate([band.cols, band.rows]),
        np.concatenate([band.vals, band.vals]),
        band.shape,
    )
    scram = rng.permutation(n)
    return permute(sym, scram), sym


class TestPermutation:
    def test_identity_permutation_is_noop(self, fig2_coo):
        sq = COOMatrix(fig2_coo.rows, fig2_coo.cols, fig2_coo.vals, (9, 9))
        assert permute(sq, np.arange(9)).equals(sq)

    def test_spmv_equivalence(self, rng):
        """B (P x) == P (A x) for B = P A P^T."""
        a = random_diagonal_matrix(rng, n=80)
        perm = rng.permutation(80)
        b = permute(a, perm)
        x = rng.standard_normal(80)
        lhs = b.matvec(permute_vector(x, perm))
        rhs = permute_vector(a.matvec(x), perm)
        assert np.allclose(lhs, rhs)

    def test_unpermute_inverts(self, rng):
        x = rng.standard_normal(50)
        perm = rng.permutation(50)
        assert np.allclose(unpermute_vector(permute_vector(x, perm), perm), x)

    def test_invalid_perm_rejected(self, rng):
        a = random_diagonal_matrix(rng, n=10)
        with pytest.raises(ValueError):
            permute(a, np.zeros(10, dtype=int))

    def test_non_square_rejected(self):
        rect = COOMatrix([0], [1], [1.0], (2, 3))
        with pytest.raises(ValueError):
            permute(rect, np.array([0, 1]))
        with pytest.raises(ValueError):
            rcm_permutation(rect)


class TestRCM:
    def test_returns_valid_permutation(self, rng):
        a = random_diagonal_matrix(rng, n=64)
        sq = COOMatrix(a.rows, a.cols, a.vals, (64, 64))
        perm = rcm_permutation(sq)
        assert sorted(perm.tolist()) == list(range(64))

    def test_recovers_band_from_shuffle(self, rng):
        scrambled, original = shuffled_band(rng)
        assert bandwidth(scrambled) > 10 * bandwidth(original)
        perm = rcm_permutation(scrambled)
        recovered = permute(scrambled, perm)
        # RCM restores a narrow band (optimal is 2; allow small slack)
        assert bandwidth(recovered) <= 2 * bandwidth(original) + 2

    def test_reduces_profile(self, rng):
        scrambled, _ = shuffled_band(rng)
        recovered = permute(scrambled, rcm_permutation(scrambled))
        assert profile(recovered) < profile(scrambled) / 4

    def test_handles_disconnected_components(self):
        # two independent 3-cycles + an isolated vertex
        rows = [0, 1, 2, 4, 5, 6]
        cols = [1, 2, 0, 5, 6, 4]
        m = COOMatrix(rows, cols, np.ones(6), (8, 8))
        perm = rcm_permutation(m)
        assert sorted(perm.tolist()) == list(range(8))

    def test_empty_matrix(self):
        perm = rcm_permutation(COOMatrix.empty((5, 5)))
        assert sorted(perm.tolist()) == list(range(5))

    def test_deterministic(self, rng):
        scrambled, _ = shuffled_band(rng)
        assert np.array_equal(rcm_permutation(scrambled),
                              rcm_permutation(scrambled))


class TestMetrics:
    def test_bandwidth(self):
        m = COOMatrix([0, 2], [2, 0], [1.0, 1.0], (3, 3))
        assert bandwidth(m) == 2
        assert bandwidth(COOMatrix.empty((3, 3))) == 0

    def test_profile_diagonal_is_zero(self):
        m = COOMatrix([0, 1, 2], [0, 1, 2], np.ones(3), (3, 3))
        assert profile(m) == 0


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(4, 60))
def test_property_rcm_never_hurts_much(seed, n):
    """On random symmetric patterns, RCM's bandwidth is never more
    than the original's (it may tie on already-optimal orderings)."""
    rng = np.random.default_rng(seed)
    a = random_diagonal_matrix(rng, n=n, density=0.6, scatter=2)
    sym = COOMatrix(
        np.concatenate([a.rows, a.cols]),
        np.concatenate([a.cols, a.rows]),
        np.concatenate([a.vals, a.vals]),
        (n, n),
    )
    perm = rcm_permutation(sym)
    assert sorted(perm.tolist()) == list(range(n))
    # permutation validity + spmv equivalence are the hard invariants
    x = rng.standard_normal(n)
    b = permute(sym, perm)
    assert np.allclose(b.matvec(permute_vector(x, perm)),
                       permute_vector(sym.matvec(x), perm))

"""The ``repro analyze`` subcommand."""

import json

from repro.cli import main
from repro.matrices.mmio import write_matrix_market
from repro.matrices.suite23 import get_spec
from tests.conftest import random_diagonal_matrix

ARGS = ["--scale", "0.02", "--mrows", "32"]


class TestAnalyzeCommand:
    def test_suite_matrix_is_clean(self, capsys):
        assert main(["analyze", "kim1"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "kim1" in out and "0 violation" in out

    def test_suite_by_number(self, capsys):
        spec = get_spec(9)
        assert main(["analyze", "9"] + ARGS) == 0
        assert spec.name in capsys.readouterr().out

    def test_mtx_file(self, tmp_path, rng, capsys):
        coo = random_diagonal_matrix(rng, n=80)
        p = tmp_path / "demo.mtx"
        write_matrix_market(coo, p)
        assert main(["analyze", str(p), "--mrows", "16"]) == 0
        assert "demo" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        assert main(["analyze", "kim1", "--json"] + ARGS) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["matrix"] == "kim1"
        assert payload["metrics"]["divergence_efficiency"] == 1.0
        assert payload["metrics"]["batched_write_sets_disjoint"] is True
        assert payload["predicted_trace"]["flops"] > 0

    def test_variant_flags(self, capsys):
        assert main(["analyze", "kim1", "--no-local-memory"] + ARGS) == 0
        assert main(["analyze", "kim1", "--nvec", "2"] + ARGS) == 0
        assert main(["analyze", "kim1", "--precision", "single"] + ARGS) == 0

    def test_fused_certification_in_json(self, capsys):
        assert main(["analyze", "kim1", "--json"] + ARGS) == 0
        payload = json.loads(capsys.readouterr().out)
        fused = payload["fused_certification"]
        assert fused["certified"] is True
        assert fused["reasons"] == []
        assert fused["crash"] is None

    def test_fused_crash_is_structured(self, capsys, monkeypatch):
        """A certifier crash surfaces as a structured entry, not a
        traceback (and does not fail the analysis)."""
        import repro.gpu_kernels.fused as fused_mod

        def boom(*a, **k):
            raise RuntimeError("synthetic certifier crash")

        monkeypatch.setattr(fused_mod, "certify_plan", boom)
        assert main(["analyze", "kim1", "--json"] + ARGS) == 0
        fused = json.loads(capsys.readouterr().out)["fused_certification"]
        assert fused["certified"] is False
        assert fused["crash"]["type"] == "RuntimeError"
        assert "synthetic" in fused["crash"]["message"]


class TestAnalyzeShards:
    def test_certified_plan_text_and_exit_zero(self, capsys):
        assert main(["analyze", "kim1", "--shards", "4"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "4-way row-block plan certified" in out

    def test_json_payload(self, capsys):
        assert main(["analyze", "wang3", "--shards", "2", "--json"]
                    + ARGS) == 0
        payload = json.loads(capsys.readouterr().out)
        cert = payload["shard_certification"]
        assert cert["ok"] is True
        assert cert["plan"]["num_shards"] == 2
        assert len(cert["per_shard_traces"]) == 2
        assert isinstance(cert["halo_reread_transactions"], int)

    def test_unplannable_request_exits_two(self, capsys):
        assert main(["analyze", "kim1", "--shards", "0"] + ARGS) == 2
        assert "num_shards" in capsys.readouterr().err

    def test_declined_prover_exits_nonzero(self, capsys, monkeypatch):
        """A violated prover must fail the command — a declined plan is
        never reported as success."""
        import repro.analyze as analyze_mod
        from repro.analyze.report import Finding
        from repro.analyze.sharding import ShardCertificate

        declined = ShardCertificate(
            ok=False, num_shards=4,
            findings=[Finding("shard-halo", "error", "shard 1",
                              "synthetic decline")])
        monkeypatch.setattr(analyze_mod, "certify_shard_plan",
                            lambda *a, **k: declined)
        assert main(["analyze", "kim1", "--shards", "4"] + ARGS) == 1
        out = capsys.readouterr().out
        assert "DECLINED" in out
        assert "shard-halo" in out

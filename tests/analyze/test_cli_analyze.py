"""The ``repro analyze`` subcommand."""

import json

from repro.cli import main
from repro.matrices.mmio import write_matrix_market
from repro.matrices.suite23 import get_spec
from tests.conftest import random_diagonal_matrix

ARGS = ["--scale", "0.02", "--mrows", "32"]


class TestAnalyzeCommand:
    def test_suite_matrix_is_clean(self, capsys):
        assert main(["analyze", "kim1"] + ARGS) == 0
        out = capsys.readouterr().out
        assert "kim1" in out and "0 violation" in out

    def test_suite_by_number(self, capsys):
        spec = get_spec(9)
        assert main(["analyze", "9"] + ARGS) == 0
        assert spec.name in capsys.readouterr().out

    def test_mtx_file(self, tmp_path, rng, capsys):
        coo = random_diagonal_matrix(rng, n=80)
        p = tmp_path / "demo.mtx"
        write_matrix_market(coo, p)
        assert main(["analyze", str(p), "--mrows", "16"]) == 0
        assert "demo" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        assert main(["analyze", "kim1", "--json"] + ARGS) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["matrix"] == "kim1"
        assert payload["metrics"]["divergence_efficiency"] == 1.0
        assert payload["metrics"]["batched_write_sets_disjoint"] is True
        assert payload["predicted_trace"]["flops"] > 0

    def test_variant_flags(self, capsys):
        assert main(["analyze", "kim1", "--no-local-memory"] + ARGS) == 0
        assert main(["analyze", "kim1", "--nvec", "2"] + ARGS) == 0
        assert main(["analyze", "kim1", "--precision", "single"] + ARGS) == 0

"""Differential tests: the static trace prediction is *exact*.

``repro.analyze.predict_trace`` claims to compute the dynamic
:class:`KernelTrace` in closed form, with the L2 model disabled
(L2 residency depends on execution order and is out of static scope).
These tests hold it to that claim bit-for-bit — every counter equal,
``dataclasses.asdict`` on both sides — across the whole 23-matrix
bench suite, both precisions, local memory on and off, and the
multi-vector SpMM variant.
"""

import dataclasses

import numpy as np
import pytest

from repro.analyze import analyze_matrix, build_model, predict_trace
from repro.bench.runner import bench_scale, effective_scale
from repro.codegen.plan import build_plan
from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.gpu_kernels.crsd_runner import CrsdSpMM, CrsdSpMV
from repro.matrices.suite23 import SUITE, get_spec
from repro.ocl.device import TESLA_C2050
from tests.conftest import random_diagonal_matrix

#: static prediction is defined on the L2-disabled device
NO_L2 = TESLA_C2050.with_overrides(l2_bytes=0)


def suite_crsd(spec, mrows=128):
    scale = effective_scale(spec, bench_scale())
    coo = spec.generate(scale=scale, seed=0)
    crsd = CRSDMatrix.from_coo(
        coo, mrows=mrows, wavefront_size=compatible_wavefront(mrows))
    return coo, crsd


def static_trace(crsd, use_local_memory=True, nvec=1, precision="double"):
    plan = build_plan(crsd, use_local_memory=use_local_memory, nvec=nvec)
    model = build_model(plan, precision=precision,
                        scatter_colval=crsd.scatter_colval,
                        scatter_rowno=crsd.scatter_rowno)
    return predict_trace(model, NO_L2)


def assert_bit_identical(static, dynamic):
    assert static is not None
    assert dataclasses.asdict(static) == dataclasses.asdict(dynamic)


class TestSuite23:
    """Zero violations and exact counters on every bench matrix."""

    @pytest.mark.parametrize(
        "spec", SUITE, ids=lambda s: f"{s.number:02d}-{s.name}")
    def test_static_equals_dynamic(self, spec):
        coo, crsd = suite_crsd(spec)
        x = np.random.default_rng(7).standard_normal(coo.ncols)
        run = CrsdSpMV(crsd, device=NO_L2).run(x)
        assert_bit_identical(static_trace(crsd), run.trace)

    @pytest.mark.parametrize(
        "spec", SUITE, ids=lambda s: f"{s.number:02d}-{s.name}")
    def test_analyzer_clean(self, spec):
        _, crsd = suite_crsd(spec)
        report = analyze_matrix(crsd)
        assert report.ok, [str(f) for f in report.violations]
        assert report.exit_code == 0
        assert report.divergence_efficiency == 1.0
        assert report.batched_write_sets_disjoint is True
        assert report.predicted is not None


class TestVariants:
    """Exactness holds for the ablations and the SpMM variant too."""

    # nemeth21 exercises multi-pass AD tile staging (ndiags > mrows+1),
    # wang3 is the paper's no-local-memory discussion case
    @pytest.mark.parametrize("name", ["nemeth21", "wang3"])
    @pytest.mark.parametrize("use_local", [True, False])
    def test_local_memory_ablation(self, name, use_local):
        coo, crsd = suite_crsd(get_spec(name))
        x = np.random.default_rng(3).standard_normal(coo.ncols)
        run = CrsdSpMV(crsd, use_local_memory=use_local,
                       device=NO_L2).run(x)
        assert_bit_identical(
            static_trace(crsd, use_local_memory=use_local), run.trace)

    @pytest.mark.parametrize("name", ["crystk03", "nemeth21"])
    def test_single_precision(self, name):
        coo, crsd = suite_crsd(get_spec(name))
        x = np.random.default_rng(5).standard_normal(coo.ncols)
        run = CrsdSpMV(crsd, device=NO_L2, precision="single").run(x)
        assert_bit_identical(
            static_trace(crsd, precision="single"), run.trace)

    @pytest.mark.parametrize("name,nvec", [("nemeth21", 2), ("wang3", 4)])
    def test_spmm(self, name, nvec):
        coo, crsd = suite_crsd(get_spec(name))
        x = np.random.default_rng(9).standard_normal((coo.ncols, nvec))
        run = CrsdSpMM(crsd, nvec=nvec, device=NO_L2).run(x)
        assert_bit_identical(static_trace(crsd, nvec=nvec), run.trace)


class TestReportMetrics:
    """The report's static efficiencies equal the dynamic counters'."""

    def test_efficiencies_match_dynamic(self, rng):
        coo = random_diagonal_matrix(rng, n=300, density=0.7, scatter=4)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        report = analyze_matrix(crsd, device=NO_L2)
        x = rng.standard_normal(coo.ncols)
        tr = CrsdSpMV(crsd, device=NO_L2).run(x).trace
        dev = NO_L2
        assert report.load_coalescing_efficiency == pytest.approx(
            tr.load_coalescing_efficiency(8, dev.transaction_bytes))
        assert report.store_coalescing_efficiency == pytest.approx(
            tr.store_coalescing_efficiency(dev.transaction_bytes))
        assert_bit_identical(report.predicted, tr)

"""Static kernel analyzer tests."""

"""Seeded-violation tests: every checker must catch its fault class.

Each test corrupts one aspect of an otherwise-clean kernel — the plan,
the symbolic model, or the rendered source — and asserts that exactly
the targeted checker fires with a non-zero exit code.  This is the
analyzer's own regression suite: a checker that silently stops firing
is worse than no checker at all.
"""

import dataclasses

import numpy as np
import pytest

from repro.analyze import (
    AnalysisReport,
    GlobalAccess,
    LocalOp,
    analyze_matrix,
    analyze_plan,
    build_model,
    check_bounds,
    check_coalescing,
    check_divergence,
    check_localmem,
)
from repro.codegen.plan import build_plan
from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.ocl.device import TESLA_C2050
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def crsd(rng):
    """A matrix with two AD groups per region (dense bands => tile
    staging, barriers, and a wait-for-reads restage barrier)."""
    coo = random_diagonal_matrix(rng, n=96, offsets=(-1, 0, 1, 8, 9),
                                 density=1.0, scatter=2)
    return CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))


def errors_of(report, check):
    return [f for f in report.by_check(check) if f.severity == "error"]


def test_baseline_is_clean(crsd):
    report = analyze_matrix(crsd)
    assert report.ok, [str(f) for f in report.violations]


class TestBounds:
    def test_corrupt_slab_base_is_caught(self, crsd):
        plan = build_plan(crsd)
        bad_region = dataclasses.replace(
            plan.regions[-1], slab_base=plan.regions[-1].slab_base + 10_000)
        bad = dataclasses.replace(
            plan, regions=plan.regions[:-1] + (bad_region,))
        report = AnalysisReport(plan=bad)
        check_bounds(build_model(bad), report)
        assert errors_of(report, "bounds")
        assert report.exit_code == 1

    def test_under_filled_tile_is_caught(self, crsd):
        """The nemeth regression: a tile load past the staged extent."""
        plan = build_plan(crsd)
        model = build_model(plan)
        rm = next(r for r in model.regions if r.tiles)
        idx = next(i for i, op in enumerate(rm.local_ops)
                   if op.op == "store")
        del rm.local_ops[idx]
        report = AnalysisReport(plan=plan)
        check_bounds(model, report)
        msgs = [f.message for f in errors_of(report, "bounds")]
        assert any("no store ever wrote" in m for m in msgs), msgs


class TestCoalescing:
    def test_strided_access_is_caught(self, crsd):
        plan = build_plan(crsd)
        model = build_model(plan, scatter_colval=crsd.scatter_colval,
                            scatter_rowno=crsd.scatter_rowno)
        model.regions[0].accesses.append(
            GlobalAccess(buffer="x", kind="load", base=0, seg_coeff=0,
                         lane_coeff=2, nsegs=1, lanes=plan.local_size,
                         label="injected strided gather"))
        report = AnalysisReport(plan=plan)
        check_coalescing(model, report, TESLA_C2050)
        msgs = [f.message for f in errors_of(report, "coalescing")]
        assert any("lane stride 2" in m for m in msgs), msgs
        assert report.exit_code == 1


class TestDivergence:
    OPENCL_OK = (
        "__kernel void k(__global double* y) {\n"
        "    int local_id = get_local_id(0);\n"
        "    if (local_id < 4) { y[local_id] = 0.0; }\n"
        "}\n"
    )
    PYTHON_OK = (
        "def crsd_dia_kernel(ctx, bufs):\n"
        "    pass\n"
    )

    def test_clean_sources_pass(self):
        report = AnalysisReport(plan=None)
        check_divergence(self.PYTHON_OK, self.OPENCL_OK, report)
        assert report.ok
        assert report.divergence_efficiency == 1.0

    def test_lane_dependent_python_branch(self):
        bad = (
            "def crsd_dia_kernel(ctx, bufs):\n"
            "    if ctx.lid > 0:\n"
            "        return None\n"
        )
        report = AnalysisReport(plan=None)
        check_divergence(bad, self.OPENCL_OK, report)
        assert errors_of(report, "divergence")
        assert report.divergence_efficiency != 1.0

    def test_opencl_loop(self):
        bad = self.OPENCL_OK.replace(
            "if (local_id < 4) { y[local_id] = 0.0; }",
            "for (int i = 0; i < 4; ++i) { y[i] = 0.0; }")
        report = AnalysisReport(plan=None)
        check_divergence(self.PYTHON_OK, bad, report)
        msgs = [f.message for f in errors_of(report, "divergence")]
        assert any("unrolled" in m for m in msgs), msgs

    def test_barrier_inside_lane_branch(self):
        bad = self.OPENCL_OK.replace(
            "y[local_id] = 0.0;",
            "barrier(CLK_LOCAL_MEM_FENCE);")
        report = AnalysisReport(plan=None)
        check_divergence(self.PYTHON_OK, bad, report)
        msgs = [f.message for f in errors_of(report, "divergence")]
        assert any("deadlock" in m for m in msgs), msgs


class TestLocalMem:
    def test_missing_barrier_is_a_race(self, crsd):
        plan = build_plan(crsd)
        model = build_model(plan)
        rm = next(r for r in model.regions if r.local_ops)
        rm.local_ops[:] = [op for op in rm.local_ops if op.op != "barrier"]
        report = AnalysisReport(plan=plan)
        check_localmem(model, report, TESLA_C2050)
        msgs = [f.message for f in errors_of(report, "localmem")]
        assert any("race" in m for m in msgs), msgs

    def test_missing_wait_for_reads_barrier(self, crsd):
        """The OpenCL restaging regression: dropping any barrier from
        the shared-xtile program must surface a read-write race."""
        plan = build_plan(crsd)
        model = build_model(plan)
        rm = next(r for r in model.regions
                  if sum(op.op == "barrier" for op in r.opencl_local_ops) > 1)
        kept = []
        dropped = False
        for op in reversed(rm.opencl_local_ops):
            if op.op == "barrier" and not dropped:
                dropped = True
                continue
            kept.append(op)
        rm.opencl_local_ops[:] = list(reversed(kept))
        report = AnalysisReport(plan=plan)
        check_localmem(model, report, TESLA_C2050)
        assert errors_of(report, "localmem")

    def test_single_element_broadcast_store(self, crsd):
        plan = build_plan(crsd)
        model = build_model(plan)
        rm = next(r for r in model.regions if r.tiles)
        tile = next(iter(rm.tiles))
        rm.local_ops.insert(0, LocalOp("store", tile, base=0,
                                       lane_coeff=0, lane_bound=16))
        report = AnalysisReport(plan=plan)
        check_localmem(model, report, TESLA_C2050)
        msgs = [f.message for f in errors_of(report, "localmem")]
        assert any("write-write race on a single element" in m
                   for m in msgs), msgs

    def test_capacity_overflow(self, crsd):
        tiny = TESLA_C2050.with_overrides(local_mem_per_cu_bytes=8)
        report = analyze_matrix(crsd, device=tiny)
        msgs = [f.message for f in errors_of(report, "localmem")]
        assert any("cannot launch" in m for m in msgs), msgs
        assert report.exit_code == 1


class TestBatchSafety:
    def test_overlapping_segments_are_caught(self, crsd):
        plan = build_plan(crsd)
        # clone the region so two launches claim the same row interval
        r0 = plan.regions[0]
        clone = dataclasses.replace(r0, index=len(plan.regions),
                                    gid_base=plan.num_groups)
        bad = dataclasses.replace(plan, regions=plan.regions + (clone,))
        report = analyze_plan(bad, check_render=False)
        msgs = [f.message for f in errors_of(report, "batch-safety")]
        assert any("race under batched execution" in m for m in msgs), msgs
        assert report.batched_write_sets_disjoint is False
        assert report.exit_code == 1

    def test_duplicate_scatter_row_is_caught(self, crsd):
        plan = build_plan(crsd)
        assert plan.scatter.num_rows >= 2
        rowno = np.asarray(crsd.scatter_rowno).copy()
        rowno[1] = rowno[0]
        report = analyze_plan(plan, scatter_colval=crsd.scatter_colval,
                              scatter_rowno=rowno, check_render=False)
        msgs = [f.message for f in errors_of(report, "batch-safety")]
        assert any("more than once" in m for m in msgs), msgs


class TestRender:
    def test_extra_barrier_is_caught(self, crsd, monkeypatch):
        import repro.analyze.driver as driver

        plan = build_plan(crsd)
        real = driver.generate_opencl_source

        def tampered(p, precision="double"):
            src = real(p, precision=precision)
            assert "barrier(CLK_LOCAL_MEM_FENCE);" in src
            return src.replace(
                "barrier(CLK_LOCAL_MEM_FENCE);",
                "barrier(CLK_LOCAL_MEM_FENCE); barrier(CLK_LOCAL_MEM_FENCE);",
                1)

        monkeypatch.setattr(driver, "generate_opencl_source", tampered)
        report = analyze_plan(plan)
        msgs = [f.message for f in errors_of(report, "render")]
        assert any("barrier placement drifted" in m for m in msgs), msgs
        assert report.exit_code == 1

    def test_missing_codelet_is_caught(self, crsd, monkeypatch):
        import repro.analyze.driver as driver

        plan = build_plan(crsd)
        real = driver.emit_python_source

        def tampered(p):
            return real(p).replace(
                "def _codelet_p0(", "def _codelet_p0_gone(", 1)

        monkeypatch.setattr(driver, "emit_python_source", tampered)
        report = analyze_plan(plan)
        msgs = [f.message for f in errors_of(report, "render")]
        assert any("missing expected codelet" in m for m in msgs), msgs

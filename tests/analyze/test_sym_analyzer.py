"""Static analysis of the symmetric codelets: green across the
symmetric generator set, with every checker actually exercised."""

import numpy as np
import pytest

from repro.analyze.symmetric import (
    analyze_sym_matrix,
    analyze_sym_plan,
    build_sym_model,
)
from repro.codegen.sym_codelet import build_sym_plan
from repro.core.symcrsd import SymCRSDMatrix
from repro.matrices import generators as gen


@pytest.fixture
def nprng():
    return np.random.default_rng(17)


CASES = {
    "banded_k7": lambda r: gen.symmetric_banded(512, 7, r),
    "gapped": lambda r: gen.symmetric_diagonals(320, [1, 4, 9], r),
    "indefinite": lambda r: gen.symmetric_diagonals(256, [2, 5], r,
                                                    spd=False),
    "kkt_h": lambda r: gen.kkt_blocks(256, 128, r)[0],
}


@pytest.mark.parametrize("case", sorted(CASES))
def test_certification_green(case, nprng):
    sym = SymCRSDMatrix.from_coo(CASES[case](nprng), mrows=32)
    report = analyze_sym_matrix(sym)
    assert report.exit_code == 0, [f.message for f in report.findings]
    assert not report.findings


@pytest.mark.parametrize("precision", ["double", "single"])
def test_certification_both_precisions(precision, nprng):
    sym = SymCRSDMatrix.from_coo(gen.symmetric_banded(256, 4, nprng),
                                 mrows=32, wavefront_size=32)
    report = analyze_sym_matrix(sym, precision=precision)
    assert report.exit_code == 0


def test_model_shape(nprng):
    """The symbolic model exposes the half carrier, not the full slab:
    one sym_val buffer sized to the stored slots, no local memory."""
    sym = SymCRSDMatrix.from_coo(gen.symmetric_banded(256, 3, nprng),
                                 mrows=32)
    plan = build_sym_plan(sym)
    model = build_sym_model(plan)
    assert model.buffer_sizes["sym_val"] == sym.stored_elements
    assert model.buffer_sizes["x"] == sym.ncols
    assert model.buffer_sizes["y"] == sym.nrows
    assert all(acc.buffer in ("sym_val", "x", "y")
               for reg in model.regions for acc in reg.accesses)
    assert all(not reg.local_ops for reg in model.regions)


def test_render_check_runs(nprng):
    sym = SymCRSDMatrix.from_coo(gen.symmetric_banded(128, 2, nprng),
                                 mrows=32)
    plan = build_sym_plan(sym)
    with_render = analyze_sym_plan(plan, check_render=True)
    without = analyze_sym_plan(plan, check_render=False)
    assert with_render.exit_code == 0
    assert without.exit_code == 0

"""Checker behaviour on clean plans and structural edge cases."""

import numpy as np
import pytest

from repro.analyze import (
    KernelAnalysisError,
    analyze_matrix,
    analyze_plan,
    required_local_bytes,
)
from repro.codegen.plan import build_plan
from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.formats.coo import COOMatrix
from repro.gpu_kernels.crsd_runner import CrsdSpMM, CrsdSpMV
from repro.ocl.device import TESLA_C2050
from tests.conftest import random_diagonal_matrix


def scatter_only_coo(n=40):
    """A matrix whose every populated row is a scatter row (no
    diagonal structure at all)."""
    rows = np.array([3, 11, 17, 29])
    cols = np.array([30, 2, 25, 8])
    vals = np.array([1.0, 2.0, 3.0, 4.0])
    return COOMatrix(rows, cols, vals, (n, n))


class TestCleanPlans:
    def test_random_diagonal_matrix(self, rng):
        coo = random_diagonal_matrix(rng, n=96, scatter=3)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        report = analyze_matrix(crsd)
        assert report.ok and report.exit_code == 0
        assert report.divergence_efficiency == 1.0
        assert report.batched_write_sets_disjoint is True
        assert report.local_bytes_required > 0  # AD groups stage tiles

    def test_scatter_only_matrix(self):
        crsd = CRSDMatrix.from_coo(scatter_only_coo(), mrows=8, wavefront_size=compatible_wavefront(8))
        report = analyze_matrix(crsd)
        assert report.ok
        assert report.predicted is not None
        assert report.predicted.flops > 0
        assert report.batched_write_sets_disjoint is True

    def test_rectangular_matrix(self, rng):
        rows = np.arange(60)
        coo = COOMatrix(rows, np.minimum(rows + 7, 89),
                        rng.standard_normal(60) + 3.0, (60, 90))
        crsd = CRSDMatrix.from_coo(coo, mrows=8, wavefront_size=compatible_wavefront(8))
        report = analyze_matrix(crsd)
        assert report.ok, [str(f) for f in report.violations]

    def test_no_local_memory_needs_zero_bytes(self, rng):
        coo = random_diagonal_matrix(rng, n=64)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        report = analyze_matrix(crsd, use_local_memory=False)
        assert report.ok
        assert report.local_bytes_required == 0

    def test_spmm_variant(self, rng):
        coo = random_diagonal_matrix(rng, n=64)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        report = analyze_matrix(crsd, nvec=3)
        assert report.ok
        # nvec > 1 always disables tile staging
        assert report.local_bytes_required == 0


class TestRequiredLocalBytes:
    def test_scales_with_precision(self, rng):
        coo = random_diagonal_matrix(rng, n=64, density=1.0, scatter=0)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        plan = build_plan(crsd)
        d = required_local_bytes(plan, "double")
        s = required_local_bytes(plan, "single")
        assert d == 2 * s > 0
        assert d == plan.max_tile_len * 8 or d > plan.max_tile_len * 8

    def test_zero_without_local_memory(self, rng):
        coo = random_diagonal_matrix(rng, n=64)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        assert required_local_bytes(
            build_plan(crsd, use_local_memory=False), "double") == 0
        assert required_local_bytes(
            build_plan(crsd, nvec=4), "double") == 0

    def test_autotune_rejects_overflow(self, rng):
        from repro.core.autotune import _fits_local_memory

        coo = random_diagonal_matrix(rng, n=64, density=1.0, scatter=0)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        tiny = TESLA_C2050.with_overrides(local_mem_per_cu_bytes=8)
        assert _fits_local_memory(crsd, TESLA_C2050, "double")
        assert not _fits_local_memory(crsd, tiny, "double")


class TestMissingScatterData:
    def test_plan_without_index_arrays(self, rng):
        coo = random_diagonal_matrix(rng, n=96, scatter=4)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        assert crsd.num_scatter_rows > 0
        report = analyze_plan(build_plan(crsd))  # no scatter arrays
        # indirect accesses become unpredictable, but that is an info
        # condition, not a violation
        assert report.ok
        assert report.predicted is None
        assert report.batched_write_sets_disjoint is None
        assert any(f.severity == "info" for f in report.findings)


class TestStrictBuilds:
    def test_strict_spmv_compiles_clean_plan(self, rng):
        coo = random_diagonal_matrix(rng, n=96, scatter=2)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        runner = CrsdSpMV(crsd, strict=True)
        x = rng.standard_normal(96)
        assert np.allclose(runner.run(x).y, coo.todense() @ x)

    def test_strict_spmm_compiles_clean_plan(self, rng):
        coo = random_diagonal_matrix(rng, n=64, scatter=2)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        CrsdSpMM(crsd, nvec=2, strict=True)

    def test_error_carries_the_report(self, rng):
        coo = random_diagonal_matrix(rng, n=64, density=1.0, scatter=0)
        crsd = CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=compatible_wavefront(16))
        plan = build_plan(crsd)
        report = analyze_plan(
            plan, device=TESLA_C2050.with_overrides(local_mem_per_cu_bytes=8))
        assert not report.ok
        err = KernelAnalysisError(report)
        assert err.report is report
        assert "local memory" in str(err)

"""Cost model arithmetic and qualitative behaviour."""

import pytest

from repro.ocl.device import TESLA_C2050
from repro.ocl.trace import KernelTrace
from repro.perf import calibration as cal
from repro.perf.costmodel import predict_gpu_time


def make_trace(**kw):
    t = KernelTrace(work_groups=100, wavefronts=400)
    for k, v in kw.items():
        setattr(t, k, v)
    return t


class TestTerms:
    def test_bandwidth_term(self):
        t = make_trace(global_load_transactions=1000, global_store_transactions=0)
        p = predict_gpu_time(t, TESLA_C2050)
        bw = 144e9 * cal.GPU_BW_EFFICIENCY
        assert p.bandwidth_time == pytest.approx(1000 * 128 / bw)

    def test_compute_term_uses_precision(self):
        t = make_trace(flops=10**9)
        pd = predict_gpu_time(t, TESLA_C2050, "double")
        ps = predict_gpu_time(t, TESLA_C2050, "single")
        assert pd.compute_time == pytest.approx(2 * ps.compute_time)

    def test_divergence_slows_compute(self):
        t = make_trace(flops=10**9, lanes_issued=100, lanes_useful=50)
        p0 = predict_gpu_time(make_trace(flops=10**9), TESLA_C2050)
        p1 = predict_gpu_time(t, TESLA_C2050)
        assert p1.compute_time == pytest.approx(2 * p0.compute_time)

    def test_barrier_term_additive(self):
        t0 = make_trace(global_load_transactions=100)
        t1 = make_trace(global_load_transactions=100, barriers=1000)
        p0 = predict_gpu_time(t0, TESLA_C2050)
        p1 = predict_gpu_time(t1, TESLA_C2050)
        assert p1.total > p0.total
        assert p1.barrier_time > 0

    def test_launch_overhead_per_launch(self):
        t = make_trace()
        p1 = predict_gpu_time(t, TESLA_C2050, num_launches=1)
        p2 = predict_gpu_time(t, TESLA_C2050, num_launches=2)
        assert p2.launch_time == pytest.approx(2 * p1.launch_time)

    def test_l2_hits_cost_less_than_misses(self):
        miss = make_trace(global_load_transactions=10_000)
        hit = make_trace(global_load_transactions=0, l2_hits=10_000)
        pm = predict_gpu_time(miss, TESLA_C2050)
        ph = predict_gpu_time(hit, TESLA_C2050)
        assert ph.l2_time < pm.bandwidth_time
        assert ph.l2_time > 0

    def test_total_is_max_plus_overheads(self):
        t = make_trace(global_load_transactions=100, flops=10**6, barriers=10)
        p = predict_gpu_time(t, TESLA_C2050)
        expected = p.launch_time + max(
            p.bandwidth_time, p.latency_time, p.compute_time, p.local_time,
            p.l2_time,
        ) + p.barrier_time
        assert p.total == pytest.approx(expected)

    def test_bound_reporting(self):
        t = make_trace(global_load_transactions=10**6)
        assert predict_gpu_time(t, TESLA_C2050).bound == "bandwidth"
        t = make_trace(flops=10**12)
        assert predict_gpu_time(t, TESLA_C2050).bound == "compute"


class TestLatencyScaling:
    def test_few_wavefronts_latency_bound(self):
        t = KernelTrace(work_groups=1, wavefronts=1,
                        global_load_requests=1000)
        p = predict_gpu_time(t, TESLA_C2050)
        assert p.latency_time > p.bandwidth_time

    def test_size_scale_restores_full_concurrency(self):
        """A scaled-down run must see the full-size latency/bandwidth
        balance: wavefronts/size_scale feeds the concurrency."""
        t = KernelTrace(work_groups=10, wavefronts=40,
                        global_load_requests=4000,
                        global_load_transactions=4000)
        p_small = predict_gpu_time(t, TESLA_C2050, size_scale=1.0)
        p_scaled = predict_gpu_time(t, TESLA_C2050, size_scale=0.01)
        assert p_scaled.latency_time < p_small.latency_time

    def test_concurrency_capped_by_device(self):
        cap = TESLA_C2050.num_cus * cal.MAX_RESIDENT_WAVEFRONTS_PER_CU
        t = KernelTrace(work_groups=10**6, wavefronts=10**6,
                        global_load_requests=10**6)
        p = predict_gpu_time(t, TESLA_C2050)
        clock = TESLA_C2050.clock_ghz * 1e9
        assert p.latency_time == pytest.approx(
            10**6 * TESLA_C2050.global_latency_cycles / clock / cap
        )


class TestMetrics:
    def test_gflops(self):
        from repro.perf.metrics import gflops

        assert gflops(nnz=10**9, seconds=2.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            gflops(1, 0.0)

    def test_effective_bandwidth(self):
        from repro.perf.metrics import effective_bandwidth

        assert effective_bandwidth(2 * 10**9, 1.0) == pytest.approx(2.0)

    def test_speedup(self):
        from repro.perf.metrics import speedup

        assert speedup(2.0, 1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)

"""Roofline analysis."""

import pytest

from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels import CrsdSpMV, EllSpMV
from repro.formats.ell import ELLMatrix
from repro.ocl.device import TESLA_C2050
from repro.ocl.trace import KernelTrace
from repro.perf import calibration as cal
from repro.perf.costmodel import predict_gpu_time
from repro.perf.roofline import RooflinePoint, render_roofline, roofline_point
from tests.conftest import random_diagonal_matrix


def make_point(flops, dram_bytes, gflops=1.0):
    return RooflinePoint("k", flops, dram_bytes, gflops, TESLA_C2050)


class TestPoint:
    def test_intensity(self):
        assert make_point(100, 400).arithmetic_intensity == 0.25

    def test_spmv_is_memory_bound(self):
        assert make_point(100, 400).memory_bound

    def test_high_intensity_compute_bound(self):
        assert not make_point(10**6, 10).memory_bound

    def test_ceiling_never_exceeds_peak(self):
        p = make_point(10**9, 1)
        assert p.ceiling_gflops("double") == TESLA_C2050.peak_gflops_dp

    def test_bandwidth_ceiling(self):
        p = make_point(100, 400)
        bw = TESLA_C2050.global_bw_gbs * cal.GPU_BW_EFFICIENCY
        assert p.ceiling_gflops() == pytest.approx(0.25 * bw)

    def test_efficiency_capped_at_one(self):
        p = make_point(100, 400, gflops=10**6)
        assert p.efficiency() == 1.0

    def test_positive_time_required(self):
        with pytest.raises(ValueError):
            roofline_point("k", KernelTrace(), 0.0)


class TestFromTraces:
    @pytest.fixture
    def band(self, rng):
        return random_diagonal_matrix(rng, n=1024,
                                      offsets=(-2, -1, 0, 1, 2),
                                      density=1.0, scatter=0)

    def test_spmv_lands_in_memory_bound_region(self, band, rng):
        runner = CrsdSpMV(CRSDMatrix.from_coo(band, mrows=128))
        run = runner.run(rng.standard_normal(1024))
        secs = predict_gpu_time(run.trace, runner.device).total
        p = roofline_point("crsd", run.trace, secs,
                           useful_flops=2 * band.nnz)
        assert p.memory_bound
        assert p.arithmetic_intensity < 0.5

    def test_crsd_intensity_above_ell(self, band, rng):
        """Fewer bytes for the same useful flops = higher intensity —
        the roofline view of the whole paper."""
        x = rng.standard_normal(1024)
        points = []
        for name, runner in (
            ("crsd", CrsdSpMV(CRSDMatrix.from_coo(band, mrows=128))),
            ("ell", EllSpMV(ELLMatrix.from_coo(band))),
        ):
            run = runner.run(x)
            secs = predict_gpu_time(run.trace, runner.device).total
            points.append(roofline_point(name, run.trace, secs,
                                         useful_flops=2 * band.nnz))
        crsd, ell = points
        assert crsd.arithmetic_intensity > ell.arithmetic_intensity
        txt = render_roofline(points)
        assert "crsd" in txt and "mem" in txt

"""The closed-form traffic model must agree with the simulator.

Agreement is checked on structured (band/stencil) matrices where the
access patterns match the models' assumptions; the tolerance covers
boundary effects and partial wavefronts.  The L2 is disabled for the
comparison — the analytic model predicts *issued* traffic.
"""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.gpu_kernels import CrsdSpMV, CsrVectorSpMV, DiaSpMV, EllSpMV
from repro.ocl.device import TESLA_C2050
from repro.perf.analytic import (
    estimate_crsd_traffic,
    estimate_dia_traffic,
    estimate_ell_traffic,
    estimate_traffic,
)


@pytest.fixture(scope="module")
def band():
    """1024-row 9-diagonal dense band."""
    n = 1024
    rows_l, cols_l = [], []
    for off in range(-4, 5):
        r = np.arange(max(0, -off), min(n, n - off))
        rows_l.append(r)
        cols_l.append(r + off)
    rows = np.concatenate(rows_l)
    rng = np.random.default_rng(0)
    return COOMatrix(rows, np.concatenate(cols_l),
                     rng.standard_normal(rows.size), (n, n))


@pytest.fixture(scope="module")
def nocache():
    return TESLA_C2050.with_overrides(l2_bytes=0)


def measured_load_bytes(runner, n, trace_obj=None):
    x = np.random.default_rng(1).standard_normal(n)
    run = runner.run(x)
    return (
        run.trace.global_load_transactions * 128,
        run.trace.global_load_bytes_useful,
        run.trace,
    )


class TestAgainstSimulator:
    def test_dia(self, band, nocache):
        dia = DIAMatrix.from_coo(band)
        est = estimate_dia_traffic(dia.nrows, dia.ndiags,
                                   dia.in_matrix_elements)
        _, useful, trace = measured_load_bytes(
            DiaSpMV(dia, device=nocache), band.ncols
        )
        assert est.load_bytes == pytest.approx(useful, rel=0.10)

    def test_ell(self, band, nocache):
        ell = ELLMatrix.from_coo(band)
        est = estimate_ell_traffic(ell.nrows, ell.width)
        _, useful, trace = measured_load_bytes(
            EllSpMV(ell, device=nocache), band.ncols
        )
        assert est.load_bytes == pytest.approx(useful, rel=0.10)

    def test_csr_vector(self, band, nocache):
        csr = CSRMatrix.from_coo(band)
        est = estimate_traffic(csr)
        _, useful, trace = measured_load_bytes(
            CsrVectorSpMV(csr, device=nocache), band.ncols
        )
        # the broadcast indptr reads make "useful" fuzzy; 25% band
        assert est.load_bytes == pytest.approx(useful, rel=0.25)

    def test_crsd(self, band, nocache):
        crsd = CRSDMatrix.from_coo(band, mrows=128)
        est = estimate_crsd_traffic(crsd)
        _, useful, trace = measured_load_bytes(
            CrsdSpMV(crsd, device=nocache), band.ncols
        )
        assert est.load_bytes == pytest.approx(useful, rel=0.15)
        assert est.wavefronts == trace.wavefronts

    def test_crsd_with_scatter(self, nocache, rng):
        from tests.conftest import random_diagonal_matrix

        coo = random_diagonal_matrix(rng, n=512, density=1.0, scatter=6)
        crsd = CRSDMatrix.from_coo(coo, mrows=64)
        assert crsd.num_scatter_rows > 0
        est = estimate_crsd_traffic(crsd)
        _, useful, _ = measured_load_bytes(
            CrsdSpMV(crsd, device=nocache), coo.ncols
        )
        assert est.load_bytes == pytest.approx(useful, rel=0.2)


class TestRanking:
    def test_analytic_preserves_format_ordering(self, band):
        """The analytic model must rank formats like the simulator:
        CRSD < ELL in load bytes, DIA between (no index but full slab)."""
        crsd = estimate_crsd_traffic(CRSDMatrix.from_coo(band, mrows=128))
        ell = estimate_traffic(ELLMatrix.from_coo(band))
        dia = estimate_traffic(DIAMatrix.from_coo(band))
        assert crsd.load_bytes < dia.load_bytes < ell.load_bytes

    def test_full_size_af_estimate_without_materialisation(self):
        """The payoff: DIA traffic for the real af_1_k101 (a 3.4 GB
        slab nothing here could build) in microseconds of arithmetic."""
        from repro.matrices.suite23 import get_spec
        from repro.perf.costmodel import predict_gpu_time

        spec = get_spec("af_1_k101")
        est = estimate_dia_traffic(spec.paper_rows, spec.full_diagonals,
                                   precision="single")
        t = predict_gpu_time(est.to_trace(), TESLA_C2050, "single")
        # ~1.8 GB at ~112 GB/s -> tens of milliseconds
        assert 0.005 < t.total < 0.2

    def test_to_trace_cost_model_roundtrip(self, band):
        from repro.perf.costmodel import predict_gpu_time

        est = estimate_traffic(ELLMatrix.from_coo(band))
        t = predict_gpu_time(est.to_trace(), TESLA_C2050)
        assert t.total > 0
        assert t.bandwidth_time > 0

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            estimate_traffic(object())

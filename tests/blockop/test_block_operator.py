"""BlockOperator: routing, extent validation, trace merging, solves."""

import numpy as np
import pytest

from repro.blockop import BlockOperator, BlockVector, block_diag, from_blocks
from repro.core.symcrsd import SymCRSDMatrix
from repro.formats.coo import COOMatrix
from repro.gpu_kernels import SymCrsdSpMV
from repro.matrices import generators as gen
from repro.obs.recorder import ProfileSession, observe
from repro.solvers.operator import as_operator
from repro.solvers.preconditioned import pcg
from repro.validation import InputValidationError


@pytest.fixture
def nprng():
    return np.random.default_rng(5)


def kkt_operator(nprng, n1=128, n2=64):
    h, bt, b, c = gen.kkt_blocks(n1, n2, nprng, halfwidth=3,
                                 coupling_halfwidth=1)
    op = BlockOperator([[h, bt], [b, c]])
    dense = np.block([[h.todense(), bt.todense()],
                      [b.todense(), c.todense()]])
    return op, dense


class TestStructure:
    def test_shapes_and_offsets(self, nprng):
        op, _ = kkt_operator(nprng)
        assert op.grid_shape == (2, 2)
        assert op.shape == (192, 192)
        assert op.row_sizes == (128, 64)
        assert op.row_offsets == (0, 128, 192)

    def test_inconsistent_extent_rejected(self, nprng):
        h = gen.symmetric_banded(128, 2, nprng)
        wrong = gen.symmetric_banded(96, 2, nprng)
        with pytest.raises(ValueError, match="inconsistent extents"):
            BlockOperator([[h], [wrong]])

    def test_all_zero_row_rejected(self, nprng):
        h = gen.symmetric_banded(64, 1, nprng)
        with pytest.raises(ValueError, match="entirely zero"):
            BlockOperator([[h, None], [None, None]])

    def test_ragged_grid_rejected(self, nprng):
        h = gen.symmetric_banded(64, 1, nprng)
        with pytest.raises(ValueError, match="differing lengths"):
            BlockOperator([[h, None], [h]])


class TestMatvec:
    def test_matches_assembled_dense(self, nprng):
        op, dense = kkt_operator(nprng)
        x = nprng.standard_normal(192)
        assert np.allclose(op.matvec(x), dense @ x)

    def test_zero_blocks_contribute_nothing(self, nprng):
        h = gen.symmetric_banded(64, 2, nprng)
        c = gen.symmetric_banded(32, 1, nprng)
        op = block_diag(h, c)
        x = nprng.standard_normal(96)
        expected = np.concatenate([h.todense() @ x[:64],
                                   c.todense() @ x[64:]])
        assert np.allclose(op(x), expected)

    def test_accepts_block_vector(self, nprng):
        op, dense = kkt_operator(nprng)
        x = nprng.standard_normal(192)
        bx = BlockVector.from_flat(x, op.col_sizes)
        assert np.array_equal(op.matvec(bx), op.matvec(x))
        by = op.block_matvec(bx)
        assert by.sizes == op.row_sizes
        assert np.allclose(by.flatten(), dense @ x)

    def test_wrong_partition_rejected(self, nprng):
        op, _ = kkt_operator(nprng)
        bad = BlockVector.zeros([96, 96])
        with pytest.raises(ValueError, match="does not match"):
            op.matvec(bad)

    def test_mixed_block_kinds(self, nprng):
        """COO, dense ndarray and a GPU runner can share one grid."""
        h_coo = gen.symmetric_banded(64, 2, nprng)
        c_dense = np.diag(nprng.standard_normal(32) + 4.0)
        b = COOMatrix(np.arange(32), np.arange(32),
                      nprng.standard_normal(32), (32, 64))
        runner = SymCrsdSpMV(SymCRSDMatrix.from_coo(
            gen.symmetric_banded(64, 2, nprng), mrows=32))
        op = BlockOperator([[h_coo, None, None],
                            [b, c_dense, None],
                            [None, None, runner]])
        x = nprng.standard_normal(160)
        dense = np.zeros((160, 160))
        dense[:64, :64] = h_coo.todense()
        dense[64:96, :64] = b.todense()
        dense[64:96, 64:96] = c_dense
        dense[96:, 96:] = runner.matrix.to_coo().todense()
        assert np.allclose(op(x), dense @ x)


class TestRunAndCounters:
    def test_run_merges_runner_traces(self, nprng):
        def mk(n, k):
            return SymCrsdSpMV(SymCRSDMatrix.from_coo(
                gen.symmetric_banded(n, k, nprng), mrows=32))

        a, b = mk(64, 2), mk(96, 3)
        op = block_diag(a, b)
        x = nprng.standard_normal(160)
        run = op.run(x)
        ta = a.run(x[:64]).trace
        tb = b.run(x[64:]).trace
        assert run.trace.global_load_transactions == (
            ta.global_load_transactions + tb.global_load_transactions)
        assert run.trace.flops == ta.flops + tb.flops
        assert np.array_equal(run.y[:64], a.run(x[:64]).y)

    def test_per_block_spmv_counts(self, nprng):
        op, _ = kkt_operator(nprng, n1=64, n2=32)
        x = nprng.standard_normal(96)
        op.matvec(x)
        op.matvec(x)
        assert op.spmv_counts == {(0, 0): 2, (0, 1): 2,
                                  (1, 0): 2, (1, 1): 2}
        assert op.spmv_count == 8
        assert op.matvec_count == 2
        op.reset_count()
        assert op.spmv_count == 0 and op.matvec_count == 0

    def test_per_block_obs_spans(self, nprng):
        op, _ = kkt_operator(nprng, n1=64, n2=32)
        sess = ProfileSession("blocks")
        with observe(session=sess):
            op.matvec(nprng.standard_normal(96))
        block_spans = [sp for sp in sess.spans
                       if sp.name == "blockop.block"]
        coords = {(sp.attrs["i"], sp.attrs["j"]) for sp in block_spans}
        assert coords == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestSolverSurface:
    def test_diagonal_composed(self, nprng):
        op, dense = kkt_operator(nprng)
        assert np.allclose(op.diagonal(), np.diag(dense))

    def test_diagonal_zero_block_contributes_zeros(self, nprng):
        h = gen.symmetric_banded(64, 1, nprng)
        b = COOMatrix(np.arange(32), np.arange(32),
                      np.ones(32), (32, 64))
        op = BlockOperator([[None, b.transpose()], [b, None]])
        assert np.array_equal(op.diagonal(), np.zeros(96))

    def test_as_operator_accepts_block_operator(self, nprng):
        op, dense = kkt_operator(nprng, n1=64, n2=32)
        wrapped = as_operator(op)
        x = nprng.standard_normal(96)
        assert np.allclose(wrapped(x), dense @ x)
        assert wrapped.shape == (96, 96)

    def test_pcg_solves_kkt_block_operator(self, nprng):
        op, dense = kkt_operator(nprng, n1=64, n2=32)
        b = nprng.standard_normal(96)
        res = pcg(op, b, tol=1e-10, maxiter=400)
        assert res.converged
        assert np.allclose(dense @ res.x, b, atol=1e-7)
        # every diagonal and coupling block was exercised each iteration
        counts = op.spmv_counts
        assert len(counts) == 4
        assert len(set(counts.values())) == 1

    def test_shape_guard_via_operator(self, nprng):
        op, _ = kkt_operator(nprng, n1=64, n2=32)
        wrapped = as_operator(op)
        with pytest.raises(InputValidationError):
            wrapped(np.zeros(95))


def test_from_blocks_equals_constructor(nprng):
    h = gen.symmetric_banded(64, 1, nprng)
    assert np.allclose(from_blocks([[h]]).matvec(np.ones(64)),
                       BlockOperator([[h]]).matvec(np.ones(64)))

"""BlockVector: lossless partition round trips and blockwise algebra."""

import numpy as np
import pytest

from repro.blockop import BlockVector


@pytest.fixture
def nprng():
    return np.random.default_rng(3)


def test_round_trip(nprng):
    flat = nprng.standard_normal(10)
    bv = BlockVector.from_flat(flat, [4, 6])
    assert bv.sizes == (4, 6)
    assert bv.offsets == (0, 4, 10)
    assert np.array_equal(bv.flatten(), flat)


def test_from_flat_size_mismatch(nprng):
    with pytest.raises(ValueError, match="partition wants"):
        BlockVector.from_flat(nprng.standard_normal(9), [4, 6])


def test_blocks_must_be_1d():
    with pytest.raises(ValueError, match="1-D"):
        BlockVector([np.zeros((2, 2))])
    with pytest.raises(ValueError, match="at least one"):
        BlockVector([])


def test_zeros():
    bv = BlockVector.zeros([3, 5])
    assert bv.size == 8
    assert np.array_equal(bv.flatten(), np.zeros(8))


def test_copy_is_deep(nprng):
    bv = BlockVector.from_flat(nprng.standard_normal(6), [3, 3])
    cp = bv.copy()
    cp[0][0] = 123.0
    assert bv[0][0] != 123.0


def test_arithmetic_matches_flat(nprng):
    a = nprng.standard_normal(12)
    b = nprng.standard_normal(12)
    ba = BlockVector.from_flat(a, [5, 7])
    bb = BlockVector.from_flat(b, [5, 7])
    assert np.array_equal((ba + bb).flatten(), a + b)
    assert np.array_equal((ba - bb).flatten(), a - b)
    assert np.array_equal((2.5 * ba).flatten(), 2.5 * a)
    assert np.array_equal((-ba).flatten(), -a)
    assert ba.dot(bb) == pytest.approx(float(a @ b))
    assert ba.norm() == pytest.approx(float(np.linalg.norm(a)))


def test_partition_mismatch_raises(nprng):
    ba = BlockVector.from_flat(nprng.standard_normal(10), [4, 6])
    bb = BlockVector.from_flat(nprng.standard_normal(10), [5, 5])
    with pytest.raises(ValueError, match="partitions differ"):
        ba + bb
    with pytest.raises(ValueError, match="partitions differ"):
        ba.dot(bb)


def test_setitem_shape_guard(nprng):
    bv = BlockVector.from_flat(nprng.standard_normal(10), [4, 6])
    bv[0] = np.ones(4)
    assert np.array_equal(bv[0], np.ones(4))
    with pytest.raises(ValueError, match="assigned"):
        bv[0] = np.ones(5)

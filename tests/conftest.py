"""Shared fixtures: reference matrices used across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.formats.coo import COOMatrix

#: the worked example of the paper's Fig. 2 (6 x 9), in our consistent
#: reading: rows 0-1 carry pattern {(NAD,1),(AD,2),(NAD,2)} (offsets
#: 0 | 2,3 | 5,7), rows 2-5 carry {(AD,2),(NAD,1)} (offsets -2,-1 | +1),
#: v43 is a fill zero and v55 is the scatter point.
FIG2_ENTRIES = {
    (0, 0): 1.0, (0, 2): 2.0, (0, 3): 3.0, (0, 5): 4.0, (0, 7): 5.0,
    (1, 1): 6.0, (1, 3): 7.0, (1, 4): 8.0, (1, 6): 9.0, (1, 8): 10.0,
    (2, 0): 11.0, (2, 1): 12.0, (2, 3): 13.0,
    (3, 1): 14.0, (3, 2): 15.0, (3, 4): 16.0,
    (4, 2): 17.0, (4, 5): 18.0,
    (5, 3): 19.0, (5, 4): 20.0, (5, 5): 21.0, (5, 6): 22.0,
}
FIG2_SHAPE = (6, 9)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def fig2_coo() -> COOMatrix:
    rows, cols = zip(*FIG2_ENTRIES)
    return COOMatrix(
        np.array(rows), np.array(cols), np.array(list(FIG2_ENTRIES.values())),
        FIG2_SHAPE,
    )


@pytest.fixture
def fig2_dense(fig2_coo) -> np.ndarray:
    return fig2_coo.todense()


def random_diagonal_matrix(
    rng: np.random.Generator,
    n: int = 64,
    offsets=(-5, -1, 0, 1, 5),
    density: float = 0.8,
    scatter: int = 2,
) -> COOMatrix:
    """A random matrix with nonzeros mostly on the given diagonals plus
    a few isolated scatter entries."""
    rows_l, cols_l = [], []
    for off in offsets:
        lo, hi = max(0, -off), min(n, n - off)
        r = np.arange(lo, hi)
        keep = rng.random(r.size) < density
        rows_l.append(r[keep])
        cols_l.append(r[keep] + off)
    for _ in range(scatter):
        rows_l.append(np.array([rng.integers(0, n)]))
        cols_l.append(np.array([rng.integers(0, n)]))
    rows = np.concatenate(rows_l)
    cols = np.concatenate(cols_l)
    vals = rng.standard_normal(rows.size)
    vals[vals == 0] = 1.0
    return COOMatrix(rows, cols, vals, (n, n))


@pytest.fixture
def diagonal_coo(rng) -> COOMatrix:
    return random_diagonal_matrix(rng)

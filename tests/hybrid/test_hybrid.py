"""Transfer model and CPU+GPU hybrid SpMV."""

import numpy as np
import pytest

from repro.hybrid import (
    HybridSpMV,
    PCIeSpec,
    optimal_split,
    spmv_time_with_transfers,
    transfer_time,
)
from repro.hybrid.split import split_rows
from repro.matrices.suite23 import get_spec
from tests.conftest import random_diagonal_matrix


class TestTransfer:
    def test_time_components(self):
        p = PCIeSpec("x", bandwidth_gbs=1.0, latency_us=100.0)
        assert p.time(10**9) == pytest.approx(1.0001)
        assert p.time(0) == 0.0
        with pytest.raises(ValueError):
            p.time(-1)

    def test_transfer_counts_both_vectors(self):
        t_both = transfer_time(1000, 1000, "double")
        t_x = transfer_time(1000, 1000, "double", transfer_y=False)
        t_y = transfer_time(1000, 1000, "double", transfer_x=False)
        assert t_both == pytest.approx(t_x + t_y)

    def test_single_precision_halves_bytes(self):
        p = PCIeSpec("x", bandwidth_gbs=1.0, latency_us=0.0)
        d = transfer_time(1000, 1000, "double", p)
        s = transfer_time(1000, 1000, "single", p)
        assert d == pytest.approx(2 * s)

    def test_transfers_erode_gpu_advantage(self):
        """The paper's conclusion: per-SpMV transfers can dominate a
        fast kernel."""
        kernel = 20e-6  # a fast 20us SpMV on a large matrix
        n = 1_000_000
        total = spmv_time_with_transfers(kernel, n, n, "double")
        assert total > 5 * kernel


class TestSplit:
    def test_split_rows_partition(self, rng):
        coo = random_diagonal_matrix(rng, n=100)
        top, bot = split_rows(coo, 40)
        assert top.nnz + bot.nnz == coo.nnz
        assert top.ncols == bot.ncols == 100
        assert bot.rows.min(initial=0) >= 0

    def test_split_bounds_checked(self, rng):
        coo = random_diagonal_matrix(rng, n=10)
        with pytest.raises(ValueError):
            split_rows(coo, 11)

    def test_optimal_split_balances(self):
        # GPU 4x faster than CPU -> GPU gets 80% of rows
        assert optimal_split(1.0, 4.0) == pytest.approx(0.8)
        with pytest.raises(ValueError):
            optimal_split(0.0, 1.0)


class TestHybridSpMV:
    @pytest.fixture(scope="class")
    def coo(self):
        return get_spec("ecology1").generate(scale=0.01)

    def test_result_correct(self, coo, rng):
        h = HybridSpMV(coo, gpu_fraction=0.6)
        x = rng.standard_normal(coo.ncols)
        res = h.run(x)
        assert np.allclose(res.y, coo.matvec(x), atol=1e-9)

    def test_all_gpu_fraction(self, coo, rng):
        h = HybridSpMV(coo, gpu_fraction=1.0)
        x = rng.standard_normal(coo.ncols)
        res = h.run(x)
        assert res.cpu_seconds == 0.0
        assert np.allclose(res.y, coo.matvec(x), atol=1e-9)

    def test_auto_fraction_balances_devices(self, coo, rng):
        h = HybridSpMV(coo)
        res = h.run(rng.standard_normal(coo.ncols))
        assert 0.5 < res.gpu_fraction <= 1.0  # GPU is the faster device
        # balanced: neither device idles more than 3x the other
        if res.cpu_seconds > 0:
            ratio = res.gpu_seconds / res.cpu_seconds
            assert 1 / 4 < ratio < 4

    def test_boundary_segment_aligned(self, coo):
        h = HybridSpMV(coo, gpu_fraction=0.6, mrows=128)
        assert h.boundary % 128 == 0

    def test_invalid_fraction(self, coo):
        with pytest.raises(ValueError):
            HybridSpMV(coo, gpu_fraction=0.0)

    def test_transfers_accounted_when_enabled(self, coo, rng):
        x = rng.standard_normal(coo.ncols)
        h0 = HybridSpMV(coo, gpu_fraction=0.8, include_transfers=False)
        h1 = HybridSpMV(coo, gpu_fraction=0.8, include_transfers=True)
        r0, r1 = h0.run(x), h1.run(x)
        assert r1.transfer_seconds > 0
        assert r1.total_seconds > r0.total_seconds

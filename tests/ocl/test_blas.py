"""Device level-1 BLAS kernels."""

import numpy as np
import pytest

from repro.ocl import blas
from repro.ocl.executor import Context


@pytest.fixture
def ctx():
    return Context()


@pytest.fixture
def vecs(ctx, rng):
    x = rng.standard_normal(500)
    y = rng.standard_normal(500)
    return x, y, ctx.alloc(x), ctx.alloc(y)


class TestAxpy:
    def test_result(self, vecs):
        x, y, xb, yb = vecs
        blas.axpy(2.5, xb, yb)
        assert np.allclose(yb.data, 2.5 * x + y)

    def test_length_checked(self, ctx):
        with pytest.raises(ValueError):
            blas.axpy(1.0, ctx.alloc(np.ones(3)), ctx.alloc(np.ones(4)))

    def test_traffic_counted(self, vecs):
        _, _, xb, yb = vecs
        tr = blas.axpy(1.0, xb, yb)
        # 2 loads + 1 store of 500 doubles
        assert tr.global_load_bytes_useful == 2 * 500 * 8
        assert tr.global_store_bytes_useful == 500 * 8


class TestScaleAdd:
    def test_result(self, vecs):
        x, y, xb, yb = vecs
        blas.scale_add(xb, 0.5, yb)
        assert np.allclose(yb.data, x + 0.5 * y)


class TestDot:
    def test_result(self, vecs):
        x, y, xb, yb = vecs
        v, _ = blas.dot(xb, yb)
        assert v == pytest.approx(float(x @ y), rel=1e-12)

    def test_non_multiple_length(self, ctx, rng):
        x = rng.standard_normal(301)
        xb = ctx.alloc(x)
        v, _ = blas.dot(xb, xb)
        assert v == pytest.approx(float(x @ x), rel=1e-12)

    def test_reduction_uses_local_memory_and_barriers(self, vecs):
        _, _, xb, yb = vecs
        tr = blas.dot(xb, yb)[1]
        assert tr.barriers > 0
        assert tr.local_load_bytes > 0

    def test_norm(self, ctx, rng):
        x = rng.standard_normal(200)
        v, _ = blas.norm2(ctx.alloc(x))
        assert v == pytest.approx(float(np.linalg.norm(x)), rel=1e-12)


class TestCopy:
    def test_result(self, vecs):
        x, _, xb, yb = vecs
        blas.copy(xb, yb)
        assert np.array_equal(yb.data, xb.data)


class TestGpuCG:
    @pytest.fixture
    def system(self, rng):
        from repro.core.crsd import CRSDMatrix
        from repro.formats.coo import COOMatrix
        from repro.gpu_kernels import CrsdSpMV
        from repro.matrices.generators import grid_stencil, stencil_offsets

        sten = grid_stencil((12, 12), stencil_offsets((12, 12), 1), rng)
        vals = np.where(sten.offsets_of_entries() == 0, 8.0, -1.0)
        coo = COOMatrix(sten.rows, sten.cols, vals, sten.shape)
        runner = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=16))
        return coo, runner

    def test_solves(self, system, rng):
        from repro.solvers.gpu_cg import gpu_cg

        coo, runner = system
        b = rng.standard_normal(coo.nrows)
        res = gpu_cg(runner, b, tol=1e-9)
        assert res.converged
        assert np.allclose(coo.matvec(res.x), b, atol=1e-6)

    def test_aggregate_trace_prices_the_solve(self, system, rng):
        from repro.perf.costmodel import predict_gpu_time
        from repro.solvers.gpu_cg import gpu_cg

        coo, runner = system
        b = rng.standard_normal(coo.nrows)
        res = gpu_cg(runner, b, tol=1e-9)
        perf = predict_gpu_time(res.trace, runner.device,
                                num_launches=res.kernel_launches)
        assert perf.total > 0
        # the solve's traffic is many iterations' worth
        single = runner.run(b).trace
        assert res.trace.global_load_transactions > 3 * single.global_load_transactions

    def test_validation(self, system):
        from repro.solvers.gpu_cg import gpu_cg

        _, runner = system
        with pytest.raises(ValueError):
            gpu_cg(runner, np.ones(3))

    def test_maxiter(self, system, rng):
        from repro.solvers.gpu_cg import gpu_cg

        coo, runner = system
        res = gpu_cg(runner, rng.standard_normal(coo.nrows), maxiter=2)
        assert not res.converged
        assert res.iterations == 2

"""The OpenCL-style host API."""

import numpy as np
import pytest

from repro.ocl.device import AMD_CYPRESS, TESLA_C2050
from repro.ocl.errors import DeviceMemoryError, LaunchError
from repro.ocl.platform import (
    ClContext,
    CommandQueue,
    Program,
    get_platforms,
)

SRC = """\
#pragma OPENCL EXTENSION cl_khr_fp64 : enable
__kernel void copy(__global const double* a, __global double* y)
{
    int i = get_global_id(0);
    y[i] = a[i];
}
"""


def copy_impl(ctx, a, y):
    pos = ctx.group_id * ctx.local_size + ctx.lid
    v = ctx.gload(a, pos)
    ctx.gstore(y, pos, v)


class TestPlatforms:
    def test_enumeration(self):
        plats = get_platforms()
        assert len(plats) == 2
        devices = [d for p in plats for d in p.get_devices()]
        assert TESLA_C2050 in devices and AMD_CYPRESS in devices


class TestProgram:
    def test_build_validates_and_lists_kernels(self):
        ctx = ClContext()
        prog = Program(ctx, SRC).attach("copy", copy_impl).build()
        assert prog.kernel_names == ["copy"]

    def test_build_requires_implementations(self):
        with pytest.raises(LaunchError, match="no implementation"):
            Program(ClContext(), SRC).build()

    def test_build_rejects_bad_source(self):
        from repro.codegen.validator import OpenCLSyntaxError

        with pytest.raises(OpenCLSyntaxError):
            Program(ClContext(), SRC.replace("}", "", 1)).attach(
                "copy", copy_impl
            ).build()

    def test_unbuilt_program_unusable(self):
        prog = Program(ClContext(), SRC).attach("copy", copy_impl)
        with pytest.raises(LaunchError):
            prog.kernel("copy")

    def test_unknown_kernel(self):
        prog = Program(ClContext(), SRC).attach("copy", copy_impl).build()
        with pytest.raises(LaunchError, match="no kernel"):
            prog.kernel("nope")


class TestQueue:
    def test_end_to_end_flow(self):
        ctx = ClContext()
        queue = CommandQueue(ctx)
        prog = Program(ctx, SRC).attach("copy", copy_impl).build()
        a = ctx.create_buffer(np.arange(128, dtype=np.float64))
        y = ctx.create_zero_buffer(128)
        kernel = prog.kernel("copy")
        trace = queue.enqueue_nd_range(kernel, 128, 32, args=(a, y))
        queue.finish()
        assert np.array_equal(queue.enqueue_read_buffer(y), a.data)
        assert trace.work_groups == 4

    def test_global_size_must_divide(self):
        ctx = ClContext()
        queue = CommandQueue(ctx)
        prog = Program(ctx, SRC).attach("copy", copy_impl).build()
        with pytest.raises(LaunchError, match="multiple"):
            queue.enqueue_nd_range(prog.kernel("copy"), 100, 32)

    def test_capacity_enforced(self):
        tiny = TESLA_C2050.with_overrides(global_mem_bytes=64)
        ctx = ClContext(tiny)
        with pytest.raises(DeviceMemoryError):
            ctx.create_buffer(np.zeros(100))

    def test_traces_accumulate(self):
        ctx = ClContext()
        queue = CommandQueue(ctx)
        prog = Program(ctx, SRC).attach("copy", copy_impl).build()
        a = ctx.create_buffer(np.arange(64, dtype=np.float64))
        y = ctx.create_zero_buffer(64)
        k = prog.kernel("copy")
        queue.enqueue_nd_range(k, 64, 32, args=(a, y))
        queue.enqueue_nd_range(k, 64, 32, args=(a, y))
        assert len(queue.traces) == 2
        assert queue.total_trace().work_groups == 4

    def test_profiling_off(self):
        ctx = ClContext()
        queue = CommandQueue(ctx, profiling=False)
        prog = Program(ctx, SRC).attach("copy", copy_impl).build()
        a = ctx.create_buffer(np.arange(64, dtype=np.float64))
        y = ctx.create_zero_buffer(64)
        t = queue.enqueue_nd_range(prog.kernel("copy"), 64, 32, args=(a, y))
        assert t.global_load_requests == 0  # counters off, result still right
        assert np.array_equal(y.data, a.data)


class TestCrsdThroughHostApi:
    def test_generated_kernel_via_program(self, fig2_coo, rng):
        """The paper's actual host flow: build the generated source at
        run time, then enqueue the two kernels."""
        from repro.codegen import build_plan, generate_opencl_source
        from repro.codegen.python_codelet import generate_python_kernel
        from repro.core.crsd import CRSDMatrix

        crsd = CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1)
        plan = build_plan(crsd)
        compiled = generate_python_kernel(plan)

        ctx = ClContext()
        queue = CommandQueue(ctx)
        prog = (
            Program(ctx, generate_opencl_source(plan))
            .attach("crsd_dia_spmv", compiled.dia_kernel)
            .attach("crsd_scatter_spmv", compiled.scatter_kernel)
            .build()
        )
        x = rng.standard_normal(9)
        dia_val = ctx.create_buffer(crsd.dia_val)
        xb = ctx.create_buffer(x)
        yb = ctx.create_zero_buffer(crsd.nrows)
        queue.enqueue_nd_range(
            prog.kernel("crsd_dia_spmv"), plan.num_groups * plan.local_size,
            plan.local_size, args=(dia_val, xb, yb),
        )
        scol = ctx.create_buffer(
            np.ascontiguousarray(crsd.scatter_colval.T).ravel()
        )
        sval = ctx.create_buffer(
            np.ascontiguousarray(crsd.scatter_val.T).ravel()
        )
        srow = ctx.create_buffer(crsd.scatter_rowno)
        queue.enqueue_nd_range(
            prog.kernel("crsd_scatter_spmv"), plan.local_size,
            plan.local_size, args=(scol, sval, srow, xb, yb),
        )
        y = queue.enqueue_read_buffer(yb)
        assert np.allclose(y, fig2_coo.matvec(x))

"""Transaction counting, coalescing and the L2 model."""

import numpy as np
import pytest

from repro.ocl.memory import (
    Buffer,
    LocalBuffer,
    SegmentCache,
    wavefront_segments,
    wavefront_transactions,
)

W = 32      # wavefront size
TXN = 128   # transaction bytes


class TestCoalescing:
    def test_fully_coalesced_float64(self):
        # 32 consecutive doubles = 256 B = 2 transactions
        req, txn, useful = wavefront_transactions(np.arange(32), 8, W, TXN)
        assert (req, txn, useful) == (1, 2, 256)

    def test_fully_coalesced_float32(self):
        req, txn, useful = wavefront_transactions(np.arange(32), 4, W, TXN)
        assert (req, txn, useful) == (1, 1, 128)

    def test_fully_scattered(self):
        idx = np.arange(32) * 1000
        req, txn, useful = wavefront_transactions(idx, 8, W, TXN)
        assert (req, txn) == (1, 32)

    def test_strided_by_two(self):
        idx = np.arange(32) * 2  # doubles, stride 2 -> every segment touched
        req, txn, _ = wavefront_transactions(idx, 8, W, TXN)
        assert txn == 4

    def test_broadcast_single_segment(self):
        req, txn, useful = wavefront_transactions(np.zeros(32, dtype=int), 8, W, TXN)
        assert (req, txn) == (1, 1)
        assert useful == 256

    def test_two_wavefronts(self):
        req, txn, _ = wavefront_transactions(np.arange(64), 8, W, TXN)
        assert (req, txn) == (2, 4)

    def test_partial_wavefront(self):
        req, txn, useful = wavefront_transactions(np.arange(10), 8, W, TXN)
        assert req == 1
        assert txn == 1
        assert useful == 80

    def test_empty(self):
        assert wavefront_transactions(np.empty(0, dtype=int), 8, W, TXN) == (0, 0, 0)

    def test_mask_suppresses_traffic(self):
        idx = np.arange(32) * 1000
        mask = np.zeros(32, dtype=bool)
        mask[:4] = True
        req, txn, useful = wavefront_transactions(idx, 8, W, TXN, mask)
        assert (req, txn, useful) == (1, 4, 32)

    def test_all_masked(self):
        req, txn, useful = wavefront_transactions(
            np.arange(32), 8, W, TXN, np.zeros(32, dtype=bool)
        )
        assert (req, txn, useful) == (0, 0, 0)

    def test_mask_shape_checked(self):
        with pytest.raises(ValueError):
            wavefront_transactions(np.arange(4), 8, W, TXN, np.ones(5, dtype=bool))

    def test_segments_returned_match_count(self):
        idx = np.arange(64)
        req, segs, useful = wavefront_segments(idx, 8, W, TXN)
        assert segs.size == 4
        assert sorted(segs.tolist()) == [0, 1, 2, 3]


class TestSegmentCache:
    def test_hit_after_miss(self):
        c = SegmentCache(capacity_bytes=10 * TXN, transaction_bytes=TXN)
        segs = np.array([1, 2, 3])
        assert c.access(7, segs) == 3
        assert c.access(7, segs) == 0

    def test_distinct_buffers_do_not_alias(self):
        c = SegmentCache(10 * TXN, TXN)
        assert c.access(1, np.array([5])) == 1
        assert c.access(2, np.array([5])) == 1

    def test_lru_eviction(self):
        c = SegmentCache(2 * TXN, TXN)
        c.access(0, np.array([1]))
        c.access(0, np.array([2]))
        c.access(0, np.array([1]))          # 1 is now most recent
        assert c.access(0, np.array([3])) == 1  # evicts 2
        assert c.access(0, np.array([1])) == 0  # still resident
        assert c.access(0, np.array([2])) == 1  # was evicted

    def test_minimum_capacity_one_line(self):
        c = SegmentCache(1, TXN)
        assert c.capacity == 1


class TestBuffers:
    def test_buffer_flattens(self):
        b = Buffer(np.zeros((4, 5)))
        assert len(b) == 20
        assert b.nbytes == 160

    def test_local_buffer_zeroed(self):
        lb = LocalBuffer(8, np.float32)
        assert lb.nbytes == 32
        assert np.all(lb.data == 0)

"""Property tests of the transaction counter against a brute-force
reference implementation."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ocl.memory import SegmentCache, wavefront_segments, wavefront_transactions


def brute_force(indices, itemsize, wavefront, txn_bytes, mask=None):
    """Obviously-correct reference: per wavefront, the set of distinct
    byte segments touched by active lanes."""
    idx = list(indices)
    act = [True] * len(idx) if mask is None else list(mask)
    requests = 0
    transactions = 0
    useful = 0
    for start in range(0, len(idx), wavefront):
        lanes = idx[start : start + wavefront]
        lane_act = act[start : start + wavefront]
        segs = {
            i * itemsize // txn_bytes for i, a in zip(lanes, lane_act) if a
        }
        if segs:
            requests += 1
        transactions += len(segs)
        useful += sum(lane_act) * itemsize
    return requests, transactions, useful


@st.composite
def access(draw):
    n = draw(st.integers(1, 200))
    idx = draw(st.lists(st.integers(0, 10_000), min_size=n, max_size=n))
    has_mask = draw(st.booleans())
    mask = (
        draw(st.lists(st.booleans(), min_size=n, max_size=n))
        if has_mask
        else None
    )
    itemsize = draw(st.sampled_from([4, 8]))
    wavefront = draw(st.sampled_from([16, 32, 64]))
    return np.array(idx), mask, itemsize, wavefront


@settings(max_examples=150, deadline=None)
@given(a=access())
def test_counts_match_brute_force(a):
    idx, mask, itemsize, wavefront = a
    m = None if mask is None else np.array(mask, dtype=bool)
    got = wavefront_transactions(idx, itemsize, wavefront, 128, m)
    want = brute_force(idx, itemsize, wavefront, 128, mask)
    assert got == want


@settings(max_examples=100, deadline=None)
@given(a=access())
def test_segments_list_consistent_with_count(a):
    idx, mask, itemsize, wavefront = a
    m = None if mask is None else np.array(mask, dtype=bool)
    req, segs, useful = wavefront_segments(idx, itemsize, wavefront, 128, m)
    req2, txn, useful2 = wavefront_transactions(idx, itemsize, wavefront, 128, m)
    assert (req, segs.size, useful) == (req2, txn, useful2)
    assert np.all(segs >= 0)


@settings(max_examples=100, deadline=None)
@given(
    capacity=st.integers(1, 16),
    accesses=st.lists(st.integers(0, 30), min_size=1, max_size=200),
)
def test_cache_never_exceeds_capacity_and_hits_are_sound(capacity, accesses):
    """Model check: an access misses iff its line is not among the
    ``capacity`` most recently used distinct lines."""
    c = SegmentCache(capacity * 128, 128)
    lru = []
    for seg in accesses:
        misses = c.access(0, np.array([seg]))
        expected_miss = seg not in lru[-capacity:]
        assert misses == (1 if expected_miss else 0), (seg, lru)
        if seg in lru:
            lru.remove(seg)
        lru.append(seg)
        assert len(c._lines) <= capacity

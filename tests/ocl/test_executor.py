"""Simulated runtime: contexts, launches, tracing, divergence, barriers."""

import numpy as np
import pytest

from repro.ocl.device import TESLA_C2050
from repro.ocl.errors import DeviceMemoryError, LaunchError, LocalMemoryError
from repro.ocl.executor import Context, launch
from repro.ocl.trace import KernelTrace


@pytest.fixture
def tiny_device():
    return TESLA_C2050.with_overrides(global_mem_bytes=1024, l2_bytes=0)


class TestContext:
    def test_alloc_accounting(self, tiny_device):
        ctx = Context(tiny_device)
        ctx.alloc(np.zeros(64))  # 512 B
        assert ctx.allocated_bytes == 512

    def test_capacity_enforced(self, tiny_device):
        ctx = Context(tiny_device)
        ctx.alloc(np.zeros(100))
        with pytest.raises(DeviceMemoryError):
            ctx.alloc(np.zeros(100))

    def test_free_releases(self, tiny_device):
        ctx = Context(tiny_device)
        b = ctx.alloc(np.zeros(100))
        ctx.free(b)
        ctx.alloc(np.zeros(100))  # fits again

    def test_buffers_are_copies(self, tiny_device):
        host = np.zeros(4)
        ctx = Context(tiny_device)
        b = ctx.alloc(host)
        b.data[0] = 5.0
        assert host[0] == 0.0


class TestLaunch:
    def test_simple_copy_kernel(self):
        ctx = Context()
        src = ctx.alloc(np.arange(100, dtype=np.float64))
        dst = ctx.alloc_zeros(100)

        def kernel(c, a, b):
            pos = c.group_id * c.local_size + c.lid
            m = pos < 100
            v = c.gload(a, np.minimum(pos, 99), mask=m)
            c.gstore(b, np.minimum(pos, 99), v, mask=m)

        tr = launch(kernel, 4, 32, (src, dst))
        assert np.array_equal(dst.data, src.data)
        assert tr.work_groups == 4
        assert tr.wavefronts == 4
        assert tr.global_load_requests == 4
        assert tr.global_store_requests == 4

    def test_trace_off_returns_zero_counters(self):
        ctx = Context()
        buf = ctx.alloc(np.ones(32))

        def kernel(c, b):
            c.gload(b, c.lid)
            c.flops(10)

        tr = launch(kernel, 1, 32, (buf,), trace=False)
        assert tr.global_load_requests == 0
        assert tr.flops == 0

    def test_invalid_launch(self):
        with pytest.raises(LaunchError):
            launch(lambda c: None, -1, 32, ())
        with pytest.raises(LaunchError):
            launch(lambda c: None, 1, 0, ())

    def test_zero_groups(self):
        tr = launch(lambda c: None, 0, 32, ())
        assert tr.work_groups == 0


class TestLocalMemory:
    def test_alloc_and_use(self):
        def kernel(c):
            lmem = c.alloc_local(32)
            c.lstore(lmem, c.lid, c.lid.astype(float))
            c.barrier()
            v = c.lload(lmem, (c.lid + 1) % 32)
            assert v[0] == 1.0

        tr = launch(kernel, 1, 32, ())
        assert tr.barriers == 1
        assert tr.local_store_bytes == 32 * 8
        assert tr.local_load_bytes == 32 * 8

    def test_capacity_enforced(self):
        dev = TESLA_C2050.with_overrides(local_mem_per_cu_bytes=64)

        def kernel(c):
            c.alloc_local(100)

        with pytest.raises(LocalMemoryError):
            launch(kernel, 1, 32, (), device=dev)


class TestDivergence:
    def test_uniform_trips_full_efficiency(self):
        def kernel(c):
            c.loop_trips(np.full(32, 5))

        tr = launch(kernel, 1, 32, ())
        assert tr.divergence_efficiency == 1.0

    def test_one_long_lane_serialises(self):
        def kernel(c):
            trips = np.ones(32, dtype=int)
            trips[0] = 32
            c.loop_trips(trips)

        tr = launch(kernel, 1, 32, ())
        # issued 32*32, useful 63
        assert tr.divergence_efficiency == pytest.approx(63 / 1024)

    def test_no_report_means_no_divergence(self):
        tr = launch(lambda c: None, 4, 32, ())
        assert tr.divergence_efficiency == 1.0


class TestAtomics:
    def test_atomic_add_accumulates(self):
        ctx = Context()
        y = ctx.alloc_zeros(4)

        def kernel(c, yb):
            c.gatomic_add(yb, np.zeros(32, dtype=int), np.ones(32))

        launch(kernel, 2, 32, (y,))
        assert y.data[0] == 64.0

    def test_atomic_counts_both_directions(self):
        ctx = Context()
        y = ctx.alloc_zeros(4)

        def kernel(c, yb):
            c.gatomic_add(yb, np.zeros(32, dtype=int), np.ones(32))

        tr = launch(kernel, 1, 32, (y,))
        assert tr.global_load_transactions >= 1
        assert tr.global_store_transactions >= 1


class TestL2Integration:
    def test_repeated_load_hits_cache(self):
        ctx = Context()
        buf = ctx.alloc(np.ones(32))

        def kernel(c, b):
            c.gload(b, c.lid)
            c.gload(b, c.lid)

        tr = launch(kernel, 1, 32, (buf,))
        assert tr.l2_hits == 2  # second load's 2 segments hit
        assert tr.global_load_transactions == 2

    def test_cache_shared_across_groups(self):
        ctx = Context()
        buf = ctx.alloc(np.ones(32))

        def kernel(c, b):
            c.gload(b, c.lid)  # every group loads the same 32 doubles

        tr = launch(kernel, 5, 32, (buf,))
        assert tr.global_load_transactions == 2
        assert tr.l2_hits == 8

    def test_l2_disabled(self):
        dev = TESLA_C2050.with_overrides(l2_bytes=0)
        ctx = Context(dev)
        buf = ctx.alloc(np.ones(32))

        def kernel(c, b):
            c.gload(b, c.lid)

        tr = launch(kernel, 5, 32, (buf,), device=dev)
        assert tr.l2_hits == 0
        assert tr.global_load_transactions == 10


class TestTrace:
    def test_merge(self):
        a = KernelTrace(flops=5, barriers=1, work_groups=2)
        b = KernelTrace(flops=7, barriers=2, work_groups=3)
        a.merge(b)
        assert a.flops == 12 and a.barriers == 3 and a.work_groups == 5

    def test_coalescing_efficiency_bounds(self):
        t = KernelTrace(global_load_transactions=4,
                        global_load_bytes_useful=256)
        assert 0 < t.load_coalescing_efficiency() <= 1.0
        assert KernelTrace().load_coalescing_efficiency() == 1.0

    def test_device_overrides(self):
        d = TESLA_C2050.with_overrides(num_cus=7)
        assert d.num_cus == 7
        assert d.name == TESLA_C2050.name
        assert TESLA_C2050.num_cus == 14

    def test_peak_gflops_lookup(self):
        assert TESLA_C2050.peak_gflops("double") == 515.0
        assert TESLA_C2050.peak_gflops("single") == 1030.0
        with pytest.raises(ValueError):
            TESLA_C2050.peak_gflops("half")

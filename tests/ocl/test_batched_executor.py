"""Batched execution engine: counter parity with the per-group oracle.

``launch_batched`` promises the *identical* results and trace counters
as running the same uniform kernel group by group through ``launch``.
These tests express kernels against the shared ctx surface (``group_id``
broadcasts either way) and assert bit-exact buffer contents plus
field-by-field trace equality.
"""

import dataclasses

import numpy as np
import pytest

from repro.ocl.device import TESLA_C2050
from repro.ocl.errors import LaunchError, LocalMemoryError
from repro.ocl.executor import (
    BatchCtx,
    Context,
    executor_mode,
    launch,
    launch_batched,
    make_launch_cache,
)
from repro.ocl.memory import SegmentCache


def trace_dict(tr):
    return dataclasses.asdict(tr)


def run_both(kernel, num_groups, local_size, make_args,
             device=TESLA_C2050, trace=True):
    """Run ``kernel`` through both engines on fresh buffers; return
    ((per-group trace, buffers), (batched trace, buffers))."""
    out = []
    for engine in (launch, launch_batched):
        ctx = Context(device)
        args = make_args(ctx)
        tr = engine(kernel, num_groups, local_size, args,
                    device=device, trace=trace)
        out.append((tr, args))
    return out


class TestParity:
    def test_strided_copy(self):
        """Global load + masked store: same bytes, same counters."""
        def kernel(c, a, b):
            pos = c.group_id * c.local_size + c.lid
            m = pos < 100
            v = c.gload(a, np.minimum(pos, 99), mask=m)
            c.gstore(b, np.minimum(pos, 99), v, mask=m)

        def make_args(ctx):
            return (ctx.alloc(np.arange(100, dtype=np.float64)),
                    ctx.alloc_zeros(100))

        (tr_p, (_, dst_p)), (tr_b, (_, dst_b)) = run_both(
            kernel, 4, 32, make_args)
        assert np.array_equal(dst_p.data, dst_b.data)
        assert trace_dict(tr_p) == trace_dict(tr_b)

    def test_scattered_access_pattern(self):
        """Uncoalesced indices exercise the per-wavefront segment rule."""
        def kernel(c, a, b):
            idx = (c.group_id * 131 + c.lid * 17) % 256
            v = c.gload(a, idx)
            c.gstore(b, (c.group_id * c.local_size + c.lid) % 256, v * 2.0)

        def make_args(ctx):
            return (ctx.alloc(np.arange(256, dtype=np.float64)),
                    ctx.alloc_zeros(256))

        (tr_p, (_, dst_p)), (tr_b, (_, dst_b)) = run_both(
            kernel, 6, 64, make_args)
        assert np.array_equal(dst_p.data, dst_b.data)
        assert trace_dict(tr_p) == trace_dict(tr_b)

    def test_local_memory_round_trip(self):
        """lstore/lload stay group-private and count the same bytes."""
        def kernel(c, out):
            lmem = c.alloc_local(32)
            c.lstore(lmem, c.lid, (c.group_id * 100 + c.lid).astype(float))
            c.barrier()
            v = c.lload(lmem, (c.lid + 1) % 32)
            c.gstore(out, c.group_id * c.local_size + c.lid, v)

        def make_args(ctx):
            return (ctx.alloc_zeros(3 * 32),)

        (tr_p, (dst_p,)), (tr_b, (dst_b,)) = run_both(
            kernel, 3, 32, make_args)
        assert np.array_equal(dst_p.data, dst_b.data)
        assert trace_dict(tr_p) == trace_dict(tr_b)
        assert tr_b.barriers == 3
        assert tr_b.local_store_bytes == 3 * 32 * 8

    def test_atomic_add(self):
        """Colliding atomics accumulate identically (same sum order)."""
        def kernel(c, y):
            c.gatomic_add(y, (c.group_id + c.lid) % 4,
                          (c.lid + 1).astype(float) * 0.125)

        def make_args(ctx):
            return (ctx.alloc_zeros(4),)

        (tr_p, (y_p,)), (tr_b, (y_b,)) = run_both(kernel, 5, 32, make_args)
        assert np.array_equal(y_p.data, y_b.data)
        assert trace_dict(tr_p) == trace_dict(tr_b)

    def test_loop_trips_divergence(self):
        def kernel(c):
            c.loop_trips((c.group_id + c.lid) % 7 + 1)

        tr_p = launch(kernel, 4, 64, ())
        tr_b = launch_batched(kernel, 4, 64, ())
        assert trace_dict(tr_p) == trace_dict(tr_b)
        assert 0 < tr_b.divergence_efficiency < 1.0

    def test_l2_replay_order(self):
        """The LRU stream must replay group-major: with an L2 of only a
        few lines, hit counts are order-sensitive, so any reordering
        relative to the sequential engine shows up here."""
        dev = TESLA_C2050.with_overrides(l2_bytes=4 * 128)

        def kernel(c, a):
            c.gload(a, (c.group_id * 16 + c.lid) % 512)
            c.gload(a, (c.group_id * 16 + c.lid) % 512)

        def make_args(ctx):
            return (ctx.alloc(np.zeros(512)),)

        (tr_p, _), (tr_b, _) = run_both(kernel, 8, 32, make_args, device=dev)
        assert trace_dict(tr_p) == trace_dict(tr_b)
        assert tr_b.l2_hits > 0


class TestBatchedLaunch:
    def test_trace_off_returns_zero_counters(self):
        ctx = Context()
        buf = ctx.alloc(np.ones(32))

        def kernel(c, b):
            c.gload(b, c.lid)
            c.flops(10)

        tr = launch_batched(kernel, 1, 32, (buf,), trace=False)
        assert tr.global_load_requests == 0
        assert tr.flops == 0

    def test_invalid_launch(self):
        with pytest.raises(LaunchError):
            launch_batched(lambda c: None, -1, 32, ())
        with pytest.raises(LaunchError):
            launch_batched(lambda c: None, 1, 0, ())

    def test_zero_groups(self):
        tr = launch_batched(lambda c: None, 0, 32, ())
        assert tr.work_groups == 0

    def test_masked_load_zero_fills(self):
        ctx = Context()
        buf = ctx.alloc(np.full(32, 7.0))
        seen = {}

        def kernel(c, b):
            m = c.lid % 2 == 0
            seen["v"] = c.gload(b, c.lid, mask=np.broadcast_to(
                m, (c.num_groups, c.local_size)))

        launch_batched(kernel, 2, 32, (buf,))
        v = seen["v"]
        assert v.shape == (2, 32)
        assert np.all(v[:, ::2] == 7.0)
        assert np.all(v[:, 1::2] == 0.0)

    def test_local_capacity_enforced(self):
        dev = TESLA_C2050.with_overrides(local_mem_per_cu_bytes=64)

        def kernel(c):
            c.alloc_local(100)

        with pytest.raises(LocalMemoryError):
            launch_batched(kernel, 1, 32, (), device=dev)

    def test_sub_contexts_partition_the_grid(self):
        """Multi-region style: each sub-range sees its own group ids."""
        ctx = Context()
        out = ctx.alloc_zeros(8 * 16)

        def kernel(c, b):
            lo = c.sub(0, 3)
            lo.gstore(b, lo.group_id * 16 + lo.lid,
                      np.broadcast_to(1.0, (lo.num_groups, 16)))
            lo.finalize()
            hi = c.sub(3, 8)
            hi.gstore(b, hi.group_id * 16 + hi.lid,
                      np.broadcast_to(2.0, (hi.num_groups, 16)))
            hi.finalize()

        launch_batched(kernel, 8, 16, (out,))
        assert np.all(out.data[: 3 * 16] == 1.0)
        assert np.all(out.data[3 * 16:] == 2.0)


class TestLaunchCacheSharing:
    def test_shared_cache_carries_residency(self):
        """Two launches with one shared cache: the second one's loads
        hit the lines left by the first (the CRSD dia -> scatter case)."""
        ctx = Context()
        buf = ctx.alloc(np.ones(32))

        def kernel(c, b):
            c.gload(b, c.lid)

        cache = make_launch_cache(TESLA_C2050, trace=True)
        t1 = launch_batched(kernel, 1, 32, (buf,), cache=cache)
        t2 = launch_batched(kernel, 1, 32, (buf,), cache=cache)
        assert t1.global_load_transactions == 2
        assert t1.l2_hits == 0
        assert t2.global_load_transactions == 0
        assert t2.l2_hits == 2

    def test_no_cache_without_trace_or_l2(self):
        assert make_launch_cache(TESLA_C2050, trace=False) is None
        dev = TESLA_C2050.with_overrides(l2_bytes=0)
        assert make_launch_cache(dev, trace=True) is None
        cache = make_launch_cache(TESLA_C2050, trace=True)
        assert isinstance(cache, SegmentCache)


class TestExecutorMode:
    def test_default_is_batched(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXECUTOR", raising=False)
        assert executor_mode() == "batched"

    def test_explicit_modes(self, monkeypatch):
        for mode in ("batched", "pergroup"):
            monkeypatch.setenv("REPRO_EXECUTOR", mode)
            assert executor_mode() == mode
        monkeypatch.setenv("REPRO_EXECUTOR", "  PerGroup ")
        assert executor_mode() == "pergroup"

    def test_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "warp-speed")
        with pytest.raises(LaunchError, match="REPRO_EXECUTOR"):
            executor_mode()


class TestBatchCtxShapes:
    def test_group_id_is_column(self):
        ctx = BatchCtx(TESLA_C2050, np.arange(5), 32, None)
        assert ctx.group_id.shape == (5, 1)
        assert ctx.lid.shape == (32,)
        grid = ctx.group_id * ctx.local_size + ctx.lid
        assert grid.shape == (5, 32)
        assert grid[2, 3] == 2 * 32 + 3

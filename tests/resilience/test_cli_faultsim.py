"""The ``repro faultsim`` subcommand: determinism and report plumbing."""

import json

from repro.cli import main

ARGS = ["faultsim", "--seed", "5", "--matrices", "kim1",
        "--scale", "0.01"]


class TestFaultsim:
    def test_summary_output(self, capsys):
        code = main(ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "faultsim seed=5" in out
        assert "silent divergences" in out
        assert "kim1" in out

    def test_json_is_deterministic(self, capsys):
        assert main(ARGS + ["--json"]) == 0
        first = capsys.readouterr().out
        assert main(ARGS + ["--json"]) == 0
        second = capsys.readouterr().out
        assert first == second  # byte-identical, same seed
        payload = json.loads(first)
        assert payload["schema"] == "repro-faultsim/v1"
        assert payload["seed"] == 5
        assert payload["silent_divergences"] == 0

    def test_different_seeds_differ(self, capsys):
        main(ARGS + ["--json"])
        a = capsys.readouterr().out
        main(["faultsim", "--seed", "6", "--matrices", "kim1",
              "--scale", "0.01", "--json"])
        b = capsys.readouterr().out
        assert json.loads(a)["seed"] != json.loads(b)["seed"]

    def test_output_file(self, tmp_path, capsys):
        out = tmp_path / "incidents.json"
        assert main(ARGS + ["-o", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-faultsim/v1"
        assert len(payload["cases"]) == 4  # 2 executors x 2 precisions

    def test_matrix_by_number_and_executor_filter(self, capsys):
        code = main(["faultsim", "--seed", "0", "--matrices", "9",
                     "--scale", "0.01", "--executors", "batched",
                     "--precisions", "double", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert len(payload["cases"]) == 1
        assert payload["cases"][0]["matrix"] == "kim1"
        assert payload["cases"][0]["executor"] == "batched"

"""Fault injector: determinism, schedules, and the zero-cost-off path."""

import dataclasses

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels import CrsdSpMV
from repro.ocl.errors import DeviceMemoryError, LaunchError, LocalMemoryError
from repro.resilience.faults import (
    ACTIVE,
    FaultInjector,
    FaultSpec,
    active,
    inject,
)
from tests.conftest import random_diagonal_matrix


def drive(injector, sites):
    """Feed a fixed call sequence; return the events fired."""
    for site in sites:
        kind, _, rest = site.partition(":")
        try:
            if kind == "alloc":
                injector.on_alloc(rest, 1024)
            elif kind == "launch":
                injector.on_launch(rest)
            else:
                injector.on_phase(rest)
        except (DeviceMemoryError, LocalMemoryError, LaunchError):
            pass
    return [dataclasses.asdict(e) for e in injector.events]


SITES = ["launch:k0", "alloc:x", "launch:k1", "phase:crsd.prepare",
         "launch:k0", "alloc:y", "launch:k1"] * 3


class TestDeterminism:
    def test_same_seed_same_events(self):
        spec = FaultSpec(site="launch:*", kind="launch", probability=0.5)
        a = drive(FaultInjector(seed=42, specs=[spec]), SITES)
        b = drive(FaultInjector(seed=42, specs=[spec]), SITES)
        assert a == b and a  # fired at least once at p=0.5 over 12 calls

    def test_different_seed_different_events(self):
        spec = FaultSpec(site="launch:*", kind="launch", probability=0.5)
        seen = {
            tuple(e["call_index"] for e in
                  drive(FaultInjector(seed=s, specs=[spec]), SITES))
            for s in range(8)
        }
        assert len(seen) > 1

    def test_reset_restores_pristine_state(self):
        inj = FaultInjector(
            seed=7, specs=[FaultSpec(site="*", kind="launch",
                                     probability=0.5)])
        first = drive(inj, SITES)
        inj.reset()
        assert inj.events == []
        assert drive(inj, SITES) == first


class TestSchedules:
    def test_at_calls_fires_exactly_there(self):
        inj = FaultInjector(seed=0, specs=[
            FaultSpec(site="launch:k0", kind="launch", at_calls=(1, 3))])
        drive(inj, SITES)  # k0 appears 6 times
        assert [e.call_index for e in inj.events] == [1, 3]
        assert all(e.site == "launch:k0" for e in inj.events)

    def test_max_fires_makes_it_transient(self):
        inj = FaultInjector(seed=0, specs=[
            FaultSpec(site="launch:*", kind="launch", probability=1.0,
                      max_fires=2)])
        drive(inj, SITES)
        assert len(inj.events) == 2

    def test_persistent_fires_forever(self):
        inj = FaultInjector(seed=0, specs=[
            FaultSpec(site="launch:k0", kind="launch", probability=1.0)])
        drive(inj, SITES)
        assert len(inj.events) == 6  # every k0 call

    def test_one_spec_firing_does_not_perturb_another(self):
        """Counters advance for every matching spec, fired or not."""
        late = FaultSpec(site="launch:k0", kind="launch", at_calls=(4,))
        noisy = FaultSpec(site="launch:*", kind="launch", at_calls=(0, 2))
        alone = FaultInjector(seed=0, specs=[late])
        together = FaultInjector(seed=0, specs=[noisy, late])
        drive(alone, SITES)
        drive(together, SITES)
        assert [e.call_index for e in alone.events
                if e.site == "launch:k0"] == [4]
        assert [e.call_index for e in together.events
                if e.spec_index == 1] == [4]

    def test_kind_maps_to_typed_error(self):
        for kind, err in [("device_oom", DeviceMemoryError),
                          ("local_oom", LocalMemoryError),
                          ("launch", LaunchError)]:
            inj = FaultInjector(seed=0, specs=[
                FaultSpec(site="*", kind=kind, at_calls=(0,))])
            with inject(inj), pytest.raises(err, match="injected fault"):
                inj.on_launch("k")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(site="*", kind="meteor")
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="*", kind="launch", probability=1.5)
        with pytest.raises(ValueError, match="payload"):
            FaultSpec(site="*", kind="soft", payload="gamma-ray")


class TestActivation:
    def test_off_by_default(self):
        assert ACTIVE is None and active() is None

    def test_inject_activates_and_restores(self):
        inj = FaultInjector()
        with inject(inj):
            assert active() is inj
            with inject(None):  # suspension for reference runs
                assert active() is None
            assert active() is inj
        assert active() is None

    def test_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with inject(FaultInjector()):
                raise RuntimeError("boom")
        assert active() is None


class TestZeroCostOff:
    """With injection off, the runtime must never touch the injector."""

    def test_hooks_never_called_when_inactive(self, monkeypatch):
        def bomb(*a, **k):  # pragma: no cover - must never run
            raise AssertionError("injector hook called while inactive")

        for hook in ("on_alloc", "on_launch", "on_launch_exit", "on_phase"):
            monkeypatch.setattr(FaultInjector, hook, bomb)
        rng = np.random.default_rng(0)
        coo = random_diagonal_matrix(rng, n=128)
        x = rng.standard_normal(coo.ncols)
        run = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=32)).run(x)
        assert np.allclose(run.y, coo.matvec(x))

    def test_noop_injector_is_bit_transparent(self):
        """An active injector with no firing rules must not change y
        or a single KernelTrace counter."""
        rng = np.random.default_rng(1)
        coo = random_diagonal_matrix(rng, n=128)
        x = rng.standard_normal(coo.ncols)
        bare = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=32)).run(x)
        with inject(FaultInjector(seed=9, specs=[])):
            under = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=32)).run(x)
        assert np.array_equal(bare.y, under.y)
        assert dataclasses.asdict(bare.trace) == \
            dataclasses.asdict(under.trace)

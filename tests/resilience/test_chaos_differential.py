"""Differential chaos acceptance: across the whole 23-matrix suite,
both executors and both precisions, under seeded fault injection, every
resilient SpMV either serves a ``y`` bit-identical to the fault-free
run of its serving rung or raises :class:`ResilienceExhausted` —
silent divergence is never an outcome.
"""

import numpy as np
import pytest

from repro.matrices.suite23 import SUITE
from repro.resilience.chaos import chaos_sweep, default_chaos_specs
from repro.resilience.faults import FaultInjector, FaultSpec

SEED = 11
SCALE = 0.01


@pytest.mark.parametrize(
    "spec", SUITE, ids=lambda s: f"{s.number:02d}-{s.name}")
def test_suite_no_silent_divergence(spec):
    report = chaos_sweep(seed=SEED, scale=SCALE, matrices=[spec.number])
    # 2 executors x 2 precisions, every case accounted for
    assert len(report.cases) == 4
    assert {(c["executor"], c["precision"]) for c in report.cases} == {
        ("batched", "double"), ("batched", "single"),
        ("pergroup", "double"), ("pergroup", "single")}
    assert report.silent_divergences == []
    assert report.exit_code == 0
    for case in report.cases:
        assert case["outcome"] in ("served", "exhausted")
        if case["outcome"] == "served":
            assert case["identical"] is True


def test_chaos_plan_actually_injects():
    """The default plan is not a placebo: over a few matrices it fires
    faults and forces at least one retry or degradation."""
    report = chaos_sweep(seed=SEED, scale=SCALE, matrices=[3, 9, 11])
    faults = sum(c["faults"] for c in report.cases)
    assert faults > 0
    assert any(c["attempts"] > 1 or c.get("degraded") for c in report.cases)


def test_sweep_is_deterministic():
    a = chaos_sweep(seed=7, scale=SCALE, matrices=[9])
    b = chaos_sweep(seed=7, scale=SCALE, matrices=[9])
    assert a.to_dict() == b.to_dict()


def test_sweep_report_shape():
    report = chaos_sweep(seed=0, scale=SCALE, matrices=[9],
                         precisions=("double",), executors=("batched",))
    d = report.to_dict()
    assert d["schema"] == "repro-faultsim/v1"
    assert d["meta"]["matrices"] == [9]
    assert len(d["cases"]) == 1
    case = d["cases"][0]
    assert case["matrix"] == "kim1"
    assert "incident" in case


def test_aggressive_soft_plan_still_never_diverges():
    """Even a plan that corrupts outputs at high probability cannot
    produce a silently-diverged served y."""
    specs = (
        FaultSpec(site="launch:*", kind="soft", probability=0.5,
                  payload="nudge"),
        FaultSpec(site="launch:*", kind="soft", probability=0.3,
                  payload="flip"),
    )
    report = chaos_sweep(seed=3, scale=SCALE, matrices=[5],
                         specs=specs)
    assert sum(c["faults"] for c in report.cases) > 0
    assert report.silent_divergences == []


def test_unknown_executor_rejected():
    with pytest.raises(ValueError, match="unknown executor"):
        chaos_sweep(matrices=[9], executors=("cuda",))

"""Fused-engine demotion: prover crashes and verification mismatches.

The fused engine's safety story has two failure modes beyond the clean
certification decline (covered in ``tests/gpu_kernels``): a *crashed*
prover and a *wrong answer* caught by ``REPRO_FUSED_VERIFY``.  Both
must demote the runner to the batched engine permanently, file an
:class:`~repro.resilience.engine.IncidentReport`, and still serve a
``y`` bit-identical to an uncorrupted batched run.
"""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels.crsd_runner import (
    FUSED_RUNG,
    FUSED_VERIFY_ENV,
    CrsdSpMV,
    fused_verify_mode,
)
from repro.resilience.faults import FaultInjector, FaultSpec, inject
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def crsd(rng):
    coo = random_diagonal_matrix(rng, n=160, scatter=3)
    return coo, CRSDMatrix.from_coo(coo, mrows=32)


def batched_reference(crsd, x, monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", "batched")
    run = CrsdSpMV(crsd).run(x)
    monkeypatch.setenv("REPRO_EXECUTOR", "fused")
    return run


class TestProverCrash:
    def test_crash_demotes_and_files_incident(self, crsd, rng,
                                              monkeypatch):
        coo, m = crsd
        x = rng.standard_normal(160)
        ref = batched_reference(m, x, monkeypatch)
        spec = FaultSpec(site="phase:*.fused_certify", kind="launch",
                         at_calls=(0,))
        runner = CrsdSpMV(m)
        with inject(FaultInjector(seed=5, specs=[spec])) as inj:
            run = runner.run(x)
            assert any(e.site == "phase:crsd.fused_certify"
                       for e in inj.events)
        # served through batched, bits identical to the clean engine
        assert np.array_equal(run.y, ref.y)
        # the crash is an incident, not a silent decline
        report = run.resilience
        assert report is not None
        assert report.requested == FUSED_RUNG
        assert report.served_rung == "crsd"
        assert report.attempts[0].outcome == "fault"
        assert report.attempts[0].rung == FUSED_RUNG
        assert report.attempts[-1].outcome == "served"
        assert runner.fused_incidents == [report]

    def test_demotion_is_permanent_and_reported_once(self, crsd, rng,
                                                     monkeypatch):
        _, m = crsd
        monkeypatch.setenv("REPRO_EXECUTOR", "fused")
        spec = FaultSpec(site="phase:*.fused_certify", kind="launch",
                         at_calls=(0,))
        runner = CrsdSpMV(m)
        with inject(FaultInjector(seed=5, specs=[spec])):
            first = runner.run(rng.standard_normal(160))
        assert first.resilience is not None
        # injector gone, but the runner stays demoted — and the
        # incident is attached only to the run that triggered it
        later = runner.run(rng.standard_normal(160))
        assert runner._fused_state() is None
        assert later.resilience is None
        assert len(runner.fused_incidents) == 1


class TestVerifyMismatch:
    def test_corrupted_fused_output_is_caught(self, crsd, rng,
                                              monkeypatch):
        """A soft fault corrupting the fused kernel's y is caught by
        the always-on verifier: the batched oracle's answer is served,
        the incident says verify-failed, and the runner never runs
        fused again."""
        coo, m = crsd
        x = rng.standard_normal(160)
        ref = batched_reference(m, x, monkeypatch)
        monkeypatch.setenv(FUSED_VERIFY_ENV, "always")
        spec = FaultSpec(site="launch:crsd_fused_kernel", kind="soft",
                         payload="nan", at_calls=(0,), max_fires=1)
        runner = CrsdSpMV(m)
        with inject(FaultInjector(seed=11, specs=[spec])) as inj:
            run = runner.run(x)
            assert any(e.kind == "soft" for e in inj.events)
        assert np.array_equal(run.y, ref.y)
        assert not np.isnan(run.y).any()
        report = run.resilience
        assert report is not None
        assert report.requested == FUSED_RUNG
        assert report.verified is True
        assert report.attempts[0].outcome == "verify-failed"
        assert runner._fused_demoted
        # subsequent runs serve batched, still bit-identical
        again = runner.run(x)
        assert np.array_equal(again.y, ref.y)
        assert again.resilience is None

    def test_clean_fused_run_passes_verification(self, crsd, rng,
                                                 monkeypatch):
        _, m = crsd
        x = rng.standard_normal(160)
        ref = batched_reference(m, x, monkeypatch)
        monkeypatch.setenv(FUSED_VERIFY_ENV, "always")
        runner = CrsdSpMV(m)
        run = runner.run(x)
        assert np.array_equal(run.y, ref.y)
        assert run.resilience is None
        assert not runner._fused_demoted
        assert runner.fused_incidents == []


class TestVerifyModeEnv:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv(FUSED_VERIFY_ENV, raising=False)
        assert fused_verify_mode() == "off"

    @pytest.mark.parametrize("mode", ["off", "first", "always"])
    def test_valid_modes(self, monkeypatch, mode):
        monkeypatch.setenv(FUSED_VERIFY_ENV, mode)
        assert fused_verify_mode() == mode

    def test_unknown_mode_rejected(self, monkeypatch):
        monkeypatch.setenv(FUSED_VERIFY_ENV, "paranoid")
        with pytest.raises(ValueError, match="REPRO_FUSED_VERIFY"):
            fused_verify_mode()

"""The paper's capacity failure, survived: DIA/double on the largest
suite matrices genuinely overflows a constrained device
(:class:`DeviceMemoryError` from the allocator — not injected), and the
ladder degrades to HYB with a bit-identical result.

This mirrors the ``af_*_k101`` story in the paper's evaluation, where
the DIA/double bars are simply missing because the format does not fit
the Tesla C2050.  The scaled suite generators don't preserve the exact
diagonal-count/capacity ratio, so the device is shrunk to sit between
the HYB and DIA footprints instead — the same capacity-driven failure
mode at test-sized data.
"""

import numpy as np
import pytest

from repro.api import build
from repro.formats.dia import DIAMatrix
from repro.formats.footprint import footprint_bytes
from repro.formats.hyb import HYBMatrix
from repro.matrices.suite23 import SUITE, get_spec
from repro.ocl.device import TESLA_C2050
from repro.ocl.errors import DeviceMemoryError
from repro.resilience.engine import resilient_spmv
from repro.resilience.policy import Policy

#: the paper's DIA/double OOM victims — the largest matrices by nnz
OOM_SPECS = ["af_1_k101", "af_2_k101"]


def constrained_device(coo):
    """A device whose memory sits strictly between the HYB and DIA
    double-precision footprints of ``coo`` (plus vector headroom)."""
    dia_bytes = footprint_bytes(DIAMatrix.from_coo(coo), "double")
    hyb_bytes = footprint_bytes(HYBMatrix.from_coo(coo), "double")
    vectors = 16 * (coo.nrows + coo.ncols)  # x + y at 8 B each, slack
    assert hyb_bytes + vectors < dia_bytes, "need a gap to aim the cap at"
    cap = (hyb_bytes + vectors + dia_bytes) // 2
    return TESLA_C2050.with_overrides(global_mem_bytes=int(cap))


@pytest.fixture(params=OOM_SPECS)
def oom_case(request):
    spec = get_spec(request.param)
    assert spec in SUITE
    coo = spec.generate(scale=0.01, seed=0)
    rng = np.random.default_rng(spec.number)
    x = rng.standard_normal(coo.ncols)
    return coo, x, constrained_device(coo)


def test_dia_double_genuinely_ooms(oom_case):
    coo, x, device = oom_case
    with pytest.raises(DeviceMemoryError):
        build(coo, "dia", device=device, precision="double").run(x)


def test_ladder_lands_on_hyb_bit_identical(oom_case):
    coo, x, device = oom_case
    run = resilient_spmv(coo, x, "dia", device=device, precision="double",
                         policy=Policy(max_attempts=2))
    rep = run.resilience
    assert rep.served_rung == "hyb" and rep.degraded
    assert rep.attempts[0].rung == "dia"
    assert rep.attempts[0].error == "DeviceMemoryError"
    # a genuine capacity fault is persistent: every DIA attempt fails
    assert all(a.outcome == "fault" for a in rep.attempts
               if a.rung == "dia")
    hyb = build(coo, "hyb", device=device, precision="double").run(x)
    assert np.array_equal(run.y, hyb.y)


def test_facade_route_survives_the_oom(oom_case):
    import repro

    coo, x, device = oom_case
    run = repro.spmv(coo, x, "dia", device=device, precision="double",
                     resilience=repro.Policy())
    assert run.resilience.served_rung == "hyb"
    assert run.metrics is not None

"""The graceful-degradation ladder: retries, descent, typed exhaustion."""

import numpy as np
import pytest

from repro.resilience.engine import (
    DEFAULT_LADDER,
    ladder_for,
    resilient_spmv,
)
from repro.resilience.faults import FaultInjector, FaultSpec, inject
from repro.resilience.policy import Policy, ResilienceExhausted
from tests.conftest import random_diagonal_matrix


@pytest.fixture()
def problem():
    rng = np.random.default_rng(3)
    coo = random_diagonal_matrix(rng, n=192)
    return coo, rng.standard_normal(coo.ncols)


class TestLadderFor:
    def test_crsd_enters_at_the_top(self):
        assert ladder_for("crsd") == DEFAULT_LADDER
        assert ladder_for("crsd", use_local_memory=False) == \
            DEFAULT_LADDER[1:]

    def test_dia_and_ell_join_at_hyb(self):
        assert ladder_for("dia") == ("dia", "hyb", "csr", "cpu")
        assert ladder_for("ell") == ("ell", "hyb", "csr", "cpu")

    def test_suffix_formats(self):
        assert ladder_for("hyb") == ("hyb", "csr", "cpu")
        assert ladder_for("csr") == ("csr", "cpu")
        assert ladder_for("cpu") == ("cpu",)

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="no resilience ladder"):
            ladder_for("bcsr")


class TestHealthyPath:
    def test_served_first_attempt_no_degradation(self, problem):
        coo, x = problem
        run = resilient_spmv(coo, x)
        rep = run.resilience
        assert rep.served_rung == "crsd" and not rep.degraded
        assert [a.outcome for a in rep.attempts] == ["served"]
        assert rep.total_backoff_s == 0.0 and rep.faults_seen == 0
        assert np.allclose(run.y, coo.matvec(x))

    def test_matches_direct_run_bit_for_bit(self, problem):
        coo, x = problem
        from repro.api import build

        direct = build(coo, "crsd").run(x)
        assert np.array_equal(resilient_spmv(coo, x).y, direct.y)


class TestRetry:
    def test_transient_launch_fault_retried_same_rung(self, problem):
        coo, x = problem
        inj = FaultInjector(seed=0, specs=[
            FaultSpec(site="launch:*", kind="launch", at_calls=(0,))])
        with inject(inj):
            run = resilient_spmv(coo, x, policy=Policy(backoff_base_s=1e-4))
        rep = run.resilience
        assert rep.served_rung == "crsd" and not rep.degraded
        assert [a.outcome for a in rep.attempts] == ["fault", "served"]
        assert rep.attempts[0].error == "LaunchError"
        assert rep.total_backoff_s == pytest.approx(1e-4)

    def test_backoff_is_exponential_and_simulated(self, problem):
        coo, x = problem
        inj = FaultInjector(seed=0, specs=[
            FaultSpec(site="launch:*", kind="launch", at_calls=(0, 1))])
        policy = Policy(max_attempts=3, backoff_base_s=1e-3,
                        backoff_factor=2.0)
        with inject(inj):
            run = resilient_spmv(coo, x, policy=policy)
        rep = run.resilience
        # two failed attempts -> backoffs 1e-3 and 2e-3
        assert [a.backoff_s for a in rep.attempts] == \
            pytest.approx([1e-3, 2e-3, 0.0])
        assert rep.total_backoff_s == pytest.approx(3e-3)

    def test_soft_corruption_invalidates_the_attempt(self, problem):
        """A served y must never carry an injected corruption: the
        touched attempt is retried and the final result is bit-identical
        to the fault-free run."""
        coo, x = problem
        clean = resilient_spmv(coo, x).y
        inj = FaultInjector(seed=0, specs=[
            FaultSpec(site="launch:*", kind="soft", at_calls=(0,),
                      payload="nudge")])
        with inject(inj):
            run = resilient_spmv(coo, x)
        rep = run.resilience
        assert rep.attempts[0].outcome == "corrupt"
        assert rep.served_rung == "crsd"
        assert np.array_equal(run.y, clean)


class TestDescent:
    def test_persistent_prepare_fault_descends_to_hyb(self, problem):
        coo, x = problem
        inj = FaultInjector(seed=0, specs=[
            FaultSpec(site="phase:crsd.prepare", kind="device_oom",
                      probability=1.0)])
        with inject(inj):
            run = resilient_spmv(coo, x, policy=Policy(max_attempts=2))
        rep = run.resilience
        # both crsd rungs (local and no-local) burn their attempts
        assert rep.served_rung == "hyb" and rep.degraded
        assert [a.rung for a in rep.attempts] == \
            ["crsd", "crsd", "crsd-nolocal", "crsd-nolocal", "hyb"]
        assert all(a.error == "DeviceMemoryError"
                   for a in rep.attempts[:-1])

    def test_degraded_y_matches_fault_free_rung(self, problem):
        coo, x = problem
        from repro.api import build

        inj = FaultInjector(seed=0, specs=[
            FaultSpec(site="phase:crsd.*", kind="device_oom",
                      probability=1.0)])
        with inject(inj):
            run = resilient_spmv(coo, x, policy=Policy(max_attempts=1))
        assert run.resilience.served_rung == "hyb"
        assert np.array_equal(run.y, build(coo, "hyb").run(x).y)

    def test_cpu_rung_is_fault_immune(self, problem):
        """Structural faults everywhere still land on the CPU rung."""
        coo, x = problem
        inj = FaultInjector(seed=0, specs=[
            FaultSpec(site="phase:*", kind="launch", probability=1.0)])
        with inject(inj):
            run = resilient_spmv(coo, x, policy=Policy(max_attempts=1))
        rep = run.resilience
        assert rep.served_rung == "cpu" and rep.degraded
        assert np.allclose(run.y, coo.matvec(x))


class TestExhaustion:
    def test_typed_error_with_full_report(self, problem):
        coo, x = problem
        inj = FaultInjector(seed=0, specs=[
            FaultSpec(site="phase:*", kind="device_oom", probability=1.0)])
        policy = Policy(max_attempts=2, ladder=("crsd", "hyb"))
        with inject(inj), pytest.raises(ResilienceExhausted) as exc_info:
            resilient_spmv(coo, x, policy=policy)
        rep = exc_info.value.report
        assert rep.served_rung is None
        assert [a.rung for a in rep.attempts] == \
            ["crsd", "crsd", "hyb", "hyb"]
        assert all(a.outcome == "fault" for a in rep.attempts)
        d = rep.to_dict()
        assert d["served_rung"] is None and len(d["attempts"]) == 4

    def test_report_is_deterministic(self, problem):
        coo, x = problem
        specs = [FaultSpec(site="launch:*", kind="launch",
                           probability=0.4, max_fires=3)]

        def once():
            with inject(FaultInjector(seed=5, specs=specs)):
                return resilient_spmv(coo, x).resilience.to_dict()

        assert once() == once()


class TestVerification:
    def test_verification_failure_is_an_attempt_outcome(self, problem):
        """An impossibly tight tolerance in single precision makes
        every rung ``verify-failed`` (even the CPU rung computes with a
        float32 x) — the ladder exhausts rather than serving a y that
        missed the bar."""
        coo, x = problem
        policy = Policy(max_attempts=1, verify_tol=0.0)
        with pytest.raises(ResilienceExhausted) as exc_info:
            resilient_spmv(coo, x, precision="single", policy=policy)
        rep = exc_info.value.report
        assert rep.attempts and all(
            a.outcome == "verify-failed" for a in rep.attempts)

    def test_verify_off_skips_the_check(self, problem):
        coo, x = problem
        run = resilient_spmv(coo, x, policy=Policy(verify=False))
        assert run.resilience.verified is False
        assert np.allclose(run.y, coo.matvec(x))

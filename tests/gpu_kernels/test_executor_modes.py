"""Differential tests: batched engine vs. the per-group oracle, plus
edge-case regression coverage the seed suite missed.

The batched engine must be *bit-identical* to per-group execution — same
``y`` (``np.array_equal``, not allclose) and the same value in every
trace counter — for every runner and every matrix shape the bench suite
can produce.
"""

import dataclasses

import numpy as np
import pytest

from repro.bench.runner import bench_scale, effective_scale, scaled_device
from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.formats.coo import COOMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.gpu_kernels.crsd_runner import CrsdSpMM, CrsdSpMV
from repro.gpu_kernels.dia import DiaSpMV
from repro.gpu_kernels.ell import EllSpMV
from repro.matrices.suite23 import SUITE
from tests.conftest import random_diagonal_matrix


def run_both_modes(make_runner, x, monkeypatch, trace=True):
    """Execute one runner config under each engine on fresh state."""
    runs = {}
    for mode in ("pergroup", "batched"):
        monkeypatch.setenv("REPRO_EXECUTOR", mode)
        runs[mode] = make_runner().run(x, trace=trace)
    return runs["pergroup"], runs["batched"]


def assert_identical(pergroup, batched):
    assert np.array_equal(pergroup.y, batched.y)
    assert dataclasses.asdict(pergroup.trace) == dataclasses.asdict(
        batched.trace)


def rectangular_coo(nrows, ncols, offsets, rng, scatter=2):
    """A rectangular band matrix plus a few scatter points."""
    rows_l, cols_l = [], []
    for off in offsets:
        lo, hi = max(0, -off), min(nrows, ncols - off)
        if hi <= lo:
            continue
        r = np.arange(lo, hi)
        rows_l.append(r)
        cols_l.append(r + off)
    for _ in range(scatter):
        rows_l.append(np.array([rng.integers(0, nrows)]))
        cols_l.append(np.array([rng.integers(0, ncols)]))
    rows = np.concatenate(rows_l)
    cols = np.concatenate(cols_l)
    vals = rng.standard_normal(rows.size)
    vals[vals == 0] = 1.0
    return COOMatrix(rows, cols, vals, (nrows, ncols))


class TestDifferentialSmall:
    @pytest.mark.parametrize("use_local", [True, False])
    def test_crsd_spmv(self, rng, monkeypatch, use_local):
        coo = random_diagonal_matrix(rng, n=200, density=0.7, scatter=4)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        x = rng.standard_normal(200)
        p, b = run_both_modes(
            lambda: CrsdSpMV(crsd, use_local_memory=use_local),
            x, monkeypatch)
        assert_identical(p, b)
        assert np.allclose(b.y, coo.todense() @ x)

    @pytest.mark.parametrize("nvec", [2, 5])
    def test_crsd_spmm(self, rng, monkeypatch, nvec):
        coo = random_diagonal_matrix(rng, n=128, density=0.8, scatter=3)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        x = rng.standard_normal((128, nvec))
        p, b = run_both_modes(lambda: CrsdSpMM(crsd, nvec=nvec),
                              x, monkeypatch)
        assert_identical(p, b)
        assert np.allclose(b.y, coo.todense() @ x)

    def test_dia_spmv(self, rng, monkeypatch):
        coo = random_diagonal_matrix(rng, n=150, density=1.0, scatter=0)
        dia = DIAMatrix.from_coo(coo)
        x = rng.standard_normal(150)
        p, b = run_both_modes(lambda: DiaSpMV(dia), x, monkeypatch)
        assert_identical(p, b)
        assert np.allclose(b.y, coo.todense() @ x)

    def test_ell_spmv(self, rng, monkeypatch):
        coo = random_diagonal_matrix(rng, n=150, density=0.6, scatter=5)
        ell = ELLMatrix.from_coo(coo)
        x = rng.standard_normal(150)
        p, b = run_both_modes(lambda: EllSpMV(ell), x, monkeypatch)
        assert_identical(p, b)
        assert np.allclose(b.y, coo.todense() @ x)

    def test_untraced_y_identical(self, rng, monkeypatch):
        coo = random_diagonal_matrix(rng, n=100)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        x = rng.standard_normal(100)
        p, b = run_both_modes(lambda: CrsdSpMV(crsd), x, monkeypatch,
                              trace=False)
        assert np.array_equal(p.y, b.y)


class TestDifferentialSuite23:
    """Both engines agree bit-for-bit across the full bench suite."""

    @pytest.mark.parametrize(
        "spec", SUITE, ids=lambda s: f"{s.number:02d}-{s.name}")
    def test_suite_matrix(self, spec, monkeypatch):
        scale = effective_scale(spec, bench_scale())
        coo = spec.generate(scale=scale, seed=0)
        dev = scaled_device(scale)
        crsd = CRSDMatrix.from_coo(
            coo, mrows=128, wavefront_size=compatible_wavefront(128))
        x = np.random.default_rng(17).standard_normal(coo.ncols)
        p, b = run_both_modes(lambda: CrsdSpMV(crsd, device=dev),
                              x, monkeypatch)
        assert_identical(p, b)


class TestEdgeCases:
    @pytest.mark.parametrize("shape", [(48, 96), (96, 48)])
    def test_rectangular_spmv(self, rng, monkeypatch, shape):
        nrows, ncols = shape
        offsets = (-3, 0, 2, 5) if ncols >= nrows else (-40, -3, 0, 2)
        coo = rectangular_coo(nrows, ncols, offsets, rng)
        crsd = CRSDMatrix.from_coo(coo, mrows=8, wavefront_size=8)
        x = rng.standard_normal(ncols)
        p, b = run_both_modes(lambda: CrsdSpMV(crsd), x, monkeypatch)
        assert_identical(p, b)
        assert b.y.shape == (nrows,)
        assert np.allclose(b.y, coo.todense() @ x)

    @pytest.mark.parametrize("shape", [(48, 96), (96, 48)])
    def test_rectangular_spmm(self, rng, monkeypatch, shape):
        nrows, ncols = shape
        offsets = (-3, 0, 2, 5) if ncols >= nrows else (-40, -3, 0, 2)
        coo = rectangular_coo(nrows, ncols, offsets, rng)
        crsd = CRSDMatrix.from_coo(coo, mrows=8, wavefront_size=8)
        x = rng.standard_normal((ncols, 3))
        p, b = run_both_modes(lambda: CrsdSpMM(crsd, nvec=3), x, monkeypatch)
        assert_identical(p, b)
        assert b.y.shape == (nrows, 3)
        assert np.allclose(b.y, coo.todense() @ x)

    def test_scatter_only_matrix(self, monkeypatch, rng):
        entries = [(1, 7), (9, 2), (20, 15), (33, 33)]
        rows, cols = zip(*entries)
        coo = COOMatrix(np.array(rows), np.array(cols),
                        np.arange(1.0, 5.0), (40, 40))
        crsd = CRSDMatrix.from_coo(coo, mrows=8, wavefront_size=8,
                                   idle_fill_max_rows=1)
        assert len(crsd.regions) == 0 and crsd.num_scatter_rows == 4
        x = rng.standard_normal(40)
        p, b = run_both_modes(lambda: CrsdSpMV(crsd), x, monkeypatch)
        assert_identical(p, b)
        assert np.allclose(b.y, coo.todense() @ x)

    def test_all_zero_matrix(self, monkeypatch):
        crsd = CRSDMatrix.from_coo(COOMatrix.empty((64, 64)),
                                   mrows=16, wavefront_size=16)
        x = np.ones(64)
        p, b = run_both_modes(lambda: CrsdSpMV(crsd), x, monkeypatch)
        assert_identical(p, b)
        assert np.array_equal(b.y, np.zeros(64))

    def test_matvec_out_reuse(self, rng):
        """The same ``out`` buffer must be fully re-zeroed on every call
        (stale values from a previous matvec must never leak)."""
        coo = random_diagonal_matrix(rng, n=60, density=0.5, scatter=3)
        crsd = CRSDMatrix.from_coo(coo, mrows=4, wavefront_size=4)
        dense = coo.todense()
        out = np.full(60, np.nan)
        for _ in range(3):
            x = rng.standard_normal(60)
            y = crsd.matvec(x, out=out)
            assert y is out
            assert np.allclose(out, dense @ x)


class TestAllocationStability:
    def test_spmv_buffers_allocated_once(self, rng):
        coo = random_diagonal_matrix(rng, n=120, scatter=3)
        runner = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=32))
        runner.prepare()
        baseline = runner.device_bytes
        assert baseline > 0
        x = rng.standard_normal(120)
        for _ in range(3):
            runner.run(x)
            runner.prepare()
            assert runner.device_bytes == baseline

    def test_spmm_buffers_allocated_once(self, rng):
        coo = random_diagonal_matrix(rng, n=96, scatter=2)
        runner = CrsdSpMM(CRSDMatrix.from_coo(coo, mrows=32), nvec=4)
        runner.prepare()
        baseline = runner.device_bytes
        assert baseline > 0
        x = rng.standard_normal((96, 4))
        for _ in range(3):
            runner.run(x)
            runner.prepare()
            assert runner.device_bytes == baseline

    def test_spmm_local_memory_warning(self, rng):
        coo = random_diagonal_matrix(rng, n=96, density=0.9)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        with pytest.warns(UserWarning, match="local"):
            CrsdSpMM(crsd, nvec=2, use_local_memory=True)

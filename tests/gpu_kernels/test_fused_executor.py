"""Differential tests: the fused engine vs. the dynamic engines.

``REPRO_EXECUTOR=fused`` executes certified CRSD launches as
whole-matrix expressions with a *synthesized* trace; these tests hold
it to the same bar the batched engine is held to against the per-group
oracle — bit-identical ``y`` (``np.array_equal``, not allclose) and
equality of every trace counter, across the 23-matrix bench suite,
both precisions, the SpMM variant, the local-memory ablation and the
edge-case shapes.  Plans the provers decline must silently serve
through the batched engine, still bit-identical.
"""

import dataclasses

import numpy as np
import pytest

from repro.bench.runner import bench_scale, effective_scale, scaled_device
from repro.core.crsd import CRSDMatrix, compatible_wavefront
from repro.formats.coo import COOMatrix
from repro.gpu_kernels.crsd_runner import CrsdSpMM, CrsdSpMV
from repro.matrices.suite23 import SUITE, get_spec
from tests.conftest import random_diagonal_matrix
from tests.gpu_kernels.test_executor_modes import (
    assert_identical,
    rectangular_coo,
)


def run_fused_and_batched(make_runner, x, monkeypatch, trace=True):
    """Execute one runner config under each engine on fresh state."""
    runs = {}
    for mode in ("batched", "fused"):
        monkeypatch.setenv("REPRO_EXECUTOR", mode)
        runs[mode] = make_runner().run(x, trace=trace)
    return runs["fused"], runs["batched"]


def suite_crsd(spec):
    scale = effective_scale(spec, bench_scale())
    coo = spec.generate(scale=scale, seed=0)
    crsd = CRSDMatrix.from_coo(
        coo, mrows=128, wavefront_size=compatible_wavefront(128))
    return coo, crsd, scaled_device(scale)


class TestDifferentialSuite23:
    """Fused and batched agree bit-for-bit across the full bench
    suite, in both precisions (the CI ``fused-smoke`` gate)."""

    @pytest.mark.parametrize("precision", ["double", "single"])
    @pytest.mark.parametrize(
        "spec", SUITE, ids=lambda s: f"{s.number:02d}-{s.name}")
    def test_suite_matrix(self, spec, precision, monkeypatch):
        coo, crsd, dev = suite_crsd(spec)
        x = np.random.default_rng(17).standard_normal(coo.ncols)
        f, b = run_fused_and_batched(
            lambda: CrsdSpMV(crsd, device=dev, precision=precision),
            x, monkeypatch)
        assert_identical(f, b)


class TestThreeEngines:
    """All three engines produce the same bits on one matrix."""

    def test_pergroup_batched_fused_agree(self, rng, monkeypatch):
        coo = random_diagonal_matrix(rng, n=200, density=0.7, scatter=4)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        x = rng.standard_normal(200)
        runs = {}
        for mode in ("pergroup", "batched", "fused"):
            monkeypatch.setenv("REPRO_EXECUTOR", mode)
            runs[mode] = CrsdSpMV(crsd).run(x)
        assert_identical(runs["pergroup"], runs["batched"])
        assert_identical(runs["batched"], runs["fused"])
        assert np.allclose(runs["fused"].y, coo.todense() @ x)


class TestVariants:
    @pytest.mark.parametrize("name,nvec", [("nemeth21", 2), ("wang3", 4),
                                           ("kim1", 8)])
    def test_spmm(self, name, nvec, monkeypatch):
        coo, crsd, dev = suite_crsd(get_spec(name))
        x = np.random.default_rng(9).standard_normal((coo.ncols, nvec))
        f, b = run_fused_and_batched(
            lambda: CrsdSpMM(crsd, nvec=nvec, device=dev), x, monkeypatch)
        assert_identical(f, b)
        assert np.allclose(f.y, coo.todense() @ x)

    # nemeth21 exercises multi-pass AD tile staging (the fused engine
    # replaces tile reads by the windows the local-memory prover
    # certified they hold); wang3 is the no-local discussion case
    @pytest.mark.parametrize("name", ["nemeth21", "wang3"])
    @pytest.mark.parametrize("use_local", [True, False])
    def test_local_memory_ablation(self, name, use_local, monkeypatch):
        coo, crsd, dev = suite_crsd(get_spec(name))
        x = np.random.default_rng(3).standard_normal(coo.ncols)
        f, b = run_fused_and_batched(
            lambda: CrsdSpMV(crsd, use_local_memory=use_local,
                             device=dev),
            x, monkeypatch)
        assert_identical(f, b)

    def test_untraced_y_identical(self, rng, monkeypatch):
        coo = random_diagonal_matrix(rng, n=100)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        x = rng.standard_normal(100)
        f, b = run_fused_and_batched(lambda: CrsdSpMV(crsd), x,
                                     monkeypatch, trace=False)
        assert np.array_equal(f.y, b.y)
        # untraced runs still report the launch geometry
        assert f.trace.work_groups == b.trace.work_groups
        assert f.trace.wavefronts == b.trace.wavefronts


class TestEdgeCases:
    @pytest.mark.parametrize("shape", [(48, 96), (96, 48)])
    def test_rectangular(self, rng, monkeypatch, shape):
        nrows, ncols = shape
        offsets = (-3, 0, 2, 5) if ncols >= nrows else (-40, -3, 0, 2)
        coo = rectangular_coo(nrows, ncols, offsets, rng)
        crsd = CRSDMatrix.from_coo(coo, mrows=8, wavefront_size=8)
        x = rng.standard_normal(ncols)
        f, b = run_fused_and_batched(lambda: CrsdSpMV(crsd), x,
                                     monkeypatch)
        assert_identical(f, b)
        assert np.allclose(f.y, coo.todense() @ x)

    def test_scatter_only_matrix(self, monkeypatch, rng):
        entries = [(1, 7), (9, 2), (20, 15), (33, 33)]
        rows, cols = zip(*entries)
        coo = COOMatrix(np.array(rows), np.array(cols),
                        np.arange(1.0, 5.0), (40, 40))
        crsd = CRSDMatrix.from_coo(coo, mrows=8, wavefront_size=8,
                                   idle_fill_max_rows=1)
        assert len(crsd.regions) == 0 and crsd.num_scatter_rows == 4
        x = rng.standard_normal(40)
        f, b = run_fused_and_batched(lambda: CrsdSpMV(crsd), x,
                                     monkeypatch)
        assert_identical(f, b)

    def test_all_zero_matrix(self, monkeypatch):
        crsd = CRSDMatrix.from_coo(COOMatrix.empty((64, 64)),
                                   mrows=16, wavefront_size=16)
        x = np.ones(64)
        f, b = run_fused_and_batched(lambda: CrsdSpMV(crsd), x,
                                     monkeypatch)
        assert_identical(f, b)
        assert np.array_equal(f.y, np.zeros(64))

    def test_repeated_runs_stable(self, rng, monkeypatch):
        """The cached fused state serves every run with fresh trace
        objects and a fully re-zeroed y."""
        monkeypatch.setenv("REPRO_EXECUTOR", "fused")
        coo = random_diagonal_matrix(rng, n=120, scatter=3)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        runner = CrsdSpMV(crsd)
        dense = coo.todense()
        traces = []
        for _ in range(3):
            x = rng.standard_normal(120)
            run = runner.run(x)
            assert np.allclose(run.y, dense @ x)
            traces.append(run.trace)
        assert traces[0] is not traces[1]
        assert dataclasses.asdict(traces[0]) == dataclasses.asdict(
            traces[1])


class TestCertificationGate:
    def test_uncertified_plan_falls_back_silently(self, rng,
                                                  monkeypatch):
        """A plan the provers cleanly decline serves through the
        batched engine with no incident — fallback by design, not a
        failure."""
        import repro.gpu_kernels.crsd_runner as runner_mod
        from repro.gpu_kernels.fused import FusedCertificate

        monkeypatch.setenv("REPRO_EXECUTOR", "fused")
        declined = FusedCertificate(ok=False, reasons=("declined",),
                                    model=None, base_trace=None)
        monkeypatch.setattr(runner_mod, "build_fused_state",
                            lambda *a, **kw: (None, declined))
        coo = random_diagonal_matrix(rng, n=200, scatter=3)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        x = rng.standard_normal(200)
        runner = CrsdSpMV(crsd)
        fused_run = runner.run(x)
        assert runner._fused_state() is None
        assert runner.fused_incidents == []
        assert fused_run.resilience is None
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        batched_run = CrsdSpMV(crsd).run(x)
        assert_identical(fused_run, batched_run)

    def test_certificate_carries_reasons(self, rng):
        from repro.gpu_kernels.fused import certify_plan

        coo = random_diagonal_matrix(rng, n=200, density=0.8, scatter=0)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        runner = CrsdSpMV(crsd)
        tiny = runner.device.with_overrides(local_mem_per_cu_bytes=8)
        cert = certify_plan(runner.plan, tiny, "double",
                            scatter_colval=crsd.scatter_colval,
                            scatter_rowno=crsd.scatter_rowno)
        assert not cert.ok
        assert cert.reasons

    def test_certified_plan_has_trace(self, rng):
        from repro.gpu_kernels.fused import certify_plan

        coo = random_diagonal_matrix(rng, n=200, scatter=3)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        runner = CrsdSpMV(crsd)
        cert = certify_plan(runner.plan, runner.device, "double",
                            scatter_colval=crsd.scatter_colval,
                            scatter_rowno=crsd.scatter_rowno)
        assert cert.ok and cert.reasons == ()
        assert cert.base_trace is not None


class TestTemplateReuse:
    def test_same_pattern_shares_plan_and_fused_state(self, rng,
                                                      monkeypatch):
        """A same-pattern new-values matrix adopts the donor's plan,
        codelets and fused state; only the value buffers differ — and
        the served bits still match the batched engine."""
        monkeypatch.setenv("REPRO_EXECUTOR", "fused")
        coo = random_diagonal_matrix(rng, n=160, scatter=3)
        vals2 = coo.vals * 1.5 + 0.25
        coo2 = COOMatrix(coo.rows, coo.cols, vals2, coo.shape)
        crsd = CRSDMatrix.from_coo(coo, mrows=32)
        crsd2 = CRSDMatrix.from_coo(coo2, mrows=32)
        donor = CrsdSpMV(crsd)
        x = rng.standard_normal(160)
        donor.run(x)  # builds the fused state
        adopted = CrsdSpMV(crsd2, template=donor)
        assert adopted.plan is donor.plan
        assert adopted.kernel is donor.kernel
        run = adopted.run(x)
        assert adopted._fused_state() is donor._fused_state()
        monkeypatch.setenv("REPRO_EXECUTOR", "batched")
        ref = CrsdSpMV(crsd2).run(x)
        assert np.array_equal(run.y, ref.y)
        assert dataclasses.asdict(run.trace) == dataclasses.asdict(
            ref.trace)

    def test_incompatible_template_ignored(self, rng):
        coo = random_diagonal_matrix(rng, n=160, scatter=3)
        other = random_diagonal_matrix(rng, n=96, scatter=2)
        donor = CrsdSpMV(CRSDMatrix.from_coo(other, mrows=32))
        runner = CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=32),
                          template=donor)
        assert runner.plan is not donor.plan

"""Every GPU kernel runner must compute exactly A @ x."""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.hyb import HYBMatrix
from repro.gpu_kernels import (
    CooSpMV,
    CrsdSpMV,
    CsrScalarSpMV,
    CsrVectorSpMV,
    DiaSpMV,
    EllSpMV,
    HybSpMV,
)
from tests.conftest import random_diagonal_matrix


def make_runner(name, coo, **kwargs):
    if name == "dia":
        return DiaSpMV(DIAMatrix.from_coo(coo), **kwargs)
    if name == "ell":
        return EllSpMV(ELLMatrix.from_coo(coo), **kwargs)
    if name == "csr_scalar":
        return CsrScalarSpMV(CSRMatrix.from_coo(coo), **kwargs)
    if name == "csr_vector":
        return CsrVectorSpMV(CSRMatrix.from_coo(coo), **kwargs)
    if name == "coo":
        return CooSpMV(coo, **kwargs)
    if name == "hyb":
        return HybSpMV(HYBMatrix.from_coo(coo), **kwargs)
    if name == "crsd":
        return CrsdSpMV(CRSDMatrix.from_coo(coo, mrows=16, wavefront_size=16), **kwargs)
    raise KeyError(name)


ALL = ["dia", "ell", "csr_scalar", "csr_vector", "coo", "hyb", "crsd"]


@pytest.mark.parametrize("name", ALL)
def test_matches_dense_double(name, rng):
    coo = random_diagonal_matrix(rng, n=150, density=0.7, scatter=3)
    x = rng.standard_normal(150)
    run = make_runner(name, coo).run(x)
    assert np.allclose(run.y, coo.todense() @ x), name


@pytest.mark.parametrize("name", ALL)
def test_matches_dense_single(name, rng):
    coo = random_diagonal_matrix(rng, n=150, density=0.7, scatter=3)
    x = rng.standard_normal(150)
    run = make_runner(name, coo, precision="single").run(x)
    assert run.y.dtype == np.float32
    assert np.allclose(run.y, coo.todense() @ x, rtol=1e-3, atol=1e-3), name


@pytest.mark.parametrize("name", ALL)
def test_fig2(name, fig2_coo, fig2_dense, rng):
    x = rng.standard_normal(9)
    runner = (
        CrsdSpMV(CRSDMatrix.from_coo(fig2_coo, mrows=2, wavefront_size=2, idle_fill_max_rows=1))
        if name == "crsd"
        else make_runner(name, fig2_coo)
    )
    assert np.allclose(runner.run(x).y, fig2_dense @ x), name


@pytest.mark.parametrize("name", ALL)
def test_rows_not_multiple_of_group(name, rng):
    coo = random_diagonal_matrix(rng, n=131, density=0.6)
    x = rng.standard_normal(131)
    run = make_runner(name, coo).run(x)
    assert np.allclose(run.y, coo.todense() @ x), name


@pytest.mark.parametrize("name", ALL)
def test_repeated_runs_are_deterministic(name, rng):
    coo = random_diagonal_matrix(rng, n=80)
    x = rng.standard_normal(80)
    runner = make_runner(name, coo)
    y1 = runner.run(x).y
    y2 = runner.run(x).y
    assert np.array_equal(y1, y2)


@pytest.mark.parametrize("name", ["dia", "ell", "csr_vector", "hyb", "crsd"])
def test_varying_x(name, rng):
    """Kernels must not bake x in anywhere: new vectors give new answers."""
    coo = random_diagonal_matrix(rng, n=60)
    dense = coo.todense()
    runner = make_runner(name, coo)
    for _ in range(3):
        x = rng.standard_normal(60)
        assert np.allclose(runner.run(x).y, dense @ x)


def test_wrong_x_length(rng):
    coo = random_diagonal_matrix(rng, n=40)
    with pytest.raises(ValueError):
        make_runner("ell", coo).run(np.ones(39))


def test_empty_matrix_runs():
    coo = COOMatrix.empty((64, 64))
    for name in ["dia", "ell", "coo", "hyb", "crsd"]:
        run = make_runner(name, coo).run(np.ones(64))
        assert np.array_equal(run.y, np.zeros(64)), name

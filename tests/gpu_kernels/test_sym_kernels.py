"""Symmetric CRSD runner: differential bit-identity and DRAM gates.

The half-storage runner must serve exactly the bits the full CRSD
runner serves — every generator, both precisions, both executor
engines — while moving measurably fewer DRAM bytes, and the analyzer's
closed-form L2 prediction must equal the dynamic trace *exactly*.
"""

import numpy as np
import pytest

from repro.analyze.symmetric import build_sym_model, predict_trace_l2
from repro.codegen.sym_codelet import build_sym_plan
from repro.core.crsd import CRSDMatrix
from repro.core.symcrsd import SymCRSDMatrix
from repro.gpu_kernels import CrsdSpMV, SymCrsdSpMV
from repro.matrices import generators as gen
from repro.obs.metrics import derive_metrics
from repro.ocl.device import TESLA_C2050


@pytest.fixture
def nprng():
    return np.random.default_rng(99)


CASES = {
    "banded_k7": lambda r: gen.symmetric_banded(512, 7, r),
    "banded_k3": lambda r: gen.symmetric_banded(256, 3, r),
    "gapped": lambda r: gen.symmetric_diagonals(320, [1, 4, 9], r),
    "indefinite": lambda r: gen.symmetric_diagonals(256, [2, 5], r,
                                                    spd=False),
    "kkt_h": lambda r: gen.kkt_blocks(256, 128, r)[0],
    "kkt_c": lambda r: gen.kkt_blocks(256, 128, r)[3],
}


def build_pair(coo, mrows=32):
    full = CRSDMatrix.from_coo(coo, mrows=mrows)
    sym = SymCRSDMatrix.from_crsd(full, coo=coo)
    return full, sym


@pytest.mark.parametrize("case", sorted(CASES))
@pytest.mark.parametrize("precision", ["double", "single"])
@pytest.mark.parametrize("mode", ["batched", "pergroup"])
def test_bit_identical_to_full_crsd(case, precision, mode, nprng,
                                    monkeypatch):
    monkeypatch.setenv("REPRO_EXECUTOR", mode)
    coo = CASES[case](nprng)
    full, sym = build_pair(coo)
    x = nprng.standard_normal(coo.shape[1])
    run_full = CrsdSpMV(full, precision=precision).run(x)
    run_sym = SymCrsdSpMV(sym, precision=precision).run(x)
    assert run_sym.y.dtype == run_full.y.dtype
    assert np.array_equal(run_sym.y, run_full.y)


@pytest.mark.parametrize("case", sorted(CASES))
def test_executor_engines_identical(case, nprng, monkeypatch):
    coo = CASES[case](nprng)
    _, sym = build_pair(coo)
    x = nprng.standard_normal(coo.shape[1])
    runs = {}
    for mode in ("batched", "pergroup"):
        monkeypatch.setenv("REPRO_EXECUTOR", mode)
        runs[mode] = SymCrsdSpMV(sym).run(x)
    assert np.array_equal(runs["batched"].y, runs["pergroup"].y)
    assert (runs["batched"].trace.global_load_transactions
            == runs["pergroup"].trace.global_load_transactions)


def test_dram_bytes_reduction_at_least_40pct(nprng):
    """ISSUE gate: obs-derived DRAM bytes for the banded halfwidth-7
    workload drop by >= 40% versus the full slab (closed form predicts
    k/(2k+3) = 41.2%)."""
    coo = gen.symmetric_banded(1024, 7, nprng)
    full, sym = build_pair(coo, mrows=64)
    x = nprng.standard_normal(1024)
    t_full = CrsdSpMV(full).run(x).trace
    t_sym = SymCrsdSpMV(sym).run(x).trace
    m_full = derive_metrics(t_full, nnz=coo.nnz)
    m_sym = derive_metrics(t_sym, nnz=coo.nnz)
    reduction = 1.0 - m_sym["dram_bytes"] / m_full["dram_bytes"]
    assert reduction >= 0.40, f"only {reduction:.1%} DRAM reduction"
    # both runners still computed the same bits
    assert np.array_equal(SymCrsdSpMV(sym).run(x).y, full.matvec(x))


@pytest.mark.parametrize("case", sorted(CASES))
def test_static_l2_prediction_exact(case, nprng):
    """The analyzer's replayed L2 model must equal the dynamic trace
    exactly — transactions, hits and stores."""
    coo = CASES[case](nprng)
    _, sym = build_pair(coo)
    x = nprng.standard_normal(coo.shape[1])
    dyn = SymCrsdSpMV(sym).run(x).trace
    model = build_sym_model(build_sym_plan(sym))
    pred = predict_trace_l2(model, TESLA_C2050)
    assert pred is not None
    assert pred.global_load_transactions == dyn.global_load_transactions
    assert pred.global_store_transactions == dyn.global_store_transactions
    assert pred.l2_hits == dyn.l2_hits
    assert pred.flops == dyn.flops


def test_strict_mode_compiles_clean(nprng):
    coo = gen.symmetric_banded(256, 4, nprng)
    _, sym = build_pair(coo)
    runner = SymCrsdSpMV(sym, strict=True)
    x = nprng.standard_normal(256)
    assert np.array_equal(runner.run(x).y, sym.matvec(x))


def test_opencl_source_renders(nprng):
    coo = gen.symmetric_banded(128, 2, nprng)
    _, sym = build_pair(coo)
    src = SymCrsdSpMV(sym).opencl_source
    assert "__kernel" in src and "sym" in src

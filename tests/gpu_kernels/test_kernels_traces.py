"""Qualitative trace properties — the effects the paper's design targets.

These tests assert *why* the formats perform the way they do: ELL/DIA
loads coalesce, CSR-scalar does not, CSR kernels diverge on ragged
rows, CRSD reads no index arrays and takes a single execution path.
"""

import numpy as np
import pytest

from repro.core.crsd import CRSDMatrix
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.gpu_kernels import CrsdSpMV, CsrScalarSpMV, CsrVectorSpMV, DiaSpMV, EllSpMV
from repro.ocl.device import TESLA_C2050
from tests.conftest import random_diagonal_matrix


@pytest.fixture
def band(rng):
    """Dense 9-diagonal band, 256 rows — regular structure."""
    n = 256
    rows_l, cols_l = [], []
    for off in range(-4, 5):
        r = np.arange(max(0, -off), min(n, n - off))
        rows_l.append(r)
        cols_l.append(r + off)
    rows = np.concatenate(rows_l)
    return COOMatrix(rows, np.concatenate(cols_l),
                     np.arange(1.0, rows.size + 1), (n, n))


@pytest.fixture
def nocache_device():
    """L2 disabled so raw coalescing is observable."""
    return TESLA_C2050.with_overrides(l2_bytes=0)


def test_ell_loads_coalesce(band, rng, nocache_device):
    run = EllSpMV(ELLMatrix.from_coo(band), device=nocache_device).run(
        rng.standard_normal(256)
    )
    assert run.trace.load_coalescing_efficiency() > 0.55


def test_csr_scalar_loads_do_not_coalesce(band, rng, nocache_device):
    run = CsrScalarSpMV(CSRMatrix.from_coo(band), device=nocache_device).run(
        rng.standard_normal(256)
    )
    assert run.trace.load_coalescing_efficiency() < 0.3


def test_csr_scalar_diverges_on_ragged_rows(rng, nocache_device):
    coo = random_diagonal_matrix(rng, n=256, density=0.4)
    run = CsrScalarSpMV(CSRMatrix.from_coo(coo), device=nocache_device).run(
        rng.standard_normal(256)
    )
    assert run.trace.divergence_efficiency < 1.0


def test_uniform_rows_no_divergence(band, rng):
    run = CsrScalarSpMV(CSRMatrix.from_coo(band)).run(rng.standard_normal(256))
    # every row has 9 +/- boundary entries; near-uniform
    assert run.trace.divergence_efficiency > 0.9


def test_crsd_takes_single_execution_path(band, rng):
    """The paper's claim: all work-items of a work-group execute the
    same path — the trace shows no divergence ever."""
    crsd = CRSDMatrix.from_coo(band, mrows=32)
    run = CrsdSpMV(crsd).run(rng.standard_normal(256))
    assert run.trace.divergence_efficiency == 1.0


def test_crsd_moves_fewer_bytes_than_ell(band, rng, nocache_device):
    """Baked indices: CRSD's useful load bytes exclude the 4-byte
    column index ELL reads per slot."""
    x = rng.standard_normal(256)
    ell = EllSpMV(ELLMatrix.from_coo(band), device=nocache_device).run(x)
    crsd = CrsdSpMV(CRSDMatrix.from_coo(band, mrows=32),
                    device=nocache_device).run(x)
    assert crsd.trace.global_load_bytes_useful < ell.trace.global_load_bytes_useful
    assert crsd.trace.global_load_transactions < ell.trace.global_load_transactions


def test_dia_reads_scale_with_fill(rng, nocache_device):
    """One scatter point far off the band forces DIA to stream a whole
    extra diagonal; CRSD does not."""
    n = 1024
    base = random_diagonal_matrix(rng, n=n, offsets=(-1, 0, 1), density=1.0,
                                  scatter=0)
    spiked = COOMatrix(
        np.concatenate([base.rows, [512]]),
        np.concatenate([base.cols, [100]]),
        np.concatenate([base.vals, [1.0]]),
        (n, n),
    )
    x = rng.standard_normal(n)
    t_base = DiaSpMV(DIAMatrix.from_coo(base), device=nocache_device).run(x).trace
    t_spiked = DiaSpMV(DIAMatrix.from_coo(spiked), device=nocache_device).run(x).trace
    extra_dia = (
        t_spiked.global_load_transactions - t_base.global_load_transactions
    )
    # the extra diagonal's in-matrix extent is 612 rows of doubles,
    # loaded for both the value and the x side
    assert extra_dia * 128 > 0.5 * 612 * 8

    c_base = CrsdSpMV(CRSDMatrix.from_coo(base, mrows=32), device=nocache_device).run(x).trace
    c_spiked = CrsdSpMV(CRSDMatrix.from_coo(spiked, mrows=32), device=nocache_device).run(x).trace
    extra_crsd = (
        c_spiked.global_load_transactions - c_base.global_load_transactions
    )
    # CRSD pays only the (tiny) scatter-row side structure
    assert extra_crsd < extra_dia / 3


def test_csr_vector_wastes_lanes_on_short_rows(rng):
    """Rows far shorter than the wavefront leave most lanes idle —
    visible as a high request count per useful byte."""
    coo = random_diagonal_matrix(rng, n=512, offsets=(-1, 0, 1), density=1.0,
                                 scatter=0)
    x = rng.standard_normal(512)
    vec = CsrVectorSpMV(CSRMatrix.from_coo(coo)).run(x).trace
    ell = EllSpMV(ELLMatrix.from_coo(coo)).run(x).trace
    req_per_byte_vec = vec.global_load_requests / vec.global_load_bytes_useful
    req_per_byte_ell = ell.global_load_requests / ell.global_load_bytes_useful
    assert req_per_byte_vec > 3 * req_per_byte_ell


def test_crsd_scatter_launch_merges_traces(rng):
    coo = random_diagonal_matrix(rng, n=128, scatter=6)
    crsd = CRSDMatrix.from_coo(coo, mrows=32)
    assert crsd.num_scatter_rows > 0
    run = CrsdSpMV(crsd).run(rng.standard_normal(128))
    # the merged trace covers both kernels' groups
    from repro.core.spmv import total_work_groups

    assert run.trace.work_groups > total_work_groups(crsd)

"""Generated multi-vector CRSD SpMM codelets."""

import numpy as np
import pytest

from repro.codegen.plan import build_plan
from repro.codegen.python_codelet import emit_python_source
from repro.core.crsd import CRSDMatrix
from repro.gpu_kernels.crsd_runner import CrsdSpMM, CrsdSpMV
from tests.conftest import random_diagonal_matrix


@pytest.fixture(scope="module")
def coo():
    rng = np.random.default_rng(4)
    return random_diagonal_matrix(rng, n=256, density=0.9, scatter=3)


@pytest.fixture(scope="module")
def crsd(coo):
    return CRSDMatrix.from_coo(coo, mrows=32)


class TestPlan:
    def test_nvec_validated(self, crsd):
        with pytest.raises(ValueError):
            build_plan(crsd, nvec=0)

    def test_nvec_disables_tiles(self, crsd):
        plan = build_plan(crsd, use_local_memory=True, nvec=4)
        assert not plan.use_local_memory

    def test_source_unrolls_over_vectors(self, crsd):
        src = emit_python_source(build_plan(crsd, nvec=3))
        assert "acc0" in src and "acc1" in src and "acc2" in src
        # column strides baked: j * ncols
        assert f"{crsd.ncols} + xc" in src
        assert f"{2 * crsd.ncols} + xc" in src


class TestCorrectness:
    @pytest.mark.parametrize("nvec", [1, 2, 4, 7])
    def test_matches_matmat(self, coo, crsd, nvec):
        rng = np.random.default_rng(nvec)
        x = rng.standard_normal((coo.ncols, nvec))
        run = CrsdSpMM(crsd, nvec=nvec).run(x)
        assert run.y.shape == (coo.nrows, nvec)
        assert np.allclose(run.y, coo.todense() @ x, atol=1e-9)

    def test_shape_validated(self, crsd):
        r = CrsdSpMM(crsd, nvec=2)
        with pytest.raises(ValueError):
            r.run(np.zeros((crsd.ncols, 3)))

    def test_single_precision(self, coo, crsd):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((coo.ncols, 2))
        run = CrsdSpMM(crsd, nvec=2, precision="single").run(x)
        assert run.y.dtype == np.float32
        assert np.allclose(run.y, coo.todense() @ x, rtol=1e-3, atol=1e-3)

    def test_scatter_rows_handled(self, coo, crsd):
        assert crsd.num_scatter_rows > 0  # the fixture has scatter points
        rng = np.random.default_rng(1)
        x = rng.standard_normal((coo.ncols, 3))
        run = CrsdSpMM(crsd, nvec=3).run(x)
        ref = coo.todense() @ x
        for r in crsd.scatter_rowno:
            assert np.allclose(run.y[int(r)], ref[int(r)])


class TestAmortisation:
    def test_slab_traffic_amortised(self, coo, crsd):
        """The point of SpMM codelets: k results for ~one slab pass.
        Value-slab transactions must not scale with nvec, so total
        load transactions for k=4 stay well under 4x the k=1 run."""
        rng = np.random.default_rng(2)
        x1 = rng.standard_normal((coo.ncols, 1))
        x4 = rng.standard_normal((coo.ncols, 4))
        t1 = CrsdSpMM(crsd, nvec=1).run(x1).trace
        t4 = CrsdSpMM(crsd, nvec=4).run(x4).trace
        # DRAM transactions: the slab is read once either way, only the
        # x columns scale -> far below 4x
        assert t4.global_load_transactions < 2.5 * t1.global_load_transactions
        # and even counting L2 hits (the per-column x reads) the total
        # stays clearly sub-linear in nvec
        total1 = t1.global_load_transactions + t1.l2_hits
        total4 = t4.global_load_transactions + t4.l2_hits
        assert total4 < 3.3 * total1

    def test_flops_scale_with_nvec(self, coo, crsd):
        rng = np.random.default_rng(2)
        t1 = CrsdSpMM(crsd, nvec=1).run(
            rng.standard_normal((coo.ncols, 1))).trace
        t4 = CrsdSpMM(crsd, nvec=4).run(
            rng.standard_normal((coo.ncols, 4))).trace
        assert t4.flops == pytest.approx(4 * t1.flops, rel=0.05)

    def test_nvec1_matches_spmv_runner(self, coo, crsd):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(coo.ncols)
        y_mm = CrsdSpMM(crsd, nvec=1).run(x[:, None]).y[:, 0]
        y_mv = CrsdSpMV(crsd, use_local_memory=False).run(x).y
        assert np.allclose(y_mm, y_mv)

"""The sharded multi-device serving cluster.

``N`` simulated devices — each a full
:class:`~repro.serve.engine.ServeEngine` with its own
:class:`~repro.serve.cache.PlanCache` and clock — behind one
:class:`~repro.serve.engine.Engine`-shaped facade.  The
:class:`~repro.cluster.router.ClusterRouter` places every matrix by
consistent hash over its *pattern* fingerprint; matrices at or above
``split_threshold_rows`` are split row-block across the ring's next
distinct devices, but only through a
:func:`~repro.analyze.sharding.certify_shard_plan` certificate — an
unprovable plan falls back to whole-matrix serving on the home device,
never to uncertified shard execution.  Devices share one
:class:`~repro.serve.cache.ShardCertificateStore`, so a plan is proven
once cluster-wide and every later activation is a counted cross-device
reuse.

Split requests ship only the certified ``x`` halo intervals between
devices (:class:`~repro.cluster.halo.HaloExchange` accounts the bytes
as obs events); their per-shard partial results reassemble into a
``y`` that is bit-identical to the single-engine run, because the
certificate's write-disjointness prover guarantees each row is owned
by exactly one shard.

Device loss (:meth:`ClusterEngine.fail_device`, fault kinds shared
with :mod:`repro.resilience`) is an epoch boundary in the one global
discrete-event loop: every live engine drains up to the loss instant,
the dead device's unexecuted work is evacuated, its patterns re-place
over the surviving ring (re-certifying through the shared store), and
affected split requests are cancelled everywhere and re-dispatched
whole — completed work keeps its results, lost work is re-served,
nothing is served wrong.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.halo import HaloExchange
from repro.cluster.router import ClusterRouter
from repro.obs import recorder as _obs
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.resilience.faults import FAULT_KINDS
from repro.serve.admission import AdmissionPolicy
from repro.serve.batcher import BatchConfig
from repro.serve.cache import PlanCache, ShardCertificateStore
from repro.serve.clock import FOREVER
from repro.serve.engine import ServedResult, ServeEngine

__all__ = ["ClusterEngine", "DeviceLoss", "SimDevice"]


@dataclass
class DeviceLoss:
    """A scheduled simulated device loss (one resilience fault kind)."""

    device: int
    at_s: float
    kind: str = "device_oom"
    applied: bool = False


@dataclass
class SimDevice:
    """One simulated device: its engine plus placement-load counters."""

    index: int
    engine: ServeEngine
    #: cluster requests currently homed here (unsplit) / shards hosted
    homed_patterns: int = 0

    @property
    def alive(self) -> bool:
        return self.engine.alive


@dataclass
class _Placement:
    """Where one pattern lives right now."""

    pattern: str
    home: int
    split: bool = False
    num_shards: int = 0
    shard_devices: Tuple[int, ...] = ()
    cert: Any = None


@dataclass
class _Inflight:
    """One dispatched split request awaiting its shard partials."""

    rid: int
    fps: Any
    matrix: Any
    x: np.ndarray
    arrival_s: float
    deadline_abs: Optional[float]
    specs: Tuple
    num_shards: int
    #: shard index -> device index serving it
    expected: Dict[int, int] = field(default_factory=dict)
    partials: Dict[int, ServedResult] = field(default_factory=dict)


class ClusterEngine:
    """N simulated serving devices behind the ``Engine`` protocol.

    Parameters mirror :class:`~repro.serve.engine.ServeEngine` (every
    device shares the execution configuration) plus the cluster knobs:

    ``split_threshold_rows``
        Matrices with at least this many rows are split across devices
        (``None`` — the default — never splits).
    ``split_ways``
        Shard count for split matrices (``None`` = one shard per live
        device).
    ``cache_capacity`` / ``vnodes``
        Per-device :class:`~repro.serve.cache.PlanCache` capacity and
        consistent-hash virtual nodes per device.
    """

    report_schema = "repro-cluster-report/v1"

    def __init__(
        self,
        num_devices: int,
        *,
        device: DeviceSpec = TESLA_C2050,
        precision: str = "double",
        mrows: int = 128,
        use_local_memory: bool = True,
        batch: Optional[BatchConfig] = None,
        admission: Optional[AdmissionPolicy] = None,
        prepare_cost_s: float = 0.0,
        size_scale: float = 1.0,
        keep_y=True,
        split_threshold_rows: Optional[int] = None,
        split_ways: Optional[int] = None,
        cache_capacity: int = 64,
        vnodes: int = 64,
        cert_store: Optional[ShardCertificateStore] = None,
    ):
        if num_devices < 1:
            raise ValueError(
                f"num_devices must be >= 1, got {num_devices}")
        self.num_devices = int(num_devices)
        self.device_spec = device
        self.precision = precision
        self.mrows = int(mrows)
        self.use_local_memory = bool(use_local_memory)
        self.keep_y = keep_y
        self.split_threshold_rows = split_threshold_rows
        self.split_ways = split_ways
        self.cert_store = (cert_store if cert_store is not None
                           else ShardCertificateStore())
        self.router = ClusterRouter(self.num_devices, vnodes=vnodes)
        self.halo = HaloExchange(precision)
        self.devices = [
            SimDevice(i, ServeEngine(
                device=device, precision=precision, mrows=mrows,
                use_local_memory=use_local_memory, batch=batch,
                admission=admission,
                cache=PlanCache(capacity=cache_capacity,
                                cert_store=self.cert_store),
                prepare_cost_s=prepare_cost_s, size_scale=size_scale,
                keep_y=keep_y))
            for i in range(self.num_devices)
        ]

        self._next_id = 0
        #: (arrival, rid, fps, matrix, x, deadline_rel, resilience)
        self._arrivals: List[Tuple] = []
        self._losses: List[DeviceLoss] = []
        self._placements: Dict[str, _Placement] = {}
        #: (device index, device-level rid) -> cluster rid (unsplit)
        self._submap: Dict[Tuple[int, int], int] = {}
        self._inflight: Dict[int, _Inflight] = {}
        self.rebalances: List[Dict[str, Any]] = []
        self.split_dispatches = 0
        self.split_declines = 0
        self.results: List[ServedResult] = []

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The cluster's simulated time: the farthest device clock."""
        return max(d.engine.clock.now for d in self.devices)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix,
        x: np.ndarray,
        *,
        at: Optional[float] = None,
        deadline_s: Optional[float] = None,
        resilience=None,
    ) -> int:
        """Enqueue one request; returns its cluster-level id.

        Same contract as :meth:`ServeEngine.submit`; routing happens
        inside :meth:`run`, at the arrival instant, against the ring
        as it exists then.
        """
        from repro.core.serialize import fingerprints

        fps = fingerprints(matrix)
        arrival = self.now if at is None else max(float(at), 0.0)
        rid = self._next_id
        self._next_id += 1
        self._arrivals.append(
            (arrival, rid, fps, matrix, x, deadline_s, resilience))
        return rid

    def fail_device(self, device: int, at_s: float,
                    kind: str = "device_oom") -> None:
        """Schedule losing ``device`` at simulated instant ``at_s``.

        ``kind`` must be one of the :mod:`repro.resilience` fault
        categories (:data:`~repro.resilience.faults.FAULT_KINDS`) — the
        cluster reuses the chaos taxonomy so incident reports and
        rebalance records speak the same language.
        """
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if not 0 <= int(device) < self.num_devices:
            raise ValueError(f"no such device: {device}")
        self._losses.append(
            DeviceLoss(device=int(device), at_s=float(at_s), kind=kind))

    # ------------------------------------------------------------------
    # the global event loop
    # ------------------------------------------------------------------
    def run(self, until: float = FOREVER) -> List[ServedResult]:
        """Drain the cluster up to ``until`` (default: everything).

        One deterministic discrete-event loop: scheduled device losses
        cut the timeline into epochs; within an epoch arrivals dispatch
        to their routed devices (in arrival order) and every live
        engine drains to the epoch boundary, then the loss applies —
        evacuation, ring removal, re-placement, re-dispatch — and the
        next epoch begins.  Results arrive in deterministic completion
        order with cluster-level request ids.
        """
        drained: List[ServedResult] = []
        arrivals = sorted(self._arrivals, key=lambda a: (a[0], a[1]))
        if until == FOREVER:
            self._arrivals = []
        else:
            self._arrivals = [a for a in arrivals if a[0] > until]
            arrivals = [a for a in arrivals if a[0] <= until]
        losses = sorted(
            (loss for loss in self._losses
             if not loss.applied and loss.at_s <= until),
            key=lambda f: (f.at_s, f.device))
        i, n = 0, len(arrivals)
        for event in [*losses, None]:
            bound = until if event is None else event.at_s
            while i < n and arrivals[i][0] <= bound:
                self._dispatch(*arrivals[i])
                i += 1
            for dev in self.devices:
                if dev.alive:
                    self._collect(dev, dev.engine.run(until=bound),
                                  drained)
            if event is not None:
                event.applied = True
                self._apply_loss(event, drained)
        self.results.extend(drained)
        return drained

    # ------------------------------------------------------------------
    # routing + dispatch
    # ------------------------------------------------------------------
    def _placement_for(self, fps, matrix) -> _Placement:
        placement = self._placements.get(fps.pattern)
        if placement is not None:
            return placement
        home = self.router.place(fps.pattern)
        placement = _Placement(pattern=fps.pattern, home=home)
        nrows = int(getattr(matrix, "nrows", None)
                    or np.asarray(matrix).shape[0])
        want = (self.split_threshold_rows is not None
                and nrows >= self.split_threshold_rows
                and self.router.num_alive >= 2)
        if want:
            k = min(self.split_ways or self.router.num_alive,
                    self.router.num_alive)
            if k >= 2:
                cert = self.devices[home].engine.cache.shard_certificate(
                    matrix, k, device=self.device_spec,
                    precision=self.precision, mrows=self.mrows,
                    use_local_memory=self.use_local_memory)
                if cert.ok:
                    placement.split = True
                    placement.num_shards = k
                    placement.shard_devices = self.router.successors(
                        fps.pattern, k)
                    placement.cert = cert
                else:
                    # unprovable plan: serve whole on the home device,
                    # never uncertified shards
                    self.split_declines += 1
                    self._event("cluster.split_decline",
                                pattern=fps.pattern, num_shards=k)
        self._placements[fps.pattern] = placement
        self.devices[home].homed_patterns += 1
        self._event("cluster.place", pattern=fps.pattern, home=home,
                    split=placement.split,
                    num_shards=placement.num_shards)
        return placement

    def _dispatch(self, at, rid, fps, matrix, x, deadline_rel,
                  resilience) -> None:
        placement = self._placement_for(fps, matrix)
        if placement.split and resilience is None:
            self._dispatch_split(placement, at, rid, fps, matrix, x,
                                 deadline_rel)
            return
        engine = self.devices[placement.home].engine
        drid = engine.submit(matrix, x, at=at, deadline_s=deadline_rel,
                             resilience=resilience)
        self._submap[(placement.home, drid)] = rid

    def _dispatch_split(self, placement: _Placement, at, rid, fps,
                        matrix, x, deadline_rel) -> None:
        cert = placement.cert
        self.halo.ship(cert, pattern=fps.pattern)
        info = _Inflight(
            rid=rid, fps=fps, matrix=matrix, x=x, arrival_s=at,
            deadline_abs=(None if deadline_rel is None
                          else at + float(deadline_rel)),
            specs=cert.shard_plan.shards,
            num_shards=placement.num_shards)
        for spec in cert.shard_plan.shards:
            if not spec.num_rows:
                continue
            dev_idx = placement.shard_devices[spec.index]
            self.devices[dev_idx].engine.submit_shard(
                matrix, x, num_shards=placement.num_shards,
                shard_index=spec.index, at=at, parent_id=rid)
            info.expected[spec.index] = dev_idx
        self._inflight[rid] = info
        self.split_dispatches += 1

    # ------------------------------------------------------------------
    # result collection + reassembly
    # ------------------------------------------------------------------
    def _collect(self, dev: SimDevice, results: List[ServedResult],
                 out: List[ServedResult]) -> None:
        for r in results:
            if r.parent_id is not None and r.shard_index is not None:
                self._absorb_partial(r, out)
            else:
                rid = self._submap.pop((dev.index, r.request_id))
                out.append(dataclasses.replace(r, request_id=rid))

    def _absorb_partial(self, r: ServedResult,
                        out: List[ServedResult]) -> None:
        info = self._inflight.get(r.parent_id)
        if info is None:
            return  # parent re-dispatched after a loss: stale partial
        info.partials[r.shard_index] = r
        if set(info.partials) != set(info.expected):
            return
        out.append(self._assemble(info))
        del self._inflight[info.rid]

    def _assemble(self, info: _Inflight) -> ServedResult:
        import hashlib

        nrows = info.specs[-1].row_end
        first = next(iter(info.partials.values()))
        y = np.zeros(nrows, dtype=first.y.dtype)
        for idx, part in info.partials.items():
            spec = info.specs[idx]
            y[spec.row_start:spec.row_end] = part.y
        start = min(p.start_s for p in info.partials.values())
        finish = max(p.finish_s for p in info.partials.values())
        met = (None if info.deadline_abs is None
               else finish <= info.deadline_abs)
        y_digest = None
        if self.keep_y == "digest":
            y_digest = hashlib.sha256(
                np.ascontiguousarray(y).tobytes()).digest()
            y = None
        elif not self.keep_y:
            y = None
        return ServedResult(
            request_id=info.rid, fingerprint=info.fps.combined,
            status="served", arrival_s=info.arrival_s, start_s=start,
            finish_s=finish, latency_s=finish - info.arrival_s,
            batch_size=len(info.partials), batched=False,
            deadline_met=met, y=y, y_digest=y_digest)

    # ------------------------------------------------------------------
    # device loss + rebalancing
    # ------------------------------------------------------------------
    def _apply_loss(self, event: DeviceLoss,
                    out: List[ServedResult]) -> None:
        dev = self.devices[event.device]
        if not dev.alive:
            return  # already dead (duplicate schedule)
        evacuated = dev.engine.evacuate()
        self.router.remove(event.device)
        self._event("cluster.device_loss", device=event.device,
                    kind=event.kind, at_s=event.at_s,
                    evacuated=len(evacuated))
        # every placement that touched the dead device re-places on the
        # surviving ring (consistent hashing moves nothing else)
        dead_patterns = [
            p for p, pl in self._placements.items()
            if pl.home == event.device
            or event.device in pl.shard_devices]
        for p in dead_patterns:
            del self._placements[p]
        # split requests with any shard on the dead device restart
        # whole: cancel their surviving sub-requests everywhere, drop
        # the partials, re-dispatch under the new placement
        affected = sorted(
            rid for rid, info in self._inflight.items()
            if event.device in info.expected.values())
        affected_set = set(affected)
        if affected_set:
            for d in self.devices:
                if d.alive:
                    d.engine.cancel_where(
                        lambda req: req.parent_id in affected_set)
        moved = 0
        for rid in affected:
            info = self._inflight.pop(rid)
            arrival = max(info.arrival_s, event.at_s)
            deadline_rel = (None if info.deadline_abs is None
                            else info.deadline_abs - arrival)
            self._dispatch(arrival, rid, info.fps, info.matrix, info.x,
                           deadline_rel, None)
            moved += 1
        # unsplit work stranded on the dead device re-homes; shard
        # sub-requests of affected parents were already re-dispatched
        # through their parent above
        from repro.core.serialize import MatrixFingerprints

        for req in evacuated:
            if req.parent_id is not None:
                continue
            rid = self._submap.pop((event.device, req.id))
            arrival = max(req.arrival_s, event.at_s)
            deadline_rel = (None if req.deadline_s is None
                            else req.deadline_s - arrival)
            fps = MatrixFingerprints(
                combined=req.entry.fingerprint,
                pattern=req.entry.pattern_fingerprint, values="")
            self._dispatch(arrival, rid, fps, req.entry.coo, req.x,
                           deadline_rel, req.resilience)
            moved += 1
        self.rebalances.append({
            "at_s": event.at_s,
            "device": event.device,
            "kind": event.kind,
            "moved_requests": moved,
            "replaced_patterns": len(dead_patterns),
            "alive": list(self.router.alive),
        })
        self._event("cluster.rebalance", device=event.device,
                    moved=moved, patterns=len(dead_patterns))

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def placement_table(self) -> List[Dict[str, Any]]:
        """Current placements, one row per pattern (for the CLI)."""
        rows = []
        for pattern in sorted(self._placements):
            pl = self._placements[pattern]
            rows.append({
                "pattern": pattern,
                "home": pl.home,
                "split": pl.split,
                "num_shards": pl.num_shards,
                "devices": list(pl.shard_devices) or [pl.home],
            })
        return rows

    def load_table(self) -> List[Dict[str, Any]]:
        """Per-device load summary (for the CLI)."""
        rows = []
        for d in self.devices:
            e = d.engine
            rows.append({
                "device": d.index,
                "alive": d.alive,
                "clock_s": e.clock.now,
                "launches": (e.spmm_launches + e.spmv_launches
                             + e.shard_launches),
                "shard_launches": e.shard_launches,
                "served": sum(1 for r in e.results if r.served),
                "cache_entries": len(e.cache),
            })
        return rows

    def stats(self) -> Dict[str, Any]:
        """Cluster counters plus per-device engine stats (JSON-safe).

        The aggregate ``admission`` / ``batching`` / ``cache`` sections
        sum the per-device counters so cluster reports read like
        single-engine ones; the ``cluster`` section carries placement,
        halo, certificate-store and rebalance accounting.
        """
        per_device = [d.engine.stats() for d in self.devices]

        def summed(section: str) -> Dict[str, Any]:
            agg: Dict[str, Any] = {}
            for dstats in per_device:
                for k, v in dstats[section].items():
                    if isinstance(v, bool) or not isinstance(
                            v, (int, float)):
                        agg.setdefault(k, v)
                    else:
                        agg[k] = agg.get(k, 0) + v
            return agg

        batching = summed("batching")
        batching["histogram"] = {}
        for dstats in per_device:
            for k, v in dstats["batching"]["histogram"].items():
                batching["histogram"][k] = (
                    batching["histogram"].get(k, 0) + v)
        batching["histogram"] = dict(sorted(batching["histogram"].items()))
        cache = summed("cache")
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        cache["hit_rate"] = cache.get("hits", 0) / lookups if lookups else 0.0
        return {
            "clock_s": self.now,
            "admission": summed("admission"),
            "batching": batching,
            "cache": cache,
            "cluster": {
                "num_devices": self.num_devices,
                "alive": list(self.router.alive),
                "router": self.router.to_dict(),
                "placements": len(self._placements),
                "split_dispatches": self.split_dispatches,
                "split_declines": self.split_declines,
                "halo": self.halo.to_dict(),
                "cert_store": self.cert_store.to_dict(),
                "rebalances": self.rebalances,
            },
            "devices": per_device,
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _event(name: str, **attrs) -> None:
        sess = _obs.ACTIVE
        if sess is not None:
            sess.record_event(name, category="cluster", **attrs)

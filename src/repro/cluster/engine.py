"""The sharded multi-device serving cluster.

``N`` simulated devices — each a full
:class:`~repro.serve.engine.ServeEngine` with its own
:class:`~repro.serve.cache.PlanCache` and clock — behind one
:class:`~repro.serve.engine.Engine`-shaped facade.  The
:class:`~repro.cluster.router.ClusterRouter` places every matrix by
consistent hash over its *pattern* fingerprint; matrices at or above
``split_threshold_rows`` are split row-block across the ring's next
distinct devices, but only through a
:func:`~repro.analyze.sharding.certify_shard_plan` certificate — an
unprovable plan falls back to whole-matrix serving on the home device,
never to uncertified shard execution.  Devices share one
:class:`~repro.serve.cache.ShardCertificateStore`, so a plan is proven
once cluster-wide and every later activation is a counted cross-device
reuse.

Split requests ship only the certified ``x`` halo intervals between
devices (:class:`~repro.cluster.halo.HaloExchange` accounts the bytes
as obs events); their per-shard partial results reassemble into a
``y`` that is bit-identical to the single-engine run, because the
certificate's write-disjointness prover guarantees each row is owned
by exactly one shard.

On top of sharding sits the **resilience layer**
(:mod:`repro.cluster.resilience` holds the policy objects):

- ``replicas=R`` places every unsplit pattern on ``R`` distinct
  devices (the router's successor walk, home first), fans value
  variants out to every replica's plan cache, and load-balances reads
  deterministically (``request id mod live replicas``).
- A :class:`~repro.cluster.resilience.HedgePolicy` duplicates a
  request onto further replicas when its primary is straggling,
  backed up, or would blow the deadline — first completion wins,
  queued losers are cancelled, completed losers are digest-verified
  against the winner.
- ``cluster_admission`` adds a cluster-wide front door
  (:class:`~repro.serve.admission.ClusterAdmission`) ahead of the
  per-device queues, with per-tenant fairness and
  ``shed-to-replica`` overflow.

Device chaos (:meth:`ClusterEngine.fail_device`,
:meth:`~ClusterEngine.slow_device`, :meth:`~ClusterEngine.rejoin_device`
— fault kinds shared with :mod:`repro.resilience`) cuts the one global
discrete-event loop into epochs: every live engine drains up to the
event instant, then the event applies — loss means evacuation, ring
removal, re-placement and verified failover re-dispatch (with
deterministic backoff accounting charged into the served latency);
rejoin restores the device and moves back only ring-adjacent patterns.
Completed work keeps its results, lost work is re-served, nothing is
served wrong.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.halo import HaloExchange
from repro.cluster.resilience import (
    ClusterError,
    HedgePolicy,
    ResilienceStats,
    _HedgeCopy,
    _HedgeGroup,
    result_digest,
)
from repro.cluster.router import ClusterRouter
from repro.obs import recorder as _obs
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.resilience.faults import FAULT_KINDS
from repro.resilience.policy import Policy
from repro.serve.admission import (
    AdmissionPolicy,
    ClusterAdmission,
    ClusterAdmissionPolicy,
)
from repro.serve.batcher import BatchConfig
from repro.serve.cache import PlanCache, ShardCertificateStore
from repro.serve.clock import FOREVER
from repro.serve.engine import ServedResult, ServeEngine

__all__ = ["ClusterEngine", "ClusterEvent", "DeviceLoss", "SimDevice"]


@dataclass
class DeviceLoss:
    """A scheduled simulated device loss (kept for back-compat; the
    engine now schedules every chaos action as a
    :class:`ClusterEvent`)."""

    device: int
    at_s: float
    kind: str = "device_oom"
    applied: bool = False


#: recognised scheduled-event actions, in no particular order —
#: simultaneous events apply in scheduling order (``seq``)
EVENT_ACTIONS = ("fail", "slow_start", "slow_end", "rejoin")


@dataclass
class ClusterEvent:
    """One scheduled chaos action on the cluster timeline."""

    action: str
    device: int
    at_s: float
    kind: str = ""       # fault taxonomy kind, for "fail"
    factor: float = 1.0  # service-time multiplier, for "slow_start"
    seq: int = 0
    applied: bool = False


@dataclass
class SimDevice:
    """One simulated device: its engine plus placement-load counters."""

    index: int
    engine: ServeEngine
    #: cluster requests currently homed here (unsplit) / shards hosted
    homed_patterns: int = 0
    #: the device died and came back with a fresh engine at least once
    rejoined: bool = False

    @property
    def alive(self) -> bool:
        return self.engine.alive

    @property
    def state(self) -> str:
        """``dead`` / ``slow`` / ``rejoined`` / ``live`` (the CLI's
        status column)."""
        if not self.alive:
            return "dead"
        if self.engine.service_scale > 1.0:
            return "slow"
        if self.rejoined:
            return "rejoined"
        return "live"


@dataclass
class _Placement:
    """Where one pattern lives right now."""

    pattern: str
    home: int
    split: bool = False
    num_shards: int = 0
    shard_devices: Tuple[int, ...] = ()
    cert: Any = None
    #: replica devices of an unsplit pattern (home first)
    replica_devices: Tuple[int, ...] = ()
    #: combined fingerprints whose values already fanned to replicas
    fanned: set = field(default_factory=set)


@dataclass
class _Inflight:
    """One dispatched split request awaiting its shard partials."""

    rid: int
    fps: Any
    matrix: Any
    x: np.ndarray
    arrival_s: float
    deadline_abs: Optional[float]
    specs: Tuple
    num_shards: int
    #: shard index -> device index serving it
    expected: Dict[int, int] = field(default_factory=dict)
    partials: Dict[int, ServedResult] = field(default_factory=dict)


class ClusterEngine:
    """N simulated serving devices behind the ``Engine`` protocol.

    Parameters mirror :class:`~repro.serve.engine.ServeEngine` (every
    device shares the execution configuration) plus the cluster knobs:

    ``split_threshold_rows``
        Matrices with at least this many rows are split across devices
        (``None`` — the default — never splits).
    ``split_ways``
        Shard count for split matrices (``None`` = one shard per live
        device).
    ``cache_capacity`` / ``vnodes``
        Per-device :class:`~repro.serve.cache.PlanCache` capacity and
        consistent-hash virtual nodes per device.
    ``replicas``
        Distinct devices hosting each unsplit pattern (1 = no
        replication).
    ``hedge``
        A :class:`~repro.cluster.resilience.HedgePolicy` enabling
        hedged retries to replicas (``None`` = never hedge).
    ``cluster_admission``
        A :class:`~repro.serve.admission.ClusterAdmissionPolicy`
        enabling the cluster-wide front door (``None`` = per-device
        admission only).
    """

    report_schema = "repro-cluster-report/v1"

    def __init__(
        self,
        num_devices: int,
        *,
        device: DeviceSpec = TESLA_C2050,
        precision: str = "double",
        mrows: int = 128,
        use_local_memory: bool = True,
        batch: Optional[BatchConfig] = None,
        admission: Optional[AdmissionPolicy] = None,
        prepare_cost_s: float = 0.0,
        size_scale: float = 1.0,
        keep_y=True,
        split_threshold_rows: Optional[int] = None,
        split_ways: Optional[int] = None,
        cache_capacity: int = 64,
        vnodes: int = 64,
        cert_store: Optional[ShardCertificateStore] = None,
        replicas: int = 1,
        hedge: Optional[HedgePolicy] = None,
        cluster_admission: Optional[ClusterAdmissionPolicy] = None,
    ):
        if num_devices < 1:
            raise ValueError(
                f"num_devices must be >= 1, got {num_devices}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if hedge is not None and not isinstance(hedge, HedgePolicy):
            raise TypeError(
                f"hedge must be a HedgePolicy or None, got {hedge!r}")
        self.num_devices = int(num_devices)
        self.device_spec = device
        self.precision = precision
        self.mrows = int(mrows)
        self.use_local_memory = bool(use_local_memory)
        self.keep_y = keep_y
        self.split_threshold_rows = split_threshold_rows
        self.split_ways = split_ways
        self.replicas = int(replicas)
        self.hedge = hedge
        self.cert_store = (cert_store if cert_store is not None
                           else ShardCertificateStore())
        self.router = ClusterRouter(self.num_devices, vnodes=vnodes)
        self.halo = HaloExchange(precision)
        # kept so rejoined/added devices get identically-configured
        # fresh engines
        self._batch = batch
        self._admission_policy = admission
        self._prepare_cost_s = prepare_cost_s
        self._size_scale = size_scale
        self._cache_capacity = cache_capacity
        self.devices = [SimDevice(i, self._fresh_engine())
                        for i in range(self.num_devices)]

        self.front_door = (None if cluster_admission is None
                           else ClusterAdmission(cluster_admission))
        self.resilience_stats = ResilienceStats()
        #: the backoff schedule priced into failover re-dispatches
        self._failover_policy = (hedge.backoff if hedge is not None
                                 else Policy())

        self._next_id = 0
        self._next_seq = 0
        #: (arrival, rid, fps, matrix, x, deadline_rel, resilience)
        self._arrivals: List[Tuple] = []
        self._events: List[ClusterEvent] = []
        self._placements: Dict[str, _Placement] = {}
        #: (device index, device-level rid) -> cluster rid (unsplit)
        self._submap: Dict[Tuple[int, int], int] = {}
        self._inflight: Dict[int, _Inflight] = {}
        #: hedged cluster rid -> its pending group
        self._hedge_groups: Dict[int, _HedgeGroup] = {}
        #: (device index, device-level rid) -> cluster rid (hedge copy)
        self._hedge_copies: Dict[Tuple[int, int], int] = {}
        #: cluster rid -> original arrival (survives failover; served
        #: latency is always measured from here)
        self._orig_arrival: Dict[int, float] = {}
        #: cluster rid -> failover re-dispatches so far
        self._failover_attempts: Dict[int, int] = {}
        #: cluster rid -> front-door tenant (combined fingerprint)
        self._tenant_of: Dict[int, str] = {}
        #: dispatched-not-terminal requests, cluster-wide
        self._inflight_count = 0
        #: device index -> outstanding cluster dispatches (the hedge
        #: queue-depth trigger and shed-to-replica target read this)
        self._outstanding: Dict[int, int] = {}
        self.rebalances: List[Dict[str, Any]] = []
        self.split_dispatches = 0
        self.split_declines = 0
        self.results: List[ServedResult] = []

    def _fresh_engine(self) -> ServeEngine:
        return ServeEngine(
            device=self.device_spec, precision=self.precision,
            mrows=self.mrows, use_local_memory=self.use_local_memory,
            batch=self._batch, admission=self._admission_policy,
            cache=PlanCache(capacity=self._cache_capacity,
                            cert_store=self.cert_store),
            prepare_cost_s=self._prepare_cost_s,
            size_scale=self._size_scale, keep_y=self.keep_y)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The cluster's simulated time: the farthest device clock."""
        return max(d.engine.clock.now for d in self.devices)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(
        self,
        matrix,
        x: np.ndarray,
        *,
        at: Optional[float] = None,
        deadline_s: Optional[float] = None,
        resilience=None,
    ) -> int:
        """Enqueue one request; returns its cluster-level id.

        Same contract as :meth:`ServeEngine.submit`; routing happens
        inside :meth:`run`, at the arrival instant, against the ring
        as it exists then.
        """
        from repro.core.serialize import fingerprints

        fps = fingerprints(matrix)
        arrival = self.now if at is None else max(float(at), 0.0)
        rid = self._next_id
        self._next_id += 1
        self._arrivals.append(
            (arrival, rid, fps, matrix, x, deadline_s, resilience))
        return rid

    # ------------------------------------------------------------------
    # chaos scheduling
    # ------------------------------------------------------------------
    def _schedule(self, action: str, device: int, at_s: float,
                  **kw) -> None:
        self._events.append(ClusterEvent(
            action=action, device=device, at_s=float(at_s),
            seq=self._next_seq, **kw))
        self._next_seq += 1

    def _check_device(self, device) -> int:
        device = int(device)
        if not 0 <= device < len(self.devices):
            raise ClusterError(f"no such device: {device}")
        return device

    def _pending(self, action: str, device: int) -> bool:
        return any(e.action == action and e.device == device
                   and not e.applied for e in self._events)

    def fail_device(self, device: int, at_s: float,
                    kind: str = "device_oom") -> None:
        """Schedule losing ``device`` at simulated instant ``at_s``.

        ``kind`` must be one of the :mod:`repro.resilience` fault
        categories (:data:`~repro.resilience.faults.FAULT_KINDS`) — the
        cluster reuses the chaos taxonomy so incident reports and
        rebalance records speak the same language.  Raises
        :class:`~repro.cluster.resilience.ClusterError` for an unknown
        device index or a device that is already dead (with no rejoin
        pending) — before any state is touched.
        """
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{FAULT_KINDS}")
        device = self._check_device(device)
        if not self.devices[device].alive \
                and not self._pending("rejoin", device):
            raise ClusterError(
                f"device {device} is already dead and has no rejoin "
                f"scheduled")
        self._schedule("fail", device, at_s, kind=kind)

    def slow_device(self, device: int, at_s: float, *,
                    duration_s: float, factor: float = 4.0) -> None:
        """Schedule a straggler window on ``device``: every launch
        starting in ``[at_s, at_s + duration_s)`` takes ``factor``
        times its predicted service time."""
        device = self._check_device(device)
        if duration_s <= 0:
            raise ValueError(
                f"duration_s must be > 0, got {duration_s}")
        if factor <= 1.0:
            raise ValueError(
                f"factor must be > 1 to slow a device, got {factor}")
        self._schedule("slow_start", device, at_s, factor=float(factor))
        self._schedule("slow_end", device, at_s + float(duration_s))

    def rejoin_device(self, device: int, at_s: float) -> None:
        """Schedule a dead (or about-to-die) ``device`` to rejoin at
        ``at_s`` with a fresh engine.  Only patterns whose placement
        actually changes under the restored ring are invalidated — the
        incremental re-placement invariant, in reverse."""
        device = self._check_device(device)
        if self.devices[device].alive \
                and not self._pending("fail", device):
            raise ClusterError(
                f"device {device} is alive and has no failure "
                f"scheduled; nothing to rejoin")
        self._schedule("rejoin", device, at_s)

    def add_device(self, device: Optional[int] = None) -> int:
        """Immediately add a brand-new device (``device=None``: the
        next index) or restore a dead one.  Raises
        :class:`~repro.cluster.resilience.ClusterError` for an
        already-alive or out-of-range index — before any router state
        is touched."""
        if device is None:
            device = len(self.devices)
        device = int(device)
        if not 0 <= device <= len(self.devices):
            raise ClusterError(
                f"cannot add device {device}: cluster devices are "
                f"0..{len(self.devices) - 1}")
        if device == len(self.devices):
            self.devices.append(SimDevice(device, self._fresh_engine()))
            self.num_devices += 1
        elif self.devices[device].alive:
            raise ClusterError(f"device {device} is already alive")
        else:
            self.devices[device].engine = self._fresh_engine()
            self.devices[device].rejoined = True
            self.devices[device].homed_patterns = 0
        self._join_ring(device, self.now)
        return device

    # ------------------------------------------------------------------
    # the global event loop
    # ------------------------------------------------------------------
    def run(self, until: float = FOREVER) -> List[ServedResult]:
        """Drain the cluster up to ``until`` (default: everything).

        One deterministic discrete-event loop: scheduled chaos events
        cut the timeline into epochs; within an epoch arrivals dispatch
        to their routed devices (in arrival order), every live engine
        drains to the epoch boundary, and hedged requests resolve
        (first completion wins, losers cancelled or verified), then the
        event applies — loss, straggler window edge, or rejoin — and
        the next epoch begins.  Results arrive in deterministic
        completion order with cluster-level request ids.
        """
        drained: List[ServedResult] = []
        arrivals = sorted(self._arrivals, key=lambda a: (a[0], a[1]))
        if until == FOREVER:
            self._arrivals = []
        else:
            self._arrivals = [a for a in arrivals if a[0] > until]
            arrivals = [a for a in arrivals if a[0] <= until]
        events = sorted(
            (e for e in self._events
             if not e.applied and e.at_s <= until),
            key=lambda e: (e.at_s, e.seq))
        i, n = 0, len(arrivals)
        for event in [*events, None]:
            bound = until if event is None else event.at_s
            while i < n and arrivals[i][0] <= bound:
                a = arrivals[i]
                self._dispatch(a[0], a[1], a[2], a[3], a[4], a[5], a[6],
                               drained)
                i += 1
            for dev in self.devices:
                if dev.alive:
                    self._collect(dev, dev.engine.run(until=bound),
                                  drained)
            self._resolve_hedges(drained)
            if event is not None:
                event.applied = True
                if event.action == "fail":
                    self._apply_loss(event, drained)
                elif event.action == "rejoin":
                    self._apply_rejoin(event)
                else:
                    self._apply_slow(event)
        self.results.extend(drained)
        return drained

    # ------------------------------------------------------------------
    # routing + dispatch
    # ------------------------------------------------------------------
    def _placement_for(self, fps, matrix) -> _Placement:
        placement = self._placements.get(fps.pattern)
        if placement is not None:
            return placement
        home = self.router.place(fps.pattern)
        placement = _Placement(pattern=fps.pattern, home=home)
        nrows = int(getattr(matrix, "nrows", None)
                    or np.asarray(matrix).shape[0])
        want = (self.split_threshold_rows is not None
                and nrows >= self.split_threshold_rows
                and self.router.num_alive >= 2)
        if want:
            k = min(self.split_ways or self.router.num_alive,
                    self.router.num_alive)
            if k >= 2:
                cert = self.devices[home].engine.cache.shard_certificate(
                    matrix, k, device=self.device_spec,
                    precision=self.precision, mrows=self.mrows,
                    use_local_memory=self.use_local_memory)
                if cert.ok:
                    placement.split = True
                    placement.num_shards = k
                    placement.shard_devices = self.router.successors(
                        fps.pattern, k)
                    placement.cert = cert
                else:
                    # unprovable plan: serve whole on the home device,
                    # never uncertified shards
                    self.split_declines += 1
                    self._event("cluster.split_decline",
                                pattern=fps.pattern, num_shards=k)
        if not placement.split:
            placement.replica_devices = self.router.successors(
                fps.pattern, self.replicas)
        self._placements[fps.pattern] = placement
        self.devices[home].homed_patterns += 1
        self._event("cluster.place", pattern=fps.pattern, home=home,
                    split=placement.split,
                    num_shards=placement.num_shards,
                    replicas=list(placement.replica_devices))
        return placement

    def _dispatch(self, at, rid, fps, matrix, x, deadline_rel,
                  resilience, out: List[ServedResult], *,
                  fresh: bool = True) -> None:
        placement = self._placement_for(fps, matrix)
        shed = False
        if fresh:
            self._orig_arrival[rid] = at
            if self.front_door is not None:
                tenant = fps.combined
                verdict = self.front_door.admit(
                    tenant, self._inflight_count)
                if verdict == "reject":
                    self._event("cluster.shed", request=rid,
                                tenant=tenant, action="reject")
                    out.append(ServedResult(
                        request_id=rid, fingerprint=fps.combined,
                        status="rejected", arrival_s=at, start_s=at,
                        finish_s=at))
                    self._orig_arrival.pop(rid, None)
                    return
                shed = verdict == "shed-to-replica"
                if shed:
                    self._event("cluster.shed", request=rid,
                                tenant=tenant,
                                action="shed-to-replica")
                self._tenant_of[rid] = tenant
                self._inflight_count += 1
        if placement.split and resilience is None:
            self._dispatch_split(placement, at, rid, fps, matrix, x,
                                 deadline_rel)
            return
        replicas = [d for d in placement.replica_devices
                    if self.devices[d].alive] or [placement.home]
        self._fan_out_values(placement, fps, matrix, replicas)
        if shed:
            # overflow redirection: least-loaded live replica
            target = min(replicas,
                         key=lambda d: (self._outstanding.get(d, 0), d))
        else:
            # deterministic read balancing across live replicas
            target = replicas[rid % len(replicas)]
        if (self.hedge is not None and resilience is None and not shed
                and len(replicas) > 1):
            reason = self._hedge_trigger(target, at, deadline_rel)
            if reason is not None:
                self._dispatch_hedged(placement, at, rid, fps, matrix,
                                      x, deadline_rel, target, replicas,
                                      reason)
                return
        drid = self.devices[target].engine.submit(
            matrix, x, at=at, deadline_s=deadline_rel,
            resilience=resilience)
        self._submap[(target, drid)] = rid
        self._outstanding[target] = \
            self._outstanding.get(target, 0) + 1

    def _fan_out_values(self, placement: _Placement, fps, matrix,
                        replicas: List[int]) -> None:
        """Warm every replica's plan cache with this value variant so a
        failover or hedge never pays a cold prepare."""
        if len(replicas) < 2 or fps.combined in placement.fanned:
            return
        for d in replicas:
            if d == placement.home:
                continue
            self.devices[d].engine.cache.entry(matrix)
            self.resilience_stats.value_fanouts += 1
        placement.fanned.add(fps.combined)

    def _hedge_trigger(self, device: int, at: float,
                       deadline_rel) -> Optional[str]:
        """Why this dispatch should hedge, or ``None``."""
        h = self.hedge
        eng = self.devices[device].engine
        if eng.service_scale >= h.slow_threshold:
            return "slow"
        backlog = max(0.0, eng.busy_until - at)
        if h.timeout_s is not None and backlog > h.timeout_s:
            return "timeout"
        if (h.deadline_fraction is not None and deadline_rel is not None
                and backlog > h.deadline_fraction * float(deadline_rel)):
            return "deadline"
        if (h.queue_depth is not None
                and self._outstanding.get(device, 0) >= h.queue_depth):
            return "queue"
        return None

    def _dispatch_hedged(self, placement: _Placement, at, rid, fps,
                         matrix, x, deadline_rel, target: int,
                         replicas: List[int], reason: str) -> None:
        group = _HedgeGroup(rid=rid, fps=fps, matrix=matrix, x=x,
                            arrival_s=at, deadline_rel=deadline_rel)
        self._hedge_groups[rid] = group
        drid = self.devices[target].engine.submit(
            matrix, x, at=at, deadline_s=deadline_rel)
        self._submap[(target, drid)] = rid
        self._hedge_copies[(target, drid)] = rid
        group.copies.append(_HedgeCopy(target, drid, 0))
        self._outstanding[target] = \
            self._outstanding.get(target, 0) + 1
        others = [d for d in replicas if d != target]
        for k, dev_idx in enumerate(
                others[:min(self.hedge.max_hedges, len(others))], 1):
            delay = self.hedge.backoff.backoff_s(k)
            hdrid = self.devices[dev_idx].engine.submit(
                matrix, x, at=at + delay, deadline_s=deadline_rel)
            self._submap[(dev_idx, hdrid)] = rid
            self._hedge_copies[(dev_idx, hdrid)] = rid
            group.copies.append(_HedgeCopy(dev_idx, hdrid, k))
            self._outstanding[dev_idx] = \
                self._outstanding.get(dev_idx, 0) + 1
            self.resilience_stats.hedges += 1
            self.resilience_stats.hedge_backoff_s += delay
            self._event("cluster.hedge", request=rid, primary=target,
                        hedge=dev_idx, attempt=k, backoff_s=delay,
                        reason=reason)

    def _dispatch_split(self, placement: _Placement, at, rid, fps,
                        matrix, x, deadline_rel) -> None:
        cert = placement.cert
        self.halo.ship(cert, pattern=fps.pattern)
        info = _Inflight(
            rid=rid, fps=fps, matrix=matrix, x=x, arrival_s=at,
            deadline_abs=(None if deadline_rel is None
                          else at + float(deadline_rel)),
            specs=cert.shard_plan.shards,
            num_shards=placement.num_shards)
        for spec in cert.shard_plan.shards:
            if not spec.num_rows:
                continue
            dev_idx = placement.shard_devices[spec.index]
            self.devices[dev_idx].engine.submit_shard(
                matrix, x, num_shards=placement.num_shards,
                shard_index=spec.index, at=at, parent_id=rid)
            info.expected[spec.index] = dev_idx
        self._inflight[rid] = info
        self.split_dispatches += 1

    # ------------------------------------------------------------------
    # result collection + reassembly
    # ------------------------------------------------------------------
    def _finish(self, out: List[ServedResult],
                result: ServedResult) -> None:
        """Emit one terminal cluster result, releasing every piece of
        per-request bookkeeping (front door, in-flight count)."""
        self._orig_arrival.pop(result.request_id, None)
        self._failover_attempts.pop(result.request_id, None)
        tenant = self._tenant_of.pop(result.request_id, None)
        if tenant is not None:
            self._inflight_count = max(0, self._inflight_count - 1)
            if self.front_door is not None:
                self.front_door.release(tenant)
        out.append(result)

    def _retimed(self, r: ServedResult, rid: int) -> ServedResult:
        """Measure served latency from the *original* arrival, so
        failover downtime, re-dispatch backoff and hedge delay all show
        up in the percentiles."""
        orig = self._orig_arrival.get(rid)
        if orig is None or orig == r.arrival_s or not r.served:
            return r
        return dataclasses.replace(
            r, arrival_s=orig, latency_s=r.finish_s - orig)

    def _collect(self, dev: SimDevice, results: List[ServedResult],
                 out: List[ServedResult]) -> None:
        for r in results:
            if r.parent_id is not None and r.shard_index is not None:
                self._absorb_partial(r, out)
                continue
            key = (dev.index, r.request_id)
            rid = self._submap.pop(key)
            self._outstanding[dev.index] = max(
                0, self._outstanding.get(dev.index, 0) - 1)
            if key in self._hedge_copies:
                del self._hedge_copies[key]
                group = self._hedge_groups[rid]
                copy = group.copy_for(dev.index, r.request_id)
                group.completed.append(
                    (r.finish_s, dev.index, copy.attempt, r))
                continue
            self._finish(out, self._retimed(
                dataclasses.replace(r, request_id=rid), rid))

    def _absorb_partial(self, r: ServedResult,
                        out: List[ServedResult]) -> None:
        info = self._inflight.get(r.parent_id)
        if info is None:
            return  # parent re-dispatched after a loss: stale partial
        info.partials[r.shard_index] = r
        if set(info.partials) != set(info.expected):
            return
        assembled = self._assemble(info)
        del self._inflight[info.rid]
        self._finish(out, self._retimed(assembled, info.rid))

    def _assemble(self, info: _Inflight) -> ServedResult:
        import hashlib

        nrows = info.specs[-1].row_end
        first = next(iter(info.partials.values()))
        y = np.zeros(nrows, dtype=first.y.dtype)
        for idx, part in info.partials.items():
            spec = info.specs[idx]
            y[spec.row_start:spec.row_end] = part.y
        start = min(p.start_s for p in info.partials.values())
        finish = max(p.finish_s for p in info.partials.values())
        met = (None if info.deadline_abs is None
               else finish <= info.deadline_abs)
        y_digest = None
        if self.keep_y == "digest":
            y_digest = hashlib.sha256(
                np.ascontiguousarray(y).tobytes()).digest()
            y = None
        elif not self.keep_y:
            y = None
        return ServedResult(
            request_id=info.rid, fingerprint=info.fps.combined,
            status="served", arrival_s=info.arrival_s, start_s=start,
            finish_s=finish, latency_s=finish - info.arrival_s,
            batch_size=len(info.partials), batched=False,
            deadline_met=met, y=y, y_digest=y_digest)

    # ------------------------------------------------------------------
    # hedge resolution
    # ------------------------------------------------------------------
    def _resolve_hedges(self, out: List[ServedResult]) -> None:
        """First completion wins: emit the winner, cancel still-queued
        losers, digest-verify losers that already executed.  Called at
        every epoch boundary, after all live engines drained."""
        ready = sorted(rid for rid, g in self._hedge_groups.items()
                       if g.completed)
        for rid in ready:
            group = self._hedge_groups.pop(rid)
            # served completions beat terminal ones (an expired copy
            # must not outrank a served one), then earliest finish,
            # then lowest device index — fully deterministic
            group.completed.sort(
                key=lambda t: (not t[3].served, t[0], t[1]))
            win_f, win_dev, win_attempt, win_r = group.completed[0]
            if win_attempt > 0:
                self.resilience_stats.hedge_wins += 1
            win_digest = result_digest(win_r)
            for _, dev_idx, attempt, r in group.completed[1:]:
                self.resilience_stats.hedge_wasted += 1
                digest = result_digest(r)
                if digest is None or win_digest is None:
                    continue
                if digest == win_digest:
                    self.resilience_stats.hedge_verified += 1
                else:
                    self.resilience_stats.hedge_divergences += 1
                    self._event("cluster.hedge_divergence",
                                request=rid, winner=win_dev,
                                loser=dev_idx)
            done = {(d, a) for _, d, a, _ in group.completed}
            for c in group.copies:
                if (c.device, c.attempt) in done:
                    continue
                self._submap.pop((c.device, c.device_rid), None)
                self._hedge_copies.pop((c.device, c.device_rid), None)
                self._outstanding[c.device] = max(
                    0, self._outstanding.get(c.device, 0) - 1)
                dev = self.devices[c.device]
                if dev.alive and dev.engine.cancel_where(
                        lambda req, _rid=c.device_rid: req.id == _rid):
                    self.resilience_stats.hedge_cancelled += 1
            self._finish(out, self._retimed(
                dataclasses.replace(win_r, request_id=rid), rid))

    # ------------------------------------------------------------------
    # device loss + rebalancing
    # ------------------------------------------------------------------
    def _charge_failover(self, rid: int, device: int, at_s: float,
                         base_arrival: float, *,
                         split: bool) -> float:
        """Account one failover re-dispatch; returns the re-dispatch
        arrival (original position on the timeline, plus downtime,
        plus deterministic backoff)."""
        attempt = self._failover_attempts.get(rid, 0) + 1
        self._failover_attempts[rid] = attempt
        backoff = self._failover_policy.backoff_s(attempt)
        self.resilience_stats.failovers += 1
        self.resilience_stats.failover_backoff_s += backoff
        self._event("cluster.failover", request=rid, device=device,
                    attempt=attempt, backoff_s=backoff, split=split)
        return max(base_arrival, at_s) + backoff

    def _apply_loss(self, event: ClusterEvent,
                    out: List[ServedResult]) -> None:
        dev = self.devices[event.device]
        if not dev.alive:
            return  # already dead (duplicate schedule)
        evacuated = dev.engine.evacuate()
        self.router.remove(event.device)
        self._outstanding[event.device] = 0
        self._event("cluster.device_loss", device=event.device,
                    kind=event.kind, at_s=event.at_s,
                    evacuated=len(evacuated))
        # every placement that touched the dead device re-places on the
        # surviving ring (consistent hashing moves nothing else)
        dead_patterns = [
            p for p, pl in self._placements.items()
            if pl.home == event.device
            or event.device in pl.shard_devices
            or event.device in pl.replica_devices]
        for p in dead_patterns:
            del self._placements[p]
        # split requests with any shard on the dead device restart
        # whole: cancel their surviving sub-requests everywhere, drop
        # the partials, re-dispatch under the new placement
        affected = sorted(
            rid for rid, info in self._inflight.items()
            if event.device in info.expected.values())
        affected_set = set(affected)
        if affected_set:
            for d in self.devices:
                if d.alive:
                    d.engine.cancel_where(
                        lambda req: req.parent_id in affected_set)
        moved = 0
        for rid in affected:
            info = self._inflight.pop(rid)
            arrival = self._charge_failover(
                rid, event.device, event.at_s, info.arrival_s,
                split=True)
            deadline_rel = (None if info.deadline_abs is None
                            else info.deadline_abs - arrival)
            self._dispatch(arrival, rid, info.fps, info.matrix, info.x,
                           deadline_rel, None, out, fresh=False)
            moved += 1
        # unsplit work stranded on the dead device: hedge copies fall
        # out of their group (survivor copies keep racing), everything
        # else re-homes through verified failover; shard sub-requests
        # of affected parents were already re-dispatched above
        from repro.core.serialize import MatrixFingerprints

        stranded_hedges = set()
        for req in evacuated:
            if req.parent_id is not None:
                continue
            key = (event.device, req.id)
            if key in self._hedge_copies:
                rid = self._hedge_copies.pop(key)
                self._submap.pop(key, None)
                group = self._hedge_groups[rid]
                group.copies = [
                    c for c in group.copies
                    if (c.device, c.device_rid) != key]
                stranded_hedges.add(rid)
                continue
            rid = self._submap.pop(key)
            arrival = self._charge_failover(
                rid, event.device, event.at_s, req.arrival_s,
                split=False)
            deadline_rel = (None if req.deadline_s is None
                            else req.deadline_s - arrival)
            fps = MatrixFingerprints(
                combined=req.entry.fingerprint,
                pattern=req.entry.pattern_fingerprint, values="")
            self._dispatch(arrival, rid, fps, req.entry.coo, req.x,
                           deadline_rel, req.resilience, out,
                           fresh=False)
            moved += 1
        # a hedged request that lost *every* copy to the dead device
        # restarts whole (its group had no survivors to race)
        for rid in sorted(stranded_hedges):
            group = self._hedge_groups[rid]
            if group.completed or group.copies:
                continue
            del self._hedge_groups[rid]
            arrival = self._charge_failover(
                rid, event.device, event.at_s, group.arrival_s,
                split=False)
            deadline_rel = (
                None if group.deadline_rel is None
                else group.arrival_s + float(group.deadline_rel)
                - arrival)
            self._dispatch(arrival, rid, group.fps, group.matrix,
                           group.x, deadline_rel, None, out,
                           fresh=False)
            moved += 1
        self.rebalances.append({
            "at_s": event.at_s,
            "device": event.device,
            "kind": event.kind,
            "moved_requests": moved,
            "replaced_patterns": len(dead_patterns),
            "alive": list(self.router.alive),
        })
        self._event("cluster.rebalance", device=event.device,
                    moved=moved, patterns=len(dead_patterns))

    # ------------------------------------------------------------------
    # device rejoin + straggler windows
    # ------------------------------------------------------------------
    def _apply_rejoin(self, event: ClusterEvent) -> None:
        dev = self.devices[event.device]
        if dev.alive:
            return  # already back (duplicate schedule)
        dev.engine = self._fresh_engine()
        dev.rejoined = True
        dev.homed_patterns = 0
        self._join_ring(event.device, event.at_s)

    def _join_ring(self, device: int, at_s: float) -> None:
        """Put ``device`` back on the ring and invalidate exactly the
        placements the restored ring moves — every one of which must
        touch the (re)joined device, the invariant the rebalance
        record's ``ring_adjacent_only`` attests."""
        self.router.add(device)
        moved: List[str] = []
        adjacent = True
        for pattern in sorted(self._placements):
            pl = self._placements[pattern]
            home = self.router.place(pattern)
            if pl.split:
                devs = self.router.successors(pattern, pl.num_shards)
                current = (pl.home, pl.shard_devices)
            else:
                devs = self.router.successors(pattern, self.replicas)
                current = (pl.home, pl.replica_devices)
            if (home, devs) != current:
                moved.append(pattern)
                if device != home and device not in devs:
                    adjacent = False
        for p in moved:
            del self._placements[p]
        self.rebalances.append({
            "at_s": at_s,
            "device": device,
            "kind": "rejoin",
            "moved_requests": 0,
            "replaced_patterns": len(moved),
            "ring_adjacent_only": adjacent,
            "alive": list(self.router.alive),
        })
        self._event("cluster.rejoin", device=device, at_s=at_s,
                    moved_patterns=len(moved))

    def _apply_slow(self, event: ClusterEvent) -> None:
        dev = self.devices[event.device]
        if not dev.alive:
            return  # straggler window on a dead device: nothing to do
        if event.action == "slow_start":
            dev.engine.service_scale = event.factor
            self._event("cluster.slow", device=event.device,
                        factor=event.factor, at_s=event.at_s,
                        phase="start")
        else:
            dev.engine.service_scale = 1.0
            self._event("cluster.slow", device=event.device,
                        factor=1.0, at_s=event.at_s, phase="end")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def placement_table(self) -> List[Dict[str, Any]]:
        """Current placements, one row per pattern (for the CLI)."""
        rows = []
        for pattern in sorted(self._placements):
            pl = self._placements[pattern]
            rows.append({
                "pattern": pattern,
                "home": pl.home,
                "split": pl.split,
                "num_shards": pl.num_shards,
                "devices": (list(pl.shard_devices)
                            or list(pl.replica_devices)
                            or [pl.home]),
            })
        return rows

    def load_table(self) -> List[Dict[str, Any]]:
        """Per-device load summary (for the CLI)."""
        rows = []
        for d in self.devices:
            e = d.engine
            rows.append({
                "device": d.index,
                "alive": d.alive,
                "state": d.state,
                "clock_s": e.clock.now,
                "launches": (e.spmm_launches + e.spmv_launches
                             + e.shard_launches),
                "shard_launches": e.shard_launches,
                "served": sum(1 for r in e.results if r.served),
                "cache_entries": len(e.cache),
            })
        return rows

    def stats(self) -> Dict[str, Any]:
        """Cluster counters plus per-device engine stats (JSON-safe).

        The aggregate ``admission`` / ``batching`` / ``cache`` sections
        sum the per-device counters so cluster reports read like
        single-engine ones; the ``cluster`` section carries placement,
        halo, certificate-store, rebalance and resilience accounting
        (plus the front-door ``admission_tier`` when configured).
        """
        per_device = [d.engine.stats() for d in self.devices]

        def summed(section: str) -> Dict[str, Any]:
            agg: Dict[str, Any] = {}
            for dstats in per_device:
                for k, v in dstats[section].items():
                    if isinstance(v, bool) or not isinstance(
                            v, (int, float)):
                        agg.setdefault(k, v)
                    else:
                        agg[k] = agg.get(k, 0) + v
            return agg

        batching = summed("batching")
        batching["histogram"] = {}
        for dstats in per_device:
            for k, v in dstats["batching"]["histogram"].items():
                batching["histogram"][k] = (
                    batching["histogram"].get(k, 0) + v)
        batching["histogram"] = dict(sorted(batching["histogram"].items()))
        cache = summed("cache")
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        cache["hit_rate"] = cache.get("hits", 0) / lookups if lookups else 0.0
        return {
            "clock_s": self.now,
            "admission": summed("admission"),
            "batching": batching,
            "cache": cache,
            "cluster": {
                "num_devices": self.num_devices,
                "alive": list(self.router.alive),
                "router": self.router.to_dict(),
                "placements": len(self._placements),
                "replicas": self.replicas,
                "split_dispatches": self.split_dispatches,
                "split_declines": self.split_declines,
                "halo": self.halo.to_dict(),
                "cert_store": self.cert_store.to_dict(),
                "rebalances": self.rebalances,
                "resilience": self.resilience_stats.to_dict(),
                "admission_tier": (
                    None if self.front_door is None
                    else self.front_door.to_dict()),
            },
            "devices": per_device,
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _event(name: str, **attrs) -> None:
        sess = _obs.ACTIVE
        if sess is not None:
            sess.record_event(name, category="cluster", **attrs)

"""Halo-exchange accounting for split serving.

Under row-block distribution every device owns the slice of ``x``
matching its ``y`` row block, so serving a split request only moves
the *rest* of each shard's certified halo interval — for diagonal
matrices a statically exact, narrow band.  :class:`HaloExchange`
derives the per-shard transfer sizes from the certificate's declared
``[halo_lo, halo_hi)`` intervals (never from runtime observation),
accounts them as ``cluster.halo_exchange`` obs events, and keeps
running totals for the cluster stats — so the bytes a trajectory
reports are exactly the bytes the certificate proves sufficient.

The simulation itself hands each device the full ``x`` (sub-plans use
absolute column addressing); the accounting models what a real
multi-device run would ship, which is why the tests check it against
the certificate's halo widths rather than against buffer sizes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs import recorder as _obs

__all__ = ["HaloExchange", "shard_halo_elements"]


def shard_halo_elements(spec) -> int:
    """Elements of ``x`` the shard's device must fetch remotely: the
    certified halo interval minus the part the device already owns
    (its own row block, row-distributed ``x``)."""
    own_lo = max(spec.halo_lo, spec.row_start)
    own_hi = min(spec.halo_hi, spec.row_end)
    return spec.halo_elements - max(0, own_hi - own_lo)


class HaloExchange:
    """Per-cluster running account of halo bytes moved."""

    def __init__(self, precision: str = "double"):
        self.precision = precision
        self.itemsize = 8 if precision == "double" else 4
        self.transfers = 0
        self.total_elements = 0
        self.total_bytes = 0
        #: pattern fingerprint -> cumulative bytes shipped for it
        self.per_pattern: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def plan_transfers(self, shard_plan) -> List[Tuple[int, int]]:
        """``(shard index, remote elements)`` for every non-empty
        shard of ``shard_plan``, straight from the certified halo
        intervals."""
        return [(spec.index, shard_halo_elements(spec))
                for spec in shard_plan.shards if spec.num_rows]

    def request_bytes(self, cert) -> int:
        """Bytes one request of this certified plan moves."""
        return sum(elems for _, elems in
                   self.plan_transfers(cert.shard_plan)) * self.itemsize

    def ship(self, cert, pattern: str) -> int:
        """Account one split request's halo movement; returns bytes.

        Every non-empty shard gets its own ``cluster.halo_exchange``
        obs event, so profiles show exactly which shard moved how much.
        """
        sess = _obs.ACTIVE
        shipped = 0
        for idx, elems in self.plan_transfers(cert.shard_plan):
            nbytes = elems * self.itemsize
            shipped += nbytes
            self.transfers += 1
            self.total_elements += elems
            if sess is not None:
                sess.record_event(
                    "cluster.halo_exchange", category="cluster",
                    pattern=pattern, shard=idx, elements=elems,
                    bytes=nbytes)
        self.total_bytes += shipped
        self.per_pattern[pattern] = (
            self.per_pattern.get(pattern, 0) + shipped)
        return shipped

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """The running totals as a JSON-safe dict (cluster stats)."""
        return {
            "precision": self.precision,
            "transfers": self.transfers,
            "total_elements": self.total_elements,
            "total_bytes": self.total_bytes,
        }

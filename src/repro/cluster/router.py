"""Consistent-hash placement of matrices onto simulated devices.

The router owns the *where* of cluster serving: every matrix pattern
hashes onto a ring of virtual nodes, the first virtual node at or
after the pattern's point names the home device, and the next distinct
devices along the ring host the shards of a split matrix.  Consistent
hashing is what makes device loss cheap — removing a device deletes
only its own virtual nodes, so exactly the patterns it hosted move and
every other placement is untouched (the rebalancing invariant
``tests/cluster/test_router.py`` pins).

Everything is derived from SHA-256 over stable strings, so placement
is deterministic across processes and platforms — a requirement for
the byte-reproducible ``BENCH_cluster.json`` trajectories.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

__all__ = ["ClusterRouter"]


def _point(label: str) -> int:
    """The ring position of ``label`` (64-bit slice of SHA-256)."""
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big")


class ClusterRouter:
    """A consistent-hash ring over the cluster's live devices.

    Parameters
    ----------
    num_devices:
        Devices ``0 .. num_devices-1``, all initially alive.
    vnodes:
        Virtual nodes per device.  More virtual nodes flatten the load
        split at the cost of a larger ring; 64 keeps the per-device
        share within a few percent of even for the suite's pattern
        counts.
    """

    def __init__(self, num_devices: int, vnodes: int = 64):
        if num_devices < 1:
            raise ValueError(
                f"num_devices must be >= 1, got {num_devices}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._alive = set(range(int(num_devices)))
        self._build_ring()

    # ------------------------------------------------------------------
    @property
    def alive(self) -> Tuple[int, ...]:
        """Live device indices, ascending."""
        return tuple(sorted(self._alive))

    @property
    def num_alive(self) -> int:
        return len(self._alive)

    def _build_ring(self) -> None:
        ring: List[Tuple[int, int]] = []
        for dev in sorted(self._alive):
            for v in range(self.vnodes):
                ring.append((_point(f"device{dev}/vnode{v}"), dev))
        ring.sort()
        self._ring = ring
        self._points = [p for p, _ in ring]

    # ------------------------------------------------------------------
    def place(self, key: str) -> int:
        """The home device of ``key`` (a pattern fingerprint)."""
        if not self._ring:
            raise RuntimeError("no live devices left to place on")
        i = bisect.bisect_right(self._points, _point("key:" + key))
        return self._ring[i % len(self._ring)][1]

    def successors(self, key: str, count: int) -> Tuple[int, ...]:
        """``count`` distinct devices for ``key``, walking the ring
        from its home (the home device is always first)."""
        if not self._ring:
            raise RuntimeError("no live devices left to place on")
        count = min(int(count), len(self._alive))
        start = bisect.bisect_right(self._points, _point("key:" + key))
        picked: List[int] = []
        seen = set()
        for step in range(len(self._ring)):
            dev = self._ring[(start + step) % len(self._ring)][1]
            if dev not in seen:
                seen.add(dev)
                picked.append(dev)
                if len(picked) == count:
                    break
        return tuple(picked)

    def remove(self, device: int) -> None:
        """Take ``device`` off the ring (device loss).  Only keys it
        hosted re-place; everything else keeps its home."""
        if device not in self._alive:
            raise ValueError(f"device {device} is not alive")
        if len(self._alive) == 1:
            raise RuntimeError(
                "cannot remove the last live device of the cluster")
        self._alive.discard(device)
        self._build_ring()

    def add(self, device: int) -> None:
        """Put ``device`` (back) on the ring (device addition or
        rejoin).  Its virtual nodes reclaim exactly the arcs they owned
        before, so only ring-adjacent keys move back — the same
        incremental invariant as :meth:`remove`, in reverse."""
        device = int(device)
        if device < 0:
            raise ValueError(f"device index must be >= 0, got {device}")
        if device in self._alive:
            raise ValueError(f"device {device} is already alive")
        self._alive.add(device)
        self._build_ring()

    # ------------------------------------------------------------------
    def table(self, keys) -> Dict[str, int]:
        """Current ``key -> home device`` mapping for ``keys``."""
        return {k: self.place(k) for k in keys}

    def to_dict(self) -> Dict[str, object]:
        """Ring shape and liveness as a JSON-safe dict (cluster stats)."""
        return {
            "alive": list(self.alive),
            "vnodes": self.vnodes,
            "ring_size": len(self._ring),
        }

"""Sharded multi-device serving on certified shard plans.

The cluster layer stacks on :mod:`repro.serve`: ``N`` simulated
devices (each a ServeEngine + PlanCache + clock), a consistent-hash
:class:`~repro.cluster.router.ClusterRouter` placing matrices by
pattern fingerprint, certified row-block splits with
:class:`~repro.cluster.halo.HaloExchange` byte accounting, and a
resilience layer (:mod:`repro.cluster.resilience`): replicated
placement, verified failover with hedged retries, a cluster-wide
admission front door, and rebalancing on simulated device loss,
straggling and rejoin.  See ``docs/SERVING.md`` and
``docs/RESILIENCE.md`` for the semantics and
:class:`~repro.cluster.engine.ClusterEngine` for the entry point (or
``repro.serve_session(cluster=N)`` for the facade).
"""

from repro.cluster.engine import (
    ClusterEngine,
    ClusterEvent,
    DeviceLoss,
    SimDevice,
)
from repro.cluster.halo import HaloExchange, shard_halo_elements
from repro.cluster.resilience import (
    ClusterError,
    HedgePolicy,
    ResilienceStats,
)
from repro.cluster.router import ClusterRouter

__all__ = [
    "ClusterEngine",
    "ClusterError",
    "ClusterEvent",
    "ClusterRouter",
    "DeviceLoss",
    "HaloExchange",
    "HedgePolicy",
    "ResilienceStats",
    "SimDevice",
    "shard_halo_elements",
]

"""Sharded multi-device serving on certified shard plans.

The cluster layer stacks on :mod:`repro.serve`: ``N`` simulated
devices (each a ServeEngine + PlanCache + clock), a consistent-hash
:class:`~repro.cluster.router.ClusterRouter` placing matrices by
pattern fingerprint, certified row-block splits with
:class:`~repro.cluster.halo.HaloExchange` byte accounting, and
rebalancing on simulated device loss.  See ``docs/SERVING.md`` for the
semantics and :class:`~repro.cluster.engine.ClusterEngine` for the
entry point (or ``repro.serve_session(cluster=N)`` for the facade).
"""

from repro.cluster.engine import ClusterEngine, DeviceLoss, SimDevice
from repro.cluster.halo import HaloExchange, shard_halo_elements
from repro.cluster.router import ClusterRouter

__all__ = [
    "ClusterEngine",
    "ClusterRouter",
    "DeviceLoss",
    "HaloExchange",
    "SimDevice",
    "shard_halo_elements",
]

"""Cluster resilience: replicas, verified failover, hedged retries.

This module holds the *policy and bookkeeping* of the cluster's
resilience layer; the mechanics live in
:class:`~repro.cluster.engine.ClusterEngine`:

- **Replicated placement** — every unsplit pattern gets ``replicas``
  distinct devices from the router's
  :meth:`~repro.cluster.router.ClusterRouter.successors` walk (the home
  device is always first).  Value-updates fan out to every replica's
  plan cache, and reads load-balance deterministically
  (``request id mod live replicas``), so two identical runs place every
  request identically.

- **Verified failover** — a request stranded on a dead device is
  re-dispatched to a surviving replica with deterministic backoff
  *accounting* (:meth:`~repro.resilience.policy.Policy.backoff_s`,
  never slept — the same philosophy as the single-device ladder), and
  its reported latency keeps the *original* arrival, so failover cost
  is visible in the percentiles.

- **Hedged retries** — a request whose primary replica is dead slow
  (``slow_threshold``), overloaded past a deadline-derived or absolute
  timeout, or backed up past ``queue_depth`` outstanding dispatches is
  *hedged*: a duplicate is sent to the next replicas after
  deterministic backoff, first completion wins, losers still queued are
  cancelled, and losers that did execute are digest-compared against
  the winner — a hedge can never serve a divergent ``y`` silently
  (``hedge_divergences`` must stay 0, and the chaos gate asserts it).
  Hedge copies per request are bounded by
  ``backoff.max_attempts - 1``, so total attempts never exceed the
  policy's attempts.

Every decision is a pure function of simulated state, so chaos runs
remain byte-reproducible per seed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.resilience.policy import Policy

__all__ = [
    "ClusterError",
    "HedgePolicy",
    "ResilienceStats",
]


class ClusterError(ValueError):
    """A cluster-topology operation was invalid (unknown device index,
    failing an already-dead device, rejoining a live one).  Raised
    *before* any router or placement state is touched, so a bad call
    can never leave the ring half-updated."""


@dataclass(frozen=True)
class HedgePolicy:
    """When and how the cluster hedges a request to a replica.

    Parameters
    ----------
    timeout_s:
        Hedge when the primary's device is already busy past this many
        simulated seconds beyond the request's arrival (``None``
        disables the absolute-timeout trigger).
    deadline_fraction:
        Hedge when the primary's busy backlog exceeds this fraction of
        the request's relative deadline — the *deadline-derived
        timeout* (``None`` disables; requests without deadlines are
        unaffected).
    queue_depth:
        Hedge when the primary already has at least this many
        outstanding cluster dispatches (``None`` disables).  This is
        the trigger that fires inside a single dispatch epoch, where
        device clocks have not advanced yet.
    slow_threshold:
        Hedge when the primary's straggler multiplier
        (``device_slow`` chaos fault) is at or above this factor.
    backoff:
        The :class:`~repro.resilience.policy.Policy` whose
        :meth:`~repro.resilience.policy.Policy.backoff_s` prices each
        hedge copy (copy ``k`` arrives ``backoff_s(k)`` after the
        primary dispatch) and whose ``max_attempts`` bounds the total
        attempts per request (primary + hedges).
    """

    timeout_s: Optional[float] = None
    deadline_fraction: Optional[float] = 0.5
    queue_depth: Optional[int] = 8
    slow_threshold: float = 2.0
    backoff: Policy = Policy(max_attempts=2)

    def __post_init__(self):
        if self.timeout_s is not None and self.timeout_s < 0:
            raise ValueError(
                f"timeout_s must be >= 0, got {self.timeout_s}")
        if (self.deadline_fraction is not None
                and not 0.0 < self.deadline_fraction <= 1.0):
            raise ValueError(
                f"deadline_fraction must be in (0, 1], got "
                f"{self.deadline_fraction}")
        if self.queue_depth is not None and self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.slow_threshold < 1.0:
            raise ValueError(
                f"slow_threshold must be >= 1, got {self.slow_threshold}")

    @property
    def max_hedges(self) -> int:
        """Most hedge copies one request may fan out (attempts - 1)."""
        return self.backoff.max_attempts - 1


@dataclass
class ResilienceStats:
    """The cluster's resilience counters (JSON-safe via
    :meth:`to_dict`).  Every counter reconciles exactly with the obs
    events of the same name: ``failovers`` with ``cluster.failover``,
    ``hedges`` with ``cluster.hedge`` — the tests pin that."""

    #: requests re-dispatched off a dead device onto a survivor
    failovers: int = 0
    #: deterministic backoff charged to failover re-dispatches
    failover_backoff_s: float = 0.0
    #: hedge copies fanned out
    hedges: int = 0
    #: deterministic backoff charged to hedge copies
    hedge_backoff_s: float = 0.0
    #: hedged requests won by a hedge copy (not the primary)
    hedge_wins: int = 0
    #: losing copies cancelled while still queued
    hedge_cancelled: int = 0
    #: losing copies that had already executed (wasted launches)
    hedge_wasted: int = 0
    #: completed loser copies digest-verified equal to the winner
    hedge_verified: int = 0
    #: completed loser copies that *diverged* from the winner — must
    #: stay 0; the chaos gate fails the run otherwise
    hedge_divergences: int = 0
    #: value-update fan-outs to replica caches
    value_fanouts: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe counters plus the derived total backoff charge."""
        return {
            "failovers": self.failovers,
            "failover_backoff_s": self.failover_backoff_s,
            "hedges": self.hedges,
            "hedge_backoff_s": self.hedge_backoff_s,
            "hedge_wins": self.hedge_wins,
            "hedge_cancelled": self.hedge_cancelled,
            "hedge_wasted": self.hedge_wasted,
            "hedge_verified": self.hedge_verified,
            "hedge_divergences": self.hedge_divergences,
            "value_fanouts": self.value_fanouts,
            "total_backoff_s": (self.failover_backoff_s
                                + self.hedge_backoff_s),
        }


@dataclass
class _HedgeCopy:
    """One dispatched copy (primary or hedge) of a hedged request."""

    device: int
    device_rid: int
    attempt: int  # 0 = primary, k >= 1 = hedge copy k


@dataclass
class _HedgeGroup:
    """One hedged request awaiting its first completion.

    Carries enough context (matrix, x, deadline) to re-dispatch the
    whole request if every copy is lost to device failures.
    """

    rid: int
    fps: Any
    matrix: Any
    x: np.ndarray
    arrival_s: float
    deadline_rel: Optional[float]
    copies: List[_HedgeCopy] = field(default_factory=list)
    #: (finish_s, device, attempt, result) of completed copies
    completed: List[Tuple[float, int, int, Any]] = field(
        default_factory=list)

    def copy_for(self, device: int, device_rid: int
                 ) -> Optional[_HedgeCopy]:
        for c in self.copies:
            if c.device == device and c.device_rid == device_rid:
                return c
        return None

    def outstanding(self) -> List[_HedgeCopy]:
        """Copies neither completed nor removed yet."""
        done = {(d, a) for _, d, a, _ in self.completed}
        return [c for c in self.copies if (c.device, c.attempt) not in done]


def result_digest(result) -> Optional[bytes]:
    """The bit-exact digest of a served result's ``y`` (whichever of
    the payload or the precomputed digest survives the engine's
    ``keep_y`` mode), or ``None`` when neither is available."""
    if result.y_digest is not None:
        return result.y_digest
    if result.y is not None:
        return hashlib.sha256(
            np.ascontiguousarray(result.y).tobytes()).digest()
    return None

"""Errors raised by the simulated OpenCL runtime."""


class OCLError(RuntimeError):
    """Base class for simulated-runtime errors."""


class DeviceMemoryError(OCLError):
    """Global-memory allocation exceeded device capacity.

    This reproduces the paper's observation that DIA in double
    precision does not fit the C2050's 3 GB for the af_*_k101 matrices
    (their Fig. 7 bars are missing)."""


class LocalMemoryError(OCLError):
    """A work-group requested more local memory than one CU provides."""


class LaunchError(OCLError):
    """Malformed NDRange / kernel launch."""

"""Simulated device memory objects.

:class:`Buffer` is a global-memory allocation (capacity-checked by the
:class:`~repro.ocl.executor.Context`); :class:`LocalBuffer` is a
work-group-local scratch allocation (capacity-checked against the CU's
local memory).  Kernels never index these directly — all access goes
through the :class:`~repro.ocl.executor.WorkGroupCtx` so that every
load/store is traced.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from typing import Tuple

import numpy as np


class MemSpace(enum.Enum):
    """OpenCL memory spaces (Section III-A)."""

    GLOBAL = "global"
    CONSTANT = "constant"
    LOCAL = "local"
    PRIVATE = "private"


class Buffer:
    """A global-memory allocation holding a 1-D typed array.

    Create through :meth:`repro.ocl.executor.Context.alloc` (which
    enforces the device capacity); direct construction is allowed in
    tests.
    """

    space = MemSpace.GLOBAL

    def __init__(self, data: np.ndarray, name: str = "buf"):
        data = np.asarray(data)
        if data.ndim != 1:
            data = np.ascontiguousarray(data).ravel()
        self.data = data
        self.name = name

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def itemsize(self) -> int:
        return int(self.data.dtype.itemsize)

    def __len__(self) -> int:
        return int(self.data.size)

    def to_host(self) -> np.ndarray:
        """Copy back to the host (returns the underlying array)."""
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Buffer {self.name!r} {self.data.dtype} x {self.data.size}>"


class LocalBuffer:
    """A local-memory (shared) allocation, private to one work-group."""

    space = MemSpace.LOCAL

    def __init__(self, size: int, dtype=np.float64, name: str = "lmem"):
        self.data = np.zeros(int(size), dtype=dtype)
        self.name = name

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def itemsize(self) -> int:
        return int(self.data.dtype.itemsize)

    def __len__(self) -> int:
        return int(self.data.size)


class BatchedLocalBuffer:
    """The local-memory allocations of *every* work-group of a batched
    launch, stored as one ``(num_groups, size)`` array.

    Row ``g`` is what work-group ``g``'s :class:`LocalBuffer` would
    hold under per-group execution: local memory is private to a
    work-group, so a batched launch simply carries all the private
    copies side by side.  Capacity is still checked per group (each
    copy must fit one CU's local memory).
    """

    space = MemSpace.LOCAL

    def __init__(self, num_groups: int, size: int, dtype=np.float64,
                 name: str = "lmem"):
        self.data = np.zeros((int(num_groups), int(size)), dtype=dtype)
        self.name = name

    @property
    def itemsize(self) -> int:
        return int(self.data.dtype.itemsize)

    @property
    def nbytes_per_group(self) -> int:
        """Bytes one work-group's copy occupies (the capacity unit)."""
        return int(self.data.shape[1]) * self.itemsize

    def __len__(self) -> int:
        return int(self.data.shape[1])


class SegmentCache:
    """Approximate LRU model of the device's unified L2 cache.

    Keys are ``(buffer id, segment)``; a global load whose segment is
    resident costs no DRAM transaction.  Shared by all work-groups of a
    launch sequence (the L2 is device-wide); stores allocate lines
    (write-allocate) but their DRAM write is still charged.
    """

    def __init__(self, capacity_bytes: int, transaction_bytes: int):
        self.capacity = max(1, capacity_bytes // transaction_bytes)
        self._lines: "OrderedDict[Tuple[int, int], None]" = OrderedDict()

    def access(self, buf_id: int, segments: np.ndarray) -> int:
        """Touch ``segments``; returns the number of *misses*."""
        misses = 0
        lines = self._lines
        for seg in segments.tolist():
            key = (buf_id, seg)
            if key in lines:
                lines.move_to_end(key)
            else:
                misses += 1
                lines[key] = None
                if len(lines) > self.capacity:
                    lines.popitem(last=False)
        return misses


def wavefront_transactions(
    indices: np.ndarray,
    itemsize: int,
    wavefront_size: int,
    transaction_bytes: int,
    mask: np.ndarray | None = None,
) -> Tuple[int, int, int]:
    """Count memory traffic of one vectorised access.

    Splits ``indices`` (element indices into one buffer, one per active
    lane, in lane order) into wavefronts and counts, per wavefront, the
    distinct ``transaction_bytes``-sized segments touched — the
    coalescing rule of Fermi-class GPUs.

    Returns ``(requests, transactions, useful_bytes)``.
    """
    requests, segments, useful = wavefront_segments(
        indices, itemsize, wavefront_size, transaction_bytes, mask
    )
    return requests, int(segments.size), useful


def wavefront_segments(
    indices: np.ndarray,
    itemsize: int,
    wavefront_size: int,
    transaction_bytes: int,
    mask: np.ndarray | None = None,
) -> Tuple[int, np.ndarray, int]:
    """Like :func:`wavefront_transactions` but returns the issued
    transactions' *segment ids* (one entry per transaction, so the
    L2 model can filter them into hits and misses)."""
    idx = np.asarray(indices, dtype=np.int64).ravel()
    if mask is not None:
        mask = np.asarray(mask, dtype=bool).ravel()
        if mask.shape != idx.shape:
            raise ValueError("mask must match indices shape")
    n = idx.size
    if n == 0:
        return 0, np.empty(0, dtype=np.int64), 0
    nwf = -(-n // wavefront_size)
    pad = nwf * wavefront_size - n
    seg = idx * itemsize // transaction_bytes
    if pad:
        seg = np.concatenate([seg, np.full(pad, -1, dtype=np.int64)])
        if mask is not None:
            mask = np.concatenate([mask, np.zeros(pad, dtype=bool)])
    seg = seg.reshape(nwf, wavefront_size)
    if mask is None:
        active = np.ones(seg.shape, dtype=bool)
        active[seg < 0] = False
    else:
        active = mask.reshape(nwf, wavefront_size)
    # inactive lanes: substitute a sentinel distinct from all real
    # segments so they never add transactions
    seg = np.where(active, seg, np.int64(-1))
    seg_sorted = np.sort(seg, axis=1)
    newseg = np.ones(seg_sorted.shape, dtype=bool)
    newseg[:, 1:] = seg_sorted[:, 1:] != seg_sorted[:, :-1]
    newseg &= seg_sorted >= 0
    segments = seg_sorted[newseg]
    rows_active = active.any(axis=1)
    requests = int(rows_active.sum())
    useful = int(active.sum()) * itemsize
    return requests, segments, useful

"""Device specifications for the simulated OpenCL platform.

The numbers for the Tesla C2050 come from the paper's platform table
(Table IV: 448 CUDA cores at 1.15 GHz, 3 GB device memory) and the
published datasheet (144 GB/s memory bandwidth, 515 / 1030 GFLOPS
double/single peak, 48 KB shared memory per SM, 128-byte memory
transactions).  The performance model treats these as calibration
constants — see ``repro/perf/calibration.py`` for the derived
efficiency factors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of an OpenCL device.

    Attributes
    ----------
    name:
        Marketing name.
    num_cus:
        Compute units (CUDA streaming multiprocessors).
    pes_per_cu:
        Processing elements per CU (CUDA cores per SM).
    wavefront_size:
        Work-items executing in lockstep (CUDA warp = 32).
    clock_ghz:
        PE clock.
    global_mem_bytes:
        Device (global) memory capacity — allocations beyond this raise
        :class:`~repro.ocl.errors.DeviceMemoryError`.
    global_bw_gbs:
        Peak global-memory bandwidth in GB/s.
    local_mem_per_cu_bytes:
        Local (shared) memory available to one work-group.
    local_bw_multiplier:
        Local-memory bandwidth relative to global (an order of
        magnitude on Fermi).
    peak_gflops_sp / peak_gflops_dp:
        Peak arithmetic throughput per precision.
    transaction_bytes:
        Size of one global-memory transaction; a wavefront load
        touching N distinct transaction-sized segments issues N
        transactions (this is what "coalescing" measures).
    global_latency_cycles:
        Latency of one global transaction, used for the latency-bound
        term on very small launches.
    barrier_cost_cycles:
        Cost of one work-group barrier.
    kernel_launch_us:
        Fixed host-side launch overhead per kernel.
    """

    name: str
    num_cus: int
    pes_per_cu: int
    wavefront_size: int
    clock_ghz: float
    global_mem_bytes: int
    global_bw_gbs: float
    local_mem_per_cu_bytes: int
    local_bw_multiplier: float
    peak_gflops_sp: float
    peak_gflops_dp: float
    transaction_bytes: int = 128
    global_latency_cycles: int = 400
    barrier_cost_cycles: int = 40
    kernel_launch_us: float = 7.0
    #: unified L2 cache (bytes); global loads hitting a resident line
    #: cost no DRAM transaction (Fermi: 768 KB)
    l2_bytes: int = 768 * 1024

    @property
    def num_pes(self) -> int:
        return self.num_cus * self.pes_per_cu

    def peak_gflops(self, precision: str) -> float:
        """Peak arithmetic throughput for "double"/"single"."""
        p = precision.lower()
        if p in ("double", "fp64"):
            return self.peak_gflops_dp
        if p in ("single", "fp32"):
            return self.peak_gflops_sp
        raise ValueError(f"unknown precision {precision!r}")

    def with_overrides(self, **kwargs) -> "DeviceSpec":
        """A copy with some fields replaced (used by ablations)."""
        return replace(self, **kwargs)


#: The paper's GPU (Table IV + NVIDIA datasheet).
TESLA_C2050 = DeviceSpec(
    name="Tesla C2050",
    num_cus=14,
    pes_per_cu=32,
    wavefront_size=32,
    clock_ghz=1.15,
    global_mem_bytes=3 * 1024**3,
    global_bw_gbs=144.0,
    local_mem_per_cu_bytes=48 * 1024,
    local_bw_multiplier=10.0,
    peak_gflops_sp=1030.0,
    peak_gflops_dp=515.0,
)

#: AMD Radeon HD 5870 "Cypress" — the OpenCL portability target the
#: paper's conclusion names ("we will do more evaluations on different
#: platforms, such as Cell and AMD devices").  64-wide wavefronts, no
#: general read/write cache for global buffers in this generation
#: (l2_bytes=0), 32 KB LDS per CU.
AMD_CYPRESS = DeviceSpec(
    name="Radeon HD 5870 (Cypress)",
    num_cus=20,
    pes_per_cu=80,
    wavefront_size=64,
    clock_ghz=0.85,
    global_mem_bytes=1 * 1024**3,
    global_bw_gbs=153.6,
    local_mem_per_cu_bytes=32 * 1024,
    local_bw_multiplier=8.0,
    peak_gflops_sp=2720.0,
    peak_gflops_dp=544.0,
    transaction_bytes=256,
    global_latency_cycles=500,
    l2_bytes=0,
)

#: NVIDIA GTX 285 — Bell & Garland's 2009 evaluation GPU (GT200: no
#: general-purpose cache, 16 KB shared memory per SM).
GTX_285 = DeviceSpec(
    name="GeForce GTX 285",
    num_cus=30,
    pes_per_cu=8,
    wavefront_size=32,
    clock_ghz=1.476,
    global_mem_bytes=1 * 1024**3,
    global_bw_gbs=159.0,
    local_mem_per_cu_bytes=16 * 1024,
    local_bw_multiplier=10.0,
    peak_gflops_sp=1063.0,
    peak_gflops_dp=89.0,
    transaction_bytes=64,
    global_latency_cycles=550,
    l2_bytes=0,
)

#: all predefined devices by short name
DEVICES = {
    "c2050": TESLA_C2050,
    "cypress": AMD_CYPRESS,
    "gtx285": GTX_285,
}

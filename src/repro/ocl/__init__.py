"""Simulated OpenCL platform, device and runtime.

The paper runs on a Tesla C2050 through OpenCL; this environment has no
GPU, so — per the substitution policy in DESIGN.md — we implement a
functional + instrumented model of the OpenCL execution model
(Section III-A):

- a **device** is a collection of compute units (CUs) of processing
  elements (PEs), executing work-groups of work-items in lockstep
  **wavefronts**;
- four memory spaces (global / constant / local / private), with
  global-memory traffic issued in fixed-size *transactions* so that
  **coalescing** is an observable, measured quantity;
- **barriers** synchronise a work-group; **divergence** (work-items of
  one wavefront taking different paths) serialises execution and is
  likewise measured.

Kernels are Python callables written *vectorised over the work-group*
(``local_id`` is an array); they are functionally executed so results
are bit-checked against the reference SpMV, while every buffer access
is recorded into a :class:`~repro.ocl.trace.KernelTrace` that the
performance model (:mod:`repro.perf`) converts into time.
"""

from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.errors import DeviceMemoryError, LocalMemoryError, LaunchError
from repro.ocl.memory import Buffer, LocalBuffer, MemSpace
from repro.ocl.trace import KernelTrace
from repro.ocl.executor import Context, WorkGroupCtx, launch

__all__ = [
    "DeviceSpec",
    "TESLA_C2050",
    "DeviceMemoryError",
    "LocalMemoryError",
    "LaunchError",
    "Buffer",
    "LocalBuffer",
    "MemSpace",
    "KernelTrace",
    "Context",
    "WorkGroupCtx",
    "launch",
]

"""Kernel execution on the simulated device.

A kernel is a Python callable ``kernel(ctx, *buffers)`` written
*vectorised over one work-group*: ``ctx.lid`` is the array of local
work-item ids and every load/store moves one value per (active) lane.
:func:`launch` runs the kernel for every work-group sequentially (the
simulation is functional — scheduling order cannot change results
because work-groups are independent, as in OpenCL) and aggregates a
:class:`~repro.ocl.trace.KernelTrace`.

Divergence accounting: lockstep lanes that idle while their wavefront
executes (branchy code, variable loop trip counts) waste issue slots.
Kernels report per-lane trip counts via :meth:`WorkGroupCtx.loop_trips`;
uniform kernels (the CRSD design point — "all work-items take the same
execution path") simply never report, scoring efficiency 1.0.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.errors import DeviceMemoryError, LaunchError, LocalMemoryError
from repro.ocl.memory import (
    Buffer,
    LocalBuffer,
    SegmentCache,
    wavefront_segments,
    wavefront_transactions,
)
from repro.ocl.trace import KernelTrace


class Context:
    """A device context: owns global-memory allocations.

    Mirrors ``clCreateContext`` + ``clCreateBuffer``: every allocation
    is charged against the device's global memory and
    :class:`~repro.ocl.errors.DeviceMemoryError` is raised on
    exhaustion (the paper's DIA/double out-of-memory case).
    """

    def __init__(self, device: DeviceSpec = TESLA_C2050):
        self.device = device
        self.allocated_bytes = 0
        self._buffers: list[Buffer] = []

    def alloc(self, data: np.ndarray, name: str = "buf") -> Buffer:
        """Allocate a buffer initialised from host data."""
        buf = Buffer(np.array(data, copy=True), name=name)
        if self.allocated_bytes + buf.nbytes > self.device.global_mem_bytes:
            raise DeviceMemoryError(
                f"allocating {buf.nbytes:,} B for {name!r} exceeds device memory "
                f"({self.allocated_bytes:,} B already allocated, capacity "
                f"{self.device.global_mem_bytes:,} B)"
            )
        self.allocated_bytes += buf.nbytes
        self._buffers.append(buf)
        return buf

    def alloc_zeros(self, n: int, dtype=np.float64, name: str = "buf") -> Buffer:
        """Allocate a zero-initialised buffer of ``n`` elements."""
        return self.alloc(np.zeros(int(n), dtype=dtype), name=name)

    def free(self, buf: Buffer) -> None:
        """Release one buffer's capacity accounting."""
        if buf in self._buffers:
            self._buffers.remove(buf)
            self.allocated_bytes -= buf.nbytes

    def free_all(self) -> None:
        """Release every allocation (``clReleaseMemObject`` for all)."""
        self._buffers.clear()
        self.allocated_bytes = 0


class WorkGroupCtx:
    """Execution context handed to a kernel for one work-group."""

    def __init__(self, device: DeviceSpec, group_id: int, local_size: int,
                 trace: Optional[KernelTrace],
                 cache: Optional[SegmentCache] = None):
        self.device = device
        self.group_id = int(group_id)
        self.local_size = int(local_size)
        #: local work-item ids, shape (local_size,)
        self.lid = np.arange(local_size, dtype=np.int64)
        self._trace = trace
        self._cache = cache
        self._local_bytes = 0

    # ------------------------------------------------------------------
    # global memory
    # ------------------------------------------------------------------
    def gload(self, buf: Buffer, idx: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """One global load per (active) lane; returns lane values.

        ``idx`` may point anywhere in the buffer; masked-off lanes
        return 0 and generate no traffic.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if self._trace is not None:
            req, segments, useful = wavefront_segments(
                idx, buf.itemsize, self.device.wavefront_size,
                self.device.transaction_bytes, mask,
            )
            if self._cache is not None:
                txn = self._cache.access(id(buf), segments)
                self._trace.l2_hits += segments.size - txn
            else:
                txn = int(segments.size)
            self._trace.global_load_requests += req
            self._trace.global_load_transactions += txn
            self._trace.global_load_bytes_useful += useful
        if mask is None:
            return buf.data[idx]
        out = np.zeros(idx.shape, dtype=buf.data.dtype)
        out[mask] = buf.data[idx[mask]]
        return out

    def gstore(self, buf: Buffer, idx: np.ndarray, values: np.ndarray,
               mask: np.ndarray | None = None) -> None:
        """One global store per (active) lane."""
        idx = np.asarray(idx, dtype=np.int64)
        if self._trace is not None:
            req, segments, useful = wavefront_segments(
                idx, buf.itemsize, self.device.wavefront_size,
                self.device.transaction_bytes, mask,
            )
            if self._cache is not None:
                # write-allocate: lines become resident, but the DRAM
                # write-back is still charged in full
                self._cache.access(id(buf), segments)
            self._trace.global_store_requests += req
            self._trace.global_store_transactions += int(segments.size)
            self._trace.global_store_bytes_useful += useful
        if mask is None:
            buf.data[idx] = values
        else:
            buf.data[idx[mask]] = np.broadcast_to(values, idx.shape)[mask]

    def gatomic_add(self, buf: Buffer, idx: np.ndarray, values: np.ndarray) -> None:
        """Atomic global add (used by the COO tail kernel)."""
        idx = np.asarray(idx, dtype=np.int64)
        if self._trace is not None:
            # an atomic is a read-modify-write: count both directions
            req, txn, useful = wavefront_transactions(
                idx, buf.itemsize, self.device.wavefront_size,
                self.device.transaction_bytes, None,
            )
            self._trace.global_load_requests += req
            self._trace.global_load_transactions += txn
            self._trace.global_load_bytes_useful += useful
            self._trace.global_store_requests += req
            self._trace.global_store_transactions += txn
            self._trace.global_store_bytes_useful += useful
        np.add.at(buf.data, idx, values)

    # ------------------------------------------------------------------
    # local memory
    # ------------------------------------------------------------------
    def alloc_local(self, size: int, dtype=np.float64, name: str = "lmem") -> LocalBuffer:
        """Allocate work-group local memory (capacity-checked per CU)."""
        lbuf = LocalBuffer(size, dtype, name)
        self._local_bytes += lbuf.nbytes
        if self._local_bytes > self.device.local_mem_per_cu_bytes:
            raise LocalMemoryError(
                f"work-group requested {self._local_bytes:,} B local memory; "
                f"CU provides {self.device.local_mem_per_cu_bytes:,} B"
            )
        return lbuf

    def lload(self, lbuf: LocalBuffer, idx: np.ndarray,
              mask: np.ndarray | None = None) -> np.ndarray:
        """One local-memory load per (active) lane."""
        idx = np.asarray(idx, dtype=np.int64)
        if self._trace is not None:
            active = idx.size if mask is None else int(np.count_nonzero(mask))
            self._trace.local_load_bytes += active * lbuf.itemsize
        if mask is None:
            return lbuf.data[idx]
        out = np.zeros(idx.shape, dtype=lbuf.data.dtype)
        out[mask] = lbuf.data[idx[mask]]
        return out

    def lstore(self, lbuf: LocalBuffer, idx: np.ndarray, values: np.ndarray,
               mask: np.ndarray | None = None) -> None:
        """One local-memory store per (active) lane."""
        idx = np.asarray(idx, dtype=np.int64)
        if self._trace is not None:
            active = idx.size if mask is None else int(np.count_nonzero(mask))
            self._trace.local_store_bytes += active * lbuf.itemsize
        if mask is None:
            lbuf.data[idx] = values
        else:
            lbuf.data[idx[mask]] = np.broadcast_to(values, idx.shape)[mask]

    # ------------------------------------------------------------------
    # control / accounting
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """``barrier(CLK_LOCAL_MEM_FENCE)`` — synchronise the group."""
        if self._trace is not None:
            self._trace.barriers += 1

    def flops(self, n: int) -> None:
        """Report ``n`` floating-point operations performed."""
        if self._trace is not None:
            self._trace.flops += int(n)

    def loop_trips(self, trips: np.ndarray) -> None:
        """Report per-lane loop trip counts for divergence accounting.

        Lanes of one wavefront execute in lockstep, so the wavefront
        issues ``max(trips)`` iterations while only ``sum(trips)`` are
        useful.
        """
        if self._trace is None:
            return
        trips = np.asarray(trips, dtype=np.int64).ravel()
        w = self.device.wavefront_size
        nwf = -(-trips.size // w)
        pad = nwf * w - trips.size
        if pad:
            trips = np.concatenate([trips, np.zeros(pad, dtype=np.int64)])
        per_wf = trips.reshape(nwf, w)
        self._trace.lanes_issued += int(per_wf.max(axis=1).sum()) * w
        self._trace.lanes_useful += int(per_wf.sum())


def launch(
    kernel: Callable,
    num_groups: int,
    local_size: int,
    args: Sequence,
    device: DeviceSpec = TESLA_C2050,
    trace: bool = True,
    cache: Optional[SegmentCache] = None,
) -> KernelTrace:
    """Run ``kernel`` over ``num_groups`` work-groups of ``local_size``.

    Returns the aggregated :class:`~repro.ocl.trace.KernelTrace`
    (zero-valued when tracing is off).  A fresh L2
    :class:`~repro.ocl.memory.SegmentCache` is created per launch
    unless one is passed in (pass the previous launch's cache to model
    back-to-back kernels sharing residency).
    """
    if num_groups < 0:
        raise LaunchError(f"num_groups must be >= 0, got {num_groups}")
    if local_size <= 0:
        raise LaunchError(f"local_size must be positive, got {local_size}")
    total = KernelTrace()
    total.work_groups = num_groups
    total.wavefronts = num_groups * (-(-local_size // device.wavefront_size))
    t = total if trace else None
    if trace and cache is None and device.l2_bytes > 0:
        cache = SegmentCache(device.l2_bytes, device.transaction_bytes)
    for gid in range(num_groups):
        ctx = WorkGroupCtx(device, gid, local_size, t, cache)
        kernel(ctx, *args)
    return total

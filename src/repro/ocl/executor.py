"""Kernel execution on the simulated device.

A kernel is a Python callable ``kernel(ctx, *buffers)`` written
*vectorised over one work-group*: ``ctx.lid`` is the array of local
work-item ids and every load/store moves one value per (active) lane.
:func:`launch` runs the kernel for every work-group sequentially (the
simulation is functional — scheduling order cannot change results
because work-groups are independent, as in OpenCL) and aggregates a
:class:`~repro.ocl.trace.KernelTrace`.

Two execution engines are provided:

- :func:`launch` — the per-group reference engine: one
  :class:`WorkGroupCtx` per work-group, executed sequentially.
- :func:`launch_batched` — the segment-batched engine: one
  :class:`BatchCtx` spanning *all* work-groups of a uniform code path,
  so a kernel runs as a handful of numpy calls over a
  ``(num_groups, local_size)`` lane grid instead of ``num_groups``
  Python-level iterations.  Results are bit-identical (the same
  elementwise IEEE operations run, merely batched) and, when tracing,
  the same counters are produced: per-wavefront coalescing is computed
  vectorised across all groups, and the L2 model is fed the identical
  per-group-ordered segment stream via a deferred replay.

:func:`executor_mode` selects the engine runners use (environment
variable ``REPRO_EXECUTOR``; the per-group path stays available as the
oracle behind ``REPRO_EXECUTOR=pergroup``).

Divergence accounting: lockstep lanes that idle while their wavefront
executes (branchy code, variable loop trip counts) waste issue slots.
Kernels report per-lane trip counts via :meth:`WorkGroupCtx.loop_trips`;
uniform kernels (the CRSD design point — "all work-items take the same
execution path") simply never report, scoring efficiency 1.0.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.errors import DeviceMemoryError, LaunchError, LocalMemoryError
from repro.ocl.memory import (
    BatchedLocalBuffer,
    Buffer,
    LocalBuffer,
    SegmentCache,
    wavefront_segments,
    wavefront_transactions,
)
from repro.ocl.trace import KernelTrace

# span recorder: every hook below guards on ``_obs.ACTIVE is None`` so
# the disabled path is one module-attribute read (no clock, no object)
from repro.obs import recorder as _obs

# fault injector: same contract — ``_flt.ACTIVE`` is ``None`` unless a
# test/chaos harness activated injection, and the hooks below do
# nothing else on the disabled path
from repro.resilience import faults as _flt

#: environment variable selecting the execution engine
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: recognised engine names
EXECUTOR_MODES = ("batched", "pergroup", "fused")


def executor_mode() -> str:
    """The selected execution engine, from the ``REPRO_EXECUTOR``
    environment variable:

    - ``"batched"`` (default) — each kernel as one vectorised
      invocation over the ``(num_groups, local_size)`` grid;
    - ``"pergroup"`` — the sequential per-work-group reference oracle;
    - ``"fused"`` — analyzer-certified whole-matrix execution
      (CRSD runners only; see :mod:`repro.gpu_kernels.fused`).
      Runners without a fused path treat it as ``"batched"``.
    """
    mode = os.environ.get(EXECUTOR_ENV, "batched").strip().lower()
    if mode not in EXECUTOR_MODES:
        raise LaunchError(
            f"{EXECUTOR_ENV}={mode!r} is not a known executor mode; "
            f"expected one of {EXECUTOR_MODES}"
        )
    return mode


def kernel_name(kernel: Callable) -> str:
    """A stable display name for a kernel callable (span labelling)."""
    return getattr(kernel, "__name__", None) or type(kernel).__name__


def make_launch_cache(device: DeviceSpec,
                      trace: bool) -> Optional[SegmentCache]:
    """An L2 cache for a *sequence* of launches (or ``None`` when the
    device has no L2 or tracing is off).  Pass it to every launch of
    one logical operation so back-to-back kernels share residency."""
    if trace and device.l2_bytes > 0:
        return SegmentCache(device.l2_bytes, device.transaction_bytes)
    return None


class Context:
    """A device context: owns global-memory allocations.

    Mirrors ``clCreateContext`` + ``clCreateBuffer``: every allocation
    is charged against the device's global memory and
    :class:`~repro.ocl.errors.DeviceMemoryError` is raised on
    exhaustion (the paper's DIA/double out-of-memory case).
    """

    def __init__(self, device: DeviceSpec = TESLA_C2050):
        self.device = device
        self.allocated_bytes = 0
        self._buffers: list[Buffer] = []

    def alloc(self, data: np.ndarray, name: str = "buf") -> Buffer:
        """Allocate a buffer initialised from host data."""
        buf = Buffer(np.array(data, copy=True), name=name)
        if _flt.ACTIVE is not None:
            _flt.ACTIVE.on_alloc(name, buf.nbytes)
        if self.allocated_bytes + buf.nbytes > self.device.global_mem_bytes:
            raise DeviceMemoryError(
                f"allocating {buf.nbytes:,} B for {name!r} exceeds device memory "
                f"({self.allocated_bytes:,} B already allocated, capacity "
                f"{self.device.global_mem_bytes:,} B)"
            )
        self.allocated_bytes += buf.nbytes
        self._buffers.append(buf)
        return buf

    def alloc_zeros(self, n: int, dtype=np.float64, name: str = "buf") -> Buffer:
        """Allocate a zero-initialised buffer of ``n`` elements."""
        return self.alloc(np.zeros(int(n), dtype=dtype), name=name)

    def free(self, buf: Buffer) -> None:
        """Release one buffer's capacity accounting."""
        if buf in self._buffers:
            self._buffers.remove(buf)
            self.allocated_bytes -= buf.nbytes

    def free_all(self) -> None:
        """Release every allocation (``clReleaseMemObject`` for all)."""
        self._buffers.clear()
        self.allocated_bytes = 0


class WorkGroupCtx:
    """Execution context handed to a kernel for one work-group."""

    def __init__(self, device: DeviceSpec, group_id: int, local_size: int,
                 trace: Optional[KernelTrace],
                 cache: Optional[SegmentCache] = None):
        self.device = device
        self.group_id = int(group_id)
        self.local_size = int(local_size)
        #: local work-item ids, shape (local_size,)
        self.lid = np.arange(local_size, dtype=np.int64)
        self._trace = trace
        self._cache = cache
        self._local_bytes = 0

    # ------------------------------------------------------------------
    # global memory
    # ------------------------------------------------------------------
    def gload(self, buf: Buffer, idx: np.ndarray, mask: np.ndarray | None = None) -> np.ndarray:
        """One global load per (active) lane; returns lane values.

        ``idx`` may point anywhere in the buffer; masked-off lanes
        return 0 and generate no traffic.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if self._trace is not None:
            req, segments, useful = wavefront_segments(
                idx, buf.itemsize, self.device.wavefront_size,
                self.device.transaction_bytes, mask,
            )
            if self._cache is not None:
                txn = self._cache.access(id(buf), segments)
                self._trace.l2_hits += segments.size - txn
            else:
                txn = int(segments.size)
            self._trace.global_load_requests += req
            self._trace.global_load_transactions += txn
            self._trace.global_load_bytes_useful += useful
        if mask is None:
            return buf.data[idx]
        out = np.zeros(idx.shape, dtype=buf.data.dtype)
        out[mask] = buf.data[idx[mask]]
        return out

    def gstore(self, buf: Buffer, idx: np.ndarray, values: np.ndarray,
               mask: np.ndarray | None = None) -> None:
        """One global store per (active) lane."""
        idx = np.asarray(idx, dtype=np.int64)
        if self._trace is not None:
            req, segments, useful = wavefront_segments(
                idx, buf.itemsize, self.device.wavefront_size,
                self.device.transaction_bytes, mask,
            )
            if self._cache is not None:
                # write-allocate: lines become resident, but the DRAM
                # write-back is still charged in full
                self._cache.access(id(buf), segments)
            self._trace.global_store_requests += req
            self._trace.global_store_transactions += int(segments.size)
            self._trace.global_store_bytes_useful += useful
        if mask is None:
            buf.data[idx] = values
        else:
            buf.data[idx[mask]] = np.broadcast_to(values, idx.shape)[mask]

    def gatomic_add(self, buf: Buffer, idx: np.ndarray, values: np.ndarray) -> None:
        """Atomic global add (used by the COO tail kernel)."""
        idx = np.asarray(idx, dtype=np.int64)
        if self._trace is not None:
            # an atomic is a read-modify-write: count both directions
            req, txn, useful = wavefront_transactions(
                idx, buf.itemsize, self.device.wavefront_size,
                self.device.transaction_bytes, None,
            )
            self._trace.global_load_requests += req
            self._trace.global_load_transactions += txn
            self._trace.global_load_bytes_useful += useful
            self._trace.global_store_requests += req
            self._trace.global_store_transactions += txn
            self._trace.global_store_bytes_useful += useful
        np.add.at(buf.data, idx, values)

    # ------------------------------------------------------------------
    # local memory
    # ------------------------------------------------------------------
    def alloc_local(self, size: int, dtype=np.float64, name: str = "lmem") -> LocalBuffer:
        """Allocate work-group local memory (capacity-checked per CU)."""
        lbuf = LocalBuffer(size, dtype, name)
        self._local_bytes += lbuf.nbytes
        if self._local_bytes > self.device.local_mem_per_cu_bytes:
            raise LocalMemoryError(
                f"work-group requested {self._local_bytes:,} B local memory; "
                f"CU provides {self.device.local_mem_per_cu_bytes:,} B"
            )
        return lbuf

    def lload(self, lbuf: LocalBuffer, idx: np.ndarray,
              mask: np.ndarray | None = None) -> np.ndarray:
        """One local-memory load per (active) lane."""
        idx = np.asarray(idx, dtype=np.int64)
        if self._trace is not None:
            active = idx.size if mask is None else int(np.count_nonzero(mask))
            self._trace.local_load_bytes += active * lbuf.itemsize
        if mask is None:
            return lbuf.data[idx]
        out = np.zeros(idx.shape, dtype=lbuf.data.dtype)
        out[mask] = lbuf.data[idx[mask]]
        return out

    def lstore(self, lbuf: LocalBuffer, idx: np.ndarray, values: np.ndarray,
               mask: np.ndarray | None = None) -> None:
        """One local-memory store per (active) lane."""
        idx = np.asarray(idx, dtype=np.int64)
        if self._trace is not None:
            active = idx.size if mask is None else int(np.count_nonzero(mask))
            self._trace.local_store_bytes += active * lbuf.itemsize
        if mask is None:
            lbuf.data[idx] = values
        else:
            lbuf.data[idx[mask]] = np.broadcast_to(values, idx.shape)[mask]

    # ------------------------------------------------------------------
    # control / accounting
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """``barrier(CLK_LOCAL_MEM_FENCE)`` — synchronise the group."""
        if self._trace is not None:
            self._trace.barriers += 1

    def flops(self, n: int) -> None:
        """Report ``n`` floating-point operations performed."""
        if self._trace is not None:
            self._trace.flops += int(n)

    def loop_trips(self, trips: np.ndarray) -> None:
        """Report per-lane loop trip counts for divergence accounting.

        Lanes of one wavefront execute in lockstep, so the wavefront
        issues ``max(trips)`` iterations while only ``sum(trips)`` are
        useful.
        """
        if self._trace is None:
            return
        trips = np.asarray(trips, dtype=np.int64).ravel()
        w = self.device.wavefront_size
        nwf = -(-trips.size // w)
        pad = nwf * w - trips.size
        if pad:
            trips = np.concatenate([trips, np.zeros(pad, dtype=np.int64)])
        per_wf = trips.reshape(nwf, w)
        self._trace.lanes_issued += int(per_wf.max(axis=1).sum()) * w
        self._trace.lanes_useful += int(per_wf.sum())


def launch(
    kernel: Callable,
    num_groups: int,
    local_size: int,
    args: Sequence,
    device: DeviceSpec = TESLA_C2050,
    trace: bool = True,
    cache: Optional[SegmentCache] = None,
) -> KernelTrace:
    """Run ``kernel`` over ``num_groups`` work-groups of ``local_size``.

    Returns the aggregated :class:`~repro.ocl.trace.KernelTrace`
    (zero-valued when tracing is off).  A fresh L2
    :class:`~repro.ocl.memory.SegmentCache` is created per launch
    unless one is passed in (pass the previous launch's cache to model
    back-to-back kernels sharing residency).
    """
    if num_groups < 0:
        raise LaunchError(f"num_groups must be >= 0, got {num_groups}")
    if local_size <= 0:
        raise LaunchError(f"local_size must be positive, got {local_size}")
    if _flt.ACTIVE is not None:
        _flt.ACTIVE.on_launch(kernel_name(kernel))
    total = KernelTrace()
    total.work_groups = num_groups
    total.wavefronts = num_groups * (-(-local_size // device.wavefront_size))
    t = total if trace else None
    if trace and cache is None and device.l2_bytes > 0:
        cache = SegmentCache(device.l2_bytes, device.transaction_bytes)
    sess = _obs.ACTIVE
    t0 = _obs.perf_counter() if sess is not None else 0.0
    for gid in range(num_groups):
        ctx = WorkGroupCtx(device, gid, local_size, t, cache)
        kernel(ctx, *args)
    if _flt.ACTIVE is not None:
        _flt.ACTIVE.on_launch_exit(kernel_name(kernel), args)
    if sess is not None:
        sess.record_kernel(
            kernel_name(kernel), work_groups=num_groups,
            local_size=local_size, executor="pergroup",
            wall_s=_obs.perf_counter() - t0, trace=t,
        )
    return total


class BatchCtx:
    """Execution context spanning a contiguous range of work-groups
    that all execute the same code path.

    The same kernel surface as :class:`WorkGroupCtx`, but ``group_id``
    is a ``(num_groups, 1)`` column so every index expression written
    against it broadcasts to a ``(num_groups, local_size)`` lane grid
    and each load/store moves all groups' lanes in one numpy call.

    Trace parity with the per-group engine:

    - requests / useful bytes / store transactions are computed
      vectorised over a ``(groups, wavefronts, lanes)`` view — the
      exact per-wavefront segment rule of
      :func:`~repro.ocl.memory.wavefront_segments`;
    - the L2 model is order-sensitive (LRU), so segment streams are
      *deferred* into an access log and :meth:`finalize` replays them
      in per-group execution order (group-major, statements in program
      order) — producing the identical hit/miss sequence the
      sequential engine would.
    """

    def __init__(self, device: DeviceSpec, group_ids: np.ndarray,
                 local_size: int, trace: Optional[KernelTrace],
                 cache: Optional[SegmentCache] = None):
        self.device = device
        self.local_size = int(local_size)
        ids = np.asarray(group_ids, dtype=np.int64)
        self.num_groups = int(ids.size)
        #: group ids as a column vector — broadcasts against ``lid``
        self.group_id = ids.reshape(-1, 1)
        #: local work-item ids, shape (local_size,)
        self.lid = np.arange(self.local_size, dtype=np.int64)
        self._shape = (self.num_groups, self.local_size)
        self._rows = np.arange(self.num_groups, dtype=np.int64).reshape(-1, 1)
        self._trace = trace
        self._cache = cache
        self._local_bytes = 0
        # deferred L2 accesses: (is_load, buf_id, segments, group_offsets)
        self._log: List[Tuple[bool, int, np.ndarray, np.ndarray]] = []

    def sub(self, lo: int, hi: int) -> "BatchCtx":
        """A child context for work-groups ``lo..hi-1`` (one uniform
        region of a multi-region kernel), sharing trace and cache.
        The caller must :meth:`finalize` each child before starting
        the next so the L2 replay stays in launch order."""
        return BatchCtx(self.device, np.arange(lo, hi, dtype=np.int64),
                        self.local_size, self._trace, self._cache)

    # ------------------------------------------------------------------
    # vectorised coalescing accounting
    # ------------------------------------------------------------------
    def _segments_grid(self, idx: np.ndarray, itemsize: int,
                       mask: np.ndarray | None):
        """Per-wavefront transaction segments for all groups at once.

        Returns ``(requests, segments, group_counts, useful_bytes)``
        where ``segments`` is the flat per-(group, wavefront) ordered
        segment stream — the concatenation of what
        :func:`~repro.ocl.memory.wavefront_segments` returns group by
        group — and ``group_counts[g]`` slices out group ``g``'s part.
        """
        dev = self.device
        w = dev.wavefront_size
        m = self.local_size
        nwf = -(-m // w)
        pad = nwf * w - m
        seg = idx * itemsize // dev.transaction_bytes
        if pad:
            seg = np.concatenate(
                [seg, np.full((self.num_groups, pad), -1, dtype=np.int64)],
                axis=1,
            )
        if mask is None:
            active = seg >= 0
        else:
            if pad:
                mask = np.concatenate(
                    [mask, np.zeros((self.num_groups, pad), dtype=bool)],
                    axis=1,
                )
            active = mask
            seg = np.where(active, seg, np.int64(-1))
        seg = seg.reshape(self.num_groups, nwf, w)
        active = active.reshape(self.num_groups, nwf, w)
        seg_sorted = np.sort(seg, axis=2)
        newseg = np.ones(seg_sorted.shape, dtype=bool)
        newseg[:, :, 1:] = seg_sorted[:, :, 1:] != seg_sorted[:, :, :-1]
        newseg &= seg_sorted >= 0
        segments = seg_sorted[newseg]          # C order = (group, wf) order
        group_counts = newseg.sum(axis=(1, 2))
        requests = int(active.any(axis=2).sum())
        useful = int(active.sum()) * itemsize
        return requests, segments, group_counts, useful

    def _defer(self, is_load: bool, buf: Buffer, segments: np.ndarray,
               group_counts: np.ndarray) -> None:
        offsets = np.zeros(self.num_groups + 1, dtype=np.int64)
        np.cumsum(group_counts, out=offsets[1:])
        self._log.append((is_load, id(buf), segments, offsets))

    def finalize(self) -> None:
        """Replay the deferred segment streams through the L2 model in
        per-group execution order and charge load transactions/hits.
        Idempotent; a no-op when tracing is off or no L2 is modelled."""
        log, self._log = self._log, []
        if self._cache is None or self._trace is None or not log:
            return
        cache, tr = self._cache, self._trace
        for g in range(self.num_groups):
            for is_load, buf_id, segments, offsets in log:
                s = segments[offsets[g]:offsets[g + 1]]
                if not s.size:
                    continue
                misses = cache.access(buf_id, s)
                if is_load:
                    tr.global_load_transactions += misses
                    tr.l2_hits += s.size - misses

    # ------------------------------------------------------------------
    # global memory
    # ------------------------------------------------------------------
    def _grid(self, arr, dtype) -> np.ndarray:
        return np.broadcast_to(np.asarray(arr, dtype=dtype), self._shape)

    def gload(self, buf: Buffer, idx: np.ndarray,
              mask: np.ndarray | None = None) -> np.ndarray:
        """One global load per (active) lane of *every* group."""
        idx = self._grid(idx, np.int64)
        if mask is not None:
            mask = self._grid(mask, bool)
        if self._trace is not None:
            req, segments, counts, useful = self._segments_grid(
                idx, buf.itemsize, mask
            )
            self._trace.global_load_requests += req
            self._trace.global_load_bytes_useful += useful
            if self._cache is not None:
                self._defer(True, buf, segments, counts)
            else:
                self._trace.global_load_transactions += int(segments.size)
        if mask is None:
            return buf.data[idx]
        out = np.zeros(self._shape, dtype=buf.data.dtype)
        out[mask] = buf.data[idx[mask]]
        return out

    def gstore(self, buf: Buffer, idx: np.ndarray, values: np.ndarray,
               mask: np.ndarray | None = None) -> None:
        """One global store per (active) lane of every group."""
        idx = self._grid(idx, np.int64)
        if mask is not None:
            mask = self._grid(mask, bool)
        if self._trace is not None:
            req, segments, counts, useful = self._segments_grid(
                idx, buf.itemsize, mask
            )
            self._trace.global_store_requests += req
            self._trace.global_store_transactions += int(segments.size)
            self._trace.global_store_bytes_useful += useful
            if self._cache is not None:
                # write-allocate: lines become resident during replay,
                # but the DRAM write-back is charged in full above
                self._defer(False, buf, segments, counts)
        if mask is None:
            buf.data[idx] = values
        else:
            buf.data[idx[mask]] = np.broadcast_to(values, self._shape)[mask]

    def gatomic_add(self, buf: Buffer, idx: np.ndarray,
                    values: np.ndarray) -> None:
        """Atomic global add over every group's lanes (group order
        preserved, so the floating-point sum order matches the
        sequential engine)."""
        idx = self._grid(idx, np.int64)
        if self._trace is not None:
            req, segments, _, useful = self._segments_grid(
                idx, buf.itemsize, None
            )
            txn = int(segments.size)
            self._trace.global_load_requests += req
            self._trace.global_load_transactions += txn
            self._trace.global_load_bytes_useful += useful
            self._trace.global_store_requests += req
            self._trace.global_store_transactions += txn
            self._trace.global_store_bytes_useful += useful
        np.add.at(buf.data, idx.ravel(),
                  np.broadcast_to(values, self._shape).ravel())

    # ------------------------------------------------------------------
    # local memory
    # ------------------------------------------------------------------
    def alloc_local(self, size: int, dtype=np.float64,
                    name: str = "lmem") -> BatchedLocalBuffer:
        """Allocate every group's local-memory copy at once (capacity
        is still checked against one CU, as each copy lives alone)."""
        lbuf = BatchedLocalBuffer(self.num_groups, size, dtype, name)
        self._local_bytes += lbuf.nbytes_per_group
        if self._local_bytes > self.device.local_mem_per_cu_bytes:
            raise LocalMemoryError(
                f"work-group requested {self._local_bytes:,} B local memory; "
                f"CU provides {self.device.local_mem_per_cu_bytes:,} B"
            )
        return lbuf

    def lload(self, lbuf: BatchedLocalBuffer, idx: np.ndarray,
              mask: np.ndarray | None = None) -> np.ndarray:
        """One local-memory load per (active) lane of every group."""
        idx = self._grid(idx, np.int64)
        if self._trace is not None:
            active = idx.size if mask is None else int(np.count_nonzero(
                self._grid(mask, bool)))
            self._trace.local_load_bytes += active * lbuf.itemsize
        if mask is None:
            return lbuf.data[self._rows, idx]
        mask = self._grid(mask, bool)
        out = np.zeros(self._shape, dtype=lbuf.data.dtype)
        rows = np.broadcast_to(self._rows, self._shape)
        out[mask] = lbuf.data[rows[mask], idx[mask]]
        return out

    def lstore(self, lbuf: BatchedLocalBuffer, idx: np.ndarray,
               values: np.ndarray, mask: np.ndarray | None = None) -> None:
        """One local-memory store per (active) lane of every group."""
        idx = self._grid(idx, np.int64)
        if self._trace is not None:
            active = idx.size if mask is None else int(np.count_nonzero(
                self._grid(mask, bool)))
            self._trace.local_store_bytes += active * lbuf.itemsize
        if mask is None:
            lbuf.data[self._rows, idx] = values
            return
        mask = self._grid(mask, bool)
        rows = np.broadcast_to(self._rows, self._shape)
        vals = np.broadcast_to(values, self._shape)
        lbuf.data[rows[mask], idx[mask]] = vals[mask]

    # ------------------------------------------------------------------
    # control / accounting
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """One barrier executed by every group of the batch."""
        if self._trace is not None:
            self._trace.barriers += self.num_groups

    def flops(self, n: int) -> None:
        """Report ``n`` floating-point operations across all groups."""
        if self._trace is not None:
            self._trace.flops += int(n)

    def loop_trips(self, trips: np.ndarray) -> None:
        """Per-lane loop trip counts for all groups at once."""
        if self._trace is None:
            return
        trips = self._grid(trips, np.int64)
        w = self.device.wavefront_size
        m = self.local_size
        nwf = -(-m // w)
        pad = nwf * w - m
        if pad:
            trips = np.concatenate(
                [trips, np.zeros((self.num_groups, pad), dtype=np.int64)],
                axis=1,
            )
        per_wf = trips.reshape(self.num_groups * nwf, w)
        self._trace.lanes_issued += int(per_wf.max(axis=1).sum()) * w if per_wf.size else 0
        self._trace.lanes_useful += int(per_wf.sum())


def launch_batched(
    kernel: Callable,
    num_groups: int,
    local_size: int,
    args: Sequence,
    device: DeviceSpec = TESLA_C2050,
    trace: bool = True,
    cache: Optional[SegmentCache] = None,
) -> KernelTrace:
    """Run a *batched* kernel over ``num_groups`` work-groups at once.

    ``kernel(ctx, *args)`` receives a single :class:`BatchCtx` covering
    every group; a uniform kernel (all groups execute the same path —
    the CRSD guarantee, also true of DIA/ELL) runs in one vectorised
    pass instead of ``num_groups`` sequential
    :class:`WorkGroupCtx` invocations.  Multi-region kernels partition
    the grid themselves via :meth:`BatchCtx.sub`.

    Counters and results match :func:`launch` exactly; see
    :class:`BatchCtx`.
    """
    if num_groups < 0:
        raise LaunchError(f"num_groups must be >= 0, got {num_groups}")
    if local_size <= 0:
        raise LaunchError(f"local_size must be positive, got {local_size}")
    if _flt.ACTIVE is not None:
        _flt.ACTIVE.on_launch(kernel_name(kernel))
    total = KernelTrace()
    total.work_groups = num_groups
    total.wavefronts = num_groups * (-(-local_size // device.wavefront_size))
    if trace and cache is None and device.l2_bytes > 0:
        cache = SegmentCache(device.l2_bytes, device.transaction_bytes)
    sess = _obs.ACTIVE
    t0 = _obs.perf_counter() if sess is not None else 0.0
    ctx = BatchCtx(device, np.arange(num_groups, dtype=np.int64), local_size,
                   total if trace else None, cache)
    kernel(ctx, *args)
    ctx.finalize()
    if _flt.ACTIVE is not None:
        _flt.ACTIVE.on_launch_exit(kernel_name(kernel), args)
    if sess is not None:
        sess.record_kernel(
            kernel_name(kernel), work_groups=num_groups,
            local_size=local_size, executor="batched",
            wall_s=_obs.perf_counter() - t0,
            trace=total if trace else None,
        )
    return total

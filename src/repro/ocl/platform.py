"""OpenCL-style host API over the simulated runtime.

The paper's host program follows the standard OpenCL flow — enumerate
platforms/devices, create a context and command queue, *build the
program at run time* (the hook the whole codelet design relies on),
set kernel arguments, enqueue an ND-range — and this module provides
that flow 1:1 so the reproduction's host code reads like the original:

>>> platform = get_platforms()[0]
>>> device = platform.get_devices()[0]
>>> ctx = ClContext(device)
>>> queue = CommandQueue(ctx)
>>> program = Program(ctx, source).build()        # validates the source
>>> kernel = program.kernel("crsd_dia_spmv", impl=python_callable)
>>> buf = ctx.create_buffer(host_array)
>>> queue.enqueue_nd_range(kernel, global_size, local_size, args=(buf, ...))
>>> queue.finish()

Because no OpenCL compiler exists here, a ``Program`` pairs the C
source (structurally validated) with the Python implementations of its
kernels; ``build()`` is where a real deployment would call
``clBuildProgram``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.codegen.validator import validate_opencl_source
from repro.ocl.device import AMD_CYPRESS, GTX_285, TESLA_C2050, DeviceSpec
from repro.ocl.errors import LaunchError
from repro.ocl.executor import Context as _MemContext
from repro.ocl.executor import launch as _launch
from repro.ocl.memory import Buffer
from repro.ocl.trace import KernelTrace


@dataclass(frozen=True)
class Platform:
    """An OpenCL platform exposing one or more devices."""

    name: str
    vendor: str
    devices: Tuple[DeviceSpec, ...]

    def get_devices(self) -> List[DeviceSpec]:
        """``clGetDeviceIDs`` analogue."""
        return list(self.devices)


#: the simulated installable client drivers
_PLATFORMS = (
    Platform("Simulated CUDA", "NVIDIA (modelled)", (TESLA_C2050, GTX_285)),
    Platform("Simulated Stream", "AMD (modelled)", (AMD_CYPRESS,)),
)


def get_platforms() -> List[Platform]:
    """``clGetPlatformIDs`` analogue."""
    return list(_PLATFORMS)


class ClContext:
    """``clCreateContext`` analogue: owns device memory."""

    def __init__(self, device: DeviceSpec = TESLA_C2050):
        self.device = device
        self._mem = _MemContext(device)

    def create_buffer(self, host_data: np.ndarray, name: str = "buf") -> Buffer:
        """``clCreateBuffer(..., COPY_HOST_PTR)`` analogue (capacity
        checked against the device)."""
        return self._mem.alloc(np.asarray(host_data), name)

    def create_zero_buffer(self, n: int, dtype=np.float64, name: str = "buf") -> Buffer:
        """Zero-initialised device buffer of ``n`` elements."""
        return self._mem.alloc_zeros(n, dtype, name)

    def release(self, buf: Buffer) -> None:
        """``clReleaseMemObject`` analogue."""
        self._mem.free(buf)

    @property
    def allocated_bytes(self) -> int:
        return self._mem.allocated_bytes


class Program:
    """``clCreateProgramWithSource`` + ``clBuildProgram`` analogue.

    Holds the OpenCL C text and the Python implementation of each
    kernel.  ``build()`` validates the C structurally and checks that
    every declared ``__kernel`` has an implementation.
    """

    def __init__(self, context: ClContext, source: str,
                 impls: Optional[Dict[str, Callable]] = None):
        self.context = context
        self.source = source
        self._impls = dict(impls or {})
        self._built = False
        self._kernel_names: List[str] = []

    def attach(self, name: str, impl: Callable) -> "Program":
        """Register the executable implementation of one kernel."""
        self._impls[name] = impl
        return self

    def build(self) -> "Program":
        """Validate the source; a real host would invoke the vendor
        compiler here."""
        self._kernel_names = validate_opencl_source(self.source)
        missing = [n for n in self._kernel_names if n not in self._impls]
        if missing:
            raise LaunchError(
                f"no implementation attached for kernel(s): {missing}"
            )
        self._built = True
        return self

    @property
    def kernel_names(self) -> List[str]:
        if not self._built:
            raise LaunchError("program not built")
        return list(self._kernel_names)

    def kernel(self, name: str) -> "ClKernel":
        """``clCreateKernel`` analogue."""
        if not self._built:
            raise LaunchError("program not built")
        if name not in self._kernel_names:
            raise LaunchError(f"no kernel {name!r} in program "
                              f"(have {self._kernel_names})")
        return ClKernel(name, self._impls[name], self.context.device)


@dataclass
class ClKernel:
    """A buildable kernel with positional arguments."""

    name: str
    impl: Callable
    device: DeviceSpec
    _args: tuple = field(default=(), repr=False)

    def set_args(self, *args) -> "ClKernel":
        """``clSetKernelArg`` analogue (all at once)."""
        self._args = args
        return self


class CommandQueue:
    """``clCreateCommandQueue`` analogue.

    In-order execution; every enqueue runs to completion and its trace
    is accumulated on the queue (``profiling`` mirrors
    ``CL_QUEUE_PROFILING_ENABLE``).
    """

    def __init__(self, context: ClContext, profiling: bool = True):
        self.context = context
        self.profiling = profiling
        self.traces: List[Tuple[str, KernelTrace]] = []

    def enqueue_nd_range(
        self,
        kernel: ClKernel,
        global_size: int,
        local_size: int,
        args: Optional[Sequence] = None,
    ) -> KernelTrace:
        """``clEnqueueNDRangeKernel`` analogue.

        ``global_size`` must be a multiple of ``local_size`` (the
        OpenCL 1.x rule the paper's launch obeys by padding segments).
        """
        if local_size <= 0 or global_size <= 0:
            raise LaunchError("sizes must be positive")
        if global_size % local_size != 0:
            raise LaunchError(
                f"global size {global_size} not a multiple of local size "
                f"{local_size} (OpenCL 1.x requirement)"
            )
        if args is not None:
            kernel.set_args(*args)
        trace = _launch(
            kernel.impl,
            num_groups=global_size // local_size,
            local_size=local_size,
            args=kernel._args,
            device=self.context.device,
            trace=self.profiling,
        )
        self.traces.append((kernel.name, trace))
        return trace

    def enqueue_read_buffer(self, buf: Buffer) -> np.ndarray:
        """``clEnqueueReadBuffer`` analogue (blocking)."""
        return buf.to_host().copy()

    def finish(self) -> None:
        """``clFinish`` — everything here is already synchronous."""

    def total_trace(self) -> KernelTrace:
        """Merge of every enqueued kernel's trace."""
        total = KernelTrace()
        for _, t in self.traces:
            total.merge(t)
        return total

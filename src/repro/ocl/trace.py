"""Execution traces collected by the simulated runtime.

A :class:`KernelTrace` aggregates, over one kernel launch, the
quantities that determine SpMV performance on a real GPU:

- global load/store **requests** (one per wavefront memory instruction)
  and **transactions** (distinct 128-byte segments actually touched) —
  their ratio is the coalescing efficiency;
- bytes moved per memory space;
- barriers executed;
- wavefront **divergence**: issued lanes (max trip count × width) vs.
  useful lanes (sum of per-lane trip counts).

The performance model consumes these counters; nothing here knows
about seconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class KernelTrace:
    """Mutable counter set for one kernel launch."""

    #: number of work-groups launched
    work_groups: int = 0
    #: number of wavefronts launched
    wavefronts: int = 0
    #: per-wavefront global memory load instructions
    global_load_requests: int = 0
    #: 128-byte segments that missed L2 and cost DRAM traffic
    global_load_transactions: int = 0
    #: load transactions absorbed by the L2 model
    l2_hits: int = 0
    #: bytes of useful global load data (lane count x itemsize)
    global_load_bytes_useful: int = 0
    #: per-wavefront global store instructions
    global_store_requests: int = 0
    global_store_transactions: int = 0
    global_store_bytes_useful: int = 0
    #: local (shared) memory traffic in bytes
    local_load_bytes: int = 0
    local_store_bytes: int = 0
    #: work-group barriers executed
    barriers: int = 0
    #: total FLOPs reported by the kernel (multiply+add counted as 2)
    flops: int = 0
    #: lanes issued, accounting for divergence serialisation
    lanes_issued: int = 0
    #: lanes doing useful work
    lanes_useful: int = 0

    # ------------------------------------------------------------------
    @property
    def global_load_bytes_moved(self, transaction_bytes: int = 128) -> int:
        """Bytes the memory system actually moved for loads."""
        return self.global_load_transactions * transaction_bytes

    def load_coalescing_efficiency(self, itemsize: int = 8, transaction_bytes: int = 128) -> float:
        """useful bytes / moved bytes for global loads, in (0, 1].

        A perfectly coalesced float64 wavefront load (32 lanes x 8 B =
        256 B = 2 transactions) scores 1.0; a fully scattered one
        (32 transactions) scores 256/4096 = 0.0625.
        """
        moved = self.global_load_transactions * transaction_bytes
        if moved == 0:
            return 1.0
        return min(1.0, self.global_load_bytes_useful / moved)

    def store_coalescing_efficiency(self, transaction_bytes: int = 128) -> float:
        """useful bytes / moved bytes for global stores, in (0, 1]."""
        moved = self.global_store_transactions * transaction_bytes
        if moved == 0:
            return 1.0
        return min(1.0, self.global_store_bytes_useful / moved)

    @property
    def divergence_efficiency(self) -> float:
        """useful lanes / issued lanes, in (0, 1]; 1.0 = no divergence."""
        if self.lanes_issued == 0:
            return 1.0
        return self.lanes_useful / self.lanes_issued

    # ------------------------------------------------------------------
    def merge(self, other: "KernelTrace") -> "KernelTrace":
        """Accumulate another trace into this one (in place)."""
        for f in (
            "work_groups",
            "wavefronts",
            "global_load_requests",
            "global_load_transactions",
            "l2_hits",
            "global_load_bytes_useful",
            "global_store_requests",
            "global_store_transactions",
            "global_store_bytes_useful",
            "local_load_bytes",
            "local_store_bytes",
            "barriers",
            "flops",
            "lanes_issued",
            "lanes_useful",
        ):
            setattr(self, f, getattr(self, f) + getattr(other, f))
        return self

    def summary(self) -> str:  # pragma: no cover - cosmetic
        """One-line human-readable counter summary."""
        return (
            f"groups={self.work_groups} wavefronts={self.wavefronts} "
            f"gld: {self.global_load_requests} req / {self.global_load_transactions} txn "
            f"(coal={self.load_coalescing_efficiency():.2f}) "
            f"gst: {self.global_store_requests} req / {self.global_store_transactions} txn "
            f"barriers={self.barriers} flops={self.flops} "
            f"diverg_eff={self.divergence_efficiency:.2f}"
        )

"""Level-1 BLAS kernels for the simulated device.

A Krylov solver is SpMV plus a handful of vector operations; keeping
the vectors device-resident (and paying for axpy/dot traffic there) is
what makes the paper's GPU numbers meaningful in context — the
conclusion's transfer warning applies exactly when these kernels are
*not* used.  Each helper launches a traced kernel and returns
``(result, KernelTrace)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.executor import launch
from repro.ocl.memory import Buffer
from repro.ocl.trace import KernelTrace

#: work-group size for the vector kernels
LOCAL_SIZE = 128


def _groups(n: int) -> int:
    return max(1, -(-n // LOCAL_SIZE))


def axpy(alpha: float, xb: Buffer, yb: Buffer,
         device: DeviceSpec = TESLA_C2050, trace: bool = True) -> KernelTrace:
    """``y <- alpha * x + y`` on the device."""
    n = len(yb)
    if len(xb) != n:
        raise ValueError("axpy vectors must have equal length")

    def kernel(ctx, xb, yb):
        pos = ctx.group_id * LOCAL_SIZE + ctx.lid
        m = pos < n
        safe = np.minimum(pos, n - 1)
        xv = ctx.gload(xb, safe, mask=m)
        yv = ctx.gload(yb, safe, mask=m)
        ctx.gstore(yb, safe, alpha * xv + yv, mask=m)
        ctx.flops(2 * int(m.sum()))

    return launch(kernel, _groups(n), LOCAL_SIZE, (xb, yb), device, trace)


def scale_add(xb: Buffer, beta: float, pb: Buffer,
              device: DeviceSpec = TESLA_C2050, trace: bool = True) -> KernelTrace:
    """``p <- x + beta * p`` (the CG direction update)."""
    n = len(pb)
    if len(xb) != n:
        raise ValueError("vectors must have equal length")

    def kernel(ctx, xb, pb):
        pos = ctx.group_id * LOCAL_SIZE + ctx.lid
        m = pos < n
        safe = np.minimum(pos, n - 1)
        xv = ctx.gload(xb, safe, mask=m)
        pv = ctx.gload(pb, safe, mask=m)
        ctx.gstore(pb, safe, xv + beta * pv, mask=m)
        ctx.flops(2 * int(m.sum()))

    return launch(kernel, _groups(n), LOCAL_SIZE, (xb, pb), device, trace)


def dot(xb: Buffer, yb: Buffer, device: DeviceSpec = TESLA_C2050,
        trace: bool = True) -> Tuple[float, KernelTrace]:
    """``x . y`` via per-group local-memory tree reduction plus a final
    host-side sum of the (few) partial results — the standard two-stage
    device reduction."""
    n = len(xb)
    if len(yb) != n:
        raise ValueError("dot vectors must have equal length")
    ngroups = _groups(n)
    partials = Buffer(np.zeros(ngroups), name="dot_partials")

    def kernel(ctx, xb, yb, pb):
        lmem = ctx.alloc_local(LOCAL_SIZE)
        pos = ctx.group_id * LOCAL_SIZE + ctx.lid
        m = pos < n
        safe = np.minimum(pos, n - 1)
        xv = ctx.gload(xb, safe, mask=m)
        yv = ctx.gload(yb, safe, mask=m)
        ctx.lstore(lmem, ctx.lid, np.where(m, xv * yv, 0.0))
        ctx.flops(int(m.sum()))
        stride = LOCAL_SIZE // 2
        while stride >= 1:
            ctx.barrier()
            sel = ctx.lid < stride
            a = ctx.lload(lmem, ctx.lid, mask=sel)
            b = ctx.lload(lmem, ctx.lid + stride, mask=sel)
            ctx.lstore(lmem, ctx.lid, a + b, mask=sel)
            ctx.flops(int(sel.sum()))
            stride //= 2
        total = ctx.lload(lmem, np.zeros(ctx.local_size, dtype=np.int64),
                          mask=ctx.lid == 0)
        ctx.gstore(pb, np.full(ctx.local_size, ctx.group_id, dtype=np.int64),
                   total, mask=ctx.lid == 0)

    tr = launch(kernel, ngroups, LOCAL_SIZE, (xb, yb, partials), device, trace)
    return float(partials.data.sum()), tr


def norm2(xb: Buffer, device: DeviceSpec = TESLA_C2050,
          trace: bool = True) -> Tuple[float, KernelTrace]:
    """Euclidean norm via :func:`dot`."""
    v, tr = dot(xb, xb, device, trace)
    return float(np.sqrt(v)), tr


def copy(src: Buffer, dst: Buffer, device: DeviceSpec = TESLA_C2050,
         trace: bool = True) -> KernelTrace:
    """``dst <- src``."""
    n = len(dst)
    if len(src) != n:
        raise ValueError("copy vectors must have equal length")

    def kernel(ctx, sb, db):
        pos = ctx.group_id * LOCAL_SIZE + ctx.lid
        m = pos < n
        safe = np.minimum(pos, n - 1)
        ctx.gstore(db, safe, ctx.gload(sb, safe, mask=m), mask=m)

    return launch(kernel, _groups(n), LOCAL_SIZE, (src, dst), device, trace)

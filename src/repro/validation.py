"""Facade input validation.

The GPU runners assume well-formed inputs — a NaN in the matrix or a
strided ``x`` would either poison the result silently or fail deep in a
kernel with an unhelpful message.  The facade (:func:`repro.spmv`,
:func:`repro.build`) runs these checks up front so bad inputs fail at
the API boundary with one typed error, :class:`InputValidationError`,
before any device buffer is touched.
"""

from __future__ import annotations

import numpy as np

__all__ = ["InputValidationError", "validate_matrix", "validate_vector"]


class InputValidationError(ValueError):
    """A facade input failed validation (bad dtype, shape, layout, or
    non-finite entries)."""


def validate_vector(x, length: int, name: str = "x") -> np.ndarray:
    """Validate a facade-supplied vector and return it as an ndarray.

    Rejects (with :class:`InputValidationError`): non-numeric or
    complex dtypes, wrong dimensionality or length, non-contiguous
    layouts, and NaN/Inf entries.  Python sequences are converted
    first, so lists of floats remain accepted.
    """
    arr = np.asarray(x)
    if arr.dtype.kind not in "fiu":
        raise InputValidationError(
            f"{name} has unsupported dtype {arr.dtype}; expected a real "
            "numeric dtype (float/int)")
    if arr.ndim != 1:
        raise InputValidationError(
            f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size != length:
        raise InputValidationError(
            f"{name} has length {arr.size}, expected {length}")
    if not arr.flags.c_contiguous:
        raise InputValidationError(
            f"{name} is not C-contiguous (e.g. a strided slice); pass "
            f"np.ascontiguousarray({name})")
    if arr.dtype.kind == "f" and not np.isfinite(arr).all():
        bad = int(np.count_nonzero(~np.isfinite(arr)))
        raise InputValidationError(
            f"{name} contains {bad} non-finite (NaN/Inf) entries")
    return arr


def validate_matrix(matrix) -> None:
    """Reject matrices carrying non-finite values.

    Works directly on whatever representation the caller handed the
    facade — a dense ndarray, any
    :class:`~repro.formats.base.SparseFormat` (via its array
    inventory), or a scipy-style object exposing ``.data`` — without
    forcing a COO conversion just to validate.
    """
    if isinstance(matrix, np.ndarray):
        if not np.isfinite(matrix).all():
            raise InputValidationError(
                "matrix contains non-finite (NaN/Inf) entries")
        return
    inventory = getattr(matrix, "array_inventory", None)
    if callable(inventory):
        for name, arr in inventory().items():
            arr = np.asarray(arr)
            if arr.dtype.kind == "f" and not np.isfinite(arr).all():
                raise InputValidationError(
                    f"matrix array {name!r} contains non-finite "
                    "(NaN/Inf) entries")
        return
    data = getattr(matrix, "data", None)
    if data is not None:
        arr = np.asarray(data)
        if arr.dtype.kind == "f" and not np.isfinite(arr).all():
            raise InputValidationError(
                "matrix values contain non-finite (NaN/Inf) entries")

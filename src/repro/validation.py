"""Facade input validation.

The GPU runners assume well-formed inputs — a NaN in the matrix or a
strided ``x`` would either poison the result silently or fail deep in a
kernel with an unhelpful message.  The facade (:func:`repro.spmv`,
:func:`repro.build`) runs these checks up front so bad inputs fail at
the API boundary with one typed error, :class:`InputValidationError`,
before any device buffer is touched.
"""

from __future__ import annotations

import numpy as np

__all__ = ["InputValidationError", "ReproDeprecationWarning",
           "validate_matrix", "validate_vector", "validate_batch",
           "validate_symmetric"]


class InputValidationError(ValueError):
    """A facade input failed validation (bad dtype, shape, layout, or
    non-finite entries)."""


class ReproDeprecationWarning(DeprecationWarning):
    """A repro API is being called through a deprecated surface.

    Typed (rather than a bare :class:`DeprecationWarning`) so callers
    can filter exactly repro's deprecations — and so the tests can
    assert a deprecation fires without also swallowing third-party
    noise."""


def validate_vector(x, length: int, name: str = "x") -> np.ndarray:
    """Validate a facade-supplied vector and return it as an ndarray.

    Rejects (with :class:`InputValidationError`): non-numeric or
    complex dtypes, wrong dimensionality or length, non-contiguous
    layouts, and NaN/Inf entries.  Python sequences are converted
    first, so lists of floats remain accepted.
    """
    arr = np.asarray(x)
    if arr.dtype.kind not in "fiu":
        raise InputValidationError(
            f"{name} has unsupported dtype {arr.dtype}; expected a real "
            "numeric dtype (float/int)")
    if arr.ndim != 1:
        raise InputValidationError(
            f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size != length:
        raise InputValidationError(
            f"{name} has length {arr.size}, expected {length}")
    if not arr.flags.c_contiguous:
        raise InputValidationError(
            f"{name} is not C-contiguous (e.g. a strided slice); pass "
            f"np.ascontiguousarray({name})")
    if arr.dtype.kind == "f" and not np.isfinite(arr).all():
        bad = int(np.count_nonzero(~np.isfinite(arr)))
        raise InputValidationError(
            f"{name} contains {bad} non-finite (NaN/Inf) entries")
    return arr


def validate_batch(X, ncols: int, nvec=None, name: str = "X") -> np.ndarray:
    """Validate a batched multi-vector right-hand side and return it.

    The SpMM entry points (:class:`~repro.gpu_kernels.crsd_runner.CrsdSpMM`,
    the serving layer's MicroBatcher) take ``X`` of shape
    ``(ncols, nvec)`` — one column per right-hand side.  Rejects, with
    the same typed :class:`InputValidationError` the 1-D path raises:
    non-numeric or complex dtypes, wrong dimensionality, a wrong row
    count, a wrong column count (when ``nvec`` is given), zero columns,
    non-contiguous layouts (neither C- nor F-contiguous — a strided
    slice), and NaN/Inf entries.  Python nested sequences are converted
    first, so lists of rows remain accepted.
    """
    arr = np.asarray(X)
    if arr.dtype.kind not in "fiu":
        raise InputValidationError(
            f"{name} has unsupported dtype {arr.dtype}; expected a real "
            "numeric dtype (float/int)")
    if arr.ndim != 2:
        raise InputValidationError(
            f"{name} must be 2-D (ncols, nvec), got shape {arr.shape}")
    if arr.shape[0] != ncols:
        raise InputValidationError(
            f"{name} has {arr.shape[0]} rows, expected ncols={ncols}")
    if arr.shape[1] == 0:
        raise InputValidationError(f"{name} has zero columns")
    if nvec is not None and arr.shape[1] != nvec:
        raise InputValidationError(
            f"{name} has {arr.shape[1]} columns, expected nvec={nvec}")
    if not (arr.flags.c_contiguous or arr.flags.f_contiguous):
        raise InputValidationError(
            f"{name} is not contiguous (e.g. a strided slice); pass "
            f"np.ascontiguousarray({name})")
    if arr.dtype.kind == "f" and not np.isfinite(arr).all():
        bad = int(np.count_nonzero(~np.isfinite(arr)))
        raise InputValidationError(
            f"{name} contains {bad} non-finite (NaN/Inf) entries")
    return arr


def validate_symmetric(a, op=None, samples: int = 1, tol: float = 1e-8,
                       seed: int = 0) -> None:
    """Validate that a system matrix is symmetric, for the CG family.

    CG and PCG silently return garbage on non-symmetric systems; this
    check fails them up front with a typed
    :class:`InputValidationError` instead.  Explicit carriers are
    checked exactly: a dense array via ``A == A^T`` (within ``tol``), a
    :class:`~repro.formats.base.SparseFormat` via the canonical COO's
    :meth:`~repro.formats.coo.COOMatrix.is_symmetric` (bit-exact — the
    same precondition the symmetric CRSD carrier enforces).  Opaque
    operators (GPU runners, :class:`~repro.blockop.operator.BlockOperator`,
    callables) are checked statistically: ``samples`` random pairs must
    satisfy ``x·(A·y) == y·(A·x)`` to relative tolerance ``tol`` — two
    extra SpMVs per sample, which a solver runs *before* it starts
    counting.
    """
    from repro.formats.base import SparseFormat

    if isinstance(a, np.ndarray) and a.ndim == 2:
        if a.shape[0] != a.shape[1]:
            raise InputValidationError(
                f"matrix of shape {a.shape} cannot be symmetric")
        if not np.allclose(a, a.T, rtol=tol, atol=tol):
            raise InputValidationError(
                "matrix is not symmetric (A != A^T); CG-family solvers "
                "require a symmetric system — use bicgstab, or pass "
                "check_symmetry=False if you know better")
        return
    if isinstance(a, SparseFormat):
        coo = a.to_coo()
        if coo.nrows != coo.ncols or not coo.is_symmetric(tol=0.0):
            raise InputValidationError(
                "matrix is not exactly symmetric (pattern or stored "
                "values do not mirror); CG-family solvers require a "
                "symmetric system — use bicgstab, or pass "
                "check_symmetry=False if you know better")
        return
    if op is None:
        from repro.solvers.operator import as_operator

        op = as_operator(a)
    if op.nrows != op.ncols:
        raise InputValidationError(
            f"operator of shape {op.shape} cannot be symmetric")
    rng = np.random.default_rng(seed)
    for _ in range(max(1, int(samples))):
        x = rng.standard_normal(op.ncols)
        y = rng.standard_normal(op.ncols)
        left = float(x @ op(y))
        right = float(y @ op(x))
        if abs(left - right) > tol * max(1.0, abs(left), abs(right)):
            raise InputValidationError(
                f"operator failed the sampled symmetry identity: "
                f"x·(A·y)={left:.9e} vs y·(A·x)={right:.9e}; CG-family "
                "solvers require a symmetric system — use bicgstab, or "
                "pass check_symmetry=False if you know better")


def validate_matrix(matrix) -> None:
    """Reject matrices carrying non-finite values.

    Works directly on whatever representation the caller handed the
    facade — a dense ndarray, any
    :class:`~repro.formats.base.SparseFormat` (via its array
    inventory), or a scipy-style object exposing ``.data`` — without
    forcing a COO conversion just to validate.
    """
    if isinstance(matrix, np.ndarray):
        if not np.isfinite(matrix).all():
            raise InputValidationError(
                "matrix contains non-finite (NaN/Inf) entries")
        return
    inventory = getattr(matrix, "array_inventory", None)
    if callable(inventory):
        for name, arr in inventory().items():
            arr = np.asarray(arr)
            if arr.dtype.kind == "f" and not np.isfinite(arr).all():
                raise InputValidationError(
                    f"matrix array {name!r} contains non-finite "
                    "(NaN/Inf) entries")
        return
    data = getattr(matrix, "data", None)
    if data is not None:
        arr = np.asarray(data)
        if arr.dtype.kind == "f" and not np.isfinite(arr).all():
            raise InputValidationError(
                "matrix values contain non-finite (NaN/Inf) entries")

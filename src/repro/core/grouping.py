"""Adjacent / non-adjacent diagonal grouping (Section II-B).

Two diagonals are *adjacent* when their offsets differ by exactly 1.
Given the sorted offsets occupied in some row region, maximal runs of
adjacent diagonals of length >= 2 form **AD groups**; after removing
them, each remaining contiguous piece of the original sequence forms a
**NAD group**.  The ordered group list is the *diagonal pattern*.

For the Fig. 2 example's first two rows the occupied offsets are
``[0, 2, 3, 5, 7]`` and the grouping is
``{(NAD,1), (AD,2), (NAD,2)}`` — offset 0 alone, offsets 2,3 adjacent,
then offsets 5 and 7 forming one non-adjacent piece.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


class GroupKind(enum.Enum):
    """AD = adjacent (consecutive offsets), NAD = non-adjacent."""

    AD = "AD"
    NAD = "NAD"


@dataclass(frozen=True)
class Group:
    """One group of diagonals.

    Attributes
    ----------
    kind:
        :class:`GroupKind`.
    offsets:
        The member diagonal offsets, strictly increasing.  For an AD
        group they are consecutive integers; for a NAD group no two
        members anywhere in the pattern are adjacent.
    """

    kind: GroupKind
    offsets: Tuple[int, ...]

    def __post_init__(self):
        if not self.offsets:
            raise ValueError("a group must contain at least one diagonal")
        if any(b <= a for a, b in zip(self.offsets, self.offsets[1:])):
            raise ValueError(f"offsets must be strictly increasing: {self.offsets}")
        if self.kind is GroupKind.AD:
            if len(self.offsets) < 2:
                raise ValueError("an AD group needs at least 2 diagonals")
            if any(b - a != 1 for a, b in zip(self.offsets, self.offsets[1:])):
                raise ValueError(f"AD group offsets must be consecutive: {self.offsets}")

    @property
    def ndiags(self) -> int:
        return len(self.offsets)

    @property
    def signature(self) -> Tuple[str, int]:
        """The ``(group_type, number_of_diagonals)`` pair of the paper."""
        return (self.kind.value, self.ndiags)

    def __str__(self) -> str:
        return f"({self.kind.value},{self.ndiags})"


def group_offsets(offsets: Sequence[int]) -> List[Group]:
    """Group a sorted sequence of diagonal offsets into AD/NAD groups.

    Implements Section II-B verbatim: put maximal adjacent runs (length
    >= 2) into AD groups; the removal of those runs breaks the original
    sequence into pieces, and each piece becomes one NAD group.  Groups
    are returned in ascending offset order of their first member.

    Raises ``ValueError`` if ``offsets`` is not strictly increasing.
    """
    offs = [int(o) for o in offsets]
    if any(b <= a for a, b in zip(offs, offs[1:])):
        raise ValueError(f"offsets must be strictly increasing: {offs}")
    if not offs:
        return []

    arr = np.asarray(offs, dtype=np.int64)
    # maximal runs of consecutive integers
    run_breaks = np.flatnonzero(np.diff(arr) != 1)
    run_starts = np.concatenate([[0], run_breaks + 1])
    run_ends = np.concatenate([run_breaks + 1, [arr.size]])

    groups: List[Group] = []
    nad_piece: List[int] = []

    def flush_nad():
        if nad_piece:
            groups.append(Group(GroupKind.NAD, tuple(nad_piece)))
            nad_piece.clear()

    for s, e in zip(run_starts, run_ends):
        if e - s >= 2:
            # an adjacent run becomes an AD group and breaks the NAD piece
            flush_nad()
            groups.append(Group(GroupKind.AD, tuple(arr[s:e].tolist())))
        else:
            nad_piece.append(int(arr[s]))
    flush_nad()
    return groups


def flatten_groups(groups: Sequence[Group]) -> List[int]:
    """All offsets of a group list, in storage order (group by group)."""
    out: List[int] = []
    for g in groups:
        out.extend(g.offsets)
    return out

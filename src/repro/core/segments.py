"""Row-segment grid (Section II-C).

The matrix is split into *row segments* of ``mrows`` rows each; one
work-group processes one row segment, so the paper advises that
``mrows`` be a multiple of the wavefront size.  The final segment may
extend past the matrix (rows are padded there); kernels guard the final
store with the real row count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SegmentGrid:
    """Partition of ``nrows`` rows into segments of ``mrows`` rows.

    Parameters
    ----------
    nrows:
        Number of matrix rows.
    mrows:
        Row-segment size (must be positive).
    """

    nrows: int
    mrows: int

    def __post_init__(self):
        if self.nrows <= 0:
            raise ValueError(f"nrows must be positive, got {self.nrows}")
        if self.mrows <= 0:
            raise ValueError(f"mrows must be positive, got {self.mrows}")

    @property
    def num_segments(self) -> int:
        """Segments needed to cover all rows (last one may be partial)."""
        return -(-self.nrows // self.mrows)

    @property
    def padded_rows(self) -> int:
        """Total rows including the padding of the final segment."""
        return self.num_segments * self.mrows

    @property
    def tail_padding(self) -> int:
        """Padded (non-existent) rows in the final segment."""
        return self.padded_rows - self.nrows

    def segment_of(self, row) -> np.ndarray:
        """Segment index of each row (scalar or array)."""
        return np.asarray(row, dtype=np.int64) // self.mrows

    def start_row(self, segment: int) -> int:
        """First row of a segment."""
        self._check(segment)
        return segment * self.mrows

    def rows_of(self, segment: int) -> np.ndarray:
        """Real (unpadded) rows of a segment."""
        self._check(segment)
        lo = segment * self.mrows
        hi = min(lo + self.mrows, self.nrows)
        return np.arange(lo, hi, dtype=np.int64)

    def segment_length(self, segment: int) -> int:
        """Number of real rows in a segment (== mrows except maybe last)."""
        self._check(segment)
        lo = segment * self.mrows
        return min(self.mrows, self.nrows - lo)

    def is_wavefront_aligned(self, wavefront_size: int) -> bool:
        """Paper's rule of thumb: mrows should be a multiple of the
        wavefront size so per-segment loads coalesce fully."""
        return wavefront_size > 0 and self.mrows % wavefront_size == 0

    def _check(self, segment: int) -> None:
        if not 0 <= segment < self.num_segments:
            raise IndexError(
                f"segment {segment} out of range [0, {self.num_segments})"
            )

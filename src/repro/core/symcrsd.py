"""Symmetric CRSD — the half-pattern carrier for symmetric matrices.

A symmetric diagonal matrix stores every value twice in plain CRSD: the
slab holds both diagonal ``+o`` and its mirror ``-o``.  This carrier
keeps only the diagonals with offset ``>= 0`` and reconstructs the
mirror contribution from the stored run at SpMV time — roughly halving
the value bytes the kernel streams from DRAM, which is the whole game
for a bandwidth-bound kernel.

Layout (deliberately different from the full slab's segment-major
order): per region the half slab is *diagonal-major*.  Stored offset
number ``d`` (offsets ``>= 0`` in ascending order) occupies one
contiguous run of ``NRS * mrows`` values at

    runbase = region_base + d * NRS * mrows

and row ``r`` of the region (flat ``rr = r - SR``) sits at
``runbase + rr``.  Row-contiguity across the whole region is what makes
the transpose read affine: the mirror partner of row ``r`` on full
diagonal ``-o`` is the *stored* slot of row ``r - o`` on diagonal
``+o``, i.e. flat position ``rr - o`` of the same run — a unit-stride
lane access with one lower guard, which the analyzer's affine model can
prove in-bounds and coalesced like any other access.

Bit-identity contract: :meth:`SymCRSDMatrix.from_crsd` copies the runs
*verbatim* from the full slab (fill zeros included) and declines — with
a typed :class:`SymCRSDError` — any matrix where a mirror read could
cross a region boundary.  Under those preconditions every multiplicand
pair of the symmetric kernel is bit-equal to the full kernel's, the
accumulation order (ascending full offsets) is identical, and the
served ``y`` matches ``np.array_equal`` in both precisions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.crsd import CRSDBuildParams, CRSDMatrix
from repro.core.pattern import PatternRegion
from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    FormatError,
    SparseFormat,
    check_vector,
)
from repro.formats.coo import COOMatrix


class SymCRSDError(FormatError):
    """A matrix does not satisfy the symmetric-carrier preconditions."""


class SymCRSDMatrix(SparseFormat):
    """CRSD storing only the diagonals with offset ``>= 0``.

    Build with :meth:`from_coo` (builds the full CRSD first and copies
    the upper runs) or :meth:`from_crsd`.  The ``regions`` tuple keeps
    the *full* patterns — the mirror closure is what the kernels and
    conversions iterate — while ``sym_val`` holds only the stored half.
    """

    name = "symcrsd"

    #: folded into content fingerprints so a symmetric carrier never
    #: shares a plan-cache identity with the equivalent full pattern
    fingerprint_variant = b"sym/v1"

    def __init__(
        self,
        shape: Tuple[int, int],
        params: CRSDBuildParams,
        regions: Tuple[PatternRegion, ...],
        sym_val: np.ndarray,
        nnz: int,
    ):
        super().__init__(shape)
        if self.nrows != self.ncols:
            raise SymCRSDError(
                f"symmetric carrier requires a square matrix, got {shape}"
            )
        self.params = params
        self.regions = tuple(regions)
        self.sym_val = np.asarray(sym_val, dtype=VALUE_DTYPE)
        self._nnz = int(nnz)
        self._stored: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(o for o in r.pattern.offsets if o >= 0) for r in self.regions
        )
        for r, stored in zip(self.regions, self._stored):
            offs = set(r.pattern.offsets)
            if offs != {-o for o in offs}:
                raise SymCRSDError(
                    f"region at SR={r.start_row} has non-mirror-symmetric "
                    f"offsets {sorted(offs)}"
                )
        bases = np.zeros(len(self.regions) + 1, dtype=np.int64)
        np.cumsum(
            [len(s) * r.num_segments * r.mrows
             for r, s in zip(self.regions, self._stored)],
            out=bases[1:],
        )
        self._region_bases = bases
        if self.sym_val.size != int(bases[-1]):
            raise SymCRSDError(
                f"sym_val has {self.sym_val.size} slots, regions describe "
                f"{int(bases[-1])}"
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_crsd(cls, full: CRSDMatrix,
                  coo: Optional[COOMatrix] = None) -> "SymCRSDMatrix":
        """Derive the half carrier from a built full CRSD matrix.

        Raises :class:`SymCRSDError` when the matrix is not exactly
        symmetric, has scatter rows, or any mirror partner of a stored
        entry falls outside its own region (the bit-identity
        preconditions).
        """
        if full.nrows != full.ncols:
            raise SymCRSDError(
                f"symmetric carrier requires a square matrix, got {full.shape}"
            )
        if full.num_scatter_rows:
            raise SymCRSDError(
                f"matrix has {full.num_scatter_rows} scatter rows; the "
                "symmetric codelets cover diagonal regions only"
            )
        if coo is None:
            coo = full.to_coo()
        if not coo.is_symmetric(tol=0.0):
            raise SymCRSDError(
                "matrix is not exactly symmetric (pattern and stored "
                "values must both mirror)"
            )
        _check_partners_in_region(full.regions, coo)
        runs: List[np.ndarray] = []
        for p, region in enumerate(full.regions):
            slab = full.region_slab(p)  # (NRS, NDias, mrows)
            for d, off in enumerate(region.pattern.offsets):
                if off >= 0:
                    runs.append(np.ascontiguousarray(slab[:, d, :]).ravel())
        sym_val = (np.concatenate(runs) if runs
                   else np.empty(0, dtype=VALUE_DTYPE))
        return cls(
            shape=full.shape,
            params=full.params,
            regions=full.regions,
            sym_val=sym_val,
            nnz=full.nnz,
        )

    @classmethod
    def from_coo(
        cls, coo: COOMatrix, params: Optional[CRSDBuildParams] = None, **kwargs
    ) -> "SymCRSDMatrix":
        """Build from COO via the full CRSD analysis (same tunables)."""
        if params is None:
            params = CRSDBuildParams(**kwargs)
        elif kwargs:
            raise TypeError("pass either params or keyword tunables, not both")
        full = CRSDMatrix.from_coo(coo, params)
        return cls.from_crsd(full, coo=coo)

    @classmethod
    def from_dense(cls, dense: np.ndarray, **kwargs) -> "SymCRSDMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), **kwargs)

    def to_crsd(self) -> CRSDMatrix:
        """Expand back to the full carrier (bit-equal slab)."""
        slabs = [self._region_full_slab(p).ravel()
                 for p in range(len(self.regions))]
        dia_val = (np.concatenate(slabs) if slabs
                   else np.empty(0, dtype=VALUE_DTYPE))
        z = np.zeros((0, 0))
        return CRSDMatrix(
            shape=self.shape,
            params=self.params,
            regions=self.regions,
            dia_val=dia_val,
            scatter_rowno=np.empty(0, dtype=INDEX_DTYPE),
            scatter_colval=z.astype(INDEX_DTYPE),
            scatter_val=z.astype(VALUE_DTYPE),
            scatter_occupancy=z.astype(bool),
            nnz=self._nnz,
        )

    # ------------------------------------------------------------------
    # SparseFormat surface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def stored_elements(self) -> int:
        return int(self.sym_val.size)

    @property
    def mrows(self) -> int:
        return self.params.mrows

    @property
    def num_scatter_rows(self) -> int:
        return 0

    def stored_offsets(self, p: int) -> Tuple[int, ...]:
        """Region ``p``'s stored (non-negative, ascending) offsets."""
        return self._stored[p]

    def region_base(self, p: int) -> int:
        """Half-slab offset of region ``p``'s first value."""
        return int(self._region_bases[p])

    def region_run(self, p: int, offset: int) -> np.ndarray:
        """The flat ``(NRS * mrows,)`` run of stored offset ``offset``."""
        region = self.regions[p]
        d = self._stored[p].index(offset)
        n = region.num_segments * region.mrows
        lo = self._region_bases[p] + d * n
        return self.sym_val[lo:lo + n]

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Reference y = A @ x, statement-for-statement the full CRSD
        region matvec over the reconstructed per-diagonal values."""
        x = check_vector(x, self.ncols)
        y = (out if out is not None
             else np.zeros(self.nrows, dtype=np.result_type(self.sym_val, x)))
        if out is not None:
            y[:] = 0.0
        for p, region in enumerate(self.regions):
            slab = self._region_full_slab(p)  # (NRS, NDias, mrows)
            rows = (
                region.start_row
                + np.arange(region.num_segments, dtype=np.int64)[:, None]
                * region.mrows
                + np.arange(region.mrows, dtype=np.int64)[None, :]
            )
            acc = np.zeros(rows.shape, dtype=y.dtype)
            for d, off in enumerate(region.pattern.offsets):
                xi = np.clip(rows + off, 0, self.ncols - 1)
                acc += slab[:, d, :] * x[xi]
            valid = rows < self.nrows
            y[rows[valid]] = acc[valid]
        return y

    def diagonal(self) -> np.ndarray:
        """The main diagonal (for Jacobi preconditioning)."""
        d = np.zeros(self.nrows, dtype=VALUE_DTYPE)
        for p, region in enumerate(self.regions):
            if 0 not in self._stored[p]:
                continue
            run = self.region_run(p, 0)
            rows = region.start_row + np.arange(run.size, dtype=np.int64)
            valid = rows < self.nrows
            d[rows[valid]] = run[valid]
        return d

    def to_coo(self) -> COOMatrix:
        rows_l: List[np.ndarray] = []
        cols_l: List[np.ndarray] = []
        vals_l: List[np.ndarray] = []
        for p, region in enumerate(self.regions):
            slab = self._region_full_slab(p)
            offs = np.asarray(region.pattern.offsets, dtype=np.int64)
            seg_i, dia_i, row_i = np.nonzero(slab)
            rows = region.start_row + seg_i * region.mrows + row_i
            cols = rows + offs[dia_i]
            vals = slab[seg_i, dia_i, row_i]
            inside = (rows < self.nrows) & (cols >= 0) & (cols < self.ncols)
            rows_l.append(rows[inside])
            cols_l.append(cols[inside])
            vals_l.append(vals[inside])
        if rows_l:
            rows = np.concatenate(rows_l)
            cols = np.concatenate(cols_l)
            vals = np.concatenate(vals_l)
        else:
            rows = cols = vals = np.empty(0)
        return COOMatrix(rows, cols, vals, self.shape)

    def array_inventory(self) -> Dict[str, np.ndarray]:
        return {"sym_dia_val": self.sym_val}

    @property
    def fingerprint(self) -> str:
        """Content hash; differs from the full carrier's by the
        ``fingerprint_variant`` domain fold."""
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            from repro.core.serialize import fingerprint as _fp

            fp = _fp(self)
            self._fingerprint = fp
        return fp

    def __repr__(self) -> str:
        return (
            f"<SymCRSDMatrix shape={self.shape} nnz={self.nnz} "
            f"regions={len(self.regions)} stored={self.stored_elements}>"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _region_full_slab(self, p: int) -> np.ndarray:
        """Reconstruct region ``p``'s full ``(NRS, NDias, mrows)`` slab.

        Forward diagonals are the stored runs; each mirror diagonal
        ``-o`` is the ``+o`` run shifted down by ``o`` rows with zero
        fill at the top — exactly the fill slots the full build holds
        there (guaranteed by the build preconditions).
        """
        region = self.regions[p]
        m = region.mrows
        nrs = region.num_segments
        n = nrs * m
        out = np.zeros((nrs, region.ndiags, m), dtype=VALUE_DTYPE)
        for d, off in enumerate(region.pattern.offsets):
            run = self.region_run(p, abs(off))
            if off >= 0:
                flat = run
            else:
                o = -off
                flat = np.zeros(n, dtype=run.dtype)
                if o < n:
                    flat[o:] = run[:n - o]
            out[:, d, :] = flat.reshape(nrs, m)
        return out


def _check_partners_in_region(regions: Tuple[PatternRegion, ...],
                              coo: COOMatrix) -> None:
    """Every strictly-upper entry's two rows must share a region, or a
    mirror read would cross a region boundary and the stored run could
    not supply the transpose contribution."""
    if coo.nnz == 0:
        return
    starts = np.asarray([r.start_row for r in regions], dtype=np.int64)
    ends = np.asarray([r.end_row for r in regions], dtype=np.int64)

    def region_of(rows: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(starts, rows, side="right") - 1
        if (idx < 0).any():
            raise SymCRSDError("entry row precedes every region")
        if (rows >= ends[idx]).any():
            raise SymCRSDError("entry row not covered by any region")
        return idx

    rows = coo.rows.astype(np.int64)
    cols = coo.cols.astype(np.int64)
    upper = cols > rows
    if not upper.any():
        return
    r_reg = region_of(rows[upper])
    c_reg = region_of(cols[upper])
    split = r_reg != c_reg
    if split.any():
        k = int(np.flatnonzero(split)[0])
        r = int(rows[upper][k])
        c = int(cols[upper][k])
        raise SymCRSDError(
            f"entry ({r}, {c}) and its mirror live in different pattern "
            f"regions ({int(r_reg[k])} vs {int(c_reg[k])}); the symmetric "
            "carrier cannot serve cross-region transpose contributions"
        )

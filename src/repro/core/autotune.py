"""OSKI-style autotuning of CRSD's build parameters.

The related work (Section V) credits OSKI with analysing the input
matrix at run time to choose blocking parameters; CRSD has the
analogous knobs — ``mrows``, the idle-section threshold, and whether
AD groups stage x through local memory.  The tuner builds candidate
CRSD instances, prices each with one simulated SpMV (or the closed-form
model when ``fast=True``), and returns the best configuration.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.crsd import CRSDBuildParams, CRSDMatrix, compatible_wavefront
from repro.formats.coo import COOMatrix
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.perf.costmodel import predict_gpu_time

#: default candidate grids
DEFAULT_MROWS = (32, 64, 128, 256)
DEFAULT_THRESHOLDS = (0, 32, 128, None)  # None = mrows (the format default)


@dataclass(frozen=True)
class TuneCandidate:
    """One evaluated configuration."""

    mrows: int
    idle_fill_max_rows: Optional[int]
    use_local_memory: bool
    seconds: float
    fill_zeros: int
    num_regions: int


@dataclass(frozen=True)
class TuneResult:
    """Outcome of :func:`tune`."""

    best: TuneCandidate
    candidates: Tuple[TuneCandidate, ...]

    def build(self, coo: COOMatrix) -> CRSDMatrix:
        """Materialise the winning configuration."""
        return CRSDMatrix.from_coo(coo, params=self.params)

    @property
    def params(self) -> CRSDBuildParams:
        return CRSDBuildParams(
            mrows=self.best.mrows,
            idle_fill_max_rows=self.best.idle_fill_max_rows,
            wavefront_size=compatible_wavefront(self.best.mrows),
        )


def tune(
    coo: COOMatrix,
    mrows_grid: Sequence[int] = DEFAULT_MROWS,
    threshold_grid: Sequence[Optional[int]] = DEFAULT_THRESHOLDS,
    try_local_memory: Tuple[bool, ...] = (True, False),
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    fast: bool = False,
    size_scale: float = 1.0,
    seed: int = 0,
) -> TuneResult:
    """Grid-search CRSD build parameters for one matrix.

    ``fast=True`` prices candidates with the closed-form traffic model
    (no kernel execution, no local-memory dimension — staging choice is
    then decided by the max AD width heuristic); otherwise each
    candidate runs one traced SpMV on the simulated device.
    """
    if coo.nnz == 0:
        raise ValueError("cannot tune an empty matrix")
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(coo.ncols)
    candidates: List[TuneCandidate] = []
    for mrows, thr in itertools.product(mrows_grid, threshold_grid):
        if mrows > max(coo.nrows, 1):
            continue
        crsd = CRSDMatrix.from_coo(
            coo, mrows=mrows, idle_fill_max_rows=thr,
            wavefront_size=compatible_wavefront(mrows),
        )
        if fast:
            from repro.perf.analytic import estimate_crsd_traffic

            est = estimate_crsd_traffic(crsd, precision)
            secs = predict_gpu_time(est.to_trace(device), device, precision,
                                    size_scale=size_scale).total
            candidates.append(
                TuneCandidate(
                    mrows=mrows, idle_fill_max_rows=thr,
                    use_local_memory=_heuristic_staging(crsd),
                    seconds=secs, fill_zeros=crsd.fill_zeros,
                    num_regions=len(crsd.regions),
                )
            )
            continue
        from repro.gpu_kernels import CrsdSpMV

        for use_local in try_local_memory:
            if use_local and not _fits_local_memory(crsd, device, precision):
                continue  # statically rejected: tile exceeds local memory
            runner = CrsdSpMV(crsd, use_local_memory=use_local,
                              device=device, precision=precision)
            run = runner.run(x)
            launches = 2 if crsd.num_scatter_rows else 1
            secs = predict_gpu_time(run.trace, device, precision,
                                    num_launches=launches,
                                    size_scale=size_scale).total
            candidates.append(
                TuneCandidate(
                    mrows=mrows, idle_fill_max_rows=thr,
                    use_local_memory=use_local, seconds=secs,
                    fill_zeros=crsd.fill_zeros,
                    num_regions=len(crsd.regions),
                )
            )
    if not candidates:
        raise ValueError("no feasible candidates (mrows grid too large?)")
    best = min(candidates, key=lambda c: c.seconds)
    return TuneResult(best=best, candidates=tuple(candidates))


def _fits_local_memory(crsd: CRSDMatrix, device: DeviceSpec,
                       precision: str) -> bool:
    """Static feasibility: would the AD staging tiles of this candidate
    fit the device's per-CU local memory?  Uses the analyzer's capacity
    probe so infeasible configurations are rejected without ever
    building (let alone running) a kernel."""
    from repro.analyze.localmem import required_local_bytes
    from repro.codegen.plan import build_plan

    plan = build_plan(crsd, use_local_memory=True)
    return required_local_bytes(plan, precision) <= device.local_mem_per_cu_bytes


def _heuristic_staging(crsd: CRSDMatrix) -> bool:
    """Stage AD tiles only when some AD group is wide enough that the
    x reuse outweighs a barrier (the A1 ablation's finding)."""
    widths = [
        g.ndiags
        for r in crsd.regions
        for g in r.pattern.groups
        if g.kind.value == "AD"
    ]
    return bool(widths) and max(widths) >= 4

"""Diagonal patterns and pattern regions (Section II-B/II-D).

A :class:`DiagonalPattern` is the ordered list of AD/NAD groups — the
paper's ``diagonal-pattern = {group1, group2, ... groupm}``.  A
:class:`PatternRegion` is one *instance* of a pattern in a concrete
matrix: the pattern plus its start row ``SR``, its number of row
segments ``NRS`` and the column index of each member diagonal at the
start row (the ``Colv`` values of Table II).  The whole matrix is then
``matrix = {dia-pattern1, dia-pattern2, ...}`` — an ordered list of
regions covering all non-empty row segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.grouping import Group, GroupKind, flatten_groups, group_offsets


@dataclass(frozen=True)
class DiagonalPattern:
    """An ordered tuple of AD/NAD groups.

    Two regions share a codelet *body shape* iff their patterns are
    equal; they share the full codelet iff offsets also coincide.
    """

    groups: Tuple[Group, ...]

    @classmethod
    def from_offsets(cls, offsets: Sequence[int]) -> "DiagonalPattern":
        """Derive the pattern of a sorted offset list (Section II-B)."""
        return cls(tuple(group_offsets(offsets)))

    @property
    def signature(self) -> Tuple[Tuple[str, int], ...]:
        """Hashable ``((kind, ndiags), ...)`` — the paper's notation
        without the concrete offsets."""
        return tuple(g.signature for g in self.groups)

    @property
    def offsets(self) -> Tuple[int, ...]:
        """All member offsets in storage (group) order."""
        return tuple(flatten_groups(self.groups))

    @property
    def ndiags(self) -> int:
        """NDias — the total number of diagonals in the pattern."""
        return sum(g.ndiags for g in self.groups)

    @property
    def n_adjacent_diags(self) -> int:
        """Diagonals living in AD groups (these enjoy local-memory reuse
        of the source vector)."""
        return sum(g.ndiags for g in self.groups if g.kind is GroupKind.AD)

    @property
    def max_ad_width(self) -> int:
        """Largest AD group size — determines the local-memory tile
        (Section III-B: 'the size of the local memory is determined by
        the maximum number of diagonals among all the adjacent
        groups')."""
        widths = [g.ndiags for g in self.groups if g.kind is GroupKind.AD]
        return max(widths) if widths else 0

    def __str__(self) -> str:
        return "{" + ",".join(str(g) for g in self.groups) + "}"


@dataclass(frozen=True)
class PatternRegion:
    """A diagonal pattern applied to a contiguous run of row segments.

    Attributes
    ----------
    pattern:
        The :class:`DiagonalPattern`.
    start_row:
        SR — first row covered (a multiple of ``mrows``).
    num_segments:
        NRS — number of row segments covered.
    mrows:
        Row-segment size.
    ncols:
        Matrix column count (needed to reason about diagonal extents).
    """

    pattern: DiagonalPattern
    start_row: int
    num_segments: int
    mrows: int
    ncols: int

    def __post_init__(self):
        if self.start_row < 0 or self.start_row % self.mrows != 0:
            raise ValueError(
                f"start_row {self.start_row} must be a non-negative multiple of mrows={self.mrows}"
            )
        if self.num_segments <= 0:
            raise ValueError("a region must cover at least one row segment")

    # -- Table II quantities ------------------------------------------------
    @property
    def nrs(self) -> int:
        """NRS — number of row segments."""
        return self.num_segments

    @property
    def ndiags(self) -> int:
        """NDias — diagonals in the pattern."""
        return self.pattern.ndiags

    @property
    def nnz_per_segment(self) -> int:
        """NNzRS — stored slots per row segment (NDias x mrows)."""
        return self.ndiags * self.mrows

    @property
    def num_rows(self) -> int:
        return self.num_segments * self.mrows

    @property
    def end_row(self) -> int:
        """One past the last covered row (may exceed nrows for the final,
        padded segment)."""
        return self.start_row + self.num_rows

    @property
    def colv(self) -> Tuple[int, ...]:
        """Colv_{p,d} — column index of each diagonal at ``start_row``.

        Negative values are legal (the diagonal enters the matrix a few
        rows below the start row); the kernels clamp the x access and
        rely on the corresponding fill slot holding 0.
        """
        return tuple(self.start_row + off for off in self.pattern.offsets)

    @property
    def stored_slots(self) -> int:
        """Value slots this region occupies in ``crsd_dia_val``."""
        return self.num_segments * self.nnz_per_segment

    def contains_row(self, row: int) -> bool:
        """Does this region cover ``row``?"""
        return self.start_row <= row < self.end_row

    def segment_of_row(self, row: int) -> int:
        """Local segment index of ``row`` within the region."""
        if not self.contains_row(row):
            raise ValueError(f"row {row} not in region [{self.start_row},{self.end_row})")
        return (row - self.start_row) // self.mrows

    def __str__(self) -> str:
        return (
            f"Region(SR={self.start_row}, NRS={self.num_segments}, "
            f"pattern={self.pattern})"
        )


def matrix_signature(regions: Sequence[PatternRegion]) -> str:
    """The paper's ``matrix = {dia-pattern1, ...}`` string."""
    return "{" + ", ".join(str(r.pattern) for r in regions) + "}"


def distinct_patterns(regions: Sequence[PatternRegion]) -> List[DiagonalPattern]:
    """Distinct patterns in region order (num_dia_patterns counts these)."""
    seen = {}
    for r in regions:
        key = (r.pattern.signature, r.pattern.offsets)
        if key not in seen:
            seen[key] = r.pattern
    return list(seen.values())

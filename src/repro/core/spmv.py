"""Work-item-level interpreted SpMV for CRSD (Section III-B formulas).

:meth:`~repro.core.crsd.CRSDMatrix.matvec` is the fast vectorised
reference.  This module instead executes the *exact* per-work-item
index arithmetic the paper derives — the flat-slab location

``sum_{i<p}(NRS_i*NNzRS_i) + (group_id - sum_{i<p}NRS_i)*NNzRS_p
+ d*mrows + local_id``

and the source-vector index ``Colv_{p,d} + (group_id -
sum_{i<p}NRS_i)*mrows + local_id`` — one scalar work-item at a time.
It exists to (a) document the formulas executably, (b) cross-check the
code generator, whose emitted codelets must compute identical indices,
and (c) serve as the *interpreted* CRSD baseline of ablation A4, which
reads ``crsd_dia_index`` at SpMV time instead of baking it in.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.crsd import CRSDMatrix
from repro.formats.base import check_vector


def region_of_group(crsd: CRSDMatrix, group_id: int) -> Tuple[int, int]:
    """Map a work-group id to ``(p, local_segment)``.

    Implements the paper's membership condition
    ``sum_{i<p} NRS_i <= group_id < sum_{i<=p} NRS_i``.
    """
    acc = 0
    for p, region in enumerate(crsd.regions):
        if acc <= group_id < acc + region.num_segments:
            return p, group_id - acc
        acc += region.num_segments
    raise IndexError(f"group_id {group_id} out of range (total segments {acc})")


def total_work_groups(crsd: CRSDMatrix) -> int:
    """Work-groups launched for the diagonal part: one per row segment
    of every region."""
    return sum(r.num_segments for r in crsd.regions)


def spmv_work_item(
    crsd: CRSDMatrix, x: np.ndarray, group_id: int, local_id: int
) -> Tuple[int, float]:
    """Compute one work-item's ``(row, partial_y)`` for the diagonal part.

    Returns the destination row (may be >= nrows for tail padding — the
    caller must guard the store, as the generated kernel does) and the
    accumulated value.
    """
    p, seg = region_of_group(crsd, group_id)
    region = crsd.regions[p]
    mrows = region.mrows
    if not 0 <= local_id < mrows:
        raise IndexError(f"local_id {local_id} out of range [0, {mrows})")
    base = crsd.region_base(p)
    colv = region.colv
    acc = 0.0
    for d in range(region.ndiags):
        loc = base + seg * region.nnz_per_segment + d * mrows + local_id
        xi = colv[d] + seg * mrows + local_id
        v = float(crsd.dia_val[loc])
        if 0 <= xi < crsd.ncols:
            acc += v * float(x[xi])
        # else: the slot is a fill zero by construction; contributes 0
    row = region.start_row + seg * mrows + local_id
    return row, acc


def spmv_interpreted(
    crsd: CRSDMatrix, x: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Full SpMV via per-work-item interpretation (slow; tests only)."""
    x = check_vector(x, crsd.ncols)
    y = out if out is not None else np.zeros(crsd.nrows, dtype=np.float64)
    if out is not None:
        y[:] = 0.0
    for gid in range(total_work_groups(crsd)):
        p, _ = region_of_group(crsd, gid)
        mrows = crsd.regions[p].mrows
        for lid in range(mrows):
            row, acc = spmv_work_item(crsd, x, gid, lid)
            if row < crsd.nrows:
                y[row] = acc
    _scatter_interpreted(crsd, x, y)
    return y


def _scatter_interpreted(crsd: CRSDMatrix, x: np.ndarray, y: np.ndarray) -> None:
    """Scalar ELL pass over the scatter rows (executed after the
    diagonal part; overwrites)."""
    for i in range(crsd.num_scatter_rows):
        acc = 0.0
        for k in range(crsd.num_scatter_width):
            acc += float(crsd.scatter_val[i, k]) * float(
                x[int(crsd.scatter_colval[i, k])]
            )
        y[int(crsd.scatter_rowno[i])] = acc


def index_trace(crsd: CRSDMatrix, group_id: int, local_id: int) -> List[dict]:
    """The (slab location, x index) pairs a work-item touches, one dict
    per diagonal — used to validate generated codelets index-for-index."""
    p, seg = region_of_group(crsd, group_id)
    region = crsd.regions[p]
    base = crsd.region_base(p)
    out = []
    for d, off in enumerate(region.pattern.offsets):
        out.append(
            {
                "region": p,
                "diagonal": d,
                "offset": off,
                "slab_index": base
                + seg * region.nnz_per_segment
                + d * region.mrows
                + local_id,
                "x_index": region.colv[d] + seg * region.mrows + local_id,
            }
        )
    return out

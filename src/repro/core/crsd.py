"""CRSD — Compressed Row Segment with Diagonal-pattern (Section II-D).

The format stores two populations separately:

- **Diagonal nonzeros** live in one flat slab ``crsd_dia_val``.  Within
  a pattern region the slab is ordered ``[segment][diagonal][row]``; the
  nonzeros of one diagonal within one segment are contiguous, and one
  segment's storage unit is contiguous — exactly the Fig. 4 layout.
  Index metadata (the pattern list ``matrix`` and ``crsd_dia_index``
  holding SR/NRS/Colv per region) describes the slab; the code
  generator bakes it into the kernel so it is never transferred to the
  device at SpMV time.
- **Scatter rows** — whole rows containing at least one scatter point —
  are duplicated into a small ELL side structure (``scatter_rowno``,
  ``scatter_colval``, ``scatter_val``).  The diagonal kernel runs first
  and the scatter kernel then *overwrites* those rows' results, which
  both preserves the row's sequential floating-point order and keeps
  the diagonal codelets free of special cases.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.analysis import StructureAnalysis, analyze_structure
from repro.core.pattern import PatternRegion, distinct_patterns, matrix_signature
from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    FormatError,
    SparseFormat,
    check_vector,
)
from repro.formats.coo import COOMatrix

#: wavefront (warp) width the default build aligns row segments to.
DEFAULT_WAVEFRONT = 32


def compatible_wavefront(mrows: int) -> int:
    """The largest wavefront width not exceeding
    :data:`DEFAULT_WAVEFRONT` that divides ``mrows``.

    Entry points taking a free-form ``mrows`` (CLI, bench runner,
    autotuner grids) use this to build a valid
    :class:`CRSDBuildParams` for sub-wavefront segment sizes instead of
    tripping the ``mrows % wavefront_size`` validation.
    """
    return math.gcd(int(mrows), DEFAULT_WAVEFRONT)


@dataclass(frozen=True)
class CRSDBuildParams:
    """Tunables of the CRSD construction (Section II).

    Attributes
    ----------
    mrows:
        Row-segment size; the paper requires a multiple of the
        wavefront size for fully coalesced accesses.
    idle_fill_max_rows:
        A zero run of at most this many rows inside a diagonal is
        zero-filled (the paper fills the single zero at the v43
        position of Fig. 2); a longer run is an idle section that
        breaks the diagonal pattern.  ``None`` means ``mrows``.
    detect_scatter:
        Extract isolated single nonzeros into the ELL side structure.
    wavefront_size:
        Only used for the alignment validation: ``mrows`` must be a
        multiple of it so a segment's lanes fill whole wavefronts.
        Pass a smaller value (e.g. ``wavefront_size=4`` with
        ``mrows=4``) to build deliberately narrow segments.
    """

    mrows: int = 64
    idle_fill_max_rows: int | None = None
    detect_scatter: bool = True
    wavefront_size: int = DEFAULT_WAVEFRONT

    def __post_init__(self):
        if self.mrows <= 0:
            raise ValueError(f"mrows must be positive, got {self.mrows}")
        if self.wavefront_size <= 0:
            raise ValueError(
                f"wavefront_size must be positive, got {self.wavefront_size}"
            )
        if self.mrows % self.wavefront_size != 0:
            raise ValueError(
                f"mrows={self.mrows} is not a multiple of "
                f"wavefront_size={self.wavefront_size}; segment rows must "
                "fill whole wavefronts for coalesced accesses (Section II)"
            )
        if self.idle_fill_max_rows is not None and self.idle_fill_max_rows < 0:
            raise ValueError("idle_fill_max_rows must be >= 0")


class CRSDMatrix(SparseFormat):
    """A matrix stored in CRSD format.

    Build with :meth:`from_coo` / :meth:`from_dense`; direct
    construction from pre-computed arrays is supported for tests and
    deserialization.
    """

    name = "crsd"

    def __init__(
        self,
        shape: Tuple[int, int],
        params: CRSDBuildParams,
        regions: Tuple[PatternRegion, ...],
        dia_val: np.ndarray,
        scatter_rowno: np.ndarray,
        scatter_colval: np.ndarray,
        scatter_val: np.ndarray,
        scatter_occupancy: np.ndarray,
        nnz: int,
        analysis: Optional[StructureAnalysis] = None,
    ):
        super().__init__(shape)
        self.params = params
        self.regions = tuple(regions)
        self.dia_val = np.asarray(dia_val, dtype=VALUE_DTYPE)
        self.scatter_rowno = np.asarray(scatter_rowno, dtype=INDEX_DTYPE)
        self.scatter_colval = np.asarray(scatter_colval, dtype=INDEX_DTYPE)
        self.scatter_val = np.asarray(scatter_val, dtype=VALUE_DTYPE)
        self.scatter_occupancy = np.asarray(scatter_occupancy, dtype=bool)
        self._nnz = int(nnz)
        self.analysis = analysis

        expected = sum(r.stored_slots for r in self.regions)
        if self.dia_val.size != expected:
            raise FormatError(
                f"dia_val has {self.dia_val.size} slots, regions describe {expected}"
            )
        if not (
            self.scatter_colval.shape
            == self.scatter_val.shape
            == self.scatter_occupancy.shape
        ):
            raise FormatError("scatter arrays disagree in shape")
        if self.scatter_colval.ndim != 2 or (
            self.scatter_colval.shape[0] != self.scatter_rowno.size
        ):
            raise FormatError("scatter arrays must be (num_scatter_rows, width)")
        # region bases into the flat slab
        bases = np.zeros(len(self.regions) + 1, dtype=np.int64)
        np.cumsum([r.stored_slots for r in self.regions], out=bases[1:])
        self._region_bases = bases

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls, coo: COOMatrix, params: Optional[CRSDBuildParams] = None, **kwargs
    ) -> "CRSDMatrix":
        """Store a COO matrix in CRSD format.

        Keyword arguments are forwarded to :class:`CRSDBuildParams`
        when ``params`` is not given, e.g. ``from_coo(coo, mrows=32)``.
        """
        if params is None:
            params = CRSDBuildParams(**kwargs)
        elif kwargs:
            raise TypeError("pass either params or keyword tunables, not both")
        analysis = analyze_structure(
            coo,
            mrows=params.mrows,
            idle_fill_max_rows=params.idle_fill_max_rows,
            detect_scatter=params.detect_scatter,
        )
        dia_val = _fill_slab(coo, analysis)
        rowno, colval, val, occ = _build_scatter_ell(coo, analysis.scatter_rows)
        return cls(
            shape=coo.shape,
            params=params,
            regions=analysis.regions,
            dia_val=dia_val,
            scatter_rowno=rowno,
            scatter_colval=colval,
            scatter_val=val,
            scatter_occupancy=occ,
            nnz=coo.nnz,
            analysis=analysis,
        )

    @classmethod
    def from_dense(cls, dense: np.ndarray, **kwargs) -> "CRSDMatrix":
        return cls.from_coo(COOMatrix.from_dense(dense), **kwargs)

    # ------------------------------------------------------------------
    # SparseFormat surface
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def stored_elements(self) -> int:
        return int(self.dia_val.size + self.scatter_val.size)

    @property
    def mrows(self) -> int:
        return self.params.mrows

    @property
    def num_scatter_rows(self) -> int:
        return int(self.scatter_rowno.size)

    @property
    def num_scatter_width(self) -> int:
        return int(self.scatter_colval.shape[1]) if self.scatter_colval.ndim == 2 else 0

    @property
    def num_dia_patterns(self) -> int:
        """Count of *distinct* diagonal patterns (paper's
        num_dia_patterns; e.g. 24 for s3dkt3m2-like structure)."""
        return len(distinct_patterns(self.regions))

    @property
    def matrix_signature(self) -> str:
        """The ``matrix = {...}`` pattern list of Section II-B."""
        return matrix_signature(self.regions)

    def region_base(self, p: int) -> int:
        """Slab offset of region ``p``'s first value."""
        return int(self._region_bases[p])

    def region_slab(self, p: int) -> np.ndarray:
        """Region ``p``'s values as a ``(NRS, NDias, mrows)`` view."""
        r = self.regions[p]
        lo = self._region_bases[p]
        return self.dia_val[lo : lo + r.stored_slots].reshape(
            r.num_segments, r.ndiags, r.mrows
        )

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Reference y = A @ x: diagonal part first, then the scatter
        kernel overwrites scatter rows (Section III-B execution order)."""
        x = check_vector(x, self.ncols)
        y = out if out is not None else np.zeros(self.nrows, dtype=np.result_type(self.dia_val, x))
        if out is not None:
            y[:] = 0.0
        for p, region in enumerate(self.regions):
            self._region_matvec(p, region, x, y)
        self._scatter_overwrite(x, y)
        return y

    def to_coo(self) -> COOMatrix:
        """Reconstruct the mathematical matrix.

        Non-scatter rows come from the diagonal slab (nonzero slots);
        scatter rows come from the ELL side structure, which stores them
        authoritatively and in full.
        """
        rows_l: List[np.ndarray] = []
        cols_l: List[np.ndarray] = []
        vals_l: List[np.ndarray] = []
        scatter_set = set(self.scatter_rowno.tolist())
        for p, region in enumerate(self.regions):
            slab = self.region_slab(p)  # (NRS, NDias, mrows)
            offs = np.asarray(region.pattern.offsets, dtype=np.int64)
            seg_i, dia_i, row_i = np.nonzero(slab)
            rows = region.start_row + seg_i * region.mrows + row_i
            cols = rows + offs[dia_i]
            vals = slab[seg_i, dia_i, row_i]
            inside = (
                (rows < self.nrows)
                & (cols >= 0)
                & (cols < self.ncols)
                & ~np.isin(rows, self.scatter_rowno)
            )
            rows_l.append(rows[inside])
            cols_l.append(cols[inside])
            vals_l.append(vals[inside])
        if self.num_scatter_rows:
            occ = self.scatter_occupancy
            r2d = np.broadcast_to(
                self.scatter_rowno.astype(np.int64)[:, None], occ.shape
            )
            rows_l.append(r2d[occ])
            cols_l.append(self.scatter_colval.astype(np.int64)[occ])
            vals_l.append(self.scatter_val[occ])
        if rows_l:
            rows = np.concatenate(rows_l)
            cols = np.concatenate(cols_l)
            vals = np.concatenate(vals_l)
        else:
            rows = cols = vals = np.empty(0)
        return COOMatrix(rows, cols, vals, self.shape)

    def array_inventory(self) -> Dict[str, np.ndarray]:
        """Device-resident arrays.

        With generated codelets only the value slabs travel to the
        device (the index metadata is baked into the kernel source) —
        this is the paper's memory-pressure reduction.  The interpreted
        fallback additionally reads :meth:`crsd_dia_index`.
        """
        return {
            "crsd_dia_val": self.dia_val,
            "scatter_rowno": self.scatter_rowno,
            "scatter_colval": self.scatter_colval,
            "scatter_val": self.scatter_val,
        }

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Stable content hash of the mathematical matrix (lazy, cached).

        Equals :func:`repro.core.serialize.fingerprint` of the COO this
        format was built from, so serving-layer cache keys and profile
        artifacts agree on the matrix identity regardless of carrier.
        """
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            from repro.core.serialize import fingerprint as _fp

            fp = _fp(self)
            self._fingerprint = fp
        return fp

    def __repr__(self) -> str:
        return (
            f"<CRSDMatrix shape={self.shape} nnz={self.nnz} "
            f"regions={len(self.regions)} "
            f"scatter_rows={self.num_scatter_rows} "
            f"fp={self.fingerprint}>"
        )

    # ------------------------------------------------------------------
    # index metadata (Fig. 4)
    # ------------------------------------------------------------------
    def crsd_dia_index(self) -> np.ndarray:
        """The ``crsd_dia_index`` array of Fig. 4.

        Per region: ``SR, NRS`` then the column values — one per NAD
        diagonal but only the *first* column of each AD group.
        """
        out: List[int] = []
        for region in self.regions:
            out.append(region.start_row)
            out.append(region.num_segments)
            for g in region.pattern.groups:
                heads = g.offsets if g.kind.value == "NAD" else g.offsets[:1]
                out.extend(region.start_row + o for o in heads)
        return np.asarray(out, dtype=INDEX_DTYPE)

    def fig4_dump(self) -> str:
        """Human-readable rendering in the style of Fig. 4."""
        lines = [
            f"num_scatter_rows = {self.num_scatter_rows};",
            f"num_dia_patterns = {self.num_dia_patterns};",
            f"num_scatter_width = {self.num_scatter_width};",
            "",
            f"matrix = {self.matrix_signature}",
            "crsd_dia_index = {"
            + ", ".join(str(int(v)) for v in self.crsd_dia_index())
            + "}",
        ]
        chunks = []
        for p, region in enumerate(self.regions):
            slab = self.region_slab(p)
            seg_strs = []
            for s in range(region.num_segments):
                unit_strs = []
                pos = 0
                for g in region.pattern.groups:
                    unit = slab[s, pos : pos + g.ndiags].ravel()
                    unit_strs.append("(" + ",".join(_fmt(v) for v in unit) + ")")
                    pos += g.ndiags
                seg_strs.append("{" + ",".join(unit_strs) + "}")
            chunks.append(", ".join(seg_strs))
        lines.append("crsd_dia_val = {" + " | ".join(chunks) + "}")
        lines.append(
            "scatter_rowno = {"
            + ", ".join(f"R{int(r)}" for r in self.scatter_rowno)
            + "}"
        )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # statistics used by the performance model and the benches
    # ------------------------------------------------------------------
    @property
    def fill_zeros(self) -> int:
        """Explicit zeros stored in the diagonal slab (padding + idle
        fill + scatter removals)."""
        return int(self.dia_val.size - np.count_nonzero(self.dia_val))

    @property
    def adjacent_slot_fraction(self) -> float:
        """Fraction of diagonal slots living in AD groups — the share of
        the work that benefits from local-memory reuse of ``x``."""
        total = ad = 0
        for r in self.regions:
            total += r.stored_slots
            ad += r.num_segments * r.pattern.n_adjacent_diags * r.mrows
        return ad / total if total else 0.0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _region_matvec(
        self, p: int, region: PatternRegion, x: np.ndarray, y: np.ndarray
    ) -> None:
        slab = self.region_slab(p)  # (NRS, NDias, mrows)
        rows = (
            region.start_row
            + np.arange(region.num_segments, dtype=np.int64)[:, None] * region.mrows
            + np.arange(region.mrows, dtype=np.int64)[None, :]
        )  # (NRS, mrows)
        acc = np.zeros(rows.shape, dtype=y.dtype)
        for d, off in enumerate(region.pattern.offsets):
            xi = np.clip(rows + off, 0, self.ncols - 1)
            acc += slab[:, d, :] * x[xi]
        valid = rows < self.nrows
        y[rows[valid]] = acc[valid]

    def _scatter_overwrite(self, x: np.ndarray, y: np.ndarray) -> None:
        if not self.num_scatter_rows:
            return
        vals = self.scatter_val * x[self.scatter_colval.astype(np.int64)]
        y[self.scatter_rowno.astype(np.int64)] = vals.sum(axis=1)


def _fill_slab(coo: COOMatrix, analysis: StructureAnalysis) -> np.ndarray:
    """Place every non-scatter entry into the flat ``crsd_dia_val`` slab."""
    regions = analysis.regions
    total = sum(r.stored_slots for r in regions)
    slab = np.zeros(total, dtype=VALUE_DTYPE)
    if coo.nnz == 0 or not regions:
        return slab

    keep = ~analysis.scatter_mask
    rows = coo.rows.astype(np.int64)[keep]
    cols = coo.cols.astype(np.int64)[keep]
    vals = coo.vals[keep]
    offs = cols - rows

    # sort the diagonal entry stream by (offset, row) for slice lookup
    order = np.lexsort((rows, offs))
    rows, offs, vals = rows[order], offs[order], vals[order]

    base = 0
    for region in regions:
        mrows = region.mrows
        for d, off in enumerate(region.pattern.offsets):
            lo = np.searchsorted(offs, off, side="left")
            hi = np.searchsorted(offs, off, side="right")
            r_lo = lo + np.searchsorted(rows[lo:hi], region.start_row, side="left")
            r_hi = lo + np.searchsorted(rows[lo:hi], region.end_row, side="left")
            if r_hi > r_lo:
                rr = rows[r_lo:r_hi] - region.start_row
                seg_local = rr // mrows
                pos = (
                    base
                    + seg_local * region.nnz_per_segment
                    + d * mrows
                    + rr % mrows
                )
                slab[pos] = vals[r_lo:r_hi]
        base += region.stored_slots
    return slab


def _build_scatter_ell(
    coo: COOMatrix, scatter_rows: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """ELL side structure holding the *complete* scatter rows."""
    if scatter_rows.size == 0:
        z = np.zeros((0, 0))
        return (
            np.empty(0, dtype=INDEX_DTYPE),
            z.astype(INDEX_DTYPE),
            z.astype(VALUE_DTYPE),
            z.astype(bool),
        )
    member = np.isin(coo.rows.astype(np.int64), scatter_rows)
    rows = coo.rows.astype(np.int64)[member]
    cols = coo.cols.astype(np.int64)[member]
    vals = coo.vals[member]
    local = np.searchsorted(scatter_rows, rows)
    lengths = np.bincount(local, minlength=scatter_rows.size)
    width = int(lengths.max())
    colval = np.zeros((scatter_rows.size, width), dtype=INDEX_DTYPE)
    val = np.zeros((scatter_rows.size, width), dtype=VALUE_DTYPE)
    occ = np.zeros((scatter_rows.size, width), dtype=bool)
    starts = np.zeros(scatter_rows.size, dtype=np.int64)
    np.cumsum(lengths[:-1], out=starts[1:])
    within = np.arange(rows.size) - starts[local]
    colval[local, within] = cols
    val[local, within] = vals
    occ[local, within] = True
    return scatter_rows.astype(INDEX_DTYPE), colval, val, occ


def _fmt(v: float) -> str:
    return "0" if v == 0 else f"{v:g}"

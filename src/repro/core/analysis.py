"""Structure analysis: scatter points, idle sections, pattern regions.

This module turns a COO matrix into the structural description CRSD
stores (Section II-C):

1. **Sectioning / idle processing** — per diagonal, consecutive
   nonzeros separated by a zero run of at most ``idle_fill_max_rows``
   rows stay in one *section* (the zeros will be filled, like the v43
   position in the paper's Fig. 2); a longer zero run is an *idle
   section* that **breaks** the diagonal (like the ±200 diagonals of
   Fig. 1/3 and the main diagonal of Fig. 2).
2. **Scatter-point detection** — a section containing exactly one
   nonzero is a *scatter point* (v55 in Fig. 2): it leaves the diagonal
   structure, and its whole row is stored in the side ELL sub-matrix so
   that the row's floating-point evaluation order is preserved.
3. **Presence map** — every multi-nonzero section activates its
   diagonal in each row segment it overlaps.
4. **Region formation** — consecutive segments with identical active
   diagonal sets merge into one :class:`~repro.core.pattern.PatternRegion`
   (the pattern itself is derived by AD/NAD grouping of the active
   offsets).

The output guarantees the CRSD correctness invariant: every non-scatter
nonzero lies on a diagonal that is active in its segment's region, and
every scatter nonzero lies in a row that the ELL side stores in full.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.pattern import DiagonalPattern, PatternRegion
from repro.core.segments import SegmentGrid
from repro.formats.coo import COOMatrix


@dataclass(frozen=True)
class StructureAnalysis:
    """Result of :func:`analyze_structure`.

    Attributes
    ----------
    grid:
        The row-segment grid.
    offsets:
        Sorted unique diagonal offsets occupied anywhere in the matrix.
    presence:
        Boolean ``(len(offsets), num_segments)`` — diagonal active in
        segment after sectioning and scatter removal.
    scatter_mask:
        Boolean per COO entry — True for entries classified as scatter
        points.
    scatter_rows:
        Sorted unique rows containing at least one scatter point.
    regions:
        Pattern regions in ascending row order (non-overlapping; empty
        segments are covered by no region).
    idle_broken_gaps:
        Number of zero runs long enough to break a diagonal.
    num_sections:
        Total diagonal sections (multi-nonzero ones) kept in the
        diagonal structure.
    """

    grid: SegmentGrid
    offsets: np.ndarray
    presence: np.ndarray
    scatter_mask: np.ndarray
    scatter_rows: np.ndarray
    regions: Tuple[PatternRegion, ...]
    idle_broken_gaps: int
    num_sections: int

    @property
    def num_scatter_points(self) -> int:
        return int(self.scatter_mask.sum())

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    def region_of_row(self, row: int):
        """The region covering ``row``, or ``None`` if the row's segment
        is empty."""
        for r in self.regions:
            if r.contains_row(row):
                return r
        return None


def analyze_structure(
    coo: COOMatrix,
    mrows: int,
    idle_fill_max_rows: int | None = None,
    detect_scatter: bool = True,
) -> StructureAnalysis:
    """Run the Section II pipeline on a COO matrix.

    Parameters
    ----------
    coo:
        Input matrix (canonical COO).
    mrows:
        Row-segment size; the paper recommends a multiple of the
        wavefront size.
    idle_fill_max_rows:
        A zero run of at most this many rows inside a diagonal is
        filled; a longer run breaks the diagonal.  Defaults to
        ``mrows`` (one segment's worth of fill).
    detect_scatter:
        When False, single-nonzero sections stay in the diagonal
        structure instead of moving to the ELL side (ablation A5).
    """
    grid = SegmentGrid(coo.nrows, mrows)
    nsegs = grid.num_segments
    if idle_fill_max_rows is None:
        idle_fill_max_rows = mrows
    if idle_fill_max_rows < 0:
        raise ValueError("idle_fill_max_rows must be >= 0")

    if coo.nnz == 0:
        return StructureAnalysis(
            grid=grid,
            offsets=np.empty(0, dtype=np.int64),
            presence=np.zeros((0, nsegs), dtype=bool),
            scatter_mask=np.zeros(0, dtype=bool),
            scatter_rows=np.empty(0, dtype=np.int64),
            regions=(),
            idle_broken_gaps=0,
            num_sections=0,
        )

    entry_offsets = coo.offsets_of_entries()
    offsets = np.unique(entry_offsets)

    rows_all = coo.rows.astype(np.int64)
    order = np.lexsort((rows_all, entry_offsets))
    s_offs = entry_offsets[order]
    s_rows = rows_all[order]

    # slice boundaries of each diagonal in the sorted stream
    diag_starts = np.searchsorted(s_offs, offsets, side="left")
    diag_ends = np.searchsorted(s_offs, offsets, side="right")

    presence = np.zeros((offsets.size, nsegs), dtype=bool)
    scatter_sorted = np.zeros(coo.nnz, dtype=bool)
    idle_broken = 0
    num_sections = 0

    for d in range(offsets.size):
        lo, hi = int(diag_starts[d]), int(diag_ends[d])
        r = s_rows[lo:hi]
        if r.size == 0:
            continue
        gaps = np.diff(r) - 1
        breaks = np.flatnonzero(gaps > idle_fill_max_rows)
        idle_broken += int(breaks.size)
        sec_starts = np.concatenate([[0], breaks + 1])
        sec_ends = np.concatenate([breaks + 1, [r.size]])
        for a, b in zip(sec_starts, sec_ends):
            if detect_scatter and b - a == 1:
                scatter_sorted[lo + a] = True
            else:
                num_sections += 1
                presence[d, r[a] // mrows : r[b - 1] // mrows + 1] = True

    scatter_mask = np.zeros(coo.nnz, dtype=bool)
    scatter_mask[order] = scatter_sorted
    scatter_rows = np.unique(rows_all[scatter_mask])

    regions = _form_regions(offsets, presence, grid, coo.ncols)

    return StructureAnalysis(
        grid=grid,
        offsets=offsets,
        presence=presence,
        scatter_mask=scatter_mask,
        scatter_rows=scatter_rows,
        regions=tuple(regions),
        idle_broken_gaps=idle_broken,
        num_sections=num_sections,
    )


def _form_regions(
    offsets: np.ndarray,
    presence: np.ndarray,
    grid: SegmentGrid,
    ncols: int,
) -> List[PatternRegion]:
    """Merge consecutive segments with identical active sets into regions."""
    nsegs = grid.num_segments
    regions: List[PatternRegion] = []
    if offsets.size == 0 or nsegs == 0:
        return regions
    if nsegs > 1:
        changed = np.any(presence[:, 1:] != presence[:, :-1], axis=0)
        boundaries = np.concatenate([[0], np.flatnonzero(changed) + 1, [nsegs]])
    else:
        boundaries = np.array([0, nsegs])
    for s0, s1 in zip(boundaries[:-1], boundaries[1:]):
        active = offsets[presence[:, s0]]
        if active.size == 0:
            continue  # empty segments belong to no region
        pattern = DiagonalPattern.from_offsets(active.tolist())
        regions.append(
            PatternRegion(
                pattern=pattern,
                start_row=int(s0) * grid.mrows,
                num_segments=int(s1 - s0),
                mrows=grid.mrows,
                ncols=ncols,
            )
        )
    return regions

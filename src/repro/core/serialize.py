"""Persist CRSD matrices to disk (.npz).

CRSD construction (analysis + slab fill + codegen) is the expensive,
once-per-matrix step; iterative applications amortise it by storing
the built format.  The file carries every array of Fig. 4 plus the
region metadata needed to regenerate codelets bit-identically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.crsd import CRSDBuildParams, CRSDMatrix
from repro.core.pattern import DiagonalPattern, PatternRegion

#: format marker + version for forward compatibility
MAGIC = "repro-crsd"
VERSION = 1


def save_crsd(crsd: CRSDMatrix, path: Union[str, Path]) -> None:
    """Write a CRSD matrix to ``path`` (numpy .npz)."""
    meta = {
        "magic": MAGIC,
        "version": VERSION,
        "shape": list(crsd.shape),
        "nnz": crsd.nnz,
        "params": {
            "mrows": crsd.params.mrows,
            "idle_fill_max_rows": crsd.params.idle_fill_max_rows,
            "detect_scatter": crsd.params.detect_scatter,
            "wavefront_size": crsd.params.wavefront_size,
        },
        "regions": [
            {
                "start_row": r.start_row,
                "num_segments": r.num_segments,
                "mrows": r.mrows,
                "ncols": r.ncols,
                "offsets": list(r.pattern.offsets),
            }
            for r in crsd.regions
        ],
    }
    np.savez_compressed(
        Path(path),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        dia_val=crsd.dia_val,
        scatter_rowno=crsd.scatter_rowno,
        scatter_colval=crsd.scatter_colval,
        scatter_val=crsd.scatter_val,
        scatter_occupancy=crsd.scatter_occupancy,
    )


def load_crsd(path: Union[str, Path]) -> CRSDMatrix:
    """Read a CRSD matrix written by :func:`save_crsd`."""
    with np.load(Path(path)) as data:
        try:
            meta = json.loads(bytes(data["meta"]).decode())
        except (KeyError, ValueError) as exc:
            raise ValueError(f"{path}: not a repro CRSD file") from exc
        if meta.get("magic") != MAGIC:
            raise ValueError(f"{path}: not a repro CRSD file")
        if meta.get("version") != VERSION:
            raise ValueError(
                f"{path}: unsupported CRSD file version {meta.get('version')}"
            )
        params = CRSDBuildParams(**meta["params"])
        regions = tuple(
            PatternRegion(
                pattern=DiagonalPattern.from_offsets(r["offsets"]),
                start_row=r["start_row"],
                num_segments=r["num_segments"],
                mrows=r["mrows"],
                ncols=r["ncols"],
            )
            for r in meta["regions"]
        )
        return CRSDMatrix(
            shape=tuple(meta["shape"]),
            params=params,
            regions=regions,
            dia_val=data["dia_val"],
            scatter_rowno=data["scatter_rowno"],
            scatter_colval=data["scatter_colval"],
            scatter_val=data["scatter_val"],
            scatter_occupancy=data["scatter_occupancy"],
            nnz=meta["nnz"],
        )

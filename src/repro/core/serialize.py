"""Persist CRSD matrices to disk (.npz) and fingerprint them.

CRSD construction (analysis + slab fill + codegen) is the expensive,
once-per-matrix step; iterative applications amortise it by storing
the built format.  The file carries every array of Fig. 4 plus the
region metadata needed to regenerate codelets bit-identically.

:func:`fingerprint` is the identity half of that amortisation story:
a stable content hash of the *mathematical* matrix, independent of the
carrier format, so cache keys (the serving layer's
:class:`~repro.serve.cache.PlanCache`), profile artifacts and saved
files all agree on which matrix they are talking about.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.core.crsd import CRSDBuildParams, CRSDMatrix
from repro.core.pattern import DiagonalPattern, PatternRegion

#: format marker + version for forward compatibility
MAGIC = "repro-crsd"
VERSION = 1

#: domain tag hashed into every fingerprint; bump if the canonical
#: byte layout below ever changes
FINGERPRINT_DOMAIN = b"repro-matrix-fp/v1"

#: domain tags of the pattern/value halves of the split fingerprint
PATTERN_FINGERPRINT_DOMAIN = b"repro-matrix-fp-pattern/v1"
VALUE_FINGERPRINT_DOMAIN = b"repro-matrix-fp-values/v1"

#: hex digits of the (truncated) fingerprint
FINGERPRINT_LEN = 16


@dataclass(frozen=True)
class MatrixFingerprints:
    """The three content hashes of one matrix.

    ``combined`` is the historical :func:`fingerprint` (the
    backward-compatible cache key over shape + coordinates + values);
    ``pattern`` hashes only shape + coordinates, so two matrices with
    the same sparsity structure but different values share it (and can
    share cached plans, codelets and fused callables); ``values``
    hashes only the value array.  ``pattern`` + ``values`` together
    identify the matrix exactly as ``combined`` does.
    """

    combined: str
    pattern: str
    values: str


def fingerprints(matrix) -> MatrixFingerprints:
    """All three content hashes of ``matrix`` in one canonicalisation
    pass (see :func:`fingerprint` for the canonical form and the
    accepted carrier formats)."""
    from repro.api import _as_coo

    # carriers whose *serving identity* differs from the mathematical
    # matrix (e.g. the symmetric half carrier, whose cached plans and
    # codelets are not interchangeable with the full pattern's) declare
    # a variant tag folded into every hash — read off the original
    # object, before the COO coercion erases it
    variant = bytes(getattr(matrix, "fingerprint_variant", b""))
    coo = _as_coo(matrix)
    shape = np.asarray([coo.nrows, coo.ncols], dtype=np.int64).tobytes()
    rows = np.ascontiguousarray(coo.rows, dtype=np.int64).tobytes()
    cols = np.ascontiguousarray(coo.cols, dtype=np.int64).tobytes()
    vals = np.ascontiguousarray(coo.vals, dtype=np.float64).tobytes()
    combined = hashlib.sha256(
        FINGERPRINT_DOMAIN + variant + shape + rows + cols + vals)
    pattern = hashlib.sha256(
        PATTERN_FINGERPRINT_DOMAIN + variant + shape + rows + cols)
    values = hashlib.sha256(VALUE_FINGERPRINT_DOMAIN + variant + vals)
    return MatrixFingerprints(
        combined=combined.hexdigest()[:FINGERPRINT_LEN],
        pattern=pattern.hexdigest()[:FINGERPRINT_LEN],
        values=values.hexdigest()[:FINGERPRINT_LEN])


def fingerprint(matrix) -> str:
    """Stable content hash of a matrix, as a short hex string.

    The hash is computed over the *canonical COO form* — triplets
    sorted row-major with duplicate coordinates summed and explicit
    zeros dropped (exactly what :class:`~repro.formats.coo.COOMatrix`
    construction does) — so it is invariant under the entry order and
    duplicate-splitting of the input, and identical across carrier
    formats: a :class:`~repro.core.crsd.CRSDMatrix` fingerprints the
    same as the COO (or dense array) it was built from.

    Accepts anything :func:`repro.api._as_coo` does: COO, CRSD, any
    :class:`~repro.formats.base.SparseFormat`, a dense 2-D ndarray, or
    a scipy-style object with ``.tocoo()``.
    """
    return fingerprints(matrix).combined


def pattern_fingerprint(matrix) -> str:
    """Content hash of the sparsity *pattern* alone (shape +
    coordinates, values excluded) — equal across same-pattern
    matrices with different values."""
    return fingerprints(matrix).pattern


def value_fingerprint(matrix) -> str:
    """Content hash of the canonical value array alone."""
    return fingerprints(matrix).values


def save_crsd(crsd: CRSDMatrix, path: Union[str, Path]) -> None:
    """Write a CRSD matrix to ``path`` (numpy .npz)."""
    meta = {
        "magic": MAGIC,
        "version": VERSION,
        "shape": list(crsd.shape),
        "nnz": crsd.nnz,
        "params": {
            "mrows": crsd.params.mrows,
            "idle_fill_max_rows": crsd.params.idle_fill_max_rows,
            "detect_scatter": crsd.params.detect_scatter,
            "wavefront_size": crsd.params.wavefront_size,
        },
        "regions": [
            {
                "start_row": r.start_row,
                "num_segments": r.num_segments,
                "mrows": r.mrows,
                "ncols": r.ncols,
                "offsets": list(r.pattern.offsets),
            }
            for r in crsd.regions
        ],
    }
    np.savez_compressed(
        Path(path),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        dia_val=crsd.dia_val,
        scatter_rowno=crsd.scatter_rowno,
        scatter_colval=crsd.scatter_colval,
        scatter_val=crsd.scatter_val,
        scatter_occupancy=crsd.scatter_occupancy,
    )


def load_crsd(path: Union[str, Path]) -> CRSDMatrix:
    """Read a CRSD matrix written by :func:`save_crsd`."""
    with np.load(Path(path)) as data:
        try:
            meta = json.loads(bytes(data["meta"]).decode())
        except (KeyError, ValueError) as exc:
            raise ValueError(f"{path}: not a repro CRSD file") from exc
        if meta.get("magic") != MAGIC:
            raise ValueError(f"{path}: not a repro CRSD file")
        if meta.get("version") != VERSION:
            raise ValueError(
                f"{path}: unsupported CRSD file version {meta.get('version')}"
            )
        params = CRSDBuildParams(**meta["params"])
        regions = tuple(
            PatternRegion(
                pattern=DiagonalPattern.from_offsets(r["offsets"]),
                start_row=r["start_row"],
                num_segments=r["num_segments"],
                mrows=r["mrows"],
                ncols=r["ncols"],
            )
            for r in meta["regions"]
        )
        return CRSDMatrix(
            shape=tuple(meta["shape"]),
            params=params,
            regions=regions,
            dia_val=data["dia_val"],
            scatter_rowno=data["scatter_rowno"],
            scatter_colval=data["scatter_colval"],
            scatter_val=data["scatter_val"],
            scatter_occupancy=data["scatter_occupancy"],
            nnz=meta["nnz"],
        )

"""The paper's contribution: diagonal patterns and the CRSD format.

Section II of the paper in code:

- :mod:`repro.core.grouping`  — adjacent / non-adjacent diagonal groups
- :mod:`repro.core.pattern`   — diagonal patterns and pattern regions
- :mod:`repro.core.segments`  — row-segment grid (``mrows``)
- :mod:`repro.core.analysis`  — scatter-point detection and idle-section
  processing (fill vs. break)
- :mod:`repro.core.crsd`      — the CRSD storage format (Fig. 4 arrays)
- :mod:`repro.core.spmv`      — interpreted reference SpMV for CRSD
"""

from repro.core.grouping import Group, GroupKind, group_offsets
from repro.core.pattern import DiagonalPattern, PatternRegion
from repro.core.segments import SegmentGrid
from repro.core.analysis import StructureAnalysis, analyze_structure
from repro.core.crsd import CRSDMatrix, CRSDBuildParams

__all__ = [
    "Group",
    "GroupKind",
    "group_offsets",
    "DiagonalPattern",
    "PatternRegion",
    "SegmentGrid",
    "StructureAnalysis",
    "analyze_structure",
    "CRSDMatrix",
    "CRSDBuildParams",
]

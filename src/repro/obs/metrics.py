"""Derived metrics: :class:`~repro.ocl.trace.KernelTrace` counters →
the quantities the paper argues with.

Formulas (see ``docs/OBSERVABILITY.md`` for the derivations):

- ``dram_bytes``             = (load_txn + store_txn) × transaction_bytes
- ``useful_bytes``           = load_useful + store_useful
- ``load_coalescing``        = load_useful / (load_txn × transaction_bytes)
- ``store_coalescing``       = store_useful / (store_txn × transaction_bytes)
- ``l2_hit_rate``            = l2_hits / (l2_hits + load_txn)
- ``transactions_per_nnz``   = (load_txn + store_txn) / nnz
- ``divergence_efficiency``  = lanes_useful / lanes_issued
- ``achieved_gflops``        = 2 × nnz / modelled seconds  (paper convention)
- ``roofline_*``             — via :mod:`repro.perf.roofline`:
  arithmetic intensity (flops / DRAM byte), the bandwidth/compute
  ceiling at that intensity, and achieved / ceiling efficiency.

A :class:`MetricRegistry` aggregates one metric set per named run
(e.g. ``crsd/batched/double``) for the exporters.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.trace import KernelTrace

__all__ = ["derive_metrics", "MetricRegistry", "trace_counters"]


def trace_counters(trace: KernelTrace) -> Dict[str, int]:
    """The raw counter set as a plain dict (a copy; never a view)."""
    return dataclasses.asdict(trace)


def derive_metrics(
    trace: KernelTrace,
    device: DeviceSpec = TESLA_C2050,
    precision: str = "double",
    nnz: Optional[int] = None,
    seconds: Optional[float] = None,
) -> Dict[str, float]:
    """Compute the derived metric set for one traced run.

    ``seconds`` is the modelled (or measured) execution time; when
    given, throughput and roofline placement are included.  ``nnz``
    enables the per-nonzero normalisations.
    """
    tb = device.transaction_bytes
    load_txn = trace.global_load_transactions
    store_txn = trace.global_store_transactions
    dram_bytes = (load_txn + store_txn) * tb
    useful = trace.global_load_bytes_useful + trace.global_store_bytes_useful
    metrics: Dict[str, float] = {
        "dram_bytes": float(dram_bytes),
        "useful_bytes": float(useful),
        "load_coalescing": trace.load_coalescing_efficiency(
            transaction_bytes=tb),
        "store_coalescing": trace.store_coalescing_efficiency(
            transaction_bytes=tb),
        "divergence_efficiency": trace.divergence_efficiency,
        "local_bytes": float(trace.local_load_bytes
                             + trace.local_store_bytes),
        "barriers": float(trace.barriers),
        "flops_executed": float(trace.flops),
    }
    l2_total = trace.l2_hits + load_txn
    metrics["l2_hit_rate"] = trace.l2_hits / l2_total if l2_total else 0.0
    if nnz:
        metrics["transactions_per_nnz"] = (load_txn + store_txn) / nnz
        metrics["dram_bytes_per_nnz"] = dram_bytes / nnz
    if seconds and seconds > 0:
        from repro.perf.metrics import effective_bandwidth, gflops
        from repro.perf.roofline import roofline_point

        metrics["seconds"] = seconds
        metrics["effective_bandwidth_gbs"] = effective_bandwidth(
            useful, seconds)
        point = roofline_point(
            "run", trace, seconds, device,
            useful_flops=2 * nnz if nnz else None,
        )
        if nnz:
            metrics["achieved_gflops"] = gflops(nnz, seconds)
        metrics["arithmetic_intensity"] = point.arithmetic_intensity
        metrics["roofline_ceiling_gflops"] = point.ceiling_gflops(precision)
        metrics["roofline_efficiency"] = point.efficiency(precision)
        metrics["memory_bound"] = float(point.memory_bound)
    return metrics


class MetricRegistry:
    """Named metric sets for one profile session.

    Each entry is one run (a format/executor/precision combination, a
    solver, a hybrid half, ...) with its raw counters and derived
    metrics; exporters consume :meth:`rows` / :meth:`to_dict`.
    """

    def __init__(self):
        self._entries: List[Dict[str, Any]] = []

    def record(
        self,
        name: str,
        trace: KernelTrace,
        device: DeviceSpec = TESLA_C2050,
        precision: str = "double",
        nnz: Optional[int] = None,
        seconds: Optional[float] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Derive and store one metric set; returns the stored entry."""
        entry: Dict[str, Any] = {
            "name": name,
            "precision": precision,
            "device": device.name,
            "counters": trace_counters(trace),
            "metrics": derive_metrics(trace, device, precision, nnz, seconds),
        }
        if nnz is not None:
            entry["nnz"] = int(nnz)
        entry.update(extra)
        self._entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    @property
    def entries(self) -> List[Dict[str, Any]]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str) -> Dict[str, Any]:
        """The first entry recorded under ``name`` (KeyError if none)."""
        for e in self._entries:
            if e["name"] == name:
                return e
        raise KeyError(name)

    def rows(self) -> List[Dict[str, Any]]:
        """Flat rows (one per entry) for tabular export: ``name``,
        ``precision`` and every derived metric as columns."""
        rows = []
        for e in self._entries:
            row: Dict[str, Any] = {
                "name": e["name"],
                "precision": e["precision"],
                "device": e["device"],
            }
            if "nnz" in e:
                row["nnz"] = e["nnz"]
            row.update(e["metrics"])
            rows.append(row)
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload: ``{"entries": [...]}`` (entry copies)."""
        return {"entries": [dict(e) for e in self._entries]}

"""Profile reports: one observed run, packaged for humans and exporters.

A :class:`ProfileReport` binds a :class:`~repro.obs.recorder.ProfileSession`
(the span tree) to a :class:`~repro.obs.metrics.MetricRegistry` (the
derived numbers) plus run metadata, and renders every export format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricRegistry
from repro.obs.recorder import ProfileSession

__all__ = ["ProfileReport"]

#: schema tag stamped into every JSON export
PROFILE_SCHEMA = "repro-profile/v1"


@dataclass
class ProfileReport:
    """Everything one ``repro.profile(...)`` call observed."""

    session: ProfileSession
    registry: MetricRegistry
    meta: Dict[str, Any] = field(default_factory=dict)
    #: combinations the sweep could not run, as machine-readable
    #: ``{entry, format, executor, precision, error, reason}`` records
    #: (e.g. DIA/double out of device memory)
    skips: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """The full JSON payload (schema ``repro-profile/v1``)."""
        return {
            "schema": PROFILE_SCHEMA,
            "meta": dict(self.meta),
            "metrics": self.registry.to_dict(),
            "skips": [dict(s) for s in self.skips],
            "session": self.session.to_dict(),
        }

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Human-readable digest: one line per metric entry plus span
        totals per category."""
        lines = []
        name = self.meta.get("matrix", self.session.name)
        lines.append(
            f"profile of {name}: {len(self.session.spans)} spans, "
            f"{len(self.registry)} metric entries"
        )
        for s in self.skips:
            lines.append(
                f"  {s['entry']:<28} skipped: {s['error']} "
                f"({s['reason']})")
        for row in self.registry.rows():
            gf = row.get("achieved_gflops")
            parts = [f"  {row['name']:<28}"]
            if gf is not None:
                parts.append(f"{gf:8.2f} GFLOPS")
            parts.append(f"coal={row.get('load_coalescing', 0):.2f}")
            parts.append(f"l2={row.get('l2_hit_rate', 0):.2f}")
            if "transactions_per_nnz" in row:
                parts.append(f"txn/nnz={row['transactions_per_nnz']:.3f}")
            if "roofline_efficiency" in row:
                parts.append(f"roofline={row['roofline_efficiency']:.0%}")
            lines.append(" ".join(parts))
        kernels = self.session.by_category("kernel")
        if kernels:
            wall = sum(s.duration for s in kernels if s.duration > 0)
            lines.append(
                f"  {len(kernels)} kernel launches, "
                f"{wall * 1e3:.1f} ms simulated-host wall time"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def export(self, directory, stem: Optional[str] = None
               ) -> Dict[str, Path]:
        """Write the JSON, CSV and Chrome-trace artifacts into
        ``directory``; returns ``{kind: path}``."""
        from repro.obs.export import (
            export_chrome_trace,
            export_csv,
            export_json,
        )

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        stem = stem or str(self.meta.get("matrix", "profile"))
        paths = {
            "json": directory / f"profile_{stem}.json",
            "csv": directory / f"profile_{stem}.csv",
            "chrome_trace": directory / f"profile_{stem}.trace.json",
        }
        export_json(self, paths["json"])
        export_csv(self, paths["csv"])
        export_chrome_trace(self.session, paths["chrome_trace"])
        return paths

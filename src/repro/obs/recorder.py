"""Span recorder: the substrate of the instrumentation layer.

A :class:`ProfileSession` collects a tree of :class:`Span` records —
kernel launches, compound operations (prepare → dia → scatter), solver
iterations, hybrid halves — each carrying wall time and arbitrary
attributes (trace counters, launch geometry, executor mode).

Observation is **opt-in and zero-cost when off**: the module-level
:data:`ACTIVE` session is ``None`` by default, every instrumentation
site guards on that single attribute read, and no clock is consulted
and no object allocated on the disabled path (asserted by
``tests/obs/test_recorder.py``).  Instrumentation never touches the
computation or the :class:`~repro.ocl.trace.KernelTrace` counters: it
only *reads* finished traces, so ``y`` and every counter are
bit-identical with observation on or off.

Usage::

    from repro import obs

    with obs.observe("my-run") as session:
        runner.run(x)              # kernel spans recorded automatically
    session.spans                  # the recorded tree
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "ProfileSession",
    "observe",
    "current",
    "maybe_span",
]


@dataclass
class Span:
    """One timed region of a profiled run.

    ``start`` is seconds since the session began; ``duration`` is wall
    seconds (``-1.0`` while the span is still open).  ``parent`` is the
    id of the enclosing span, or ``None`` at the root.
    """

    id: int
    name: str
    category: str
    start: float
    duration: float = -1.0
    parent: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (attrs copied)."""
        return {
            "id": self.id,
            "name": self.name,
            "category": self.category,
            "start_s": self.start,
            "duration_s": self.duration,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }


class ProfileSession:
    """An ordered collection of spans for one observed run.

    Not thread-safe: one session observes one sequential run, matching
    the simulator's execution model.
    """

    def __init__(self, name: str = "session"):
        self.name = name
        self.spans: List[Span] = []
        self._stack: List[int] = []
        self._epoch = perf_counter()

    # ------------------------------------------------------------------
    # low-level span API (used by the executor hot path)
    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the session epoch."""
        return perf_counter() - self._epoch

    def begin(self, name: str, category: str = "op",
              **attrs: Any) -> Span:
        """Open a span; it becomes the parent of subsequent spans."""
        span = Span(
            id=len(self.spans),
            name=name,
            category=category,
            start=self.now(),
            parent=self._stack[-1] if self._stack else None,
            attrs=attrs,
        )
        self.spans.append(span)
        self._stack.append(span.id)
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        """Close a span opened with :meth:`begin`.

        Robust to leaked children: if an exception (or
        KeyboardInterrupt) escaped a descendant before its own ``end``
        ran, the stale entries above ``span`` are unwound (closing any
        still-open spans at the current clock) so the session stays
        reusable.  Ending a span that is not on the stack at all — its
        parent already unwound it — only stamps the duration.
        """
        span.duration = self.now() - span.start
        if attrs:
            span.attrs.update(attrs)
        if span.id in self._stack:
            while self._stack[-1] != span.id:
                leaked = self.spans[self._stack.pop()]
                if leaked.duration < 0.0:
                    leaked.duration = self.now() - leaked.start
            self._stack.pop()
        return span

    @contextlib.contextmanager
    def span(self, name: str, category: str = "op",
             **attrs: Any) -> Iterator[Span]:
        """Context manager opening/closing one span."""
        s = self.begin(name, category, **attrs)
        try:
            yield s
        finally:
            self.end(s)

    def record_event(self, name: str, category: str = "event",
                     **attrs: Any) -> Span:
        """A zero-duration marker span."""
        span = Span(
            id=len(self.spans),
            name=name,
            category=category,
            start=self.now(),
            duration=0.0,
            parent=self._stack[-1] if self._stack else None,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def record_kernel(self, name: str, *, work_groups: int,
                      local_size: int, executor: str, wall_s: float,
                      trace=None) -> Span:
        """Record one finished kernel launch as a closed span.

        ``trace`` is the launch's :class:`~repro.ocl.trace.KernelTrace`
        (or ``None`` when tracing was off); its counters are *copied*
        into the span attributes — the trace itself is never mutated.
        """
        attrs: Dict[str, Any] = {
            "work_groups": int(work_groups),
            "local_size": int(local_size),
            "executor": executor,
        }
        if trace is not None:
            import dataclasses

            attrs["trace"] = dataclasses.asdict(trace)
        span = Span(
            id=len(self.spans),
            name=name,
            category="kernel",
            start=self.now() - wall_s,
            duration=wall_s,
            parent=self._stack[-1] if self._stack else None,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    def children(self, span_id: Optional[int]) -> List[Span]:
        """Spans whose parent is ``span_id`` (``None`` = roots)."""
        return [s for s in self.spans if s.parent == span_id]

    def by_category(self, category: str) -> List[Span]:
        """All spans recorded under ``category``, in creation order."""
        return [s for s in self.spans if s.category == category]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload: session name + every span."""
        return {
            "name": self.name,
            "spans": [s.to_dict() for s in self.spans],
        }


#: the currently observing session, or ``None`` (the default: off).
#: Instrumentation sites read this exact attribute; everything else in
#: this module stays untouched on the disabled path.
ACTIVE: Optional[ProfileSession] = None


def current() -> Optional[ProfileSession]:
    """The active session, or ``None`` when observation is off."""
    return ACTIVE


@contextlib.contextmanager
def observe(name: str = "session",
            session: Optional[ProfileSession] = None
            ) -> Iterator[ProfileSession]:
    """Activate a :class:`ProfileSession` for the enclosed code.

    Nestable: the previous session (usually ``None``) is restored on
    exit.  Pass an existing ``session`` to accumulate several observed
    regions into one record.
    """
    global ACTIVE
    prev = ACTIVE
    sess = session if session is not None else ProfileSession(name)
    ACTIVE = sess
    try:
        yield sess
    finally:
        ACTIVE = prev


_NULL = contextlib.nullcontext()


def maybe_span(name: str, category: str = "op", **attrs: Any):
    """A span context manager when observing, else a shared no-op
    context.  The disabled path performs one global read and returns a
    pre-built ``nullcontext`` — no allocation, no clock access."""
    sess = ACTIVE
    if sess is None:
        return _NULL
    return sess.span(name, category, **attrs)

"""Profile exporters: JSON, CSV and Chrome-trace (Perfetto) timelines.

- :func:`export_json` — the full :class:`~repro.obs.report.ProfileReport`
  payload (schema ``repro-profile/v1``).
- :func:`export_csv` — one row per metric entry, derived metrics as
  columns (spreadsheet/pandas-friendly).
- :func:`export_chrome_trace` — the span tree as Chrome Trace Event
  Format complete events (``ph: "X"``), loadable in ``chrome://tracing``
  or https://ui.perfetto.dev.  Span nesting maps to the trace's
  ``tid`` stack depth so siblings stay visually separated.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List

from repro.obs.recorder import ProfileSession, Span

__all__ = [
    "export_json",
    "export_csv",
    "export_chrome_trace",
    "spans_to_chrome_events",
]


def export_json(report, path) -> Path:
    """Write the full profile payload as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return path


def export_csv(report, path) -> Path:
    """Write the metric entries as CSV (one row per entry)."""
    path = Path(path)
    rows = report.registry.rows()
    fields: List[str] = []
    for row in rows:
        for key in row:
            if key not in fields:
                fields.append(key)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields, restval="")
        writer.writeheader()
        writer.writerows(rows)
    return path


def spans_to_chrome_events(spans: List[Span]) -> List[Dict[str, Any]]:
    """Convert spans to Chrome Trace Event Format complete events.

    Timestamps and durations are microseconds; attribute dicts ride in
    ``args``.  Zero-duration marker spans become instant events
    (``ph: "i"``).
    """
    depth: Dict[int, int] = {}
    events: List[Dict[str, Any]] = []
    for s in spans:
        d = 0 if s.parent is None else depth.get(s.parent, 0) + 1
        depth[s.id] = d
        args = {
            k: v for k, v in s.attrs.items() if not isinstance(v, dict)
        }
        trace = s.attrs.get("trace")
        if isinstance(trace, dict):
            args.update({f"trace.{k}": v for k, v in trace.items()})
        if s.duration == 0.0 and s.category == "event":
            events.append({
                "name": s.name, "cat": s.category, "ph": "i",
                "ts": s.start * 1e6, "pid": 0, "tid": d, "s": "t",
                "args": args,
            })
        else:
            events.append({
                "name": s.name, "cat": s.category, "ph": "X",
                "ts": s.start * 1e6,
                "dur": max(s.duration, 0.0) * 1e6,
                "pid": 0, "tid": d, "args": args,
            })
    return events


def export_chrome_trace(session: ProfileSession, path) -> Path:
    """Write a ``chrome://tracing`` / Perfetto timeline JSON file."""
    path = Path(path)
    payload = {
        "displayTimeUnit": "ms",
        "otherData": {"session": session.name},
        "traceEvents": spans_to_chrome_events(session.spans),
    }
    path.write_text(json.dumps(payload, indent=2))
    return path

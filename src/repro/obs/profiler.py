"""High-level profiling: run a matrix under observation and build a
:class:`~repro.obs.report.ProfileReport`.

:func:`profile_matrix` is the engine behind ``repro.profile(...)`` and
the ``repro profile`` CLI subcommand: it sweeps the requested
format × executor × precision grid, records the span tree each run
emits (kernel launches, prepare/dia/scatter phases), prices every run
with the cost model and derives the metric set
(:mod:`repro.obs.metrics`) per combination.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

import numpy as np

from repro.formats.coo import COOMatrix
from repro.obs.metrics import MetricRegistry
from repro.obs.recorder import ProfileSession, observe
from repro.obs.report import ProfileReport
from repro.ocl.device import DeviceSpec, TESLA_C2050

__all__ = ["profile_matrix", "profile_runner"]


def _num_launches(fmt: str, runner) -> int:
    """Kernel launches per SpMV of one runner (for launch overhead)."""
    if fmt == "crsd" and getattr(runner, "matrix", None) is not None:
        return 2 if runner.matrix.num_scatter_rows else 1
    if fmt == "hyb" and getattr(runner, "matrix", None) is not None:
        return 2 if runner.matrix.coo.nnz else 1
    return 1


def profile_runner(
    runner,
    x: np.ndarray,
    *,
    name: str,
    nnz: Optional[int] = None,
    num_launches: int = 1,
    size_scale: float = 1.0,
    session: Optional[ProfileSession] = None,
    registry: Optional[MetricRegistry] = None,
) -> ProfileReport:
    """Profile one prepared runner for one source vector.

    Runs ``runner.run(x)`` under observation, prices the trace with
    the cost model and records a single metric entry named ``name``.
    """
    from repro.perf.costmodel import predict_gpu_time

    session = session or ProfileSession(name)
    registry = registry or MetricRegistry()
    with observe(session=session):
        with session.span(name, "profile"):
            run = runner.run(x)
    seconds = predict_gpu_time(
        run.trace, runner.device, runner.precision,
        num_launches=num_launches, size_scale=size_scale,
    ).total
    registry.record(
        name, run.trace, runner.device, runner.precision,
        nnz=nnz, seconds=seconds,
    )
    return ProfileReport(session=session, registry=registry,
                         meta={"matrix": name})


def profile_matrix(
    coo: COOMatrix,
    name: str = "matrix",
    *,
    formats: Sequence[str] = ("crsd",),
    executors: Sequence[str] = ("batched", "pergroup"),
    precisions: Sequence[str] = ("double",),
    device: DeviceSpec = TESLA_C2050,
    mrows: int = 128,
    size_scale: float = 1.0,
    seed: int = 0,
    use_local_memory: bool = True,
) -> ProfileReport:
    """Profile every format × executor × precision combination.

    Each combination is one child span tree in the session (the
    runner/executor instrumentation supplies the kernel spans) and one
    :class:`~repro.obs.metrics.MetricRegistry` entry named
    ``"{format}/{executor}/{precision}"``.  Results are verified
    against the COO reference as they are produced (entries carry
    ``verified`` and ``rel_err``); a combination that cannot run at
    all (e.g. DIA out of device memory in double precision) is skipped
    instead of aborting the sweep: it gets a machine-readable record
    in ``report.skips`` (entry/format/executor/precision plus error
    type and reason) and — for :class:`DeviceMemoryError` — the legacy
    ``.oom`` event span.
    """
    # imported lazily: the executor itself hooks into repro.obs.recorder
    from repro.bench.runner import _build_runners
    from repro.ocl.errors import DeviceMemoryError, OCLError
    from repro.ocl.executor import EXECUTOR_ENV, EXECUTOR_MODES
    from repro.perf.costmodel import predict_gpu_time

    for ex in executors:
        if ex not in EXECUTOR_MODES:
            raise ValueError(
                f"unknown executor {ex!r}; expected one of {EXECUTOR_MODES}")

    rng = np.random.default_rng(seed)
    x = rng.standard_normal(coo.ncols)
    ref = coo.matvec(x)
    refscale = max(1.0, float(np.abs(ref).max()))

    session = ProfileSession(name)
    registry = MetricRegistry()
    skips = []
    saved = os.environ.get(EXECUTOR_ENV)
    try:
        with observe(session=session):
            for precision in precisions:
                tol = 1e-6 if precision == "double" else 1e-2
                for executor in executors:
                    os.environ[EXECUTOR_ENV] = executor
                    for fmt in formats:
                        entry = f"{fmt}/{executor}/{precision}"
                        try:
                            with session.span(entry, "profile",
                                              format=fmt, executor=executor,
                                              precision=precision):
                                runner = _build_runners(
                                    coo, device, precision, [fmt], mrows,
                                    use_local_memory,
                                )[fmt]
                                run = runner.run(x)
                        except OCLError as exc:
                            if isinstance(exc, DeviceMemoryError):
                                # the legacy per-skip event, kept for
                                # report consumers keyed on ".oom"
                                session.record_event(
                                    f"{entry}.oom", "event",
                                    reason=str(exc))
                            skips.append({
                                "entry": entry,
                                "format": fmt,
                                "executor": executor,
                                "precision": precision,
                                "error": type(exc).__name__,
                                "reason": str(exc),
                            })
                            continue
                        err = float(np.abs(run.y - ref).max()) / refscale
                        seconds = predict_gpu_time(
                            run.trace, device, precision,
                            num_launches=_num_launches(fmt, runner),
                            size_scale=size_scale,
                        ).total
                        registry.record(
                            entry, run.trace, device, precision,
                            nnz=coo.nnz, seconds=seconds,
                            format=fmt, executor=executor,
                            verified=bool(err <= tol), rel_err=err,
                        )
    finally:
        if saved is None:
            os.environ.pop(EXECUTOR_ENV, None)
        else:
            os.environ[EXECUTOR_ENV] = saved

    from repro.core.serialize import fingerprint as _fingerprint

    meta = {
        "matrix": name,
        "fingerprint": _fingerprint(coo),
        "nrows": coo.nrows,
        "ncols": coo.ncols,
        "nnz": coo.nnz,
        "formats": list(formats),
        "executors": list(executors),
        "precisions": list(precisions),
        "device": device.name,
        "mrows": mrows,
        "size_scale": size_scale,
    }
    return ProfileReport(session=session, registry=registry, meta=meta,
                         skips=skips)

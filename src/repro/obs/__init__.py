"""Structured instrumentation: spans, metrics, profile exporters.

The observability substrate of the runtime.  Observation is opt-in via
:func:`observe` and strictly passive — with it on, ``y`` and every
:class:`~repro.ocl.trace.KernelTrace` counter are bit-identical to an
unobserved run; with it off, every instrumentation site is a single
``None`` check (no clocks, no allocation).

- :mod:`repro.obs.recorder` — :class:`Span` / :class:`ProfileSession`,
  the :func:`observe` switch and the :func:`maybe_span` helper the
  runtime hooks use.
- :mod:`repro.obs.metrics`  — derived metrics (bytes moved, txn/nnz,
  L2 hit rate, roofline placement) from trace counters.
- :mod:`repro.obs.report`   — :class:`ProfileReport`.
- :mod:`repro.obs.export`   — JSON / CSV / Chrome-trace exporters.
- :mod:`repro.obs.profiler` — :func:`profile_matrix`, the engine of
  ``repro.profile(...)`` and ``repro profile``.

Attributes resolve lazily (PEP 562): the executor's hot-path import of
:mod:`repro.obs.recorder` must not drag the profiler (and with it the
bench harness) into every kernel launch's import closure.
"""

from repro.obs.recorder import (  # noqa: F401  (re-exported)
    ProfileSession,
    Span,
    current,
    maybe_span,
    observe,
)

__all__ = [
    "Span",
    "ProfileSession",
    "observe",
    "current",
    "maybe_span",
    "MetricRegistry",
    "derive_metrics",
    "trace_counters",
    "ProfileReport",
    "export_json",
    "export_csv",
    "export_chrome_trace",
    "spans_to_chrome_events",
    "profile_matrix",
    "profile_runner",
]

_LAZY = {
    "MetricRegistry": "repro.obs.metrics",
    "derive_metrics": "repro.obs.metrics",
    "trace_counters": "repro.obs.metrics",
    "ProfileReport": "repro.obs.report",
    "export_json": "repro.obs.export",
    "export_csv": "repro.obs.export",
    "export_chrome_trace": "repro.obs.export",
    "spans_to_chrome_events": "repro.obs.export",
    "profile_matrix": "repro.obs.profiler",
    "profile_runner": "repro.obs.profiler",
}


def __getattr__(name: str):
    try:
        module = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(__all__))

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``     — structural statistics of a matrix (suite name or .mtx)
``bench``    — simulate every format's SpMV on one matrix
``codegen``  — print the generated OpenCL kernel for a matrix
``analyze``  — statically analyze the generated kernels (no execution)
``convert``  — build CRSD from a .mtx file and save it (.npz)
``tune``     — autotune CRSD build parameters for a matrix
``profile``  — record spans + derived metrics, export profile artifacts
``faultsim`` — chaos-sweep the suite under seeded fault injection
``serve``    — serve a request stream against one matrix (micro-batched)
``loadgen``  — seeded open-loop load generation over the suite
``cluster``  — multi-device cluster utilities (``cluster status``)

``serve`` and ``loadgen`` accept ``--devices N`` to route the stream
through a simulated N-device cluster (consistent-hash placement,
certified cross-device splits).  Convention: ``--shards`` counts
row-block shards of one matrix (static analysis), ``--devices`` counts
cluster devices (serving); ``repro analyze`` accepts either spelling.

Matrices are referenced either by Table V suite name/number
(``kim1``, ``3``) or by a MatrixMarket file path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _load_matrix(ref: str, scale: float, seed: int = 0):
    """Resolve a matrix reference to a COOMatrix."""
    from repro.matrices.mmio import read_matrix_market
    from repro.matrices.suite23 import get_spec

    if ref.endswith(".mtx") or ref.endswith(".mtx.gz"):
        return read_matrix_market(ref), Path(ref).stem
    try:
        key = int(ref)
    except ValueError:
        key = ref
    spec = get_spec(key)
    return spec.generate(scale=scale), spec.name


def cmd_info(args) -> int:
    """``repro info``: structure statistics + CRSD view (+ spy plot)."""
    from repro.core.analysis import analyze_structure
    from repro.matrices.stats import compute_stats

    coo, name = _load_matrix(args.matrix, args.scale)
    print(f"{name}: {compute_stats(coo)}")
    a = analyze_structure(coo, mrows=args.mrows)
    print(
        f"CRSD view (mrows={args.mrows}): {a.num_regions} regions, "
        f"{a.num_scatter_points} scatter points, "
        f"{a.idle_broken_gaps} broken idle sections"
    )
    if args.spy:
        from repro.matrices.spyplot import spy

        scatter = a.scatter_rows if a.num_scatter_points else None
        print(spy(coo, width=args.spy, scatter_rows=scatter))
    return 0


def cmd_bench(args) -> int:
    """``repro bench``: simulate every format on one matrix."""
    from repro.bench.runner import GPU_FORMATS, _build_runners, scaled_device
    from repro.ocl.executor import executor_mode
    from repro.perf.costmodel import predict_gpu_time
    from repro.perf.metrics import gflops

    executor_mode()  # surface a bad REPRO_EXECUTOR before the per-format
    # try/except below turns it into "unavailable" for every format
    coo, name = _load_matrix(args.matrix, args.scale)
    dev = scaled_device(args.scale)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(coo.ncols)
    ref = coo.matvec(x)
    print(f"{name} ({coo.nrows}x{coo.ncols}, nnz={coo.nnz:,}), "
          f"precision={args.precision}")
    rows = []
    for fmt in GPU_FORMATS:
        try:
            runner = _build_runners(coo, dev, args.precision, [fmt],
                                    args.mrows)[fmt]
            run = runner.run(x)
        except Exception as exc:  # OOM etc.
            print(f"  {fmt:<6} unavailable ({type(exc).__name__})")
            continue
        tol = 1e-6 if args.precision == "double" else 1e-2
        ok = np.allclose(run.y, ref, atol=tol * max(1, np.abs(ref).max()))
        perf = predict_gpu_time(run.trace, dev, args.precision,
                                size_scale=args.scale)
        rows.append((fmt, gflops(coo.nnz, perf.total), ok))
    for fmt, gf, ok in sorted(rows, key=lambda r: -r[1]):
        print(f"  {fmt:<6} {gf:8.2f} GFLOPS  {'ok' if ok else 'WRONG'}")
    return 0 if all(ok for _, _, ok in rows) else 1


def cmd_codegen(args) -> int:
    """``repro codegen``: print the generated OpenCL kernel."""
    from repro.codegen import build_plan, generate_opencl_source
    from repro.core.crsd import CRSDMatrix, compatible_wavefront

    coo, _ = _load_matrix(args.matrix, args.scale)
    crsd = CRSDMatrix.from_coo(
        coo, mrows=args.mrows,
        wavefront_size=compatible_wavefront(args.mrows),
    )
    print(generate_opencl_source(build_plan(crsd), precision=args.precision))
    return 0


def _fused_certification(plan, crsd, precision: str) -> dict:
    """Structured fused ``certify_plan`` outcome for ``repro analyze``.

    Declines carry the prover reasons; a *crashed* prover (which at
    run time demotes the runner and files an IncidentReport) is
    surfaced as a ``crash`` entry instead of propagating.
    """
    from repro.gpu_kernels.fused import certify_plan
    from repro.ocl.device import TESLA_C2050

    try:
        cert = certify_plan(plan, TESLA_C2050, precision,
                            scatter_colval=crsd.scatter_colval,
                            scatter_rowno=crsd.scatter_rowno)
    except Exception as exc:
        return {"certified": False, "reasons": [],
                "crash": {"type": type(exc).__name__,
                          "message": str(exc)}}
    return {"certified": cert.ok, "reasons": list(cert.reasons),
            "crash": None}


def cmd_analyze(args) -> int:
    """``repro analyze``: static analysis of the generated kernels.

    Runs the full checker battery (bounds, coalescing, divergence,
    local memory, batched-execution safety, render cross-checks) over
    the kernels that would be generated for the matrix — without
    executing anything — plus the fused-engine certification verdict.
    ``--shards N`` additionally certifies the wavefront-aligned N-way
    row-block shard plan (halo coverage, write disjointness, trace
    conservation, reduction order).  ``--json`` prints the
    machine-readable report; the exit code is non-zero iff any analyzer
    violation was found or a requested shard plan was declined (a fused
    decline alone does not fail the run — the engine falls back).
    """
    import json

    from repro.analyze import analyze_matrix, certify_shard_plan
    from repro.codegen.plan import build_plan
    from repro.core.crsd import CRSDMatrix, compatible_wavefront
    from repro.shard import ShardPlanError, ShardPlanner

    coo, name = _load_matrix(args.matrix, args.scale)
    crsd = CRSDMatrix.from_coo(
        coo, mrows=args.mrows,
        wavefront_size=compatible_wavefront(args.mrows),
    )
    if getattr(args, "sym", False):
        return _analyze_sym(args, coo, crsd, name)
    report = analyze_matrix(
        crsd,
        precision=args.precision,
        use_local_memory=not args.no_local_memory,
        nvec=args.nvec,
    )
    plan = build_plan(crsd, use_local_memory=not args.no_local_memory,
                      nvec=args.nvec)
    fused = _fused_certification(plan, crsd, args.precision)
    shard_cert = None
    if args.shards is not None:
        try:
            shard_plan = ShardPlanner(crsd, coo=coo).plan(args.shards)
        except ShardPlanError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        shard_cert = certify_shard_plan(
            crsd, shard_plan,
            precision=args.precision,
            use_local_memory=not args.no_local_memory,
            nvec=args.nvec,
        )
    if args.json:
        payload = report.to_dict()
        payload["matrix"] = name
        payload["fused_certification"] = fused
        if shard_cert is not None:
            payload["shard_certification"] = shard_cert.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        print(f"{name}: {report.summary()}")
        state = ("certified" if fused["certified"]
                 else "crashed" if fused["crash"] else "declined")
        line = f"  fused: {state}"
        if fused["reasons"]:
            line += " (" + "; ".join(fused["reasons"]) + ")"
        if fused["crash"]:
            line += (f" ({fused['crash']['type']}: "
                     f"{fused['crash']['message']})")
        print(line)
        if shard_cert is not None:
            if shard_cert.ok:
                print(f"  shards: {args.shards}-way row-block plan "
                      f"certified (halo re-read "
                      f"{shard_cert.halo_reread_transactions} "
                      f"transactions)")
            else:
                print(f"  shards: {args.shards}-way row-block plan "
                      "DECLINED")
                for reason in shard_cert.reasons:
                    print(f"    {reason}")
    code = report.exit_code
    if shard_cert is not None and not shard_cert.ok:
        code = max(code, 1)
    return code


def _analyze_sym(args, coo, crsd, name: str) -> int:
    """``repro analyze --sym``: analyze the symmetric half-storage
    codelets (requires an exactly symmetric, scatter-free matrix)."""
    import json

    from repro.analyze.symmetric import analyze_sym_matrix
    from repro.core.symcrsd import SymCRSDError, SymCRSDMatrix

    if args.shards is not None or args.nvec != 1:
        print("error: --sym does not combine with --shards/--nvec",
              file=sys.stderr)
        return 2
    try:
        sym = SymCRSDMatrix.from_crsd(crsd, coo=coo)
    except SymCRSDError as exc:
        print(f"error: {name}: {exc}", file=sys.stderr)
        return 2
    report = analyze_sym_matrix(sym, precision=args.precision)
    if args.json:
        payload = report.to_dict()
        payload["matrix"] = name
        payload["symmetric"] = {
            "stored_elements": sym.stored_elements,
            "full_slab_elements": crsd.dia_val.size,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"{name} (symmetric half storage): {report.summary()}")
        print(f"  stored slots: {sym.stored_elements} of "
              f"{crsd.dia_val.size} "
              f"({sym.stored_elements / max(1, crsd.dia_val.size):.0%})")
    return report.exit_code


def cmd_convert(args) -> int:
    """``repro convert``: build CRSD and persist it as .npz."""
    from repro.core.crsd import CRSDMatrix, compatible_wavefront
    from repro.core.serialize import save_crsd

    coo, name = _load_matrix(args.matrix, args.scale)
    crsd = CRSDMatrix.from_coo(
        coo, mrows=args.mrows,
        wavefront_size=compatible_wavefront(args.mrows),
    )
    out = Path(args.output or f"{name}.crsd.npz")
    save_crsd(crsd, out)
    print(f"wrote {out} ({crsd.num_dia_patterns} patterns, "
          f"{crsd.num_scatter_rows} scatter rows, "
          f"fill {crsd.fill_zeros:,})")
    return 0


def cmd_tune(args) -> int:
    """``repro tune``: autotune CRSD build parameters.

    Tuning goes through the process-wide plan cache
    (:func:`repro.serve.cache.default_cache`), so a repeated request for
    the same matrix in one process is served from the cache instead of
    re-running the grid search.
    """
    import dataclasses
    import json

    from repro.serve.cache import default_cache

    coo, name = _load_matrix(args.matrix, args.scale)
    res = default_cache().tune(coo, fast=args.fast)
    b = res.best
    if args.json:
        payload = {
            "matrix": name,
            "best": dataclasses.asdict(b),
            "candidates": [dataclasses.asdict(c) for c in res.candidates],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{name}: best mrows={b.mrows} "
          f"idle_fill_max_rows={b.idle_fill_max_rows} "
          f"local_memory={b.use_local_memory} "
          f"(modelled {b.seconds * 1e6:.1f} us, "
          f"{len(res.candidates)} candidates)")
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: spans + derived metrics + exporters.

    Sweeps the requested formats/executors/precisions over one matrix
    under a profile session, verifies every run against the COO
    reference, and prints a summary.  ``--json`` prints the full
    machine-readable report; ``-o DIR`` writes the JSON/CSV/Chrome-trace
    artifacts (open the ``.trace.json`` in chrome://tracing or
    Perfetto).  Exit code is non-zero iff any run failed verification.
    """
    import json

    from repro.obs.profiler import profile_matrix

    coo, name = _load_matrix(args.matrix, args.scale)
    report = profile_matrix(
        coo, name,
        formats=tuple(args.formats.split(",")),
        executors=tuple(args.executors.split(",")),
        precisions=tuple(args.precisions.split(",")),
        mrows=args.mrows,
        size_scale=args.scale,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    if args.output:
        paths = report.export(args.output)
        for kind, path in sorted(paths.items()):
            print(f"wrote {kind}: {path}", file=sys.stderr)
    bad = [e for e in report.registry.entries if not e.get("verified", True)]
    return 1 if bad else 0


def cmd_faultsim(args) -> int:
    """``repro faultsim``: chaos-sweep matrices under fault injection.

    Runs every (matrix, executor, precision) case of the sweep under a
    seeded fault plan through the resilient execution layer, then
    differentially verifies each served ``y`` bit-for-bit against a
    fault-free replay of the serving rung.  Fully deterministic: the
    same ``--seed`` produces byte-identical JSON.  Exit code is
    non-zero iff any case silently diverged — exhaustion is a legal
    outcome, divergence never is.
    """
    import json

    from repro.matrices.suite23 import get_spec
    from repro.resilience.chaos import chaos_sweep

    matrices = None
    if args.matrices:
        matrices = []
        for ref in args.matrices.split(","):
            try:
                matrices.append(get_spec(int(ref)).number)
            except ValueError:
                matrices.append(get_spec(ref).number)
    report = chaos_sweep(
        seed=args.seed,
        scale=args.scale,
        matrices=matrices,
        format=args.format,
        executors=tuple(args.executors.split(",")),
        precisions=tuple(args.precisions.split(",")),
        mrows=args.mrows,
    )
    if args.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        print(text)
    else:
        print(report.summary())
    if args.output:
        Path(args.output).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return report.exit_code


def cmd_serve(args) -> int:
    """``repro serve``: serve a request stream against one matrix.

    Generates ``--requests`` random right-hand sides, submits them with
    seeded Poisson arrivals at ``--rate`` requests per simulated second
    (``--rate 0`` = all at once), and serves them through the
    micro-batching engine — or, with ``--devices N``, through a
    simulated N-device cluster.  Prints per-stream latency percentiles
    and the batching/cache counters; ``--json`` prints the
    machine-readable stats.
    """
    import json

    import repro
    from repro.ocl.executor import executor_mode

    executor_mode()  # surface a bad REPRO_EXECUTOR before the event loop
    if args.split_rows is not None and not args.devices:
        print("error: --split-rows requires --devices N", file=sys.stderr)
        return 2
    if args.replicas != 1 and not args.devices:
        print("error: --replicas requires --devices N", file=sys.stderr)
        return 2
    coo, name = _load_matrix(args.matrix, args.scale)
    session = repro.serve_session(
        cluster=args.devices, precision=args.precision, mrows=args.mrows,
        max_batch=args.max_batch, max_delay_s=args.max_delay_us * 1e-6,
        max_queue_depth=args.queue_depth, overflow=args.overflow,
        size_scale=args.scale, keep_y=False,
        split_threshold_rows=args.split_rows, replicas=args.replicas)
    rng = np.random.default_rng(args.seed)
    at = 0.0
    for _ in range(args.requests):
        if args.rate > 0:
            at += float(rng.exponential(1.0 / args.rate))
        session.submit(coo, rng.standard_normal(coo.ncols), at=at,
                       deadline_s=args.deadline_us * 1e-6
                       if args.deadline_us else None)
    results = session.run()
    stats = session.stats()
    served = sorted(r.latency_s for r in results if r.served)
    if args.json:
        payload = {"matrix": name, "requests": len(results),
                   "served": len(served), **stats}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    batching = stats["batching"]
    print(f"{name}: served {len(served)}/{len(results)} requests, "
          f"{batching['spmm_launches']} SpMM + "
          f"{batching['spmv_launches']} SpMV launches")
    if served:
        p50 = served[max(0, int(0.50 * len(served)) - 1)]
        p95 = served[max(0, int(-(-0.95 * len(served) // 1)) - 1)]
        print(f"  latency p50 {p50 * 1e6:8.1f} us   "
              f"p95 {p95 * 1e6:8.1f} us   "
              f"max {served[-1] * 1e6:8.1f} us")
    print(f"  batch histogram {batching['histogram']}")
    print(f"  plan cache {stats['cache']}")
    cluster = stats.get("cluster")
    if cluster:
        print(f"  cluster {cluster['num_devices']} devices "
              f"({len(cluster['alive'])} alive), "
              f"{cluster['split_dispatches']} split dispatches, "
              f"halo {cluster['halo']['total_bytes']} bytes")
    return 0


def cmd_loadgen(args) -> int:
    """``repro loadgen``: seeded load generation over the suite.

    Runs a fully deterministic open-loop arrival trace through the
    serving engine and prints (or writes, ``-o``) the byte-reproducible
    JSON report — same seed, same bytes.  ``--devices N`` routes the
    trace through a simulated N-device cluster instead (with
    ``--tenants`` value-variants per matrix and optional mid-run
    device loss via ``--fail-device``/``--fail-at-us``).  When
    ``REPRO_SERVE_TRAJECTORY`` (or ``--trajectory``) names a file, the
    report is also appended to that ``BENCH_serve.json`` history;
    cluster runs use ``REPRO_CLUSTER_TRAJECTORY`` /
    ``BENCH_cluster.json`` with the cluster trajectory schema.
    """
    import repro
    from repro.ocl.executor import executor_mode
    from repro.serve import AdmissionPolicy, BatchConfig
    from repro.serve.loadgen import (
        CLUSTER_TRAJECTORY_SCHEMA, TRAJECTORY_SCHEMA, LoadConfig,
        append_serve_trajectory, cluster_trajectory_path, report_json,
        run_loadgen, trajectory_path,
    )

    executor_mode()  # surface a bad REPRO_EXECUTOR before the event loop
    if args.split_rows is not None and not args.devices:
        print("error: --split-rows requires --devices N", file=sys.stderr)
        return 2
    if args.fail_device is not None and not args.devices:
        print("error: --fail-device requires --devices N", file=sys.stderr)
        return 2
    if args.replicas != 1 and not args.devices:
        print("error: --replicas requires --devices N", file=sys.stderr)
        return 2
    kwargs = {}
    if args.matrices:
        kwargs["matrices"] = tuple(args.matrices.split(","))
    config = LoadConfig(
        seed=args.seed, scale=args.scale, num_requests=args.requests,
        rate_rps=args.rate, pattern=args.pattern,
        burst_size=args.burst_size,
        deadline_s=args.deadline_us * 1e-6 if args.deadline_us else None,
        precision=args.precision, mrows=args.mrows,
        tenants=args.tenants, **kwargs)
    if args.devices:
        engine = repro.serve_session(
            cluster=args.devices, precision=args.precision,
            mrows=args.mrows, max_batch=args.max_batch,
            max_delay_s=args.max_delay_us * 1e-6,
            max_queue_depth=args.queue_depth, overflow=args.overflow,
            size_scale=args.scale, keep_y="digest",
            split_threshold_rows=args.split_rows, replicas=args.replicas)
        if args.fail_device is not None:
            engine.fail_device(args.fail_device,
                               at_s=args.fail_at_us * 1e-6)
        report = run_loadgen(config, engine=engine)
    else:
        report = run_loadgen(
            config,
            batch=BatchConfig(max_batch=args.max_batch,
                              max_delay_s=args.max_delay_us * 1e-6),
            admission=AdmissionPolicy(max_queue_depth=args.queue_depth,
                                      overflow=args.overflow))
    text = report_json(report)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    if args.devices:
        trajectory = args.trajectory or cluster_trajectory_path()
        schema = CLUSTER_TRAJECTORY_SCHEMA
    else:
        trajectory = args.trajectory or trajectory_path()
        schema = TRAJECTORY_SCHEMA
    if trajectory:
        append_serve_trajectory(report, trajectory, schema=schema)
        print(f"appended trajectory entry: {trajectory}", file=sys.stderr)
    return 0


def cmd_cluster(args) -> int:
    """``repro cluster status``: placement and load tables.

    Replays a seeded multi-tenant warmup trace through an N-device
    cluster (deterministic — same options, same tables) and prints
    where each pattern landed (home device, split fan-out) and what
    each device did (launches, served requests, cache residency).
    ``--json`` emits the tables plus the full cluster stats section.
    """
    import json

    import repro
    from repro.ocl.executor import executor_mode
    from repro.serve.loadgen import LoadConfig, run_loadgen

    executor_mode()  # surface a bad REPRO_EXECUTOR before the event loop
    engine = repro.serve_session(
        cluster=args.devices, precision=args.precision, mrows=args.mrows,
        size_scale=args.scale, keep_y="digest",
        split_threshold_rows=args.split_rows, replicas=args.replicas)
    if args.fail_device is not None:
        engine.fail_device(args.fail_device, at_s=args.fail_at_us * 1e-6)
    if args.rejoin_at_us is not None:
        if args.fail_device is None:
            print("error: --rejoin-at-us requires --fail-device D",
                  file=sys.stderr)
            return 2
        engine.rejoin_device(args.fail_device,
                             at_s=args.rejoin_at_us * 1e-6)
    kwargs = {}
    if args.matrices:
        kwargs["matrices"] = tuple(args.matrices.split(","))
    config = LoadConfig(
        seed=args.seed, scale=args.scale, num_requests=args.requests,
        precision=args.precision, mrows=args.mrows, tenants=args.tenants,
        **kwargs)
    run_loadgen(config, engine=engine)
    placement = engine.placement_table()
    load = engine.load_table()
    if args.json:
        print(json.dumps(
            {"placement": placement, "load": load,
             "cluster": engine.stats()["cluster"]},
            indent=2, sort_keys=True))
        return 0
    print(f"cluster: {args.devices} devices, seed {args.seed}, "
          f"{config.num_requests} warmup requests, "
          f"{config.tenants} tenant(s)/matrix")
    print("placement:")
    print(f"  {'pattern':<18} {'home':>4}  {'split':<5} devices")
    for row in placement:
        devs = ",".join(str(d) for d in row["devices"])
        print(f"  {row['pattern'][:16]:<18} {row['home']:>4}  "
              f"{str(row['split']):<5} {devs}")
    print("load:")
    print(f"  {'device':>6} {'state':<8} {'launches':>8} "
          f"{'shard':>6} {'served':>6} {'cached':>6}")
    for row in load:
        print(f"  {row['device']:>6} {row['state']:<8} "
              f"{row['launches']:>8} {row['shard_launches']:>6} "
              f"{row['served']:>6} {row['cache_entries']:>6}")
    return 0


def cmd_cluster_chaos(args) -> int:
    """``repro cluster chaos``: multi-fault chaos gate.

    Replays one seeded load trace twice — through a single healthy
    engine (the reference) and through an N-device replicated cluster
    while a :class:`~repro.resilience.chaos.ChaosSchedule` injects
    correlated kills, stragglers and flaps mid-run.  The gate passes
    only when the chaos run's folded ``y`` checksum is bit-identical
    to the reference and no hedge copy ever diverged — zero wrong
    answers under faults.  The JSON report is byte-reproducible per
    seed (same options, same bytes) and is appended to
    ``BENCH_chaos.json`` when ``REPRO_CHAOS_TRAJECTORY`` (or
    ``--trajectory``) names a file.  Exit code 1 on gate failure.
    """
    import json

    import repro
    from repro.cluster import HedgePolicy
    from repro.ocl.executor import executor_mode
    from repro.resilience.chaos import (
        ChaosSchedule, default_cluster_schedule,
    )
    from repro.serve import AdmissionPolicy
    from repro.serve.loadgen import (
        CHAOS_TRAJECTORY_SCHEMA, LoadConfig, append_serve_trajectory,
        chaos_trajectory_path, report_json, run_loadgen,
    )

    executor_mode()  # surface a bad REPRO_EXECUTOR before the event loop
    if args.devices < 2:
        print("error: chaos needs --devices >= 2 (somewhere to fail "
              "over to)", file=sys.stderr)
        return 2
    kwargs = {}
    if args.matrices:
        kwargs["matrices"] = tuple(args.matrices.split(","))
    config = LoadConfig(
        seed=args.seed, scale=args.scale, num_requests=args.requests,
        precision=args.precision, mrows=args.mrows, tenants=args.tenants,
        **kwargs)
    # queue bound sized to the trace so admission never drops requests:
    # the gate certifies answers, not backpressure.
    queue_depth = max(64, args.requests)
    reference = run_loadgen(
        config, admission=AdmissionPolicy(max_queue_depth=queue_depth))
    if args.schedule:
        schedule = ChaosSchedule.from_dict(
            json.loads(Path(args.schedule).read_text()))
    else:
        schedule = default_cluster_schedule(
            args.devices, seed=args.seed, at_s=args.chaos_at_us * 1e-6)
    engine = repro.serve_session(
        cluster=args.devices, precision=args.precision, mrows=args.mrows,
        max_queue_depth=queue_depth, size_scale=args.scale,
        keep_y="digest", replicas=args.replicas, hedge=HedgePolicy())
    report = run_loadgen(config, engine=engine, chaos=schedule)
    resilience = report.stats.get("cluster", {}).get("resilience", {})
    divergences = int(resilience.get("hedge_divergences", 0))
    match = report.y_checksum == reference.y_checksum
    passed = match and divergences == 0
    report.extra["chaos_gate"] = {
        "reference_checksum": reference.y_checksum,
        "reference_served": len(reference.served),
        "chaos_served": len(report.served),
        "checksums_match": match,
        "hedge_divergences": divergences,
        "passed": passed,
    }
    text = report_json(report)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(text, end="")
    trajectory = args.trajectory or chaos_trajectory_path()
    if trajectory:
        append_serve_trajectory(report, trajectory,
                                schema=CHAOS_TRAJECTORY_SCHEMA)
        print(f"appended trajectory entry: {trajectory}", file=sys.stderr)
    if not passed:
        print(f"chaos gate FAILED: checksums_match={match} "
              f"hedge_divergences={divergences}", file=sys.stderr)
        return 1
    print(f"chaos gate passed: {len(report.served)} served, "
          f"checksum matches the no-fault run "
          f"({len(schedule.actions)} faults injected)", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (one subcommand per command)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="CRSD SpMV reproduction toolkit (Sun et al., ICPP 2011)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("matrix", help="suite name/number or .mtx path")
        sp.add_argument("--scale", type=float, default=0.02,
                        help="suite generation scale (default 0.02)")
        sp.add_argument("--mrows", type=int, default=128,
                        help="CRSD row-segment size (default 128)")

    sp = sub.add_parser("info", help="structural statistics")
    common(sp)
    sp.add_argument("--spy", type=int, nargs="?", const=64, default=None,
                    metavar="WIDTH",
                    help="render a text spy plot (optional width)")
    sp.set_defaults(fn=cmd_info)

    sp = sub.add_parser("bench", help="simulate all formats")
    common(sp)
    sp.add_argument("--precision", choices=["double", "single"],
                    default="double")
    sp.set_defaults(fn=cmd_bench)

    sp = sub.add_parser("codegen", help="print the generated OpenCL kernel")
    common(sp)
    sp.add_argument("--precision", choices=["double", "single"],
                    default="double")
    sp.set_defaults(fn=cmd_codegen)

    sp = sub.add_parser(
        "analyze", help="statically analyze the generated kernels"
    )
    common(sp)
    sp.add_argument("--precision", choices=["double", "single"],
                    default="double")
    sp.add_argument("--nvec", type=int, default=1,
                    help="analyze the multi-vector SpMM variant")
    sp.add_argument("--no-local-memory", action="store_true",
                    help="analyze the A1 ablation (no AD tile staging)")
    sp.add_argument("--sym", action="store_true",
                    help="analyze the symmetric half-storage codelets "
                         "(matrix must be exactly symmetric and "
                         "scatter-free)")
    sp.add_argument("--shards", "--devices", type=int, default=None,
                    metavar="N", dest="shards",
                    help="additionally certify the N-way row-block "
                         "shard plan (non-zero exit on a violated "
                         "prover); --devices is an alias — the same "
                         "plan a --devices N cluster serves")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable findings report")
    sp.set_defaults(fn=cmd_analyze)

    sp = sub.add_parser("convert", help="build CRSD and save to .npz")
    common(sp)
    sp.add_argument("-o", "--output", help="output path")
    sp.set_defaults(fn=cmd_convert)

    sp = sub.add_parser("tune", help="autotune CRSD build parameters")
    common(sp)
    sp.add_argument("--fast", action="store_true",
                    help="use the closed-form model (no simulation)")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable result (best + all candidates)")
    sp.set_defaults(fn=cmd_tune)

    sp = sub.add_parser(
        "profile", help="record spans + metrics, export profile artifacts"
    )
    common(sp)
    sp.add_argument("--formats", default="crsd",
                    help="comma-separated formats (default: crsd)")
    sp.add_argument("--executors", default="batched,pergroup",
                    help="comma-separated executor modes "
                         "(default: batched,pergroup)")
    sp.add_argument("--precisions", default="double",
                    help="comma-separated precisions (default: double)")
    sp.add_argument("--json", action="store_true",
                    help="print the full machine-readable report")
    sp.add_argument("-o", "--output", metavar="DIR",
                    help="write profile_<name>.{json,csv,trace.json} here")
    sp.set_defaults(fn=cmd_profile)

    sp = sub.add_parser(
        "faultsim",
        help="chaos-sweep matrices under seeded fault injection",
    )
    sp.add_argument("--seed", type=int, default=0,
                    help="sweep seed (default 0); same seed, same report")
    sp.add_argument("--scale", type=float, default=0.01,
                    help="suite generation scale (default 0.01)")
    sp.add_argument("--mrows", type=int, default=128,
                    help="CRSD row-segment size (default 128)")
    sp.add_argument("--matrices", default=None,
                    help="comma-separated suite names/numbers "
                         "(default: all 23)")
    sp.add_argument("--format", default="crsd",
                    help="requested (top-rung) format (default: crsd)")
    sp.add_argument("--executors", default="batched,pergroup",
                    help="comma-separated executor modes "
                         "(default: batched,pergroup)")
    sp.add_argument("--precisions", default="double,single",
                    help="comma-separated precisions "
                         "(default: double,single)")
    sp.add_argument("--json", action="store_true",
                    help="print the full machine-readable report")
    sp.add_argument("-o", "--output", metavar="FILE",
                    help="also write the JSON report here")
    sp.set_defaults(fn=cmd_faultsim)

    def serve_common(sp):
        sp.add_argument("--precision", choices=["double", "single"],
                        default="double")
        sp.add_argument("--seed", type=int, default=0,
                        help="arrival/vector seed (default 0)")
        sp.add_argument("--requests", type=int, default=32,
                        help="requests to generate (default 32)")
        sp.add_argument("--max-batch", type=int, default=16,
                        help="widest SpMM coalescing (default 16)")
        sp.add_argument("--max-delay-us", type=float, default=200.0,
                        help="longest simulated batching delay for the "
                             "oldest request, microseconds (default 200)")
        sp.add_argument("--queue-depth", type=int, default=64,
                        help="admission queue bound (default 64)")
        sp.add_argument("--overflow", choices=["reject-new", "drop-oldest"],
                        default="reject-new",
                        help="queue overflow policy (default reject-new)")
        sp.add_argument("--deadline-us", type=float, default=None,
                        help="per-request deadline, microseconds "
                             "(default: none)")
        sp.add_argument("--devices", type=int, default=None, metavar="N",
                        help="serve through a simulated N-device "
                             "cluster (default: one engine)")
        sp.add_argument("--split-rows", type=int, default=None,
                        metavar="ROWS",
                        help="with --devices: split matrices of at "
                             "least ROWS rows across devices on a "
                             "certified shard plan")
        sp.add_argument("--replicas", type=int, default=1, metavar="R",
                        help="with --devices: place each pattern on R "
                             "ring-successor devices (default 1)")

    sp = sub.add_parser(
        "serve", help="serve a request stream against one matrix"
    )
    common(sp)
    serve_common(sp)
    sp.add_argument("--rate", type=float, default=4e5,
                    help="mean arrival rate, requests per simulated "
                         "second; 0 = all at once (default 4e5)")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable serving stats")
    sp.set_defaults(fn=cmd_serve)

    sp = sub.add_parser(
        "loadgen", help="seeded open-loop load generation over the suite"
    )
    serve_common(sp)
    sp.add_argument("--matrices", default=None,
                    help="comma-separated suite names (default: the "
                         "8-matrix representative subset)")
    sp.add_argument("--scale", type=float, default=0.05,
                    help="suite generation scale (default 0.05)")
    sp.add_argument("--mrows", type=int, default=128,
                    help="CRSD row-segment size (default 128)")
    sp.add_argument("--rate", type=float, default=4e5,
                    help="mean arrival rate, requests per simulated "
                         "second (default 4e5)")
    sp.add_argument("--pattern", choices=["poisson", "burst"],
                    default="poisson",
                    help="arrival process (default poisson)")
    sp.add_argument("--burst-size", type=int, default=8,
                    help="arrivals per burst under --pattern burst "
                         "(default 8)")
    sp.add_argument("--tenants", type=int, default=1,
                    help="value-variant tenants per suite matrix "
                         "(default 1)")
    sp.add_argument("--fail-device", type=int, default=None, metavar="D",
                    help="with --devices: lose device D mid-run "
                         "(rebalance + re-serve, zero wrong answers)")
    sp.add_argument("--fail-at-us", type=float, default=500.0,
                    help="simulated loss instant for --fail-device, "
                         "microseconds (default 500)")
    sp.add_argument("-o", "--output", metavar="FILE",
                    help="write the JSON report here instead of stdout")
    sp.add_argument("--trajectory", metavar="FILE", default=None,
                    help="append the report to this BENCH_serve.json "
                         "(default: $REPRO_SERVE_TRAJECTORY; with "
                         "--devices: BENCH_cluster.json / "
                         "$REPRO_CLUSTER_TRAJECTORY)")
    sp.set_defaults(fn=cmd_loadgen)

    sp = sub.add_parser(
        "cluster", help="multi-device cluster utilities"
    )
    cluster_sub = sp.add_subparsers(dest="cluster_command", required=True)
    sp = cluster_sub.add_parser(
        "status", help="placement/load tables after a seeded warmup"
    )
    sp.add_argument("--devices", type=int, default=4, metavar="N",
                    help="cluster size (default 4)")
    sp.add_argument("--seed", type=int, default=0,
                    help="warmup trace seed (default 0)")
    sp.add_argument("--requests", type=int, default=64,
                    help="warmup requests (default 64)")
    sp.add_argument("--matrices", default=None,
                    help="comma-separated suite names (default: the "
                         "8-matrix representative subset)")
    sp.add_argument("--tenants", type=int, default=1,
                    help="value-variant tenants per matrix (default 1)")
    sp.add_argument("--scale", type=float, default=0.02,
                    help="suite generation scale (default 0.02)")
    sp.add_argument("--mrows", type=int, default=128,
                    help="CRSD row-segment size (default 128)")
    sp.add_argument("--precision", choices=["double", "single"],
                    default="double")
    sp.add_argument("--split-rows", type=int, default=None, metavar="ROWS",
                    help="split matrices of at least ROWS rows across "
                         "devices on a certified shard plan")
    sp.add_argument("--replicas", type=int, default=1, metavar="R",
                    help="replicated placement factor (default 1)")
    sp.add_argument("--fail-device", type=int, default=None, metavar="D",
                    help="lose device D during the warmup trace")
    sp.add_argument("--fail-at-us", type=float, default=500.0,
                    help="simulated loss instant for --fail-device, "
                         "microseconds (default 500)")
    sp.add_argument("--rejoin-at-us", type=float, default=None,
                    help="with --fail-device: rejoin it at this instant, "
                         "microseconds (default: stays dead)")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable tables + cluster stats")
    sp.set_defaults(fn=cmd_cluster)

    sp = cluster_sub.add_parser(
        "chaos", help="multi-fault chaos run, gated on zero wrong answers"
    )
    sp.add_argument("--devices", type=int, default=4, metavar="N",
                    help="cluster size (default 4)")
    sp.add_argument("--replicas", type=int, default=2, metavar="R",
                    help="replicated placement factor (default 2)")
    sp.add_argument("--seed", type=int, default=0,
                    help="trace + schedule seed (default 0)")
    sp.add_argument("--requests", type=int, default=64,
                    help="requests to generate (default 64)")
    sp.add_argument("--matrices", default=None,
                    help="comma-separated suite names (default: the "
                         "8-matrix representative subset)")
    sp.add_argument("--tenants", type=int, default=1,
                    help="value-variant tenants per matrix (default 1)")
    sp.add_argument("--scale", type=float, default=0.02,
                    help="suite generation scale (default 0.02)")
    sp.add_argument("--mrows", type=int, default=128,
                    help="CRSD row-segment size (default 128)")
    sp.add_argument("--precision", choices=["double", "single"],
                    default="double")
    sp.add_argument("--schedule", metavar="FILE", default=None,
                    help="JSON ChaosSchedule to inject (default: the "
                         "seeded kill+straggler+flap schedule)")
    sp.add_argument("--chaos-at-us", type=float, default=300.0,
                    help="anchor instant for the default schedule, "
                         "microseconds (default 300)")
    sp.add_argument("-o", "--output", metavar="FILE",
                    help="write the JSON report here instead of stdout")
    sp.add_argument("--trajectory", metavar="FILE", default=None,
                    help="append the report to this BENCH_chaos.json "
                         "(default: $REPRO_CHAOS_TRAJECTORY)")
    sp.set_defaults(fn=cmd_cluster_chaos)
    return p


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``     — structural statistics of a matrix (suite name or .mtx)
``bench``    — simulate every format's SpMV on one matrix
``codegen``  — print the generated OpenCL kernel for a matrix
``analyze``  — statically analyze the generated kernels (no execution)
``convert``  — build CRSD from a .mtx file and save it (.npz)
``tune``     — autotune CRSD build parameters for a matrix
``profile``  — record spans + derived metrics, export profile artifacts
``faultsim`` — chaos-sweep the suite under seeded fault injection

Matrices are referenced either by Table V suite name/number
(``kim1``, ``3``) or by a MatrixMarket file path.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _load_matrix(ref: str, scale: float, seed: int = 0):
    """Resolve a matrix reference to a COOMatrix."""
    from repro.matrices.mmio import read_matrix_market
    from repro.matrices.suite23 import get_spec

    if ref.endswith(".mtx") or ref.endswith(".mtx.gz"):
        return read_matrix_market(ref), Path(ref).stem
    try:
        key = int(ref)
    except ValueError:
        key = ref
    spec = get_spec(key)
    return spec.generate(scale=scale), spec.name


def cmd_info(args) -> int:
    """``repro info``: structure statistics + CRSD view (+ spy plot)."""
    from repro.core.analysis import analyze_structure
    from repro.matrices.stats import compute_stats

    coo, name = _load_matrix(args.matrix, args.scale)
    print(f"{name}: {compute_stats(coo)}")
    a = analyze_structure(coo, mrows=args.mrows)
    print(
        f"CRSD view (mrows={args.mrows}): {a.num_regions} regions, "
        f"{a.num_scatter_points} scatter points, "
        f"{a.idle_broken_gaps} broken idle sections"
    )
    if args.spy:
        from repro.matrices.spyplot import spy

        scatter = a.scatter_rows if a.num_scatter_points else None
        print(spy(coo, width=args.spy, scatter_rows=scatter))
    return 0


def cmd_bench(args) -> int:
    """``repro bench``: simulate every format on one matrix."""
    from repro.bench.runner import GPU_FORMATS, _build_runners, scaled_device
    from repro.ocl.executor import executor_mode
    from repro.perf.costmodel import predict_gpu_time
    from repro.perf.metrics import gflops

    executor_mode()  # surface a bad REPRO_EXECUTOR before the per-format
    # try/except below turns it into "unavailable" for every format
    coo, name = _load_matrix(args.matrix, args.scale)
    dev = scaled_device(args.scale)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(coo.ncols)
    ref = coo.matvec(x)
    print(f"{name} ({coo.nrows}x{coo.ncols}, nnz={coo.nnz:,}), "
          f"precision={args.precision}")
    rows = []
    for fmt in GPU_FORMATS:
        try:
            runner = _build_runners(coo, dev, args.precision, [fmt],
                                    args.mrows)[fmt]
            run = runner.run(x)
        except Exception as exc:  # OOM etc.
            print(f"  {fmt:<6} unavailable ({type(exc).__name__})")
            continue
        tol = 1e-6 if args.precision == "double" else 1e-2
        ok = np.allclose(run.y, ref, atol=tol * max(1, np.abs(ref).max()))
        perf = predict_gpu_time(run.trace, dev, args.precision,
                                size_scale=args.scale)
        rows.append((fmt, gflops(coo.nnz, perf.total), ok))
    for fmt, gf, ok in sorted(rows, key=lambda r: -r[1]):
        print(f"  {fmt:<6} {gf:8.2f} GFLOPS  {'ok' if ok else 'WRONG'}")
    return 0 if all(ok for _, _, ok in rows) else 1


def cmd_codegen(args) -> int:
    """``repro codegen``: print the generated OpenCL kernel."""
    from repro.codegen import build_plan, generate_opencl_source
    from repro.core.crsd import CRSDMatrix, compatible_wavefront

    coo, _ = _load_matrix(args.matrix, args.scale)
    crsd = CRSDMatrix.from_coo(
        coo, mrows=args.mrows,
        wavefront_size=compatible_wavefront(args.mrows),
    )
    print(generate_opencl_source(build_plan(crsd), precision=args.precision))
    return 0


def cmd_analyze(args) -> int:
    """``repro analyze``: static analysis of the generated kernels.

    Runs the full checker battery (bounds, coalescing, divergence,
    local memory, batched-execution safety, render cross-checks) over
    the kernels that would be generated for the matrix — without
    executing anything.  ``--json`` prints the machine-readable report;
    the exit code is non-zero iff any violation was found.
    """
    import json

    from repro.analyze import analyze_matrix
    from repro.core.crsd import CRSDMatrix, compatible_wavefront

    coo, name = _load_matrix(args.matrix, args.scale)
    crsd = CRSDMatrix.from_coo(
        coo, mrows=args.mrows,
        wavefront_size=compatible_wavefront(args.mrows),
    )
    report = analyze_matrix(
        crsd,
        precision=args.precision,
        use_local_memory=not args.no_local_memory,
        nvec=args.nvec,
    )
    if args.json:
        payload = report.to_dict()
        payload["matrix"] = name
        print(json.dumps(payload, indent=2))
    else:
        print(f"{name}: {report.summary()}")
    return report.exit_code


def cmd_convert(args) -> int:
    """``repro convert``: build CRSD and persist it as .npz."""
    from repro.core.crsd import CRSDMatrix, compatible_wavefront
    from repro.core.serialize import save_crsd

    coo, name = _load_matrix(args.matrix, args.scale)
    crsd = CRSDMatrix.from_coo(
        coo, mrows=args.mrows,
        wavefront_size=compatible_wavefront(args.mrows),
    )
    out = Path(args.output or f"{name}.crsd.npz")
    save_crsd(crsd, out)
    print(f"wrote {out} ({crsd.num_dia_patterns} patterns, "
          f"{crsd.num_scatter_rows} scatter rows, "
          f"fill {crsd.fill_zeros:,})")
    return 0


def cmd_tune(args) -> int:
    """``repro tune``: autotune CRSD build parameters."""
    import dataclasses
    import json

    from repro.core.autotune import tune

    coo, name = _load_matrix(args.matrix, args.scale)
    res = tune(coo, fast=args.fast)
    b = res.best
    if args.json:
        payload = {
            "matrix": name,
            "best": dataclasses.asdict(b),
            "candidates": [dataclasses.asdict(c) for c in res.candidates],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{name}: best mrows={b.mrows} "
          f"idle_fill_max_rows={b.idle_fill_max_rows} "
          f"local_memory={b.use_local_memory} "
          f"(modelled {b.seconds * 1e6:.1f} us, "
          f"{len(res.candidates)} candidates)")
    return 0


def cmd_profile(args) -> int:
    """``repro profile``: spans + derived metrics + exporters.

    Sweeps the requested formats/executors/precisions over one matrix
    under a profile session, verifies every run against the COO
    reference, and prints a summary.  ``--json`` prints the full
    machine-readable report; ``-o DIR`` writes the JSON/CSV/Chrome-trace
    artifacts (open the ``.trace.json`` in chrome://tracing or
    Perfetto).  Exit code is non-zero iff any run failed verification.
    """
    import json

    from repro.obs.profiler import profile_matrix

    coo, name = _load_matrix(args.matrix, args.scale)
    report = profile_matrix(
        coo, name,
        formats=tuple(args.formats.split(",")),
        executors=tuple(args.executors.split(",")),
        precisions=tuple(args.precisions.split(",")),
        mrows=args.mrows,
        size_scale=args.scale,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    if args.output:
        paths = report.export(args.output)
        for kind, path in sorted(paths.items()):
            print(f"wrote {kind}: {path}", file=sys.stderr)
    bad = [e for e in report.registry.entries if not e.get("verified", True)]
    return 1 if bad else 0


def cmd_faultsim(args) -> int:
    """``repro faultsim``: chaos-sweep matrices under fault injection.

    Runs every (matrix, executor, precision) case of the sweep under a
    seeded fault plan through the resilient execution layer, then
    differentially verifies each served ``y`` bit-for-bit against a
    fault-free replay of the serving rung.  Fully deterministic: the
    same ``--seed`` produces byte-identical JSON.  Exit code is
    non-zero iff any case silently diverged — exhaustion is a legal
    outcome, divergence never is.
    """
    import json

    from repro.matrices.suite23 import get_spec
    from repro.resilience.chaos import chaos_sweep

    matrices = None
    if args.matrices:
        matrices = []
        for ref in args.matrices.split(","):
            try:
                matrices.append(get_spec(int(ref)).number)
            except ValueError:
                matrices.append(get_spec(ref).number)
    report = chaos_sweep(
        seed=args.seed,
        scale=args.scale,
        matrices=matrices,
        format=args.format,
        executors=tuple(args.executors.split(",")),
        precisions=tuple(args.precisions.split(",")),
        mrows=args.mrows,
    )
    if args.json:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        print(text)
    else:
        print(report.summary())
    if args.output:
        Path(args.output).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}", file=sys.stderr)
    return report.exit_code


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (one subcommand per command)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="CRSD SpMV reproduction toolkit (Sun et al., ICPP 2011)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("matrix", help="suite name/number or .mtx path")
        sp.add_argument("--scale", type=float, default=0.02,
                        help="suite generation scale (default 0.02)")
        sp.add_argument("--mrows", type=int, default=128,
                        help="CRSD row-segment size (default 128)")

    sp = sub.add_parser("info", help="structural statistics")
    common(sp)
    sp.add_argument("--spy", type=int, nargs="?", const=64, default=None,
                    metavar="WIDTH",
                    help="render a text spy plot (optional width)")
    sp.set_defaults(fn=cmd_info)

    sp = sub.add_parser("bench", help="simulate all formats")
    common(sp)
    sp.add_argument("--precision", choices=["double", "single"],
                    default="double")
    sp.set_defaults(fn=cmd_bench)

    sp = sub.add_parser("codegen", help="print the generated OpenCL kernel")
    common(sp)
    sp.add_argument("--precision", choices=["double", "single"],
                    default="double")
    sp.set_defaults(fn=cmd_codegen)

    sp = sub.add_parser(
        "analyze", help="statically analyze the generated kernels"
    )
    common(sp)
    sp.add_argument("--precision", choices=["double", "single"],
                    default="double")
    sp.add_argument("--nvec", type=int, default=1,
                    help="analyze the multi-vector SpMM variant")
    sp.add_argument("--no-local-memory", action="store_true",
                    help="analyze the A1 ablation (no AD tile staging)")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable findings report")
    sp.set_defaults(fn=cmd_analyze)

    sp = sub.add_parser("convert", help="build CRSD and save to .npz")
    common(sp)
    sp.add_argument("-o", "--output", help="output path")
    sp.set_defaults(fn=cmd_convert)

    sp = sub.add_parser("tune", help="autotune CRSD build parameters")
    common(sp)
    sp.add_argument("--fast", action="store_true",
                    help="use the closed-form model (no simulation)")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable result (best + all candidates)")
    sp.set_defaults(fn=cmd_tune)

    sp = sub.add_parser(
        "profile", help="record spans + metrics, export profile artifacts"
    )
    common(sp)
    sp.add_argument("--formats", default="crsd",
                    help="comma-separated formats (default: crsd)")
    sp.add_argument("--executors", default="batched,pergroup",
                    help="comma-separated executor modes "
                         "(default: batched,pergroup)")
    sp.add_argument("--precisions", default="double",
                    help="comma-separated precisions (default: double)")
    sp.add_argument("--json", action="store_true",
                    help="print the full machine-readable report")
    sp.add_argument("-o", "--output", metavar="DIR",
                    help="write profile_<name>.{json,csv,trace.json} here")
    sp.set_defaults(fn=cmd_profile)

    sp = sub.add_parser(
        "faultsim",
        help="chaos-sweep matrices under seeded fault injection",
    )
    sp.add_argument("--seed", type=int, default=0,
                    help="sweep seed (default 0); same seed, same report")
    sp.add_argument("--scale", type=float, default=0.01,
                    help="suite generation scale (default 0.01)")
    sp.add_argument("--mrows", type=int, default=128,
                    help="CRSD row-segment size (default 128)")
    sp.add_argument("--matrices", default=None,
                    help="comma-separated suite names/numbers "
                         "(default: all 23)")
    sp.add_argument("--format", default="crsd",
                    help="requested (top-rung) format (default: crsd)")
    sp.add_argument("--executors", default="batched,pergroup",
                    help="comma-separated executor modes "
                         "(default: batched,pergroup)")
    sp.add_argument("--precisions", default="double,single",
                    help="comma-separated precisions "
                         "(default: double,single)")
    sp.add_argument("--json", action="store_true",
                    help="print the full machine-readable report")
    sp.add_argument("-o", "--output", metavar="FILE",
                    help="also write the JSON report here")
    sp.set_defaults(fn=cmd_faultsim)
    return p


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

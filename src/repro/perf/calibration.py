"""Calibration constants of the performance model.

Sources:

- Tesla C2050 datasheet / paper Table IV: 448 cores @ 1.15 GHz, 3 GB,
  144 GB/s, 515/1030 GFLOPS DP/SP, 48 KB local per SM, 128 B memory
  transactions (Fermi L1 line).
- Fermi microbenchmark literature: ~400-600 cycle global latency,
  up to 48 resident wavefronts per SM, sustained bandwidth around
  75-80% of peak for streaming kernels.
- Xeon X5550 (paper Table IV): 2 sockets x 4 cores @ 2.67 GHz,
  triple-channel DDR3-1333 -> 32 GB/s peak per socket, of which
  STREAM-class kernels sustain roughly 60%; a single core sustains
  about 6 GB/s.

The model's purpose is *shape* fidelity (which format wins, by what
factor) — these constants set the scale, and the ablation benches vary
them explicitly.
"""

from __future__ import annotations

#: fraction of peak global bandwidth a streaming SpMV sustains on Fermi
GPU_BW_EFFICIENCY = 0.78

#: resident wavefronts per CU available to hide latency (Fermi limit)
MAX_RESIDENT_WAVEFRONTS_PER_CU = 48

#: extra latency (cycles) a work-group barrier exposes after overlap
#: with other resident groups: the group drains outstanding loads plus
#: the barrier instruction itself.  Together with the scatter-row
#: duplication this is what costs CRSD the wang3/wang4 comparison
#: (Section IV-A).
BARRIER_EXPOSED_CYCLES = 150

#: L2-to-SM bandwidth relative to DRAM bandwidth (Fermi ~2.5x): cache
#: hits are cheaper than DRAM transactions but not free, which is what
#: keeps cache-thrashing access patterns (CSR gathers) honest
L2_BW_MULTIPLIER = 2.0

#: sustained fraction of peak socket bandwidth for CPU SpMV streams
CPU_BW_EFFICIENCY = 0.55

#: sustained bandwidth of a single CPU core (GB/s) — one core cannot
#: saturate the socket's memory controllers
CPU_PER_CORE_BW_GBS = 9.0

#: per-socket peak memory bandwidth of the X5550 platform (GB/s)
CPU_SOCKET_BW_GBS = 32.0

#: CSR on CPU pays irregular-gather and short-row loop overheads that a
#: pure byte count misses; MKL-class implementations land around this
#: fraction of streaming bandwidth on sparse gathers.
CPU_CSR_GATHER_EFFICIENCY = 0.55

#: CPU DIA streams its (mostly padded) slab at full streaming rate
CPU_DIA_STREAM_EFFICIENCY = 0.9

#: CRSD's diagonal slab on CPU streams like DIA but without the fill
CPU_CRSD_STREAM_EFFICIENCY = 0.85

"""Performance model: execution traces -> time -> GFLOPS.

SpMV is bandwidth-bound on every platform the paper evaluates, so the
model is a roofline over *measured* quantities: the simulator counts
the memory transactions a kernel actually issues (coalescing included)
and the model charges them against the device's bandwidth, taking the
maximum with the compute and latency terms, plus explicit costs for
work-group barriers and kernel launches.

- :mod:`repro.perf.costmodel`    — trace -> :class:`PerfBreakdown`
- :mod:`repro.perf.metrics`      — GFLOPS / effective-bandwidth metrics
- :mod:`repro.perf.calibration`  — the constants and where they come from
"""

from repro.perf.costmodel import PerfBreakdown, predict_gpu_time
from repro.perf.metrics import gflops, effective_bandwidth, speedup
from repro.perf.analytic import TrafficEstimate, estimate_traffic
from repro.perf.roofline import RooflinePoint, render_roofline, roofline_point

__all__ = [
    "PerfBreakdown",
    "predict_gpu_time",
    "gflops",
    "effective_bandwidth",
    "speedup",
    "TrafficEstimate",
    "estimate_traffic",
    "RooflinePoint",
    "roofline_point",
    "render_roofline",
]

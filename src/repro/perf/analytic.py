"""Closed-form transaction estimates per format.

The simulator *measures* traffic; this module *predicts* it from
format metadata alone, which (a) cross-validates the simulator — the
tests require agreement on structured matrices — and (b) extends the
performance model to full-size matrices that are too large to simulate
(or even to materialise, like the af_* DIA slab).

Estimates follow each kernel's documented access pattern:

=======  ==============================================================
format   per-SpMV global traffic (elements)
=======  ==============================================================
DIA      slab loads: ndiags x nrows values (coalesced); x loads: the
         in-matrix extent per diagonal (coalesced, L2-assisted); y store
ELL      slab: width x nrows values + width x nrows int32 indices
         (coalesced); x gathers ~ slab (cache-assisted); y store
CSR-vec  data+indices once (coalesced by wavefront), x gather per nnz,
         indptr twice per row, y store; requests dominated by
         ceil(row_len/W) steps x 3 arrays per row
CRSD     slab values once (coalesced, no indices), x: one pass per NAD
         diagonal + one tile pass per AD group, scatter ELL, y store
=======  ==============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.crsd import CRSDMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.dia import DIAMatrix
from repro.formats.ell import ELLMatrix
from repro.formats.footprint import value_itemsize
from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.trace import KernelTrace


@dataclass(frozen=True)
class TrafficEstimate:
    """Predicted per-SpMV global traffic."""

    load_bytes: int
    store_bytes: int
    load_requests: int
    wavefronts: int

    def to_trace(self, device: DeviceSpec = TESLA_C2050) -> KernelTrace:
        """Convert to a synthetic :class:`KernelTrace` (coalesced
        transactions) usable with the cost model."""
        txn = device.transaction_bytes
        t = KernelTrace()
        t.global_load_transactions = -(-self.load_bytes // txn)
        t.global_load_bytes_useful = self.load_bytes
        t.global_load_requests = self.load_requests
        t.global_store_transactions = -(-self.store_bytes // txn)
        t.global_store_bytes_useful = self.store_bytes
        t.global_store_requests = max(1, self.store_bytes // txn)
        t.wavefronts = self.wavefronts
        t.work_groups = max(1, self.wavefronts // 4)
        return t


def estimate_dia_traffic(
    nrows: int,
    ndiags: int,
    in_matrix_elements: int | None = None,
    precision: str = "double",
    wavefront: int = 32,
) -> TrafficEstimate:
    """DIA kernel traffic from structure numbers alone (no slab)."""
    isz = value_itemsize(precision)
    if in_matrix_elements is None:
        in_matrix_elements = ndiags * nrows  # upper bound
    loads = ndiags * nrows * isz + in_matrix_elements * isz + ndiags * 4
    wavefronts = -(-nrows // wavefront)
    return TrafficEstimate(
        load_bytes=int(loads),
        store_bytes=nrows * isz,
        load_requests=wavefronts * 2 * ndiags,
        wavefronts=wavefronts,
    )


def estimate_ell_traffic(
    nrows: int, width: int, precision: str = "double", wavefront: int = 32
) -> TrafficEstimate:
    """ELL kernel traffic from ``(nrows, width)`` alone."""
    isz = value_itemsize(precision)
    slots = width * nrows
    loads = slots * isz + slots * 4 + slots * isz
    wavefronts = -(-nrows // wavefront)
    return TrafficEstimate(
        load_bytes=int(loads),
        store_bytes=nrows * isz,
        load_requests=wavefronts * 3 * width,
        wavefronts=wavefronts,
    )


def estimate_csr_vector_traffic(
    nrows: int, nnz: int, precision: str = "double", wavefront: int = 32
) -> TrafficEstimate:
    """CSR-vector kernel traffic from ``(nrows, nnz)`` alone."""
    isz = value_itemsize(precision)
    loads = nnz * (isz + 4) + nnz * isz + 2 * nrows * 4
    steps = nrows * max(1, -(-int(round(nnz / max(nrows, 1))) // wavefront))
    return TrafficEstimate(
        load_bytes=int(loads),
        store_bytes=nrows * isz,
        load_requests=int(steps * 3 + 2 * nrows),
        wavefronts=nrows,  # one wavefront per row
    )


def estimate_crsd_traffic(
    crsd: CRSDMatrix, precision: str = "double", wavefront: int = 32
) -> TrafficEstimate:
    """CRSD traffic from the stored structure (no execution)."""
    isz = value_itemsize(precision)
    loads = crsd.dia_val.size * isz          # value slab, once, no indices
    requests = 0
    wavefronts = 0
    for r in crsd.regions:
        wf_per_group = -(-r.mrows // wavefront)
        wavefronts += r.num_segments * wf_per_group
        nad = r.ndiags - r.pattern.n_adjacent_diags
        n_ad_groups = sum(1 for g in r.pattern.groups if g.kind.value == "AD")
        rows = r.num_segments * r.mrows
        # x traffic: one pass per NAD diagonal, one tile pass per AD group
        loads += (nad + n_ad_groups) * rows * isz
        requests += r.num_segments * wf_per_group * (2 * r.ndiags + n_ad_groups)
    # scatter ELL part (column-major: vals + int cols + x gather + rowno)
    s = crsd.scatter_val.size
    loads += s * (isz + 4 + isz) + crsd.num_scatter_rows * 4
    store = crsd.nrows * isz + crsd.num_scatter_rows * isz
    return TrafficEstimate(
        load_bytes=int(loads),
        store_bytes=int(store),
        load_requests=int(requests),
        wavefronts=int(max(wavefronts, 1)),
    )


def estimate_traffic(matrix, precision: str = "double") -> TrafficEstimate:
    """Dispatch on the library's format classes."""
    if isinstance(matrix, CRSDMatrix):
        return estimate_crsd_traffic(matrix, precision)
    if isinstance(matrix, DIAMatrix):
        return estimate_dia_traffic(
            matrix.nrows, matrix.ndiags, matrix.in_matrix_elements, precision
        )
    if isinstance(matrix, ELLMatrix):
        return estimate_ell_traffic(matrix.nrows, matrix.width, precision)
    if isinstance(matrix, CSRMatrix):
        return estimate_csr_vector_traffic(matrix.nrows, matrix.nnz, precision)
    raise TypeError(f"no analytic model for {type(matrix).__name__}")

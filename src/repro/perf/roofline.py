"""Roofline analysis of traced kernels.

Places a kernel run on the device's roofline: arithmetic intensity
(useful flops per DRAM byte moved) against the bandwidth and compute
ceilings.  SpMV lives deep in the bandwidth-bound region (~0.1-0.25
flops/byte for double precision), which is the quantitative reason the
whole paper is about *bytes* — formats win by moving fewer of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ocl.device import DeviceSpec, TESLA_C2050
from repro.ocl.trace import KernelTrace
from repro.perf import calibration as cal


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position on the roofline."""

    name: str
    flops: int
    dram_bytes: int
    achieved_gflops: float
    device: DeviceSpec

    @property
    def arithmetic_intensity(self) -> float:
        """Useful flops per DRAM byte."""
        return self.flops / self.dram_bytes if self.dram_bytes else float("inf")

    def ceiling_gflops(self, precision: str = "double") -> float:
        """The roofline ceiling at this intensity."""
        bw = self.device.global_bw_gbs * cal.GPU_BW_EFFICIENCY
        return min(
            self.device.peak_gflops(precision),
            self.arithmetic_intensity * bw,
        )

    def efficiency(self, precision: str = "double") -> float:
        """Achieved / ceiling, in (0, 1]."""
        c = self.ceiling_gflops(precision)
        return min(1.0, self.achieved_gflops / c) if c else 0.0

    @property
    def memory_bound(self) -> bool:
        """Below the ridge point the bandwidth ceiling binds."""
        bw = self.device.global_bw_gbs * cal.GPU_BW_EFFICIENCY
        ridge = self.device.peak_gflops_dp / bw
        return self.arithmetic_intensity < ridge


def roofline_point(
    name: str,
    trace: KernelTrace,
    seconds: float,
    device: DeviceSpec = TESLA_C2050,
    useful_flops: int | None = None,
) -> RooflinePoint:
    """Build a :class:`RooflinePoint` from a trace and a modelled (or
    measured) time.  ``useful_flops`` defaults to the trace's executed
    flops; pass ``2 * nnz`` for the paper's useful-work convention."""
    if seconds <= 0:
        raise ValueError("seconds must be positive")
    flops = trace.flops if useful_flops is None else int(useful_flops)
    dram = (
        trace.global_load_transactions + trace.global_store_transactions
    ) * device.transaction_bytes
    return RooflinePoint(
        name=name,
        flops=flops,
        dram_bytes=dram,
        achieved_gflops=flops / seconds / 1e9,
        device=device,
    )


def render_roofline(points, precision: str = "double", width: int = 50) -> str:
    """Text roofline: one line per kernel with intensity, ceiling,
    achieved and an efficiency bar."""
    lines = [
        f"roofline on {points[0].device.name} ({precision}): "
        f"ridge at {points[0].device.peak_gflops(precision) / (points[0].device.global_bw_gbs * cal.GPU_BW_EFFICIENCY):.2f} flop/B",
        f"{'kernel':<10} {'flop/B':>7} {'ceiling':>9} {'achieved':>9} "
        f"{'eff':>5}  bound",
    ]
    for p in points:
        eff = p.efficiency(precision)
        bar = "#" * int(round(eff * 20))
        lines.append(
            f"{p.name:<10} {p.arithmetic_intensity:>7.3f} "
            f"{p.ceiling_gflops(precision):>8.1f}G {p.achieved_gflops:>8.2f}G "
            f"{eff:>4.0%}  {'mem' if p.memory_bound else 'compute'} {bar}"
        )
    return "\n".join(lines)

"""Roofline cost model: a kernel trace plus a device spec -> seconds.

``time = launch + max(T_bw, T_latency, T_compute, T_local) + T_barrier``

- **T_bw** — global transactions x 128 B against sustained bandwidth
  (coalescing is already inside the transaction count).
- **T_latency** — total memory requests x latency, divided by the
  wavefront-level parallelism available to hide it; binds only for
  small or latency-exposed launches.
- **T_compute** — executed flops against the precision's peak,
  derated by measured divergence efficiency.
- **T_local** — local-memory traffic at its (much higher) bandwidth.
- **T_barrier** — each work-group barrier exposes a full memory
  latency (the group drains its outstanding loads); barriers of
  different groups overlap across CUs.

All quantities except the calibration constants are *measured* by the
simulator from the same data layouts a real GPU would use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ocl.device import DeviceSpec
from repro.ocl.trace import KernelTrace
from repro.perf import calibration as cal


@dataclass(frozen=True)
class PerfBreakdown:
    """Per-term timing of one (or more merged) kernel launches."""

    bandwidth_time: float
    latency_time: float
    compute_time: float
    local_time: float
    l2_time: float
    barrier_time: float
    launch_time: float

    @property
    def bound(self) -> str:
        """Which roofline term binds ("bandwidth", "latency", ...)."""
        terms = {
            "bandwidth": self.bandwidth_time,
            "latency": self.latency_time,
            "compute": self.compute_time,
            "local": self.local_time,
            "l2": self.l2_time,
        }
        return max(terms, key=terms.get)

    @property
    def total(self) -> float:
        return (
            self.launch_time
            + max(
                self.bandwidth_time,
                self.latency_time,
                self.compute_time,
                self.local_time,
                self.l2_time,
            )
            + self.barrier_time
        )


def predict_gpu_time(
    trace: KernelTrace,
    device: DeviceSpec,
    precision: str = "double",
    num_launches: int = 1,
    size_scale: float = 1.0,
) -> PerfBreakdown:
    """Predicted execution time of the traced launch(es) on ``device``.

    ``size_scale`` is the benchmark's problem-scale factor: the
    latency-hiding concurrency is evaluated at full-size-equivalent
    wavefront count (``wavefronts / size_scale``) so that scaled runs
    keep the full-size balance between the latency and bandwidth terms.
    """
    clock_hz = device.clock_ghz * 1e9

    # -- bandwidth term --------------------------------------------------
    txn = trace.global_load_transactions + trace.global_store_transactions
    bytes_moved = txn * device.transaction_bytes
    bw = device.global_bw_gbs * 1e9 * cal.GPU_BW_EFFICIENCY
    t_bw = bytes_moved / bw

    # -- latency term ----------------------------------------------------
    requests = trace.global_load_requests + trace.global_store_requests
    concurrency = max(
        1,
        min(
            trace.wavefronts / max(size_scale, 1e-9),
            device.num_cus * cal.MAX_RESIDENT_WAVEFRONTS_PER_CU,
        ),
    )
    t_lat = requests * device.global_latency_cycles / clock_hz / concurrency

    # -- L2/load-pipe term ---------------------------------------------------
    # every load transaction — DRAM miss or L2 hit — flows through the
    # L2/LSU pipe at L2_BW_MULTIPLIER x DRAM bandwidth; kernels that
    # re-read x heavily (CSR gathers, unstaged AD groups) bind here
    load_txn_total = trace.global_load_transactions + trace.l2_hits
    t_l2 = (
        load_txn_total * device.transaction_bytes / (bw * cal.L2_BW_MULTIPLIER)
        if load_txn_total
        else 0.0
    )

    # -- compute term ----------------------------------------------------
    peak = device.peak_gflops(precision) * 1e9
    eff = max(trace.divergence_efficiency, 1e-6)
    t_comp = trace.flops / (peak * eff) if trace.flops else 0.0

    # -- local-memory term -------------------------------------------------
    local_bytes = trace.local_load_bytes + trace.local_store_bytes
    t_local = local_bytes / (bw * device.local_bw_multiplier) if local_bytes else 0.0

    # -- barrier term ------------------------------------------------------
    t_barrier = (
        trace.barriers
        * cal.BARRIER_EXPOSED_CYCLES
        / clock_hz
        / max(1, device.num_cus)
    )

    t_launch = num_launches * device.kernel_launch_us * 1e-6

    return PerfBreakdown(
        bandwidth_time=t_bw,
        latency_time=t_lat,
        compute_time=t_comp,
        local_time=t_local,
        l2_time=t_l2,
        barrier_time=t_barrier,
        launch_time=t_launch,
    )

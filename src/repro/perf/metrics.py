"""Performance metrics.

The paper (and Bell & Garland) report GFLOPS computed from the
*mathematical* work — ``2 x nnz`` flops per SpMV — divided by execution
time, so formats that burn time on padding zeros score low even though
the device "did more flops".  We follow that convention.
"""

from __future__ import annotations


def gflops(nnz: int, seconds: float, flops_per_nnz: int = 2) -> float:
    """Useful GFLOPS of one SpMV: ``flops_per_nnz * nnz / time``."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return flops_per_nnz * nnz / seconds / 1e9


def effective_bandwidth(useful_bytes: int, seconds: float) -> float:
    """GB/s of useful data motion."""
    if seconds <= 0:
        raise ValueError(f"seconds must be positive, got {seconds}")
    return useful_bytes / seconds / 1e9


def speedup(time_baseline: float, time_new: float) -> float:
    """How many times faster ``new`` is than ``baseline``."""
    if time_new <= 0 or time_baseline <= 0:
        raise ValueError("times must be positive")
    return time_baseline / time_new
